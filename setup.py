"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel`` for PEP 660
editable installs; offline environments without ``wheel`` can fall back to
the legacy path::

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
