"""Ablation A1 — LUT granularity.

Compares the paper's per-instruction LUT against the coarser two-class
scheme of application-adaptive guard-banding [8] (the related work the
paper positions itself against) and the genie bound.  Fine granularity is
where the paper's gains come from.
"""

from conftest import publish

from repro.clocking.policies import (
    GeniePolicy,
    InstructionLutPolicy,
    StaticClockPolicy,
    TwoClassPolicy,
)
from repro.flow.evaluate import (
    SweepConfig,
    average_speedup_percent,
)
from repro.utils.tables import format_table
from repro.workloads.suite import benchmark_suite

POLICY_ORDER = ("static", "two-class [8]", "instruction (paper)", "genie")


def _run_all(session):
    design, lut = session.design, session.lut
    factories = {
        "static": lambda: StaticClockPolicy(design.static_period_ps),
        "two-class [8]": lambda: TwoClassPolicy(lut),
        "instruction (paper)": lambda: InstructionLutPolicy(lut),
        "genie": lambda: GeniePolicy(design.excitation),
    }
    configs = [
        SweepConfig(policy=factory, check_safety=False, label=name)
        for name, factory in factories.items()
    ]
    rows = session.evaluate_results(benchmark_suite(), configs)
    return dict(zip(factories, rows))


def test_ablation_lut_granularity(benchmark, session, store):
    results = benchmark(_run_all, session)

    speedups = {
        name: average_speedup_percent(results[name])
        for name in POLICY_ORDER
    }
    rows = [
        (name, f"{speedups[name]:+.1f} %")
        for name in POLICY_ORDER
    ]
    table = format_table(
        ["Policy", "Avg. speedup"], rows,
        title="A1 — clock-adjustment granularity (suite average)",
    )
    note = (
        "\nper-instruction granularity recovers most of the genie bound;\n"
        "the two-class scheme [8] leaves the bulk of the margins unused\n"
        "(the paper's motivation for fine-grained adjustment)."
    )
    publish("ablation_granularity", table + note)

    assert speedups["static"] == 0.0
    assert speedups["two-class [8]"] > 0.0
    # fine granularity must buy a double-digit improvement over two-class
    assert speedups["instruction (paper)"] > speedups["two-class [8]"] + 10.0
    assert speedups["genie"] > speedups["instruction (paper)"]
