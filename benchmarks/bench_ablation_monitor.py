"""Ablation A3 — EX-only simplified monitor (paper Sec. IV-A).

The paper observes that because EX (and the EX-driven instruction-memory
address path) limits essentially every significant cycle, the clock
controller can monitor *only* the execute stage.  This ablation measures
the cost of that simplification against full 6-stage monitoring.
"""

from conftest import publish

from repro.clocking.policies import ExOnlyLutPolicy, InstructionLutPolicy
from repro.flow.evaluate import (
    SweepConfig,
    average_frequency_mhz,
    average_speedup_percent,
)
from repro.flow.reporting import render_policy_comparison
from repro.workloads.suite import benchmark_suite


def _run_both(session):
    lut = session.lut
    configs = [
        SweepConfig(
            policy=lambda: InstructionLutPolicy(lut),
            check_safety=False, label="full-monitor",
        ),
        SweepConfig(
            policy=lambda: ExOnlyLutPolicy(lut),
            check_safety=True, label="ex-only",
        ),
    ]
    rows = session.evaluate_results(benchmark_suite(), configs)
    return {config.label: row for config, row in zip(configs, rows)}


def test_ablation_exonly_monitor(benchmark, session, store):
    results = benchmark(_run_both, session)

    full = average_speedup_percent(results["full-monitor"])
    ex_only = average_speedup_percent(results["ex-only"])
    cost = full - ex_only

    table = render_policy_comparison(
        results,
        title="A3 — full 6-stage monitor vs. EX-only monitor [MHz]",
    )
    note = (
        f"\nfull monitor: {full:+.1f} % avg, EX-only: {ex_only:+.1f} % avg"
        f" (simplification costs {cost:.1f} points)\n"
        "paper Sec. IV-A: monitoring only the execute stage 'can"
        " significantly simplify the clock adjustment control module'."
    )
    publish("ablation_monitor", table + note)

    # the simplified monitor stays safe and close to the full monitor
    for result in results["ex-only"]:
        assert result.is_safe, result.program_name
    assert 0.0 <= cost < 5.0
    assert average_frequency_mhz(results["ex-only"]) > 600.0
