"""Fig. 5 — histogram of per-cycle dynamic maximum delay (genie bound).

Regenerates the distribution of the per-cycle worst endpoint delay across
all pipeline stages (including the SRAM macros), its mean (the paper's
1334 ps) and the resulting theoretical speedup bound (~50 %).
"""

import numpy as np
from conftest import publish

from repro.flow.experiment import ExperimentReport
from repro.paperdata import (
    GENIE_MEAN_PERIOD_PS,
    GENIE_SPEEDUP_PERCENT,
    STATIC_PERIOD_PS,
)
from repro.utils.stats import Histogram


def _aggregate(characterization):
    hand_runs = [
        run for run in characterization.runs
        if not run.program_name.startswith("chargen")
    ]
    return np.concatenate([run.dta.cycle_max for run in hand_runs])


def test_fig5_genie_histogram(benchmark, characterization, design):
    delays = benchmark(_aggregate, characterization)

    mean = float(delays.mean())
    maximum = float(delays.max())
    speedup = (STATIC_PERIOD_PS / mean - 1.0) * 100.0

    histogram = Histogram(low=0.0, high=2100.0, num_bins=21)
    histogram.extend(delays.tolist())

    report = ExperimentReport(
        "Fig. 5", "Per-cycle dynamic maximum delay over all stages"
    )
    report.add("mean delay", GENIE_MEAN_PERIOD_PS, mean, unit=" ps")
    report.add("static limit", STATIC_PERIOD_PS, design.static_period_ps,
               unit=" ps")
    report.add("genie speedup", GENIE_SPEEDUP_PERCENT, speedup, unit=" %")
    report.note(f"observed dynamic maximum {maximum:.0f} ps "
                f"(< static {STATIC_PERIOD_PS:.0f} ps: the critical path "
                f"is never excited)")
    report.note(f"{len(delays)} cycles from the hand-written "
                f"characterisation kernels")

    publish(
        "fig5_genie_histogram",
        report.render() + "\n\n" + histogram.render(width=46),
    )

    assert abs(mean - GENIE_MEAN_PERIOD_PS) / GENIE_MEAN_PERIOD_PS < 0.05
    assert maximum <= design.static_period_ps
