"""Fig. 7 — per-stage dynamic delay histograms for l.mul.

Regenerates the six per-stage histograms for the multiply instruction: the
EX delay sits close to the static maximum with a ~300 ps data-dependent
spread, while every other stage is significantly lower.
"""

from conftest import publish

from repro.dta.histograms import class_stage_delays
from repro.flow.experiment import ExperimentReport
from repro.paperdata import LMUL_EX_SPREAD_PS, TABLE2_INSTRUCTION_DELAYS
from repro.sim.trace import Stage
from repro.utils.stats import Histogram


def _collect(characterization):
    samples = {stage: [] for stage in Stage}
    for run in characterization.runs:
        run_samples = class_stage_delays(run.dta, run.trace, "l.mul(i)")
        for stage in Stage:
            samples[stage].extend(run_samples[stage])
    return samples


def test_fig7_lmul_histograms(benchmark, characterization):
    samples = benchmark(_collect, characterization)

    ex_delays = samples[Stage.EX]
    ex_max = max(ex_delays)
    ex_spread = ex_max - min(ex_delays)
    paper_mul_max = TABLE2_INSTRUCTION_DELAYS["l.mul(i)"][0]

    report = ExperimentReport(
        "Fig. 7", "Per-stage dynamic delays of l.mul"
    )
    report.add("EX worst case", paper_mul_max, ex_max, unit=" ps")
    report.add("EX data-dependent spread", LMUL_EX_SPREAD_PS, ex_spread,
               unit=" ps")
    report.note(
        "non-EX stages collapse to their fixed worst cases in our model "
        "(documented simplification, DESIGN.md)"
    )

    lines = [report.render(), ""]
    for stage in Stage:
        values = samples[stage]
        lines.append(
            f"--- {stage.name}: {len(values)} occurrences, "
            f"max {max(values):.0f} ps"
        )
        histogram = Histogram(low=0.0, high=2000.0, num_bins=20)
        histogram.extend(values)
        lines.append(histogram.render(width=36))
        lines.append("")
    publish("fig7_lmul_histograms", "\n".join(lines))

    assert abs(ex_max - paper_mul_max) < 5.0
    assert abs(ex_spread - LMUL_EX_SPREAD_PS) < 60.0
    for stage in Stage:
        if stage != Stage.EX:
            assert max(samples[stage]) < ex_max - 500.0, stage
