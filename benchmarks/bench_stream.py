"""Streaming engine benchmark — throughput parity and bounded memory.

Two acceptance properties of ``repro.stream``:

- **Throughput**: a :class:`~repro.stream.StreamingSession` over a
  finite randomgen stream stays within 2x of the offline vector engine
  on the same programs (same design, store detached, compilation
  charged to both), and the frames are byte-identical.
- **Bounded memory**: peak RSS of a 10x-longer stream stays within 10%
  of the short stream's.  Each measurement runs in its own fresh
  interpreter (``--rss-child``) because ``ru_maxrss`` is a
  process-lifetime high-water mark.

Writes both to ``BENCH_stream.json`` at the repository root so the
trajectory is tracked PR over PR.  Runs standalone
(``python benchmarks/bench_stream.py``) and under pytest.
"""

import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_stream.json"

WINDOW_CYCLES = 256

#: Shared randomgen stream shape (seeded — both engines see the same
#: programs, and the RSS children regenerate them deterministically).
STREAM = {"seed": 7, "length": 400, "repeats": 2}

THROUGHPUT_PROGRAMS = 12
RSS_SHORT = 4
RSS_LONG = 40                      # 10x the short stream


def _rss_child(count, lut_path):
    """Child mode: stream ``count`` programs, print peak RSS as JSON."""
    import resource

    from repro.api import Session
    from repro.dta.lut import DelayLUT
    from repro.stream import StreamingSession, random_source

    lut = DelayLUT.from_json(pathlib.Path(lut_path).read_text())
    session = Session(lut=lut)
    streaming = StreamingSession(session, window_cycles=WINDOW_CYCLES)
    frame = streaming.evaluate(
        random_source(count=count, **STREAM), policies=["instruction"]
    )
    print(json.dumps({
        "rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "rows": len(frame),
    }))


def _measure_rss(count, lut_path):
    """Peak RSS (KB) of a fresh interpreter streaming ``count``
    programs."""
    script = pathlib.Path(__file__).resolve()
    env = dict(os.environ)
    src = str(script.parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, str(script), "--rss-child", str(count),
         str(lut_path)],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def run_stream_benchmark(design, lut, *, measure_rss=True):
    from repro.api import Session
    from repro.dta.compiled import clear_compiled_cache, set_trace_store
    from repro.obs.host import host_metadata
    from repro.stream import StreamingSession, random_source

    programs = list(random_source(count=THROUGHPUT_PROGRAMS, **STREAM))

    previous = set_trace_store(None)
    try:
        offline = Session.for_design(design, lut=lut)
        clear_compiled_cache()
        start = time.perf_counter()
        offline_frame = offline.evaluate(programs,
                                         policies=["instruction"])
        offline_seconds = time.perf_counter() - start

        streaming = StreamingSession(
            Session.for_design(design, lut=lut),
            window_cycles=WINDOW_CYCLES,
        )
        clear_compiled_cache()
        start = time.perf_counter()
        stream_frame = streaming.evaluate(programs,
                                          policies=["instruction"])
        stream_seconds = time.perf_counter() - start
    finally:
        set_trace_store(previous)

    cycles = int(offline_frame["num_cycles"].sum())
    metrics = {
        "programs": len(programs),
        "total_cycles": cycles,
        "window_cycles": WINDOW_CYCLES,
        "offline_seconds": round(offline_seconds, 3),
        "stream_seconds": round(stream_seconds, 3),
        "offline_cycles_per_s": round(cycles / offline_seconds),
        "stream_cycles_per_s": round(cycles / stream_seconds),
        "throughput_ratio": round(offline_seconds / stream_seconds, 3),
        "identical": stream_frame.to_json() == offline_frame.to_json(),
        "host": host_metadata(),
    }
    if measure_rss:
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as handle:
            handle.write(lut.to_json())
            lut_path = handle.name
        try:
            short = _measure_rss(RSS_SHORT, lut_path)
            long = _measure_rss(RSS_LONG, lut_path)
        finally:
            os.unlink(lut_path)
        metrics.update({
            "rss_short_programs": RSS_SHORT,
            "rss_long_programs": RSS_LONG,
            "rss_short_kb": short["rss_kb"],
            "rss_long_kb": long["rss_kb"],
            "rss_ratio": round(long["rss_kb"] / short["rss_kb"], 4),
        })
    return metrics


def report(metrics):
    from conftest import publish

    from repro.utils.tables import format_table

    rows = [
        ("offline vector engine", f"{metrics['offline_seconds']:.2f} s",
         f"{metrics['offline_cycles_per_s']:,} cyc/s"),
        ("streaming (window %d)" % metrics["window_cycles"],
         f"{metrics['stream_seconds']:.2f} s",
         f"{metrics['stream_cycles_per_s']:,} cyc/s"),
        ("throughput ratio", f"{metrics['throughput_ratio']:.2f}x", "-"),
    ]
    if "rss_ratio" in metrics:
        rows.append((
            f"peak RSS {metrics['rss_short_programs']} -> "
            f"{metrics['rss_long_programs']} programs",
            f"{metrics['rss_short_kb']} -> {metrics['rss_long_kb']} KB",
            f"{metrics['rss_ratio']:.3f}x",
        ))
    table = format_table(
        ["Engine", "Wall time", "Throughput"], rows,
        title=f"Stream — {metrics['programs']} randomgen programs, "
              f"{metrics['total_cycles']} cycles",
    )
    BENCH_JSON.write_text(
        json.dumps(metrics, indent=2, sort_keys=True) + "\n"
    )
    publish("stream", table + f"\n  wrote {BENCH_JSON.name}")
    return table


def test_stream_benchmark(design, lut):
    metrics = run_stream_benchmark(design, lut)
    report(metrics)
    assert metrics["identical"], "stream frame != offline frame"
    # acceptance: streaming within 2x of the offline vector engine
    assert metrics["throughput_ratio"] >= 0.5, metrics
    # acceptance: peak RSS flat as the stream grows 10x
    assert metrics["rss_ratio"] <= 1.10, metrics


if __name__ == "__main__":
    if len(sys.argv) >= 3 and sys.argv[1] == "--rss-child":
        _rss_child(int(sys.argv[2]), sys.argv[3])
        sys.exit(0)
    from conftest import STORE_DIR

    from repro.lab.store import ArtifactStore
    from repro.timing.design import build_design
    from repro.timing.profiles import DesignVariant

    design = build_design(DesignVariant.CRITICAL_RANGE)
    lut = ArtifactStore(STORE_DIR).get_lut(design)
    metrics = run_stream_benchmark(design, lut)
    print(report(metrics))
    ok = (metrics["identical"] and metrics["throughput_ratio"] >= 0.5
          and metrics["rss_ratio"] <= 1.10)
    sys.exit(0 if ok else 1)
