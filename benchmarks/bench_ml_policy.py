"""Bench — learned clock policy (ML-DFS) vs the paper's fixed policies.

Trains the decision-tree predictor on the quick grid's genie ground
truth (see :mod:`repro.ml.train`), deploys it through the policy
registry, and compares it against the characterised instruction LUT,
the genie bound and static clocking across the full benchmark suite —
with the violation count proving the calibration's safety contract and
the ``p95`` percentile aggregation showing the tail of the speedup
distribution.

Runs standalone (``python benchmarks/bench_ml_policy.py``) and under
pytest (``pytest benchmarks/bench_ml_policy.py``).  The training sweep
and all traces ride the shared bench store, so a warm store trains in
well under a second.
"""

import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from conftest import publish  # noqa: E402

from repro.lab.scenario import ScenarioGrid  # noqa: E402
from repro.ml.train import TrainerConfig, train_policy  # noqa: E402
from repro.utils.tables import format_table  # noqa: E402

TRAINING_GRID = ScenarioGrid(
    name="bench-ml-train",
    policies=("instruction",),
    margins=(0.0,),
    voltages=(0.70,),
    workloads=("fib", "crc16", "matmult"),
    check_safety=True,
)


def run_ml_comparison(session):
    """Train + deploy + compare; returns the summary rows and timings."""
    start = time.perf_counter()
    outcome = train_policy(
        TRAINING_GRID, TrainerConfig(seed=0), store=session.store
    )
    train_seconds = time.perf_counter() - start

    model_path = pathlib.Path(tempfile.mkdtemp()) / "model.npz"
    outcome.model.save(model_path)
    spec = f"learned:{model_path}"

    start = time.perf_counter()
    frame = session.evaluate(
        None,
        policies=[spec, "instruction", "genie", "static"],
        check_safety=True,
    )
    evaluate_seconds = time.perf_counter() - start
    summary = frame.group_by("policy", {
        "mhz": ("effective_frequency_mhz", "mean"),
        "speedup": ("speedup_percent", "mean"),
        "speedup_p95": ("speedup_percent", "p95"),
        "violations": ("num_violations", "sum"),
    })
    rows = {
        row["policy"].split(":")[0]: row for row in summary.iter_rows()
    }
    return {
        "rows": rows,
        "train_seconds": train_seconds,
        "evaluate_seconds": evaluate_seconds,
        "num_leaves": outcome.model.num_leaves,
        "train_rows": outcome.report["train_rows"],
    }


def report(metrics):
    rows = metrics["rows"]
    table = format_table(
        ["Policy", "Avg. [MHz]", "Avg. speedup", "p95 speedup",
         "Violations"],
        [
            (name, f"{row['mhz']:.0f}", f"{row['speedup']:+.1f}%",
             f"{row['speedup_p95']:+.1f}%", f"{int(row['violations'])}")
            for name, row in rows.items()
        ],
        title=(
            f"Learned policy ({metrics['num_leaves']} leaves, "
            f"{metrics['train_rows']} training cycles; trained in "
            f"{metrics['train_seconds']:.2f} s) vs fixed policies"
        ),
    )
    publish("ml_policy", table)
    return table


def check(metrics):
    rows = metrics["rows"]
    # calibration contract: zero violations across the full suite
    assert rows["learned"]["violations"] == 0, rows["learned"]
    # and a real gain over conventional clocking
    assert rows["learned"]["mhz"] > rows["static"]["mhz"], rows
    # the genie stays the upper bound on any predictive policy
    assert rows["learned"]["mhz"] <= rows["genie"]["mhz"] + 1e-9, rows


def test_ml_policy(session):
    metrics = run_ml_comparison(session)
    report(metrics)
    check(metrics)


if __name__ == "__main__":
    from conftest import STORE_DIR

    from repro.api import Session
    from repro.lab.store import ArtifactStore

    session = Session(store=ArtifactStore(STORE_DIR))
    metrics = run_ml_comparison(session)
    report(metrics)
    check(metrics)
    sys.exit(0)
