"""Perf smoke benchmark — scalar loop vs. compiled-trace batch engine.

Times the full-suite sweep (every Fig. 8 kernel × 4 policies × 3 margins)
through a ``Session(engine="scalar")`` (the original per-record path) and
a ``Session(engine="vector")`` (the compiled-trace batch engine),
verifies the results are bit-identical, and writes both timings to
``BENCH_evaluate.json`` at the repository root so the performance
trajectory is tracked PR over PR.

Runs standalone (``python benchmarks/bench_perf_evaluate.py``) and under
pytest (``pytest benchmarks/bench_perf_evaluate.py``).
"""

import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from conftest import publish  # noqa: E402

from repro.api import Session  # noqa: E402
from repro.core import DcaConfig, DynamicClockAdjustment  # noqa: E402
from repro.dta.compiled import (  # noqa: E402
    clear_compiled_cache,
    set_trace_store,
)
from repro.flow.characterize import CharacterizationResult  # noqa: E402
from repro.flow.evaluate import SweepConfig  # noqa: E402
from repro.obs.host import host_metadata  # noqa: E402
from repro.utils.tables import format_table  # noqa: E402
from repro.workloads.suite import benchmark_suite  # noqa: E402

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_evaluate.json"

MARGINS = (0.0, 5.0, 10.0)


POLICY_NAMES = ("instruction", "ex-only", "two-class", "genie")


def _sweep_configs(design, lut):
    """One config per policy × margin, via the canonical policy registry
    (``DynamicClockAdjustment.make_policy``) rather than a local copy."""
    dca = DynamicClockAdjustment(
        config=DcaConfig(variant=design.variant),
        characterization=CharacterizationResult(design=design, lut=lut),
    )
    return [
        SweepConfig(
            policy=(lambda name=name: dca.make_policy(name)),
            margin_percent=margin, check_safety=False,
            label=f"{name}/margin={margin:g}%",
        )
        for name in POLICY_NAMES
        for margin in MARGINS
    ]


def run_perf_comparison(design, lut):
    """Time the same full sweep both ways; returns the metrics dict.

    The artifact store is detached for the measurement: this bench times
    the engine itself (simulation + compilation + array evaluation), not
    store loads — warm-store timings are `bench_perf_sweep.py`'s job.
    """
    programs = benchmark_suite()
    configs = _sweep_configs(design, lut)
    vector = Session.for_design(design, lut=lut)
    scalar = Session.for_design(design, lut=lut, engine="scalar")

    previous_store = set_trace_store(None)
    clear_compiled_cache()   # charge compilation to the batch timing
    start = time.perf_counter()
    batch_grid = vector.evaluate_results(programs, configs)
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    scalar_grid = scalar.evaluate_results(programs, configs)
    scalar_seconds = time.perf_counter() - start
    set_trace_store(previous_store)

    mismatches = 0
    for scalar_row, batch_row in zip(scalar_grid, batch_grid):
        for scalar, batch in zip(scalar_row, batch_row):
            if (
                scalar.total_time_ps != batch.total_time_ps
                or scalar.min_period_ps != batch.min_period_ps
                or scalar.max_period_ps != batch.max_period_ps
                or scalar.switch_rate != batch.switch_rate
            ):
                mismatches += 1

    return {
        "programs": len(programs),
        "configs": len(configs),
        "evaluations": len(programs) * len(configs),
        "total_cycles": sum(r.num_cycles for r in batch_grid[0]),
        "scalar_seconds": round(scalar_seconds, 3),
        "batch_seconds": round(batch_seconds, 3),
        "speedup": round(scalar_seconds / batch_seconds, 2),
        "mismatches": mismatches,
        "host": host_metadata(),
    }


def report(metrics):
    table = format_table(
        ["Engine", "Wall time", "Evaluations"],
        [
            ("scalar per-record loop", f"{metrics['scalar_seconds']:.2f} s",
             metrics["evaluations"]),
            ("compiled-trace batch", f"{metrics['batch_seconds']:.2f} s",
             metrics["evaluations"]),
            ("speedup", f"{metrics['speedup']:.1f}x", "-"),
        ],
        title="Perf — full-suite sweep, scalar vs. batch engine",
    )
    BENCH_JSON.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    publish("perf_evaluate", table + f"\n  wrote {BENCH_JSON.name}")
    return table


def test_perf_evaluate(design, lut):
    metrics = run_perf_comparison(design, lut)
    report(metrics)
    assert metrics["mismatches"] == 0
    # the tentpole acceptance bar: >= 10x on the full-suite sweep
    assert metrics["speedup"] >= 10.0, metrics


if __name__ == "__main__":
    session = Session()
    metrics = run_perf_comparison(session.design, session.lut)
    report(metrics)
    sys.exit(0 if metrics["mismatches"] == 0 else 1)
