"""Sec. IV-B — voltage-frequency scaling at iso-throughput.

Regenerates the power numbers: the ~70 mV supply reduction enabled by the
dynamic-clocking speedup, the 13.7 -> 11.0 µW/MHz improvement and the 24 %
energy-efficiency gain.
"""

from conftest import publish

from repro.flow.evaluate import average_frequency_mhz
from repro.flow.experiment import ExperimentReport
from repro.paperdata import (
    CONVENTIONAL_UW_PER_MHZ,
    DYNAMIC_FREQUENCY_MHZ,
    DYNAMIC_SCALED_UW_PER_MHZ,
    ENERGY_EFFICIENCY_GAIN_PERCENT,
    STATIC_FREQUENCY_MHZ,
    VOLTAGE_REDUCTION_V,
)
from repro.power.vfs import scale_voltage_iso_throughput
from repro.utils.tables import format_table


def test_power_voltage_scaling(benchmark, suite_results):
    measured_frequency = average_frequency_mhz(suite_results)
    result = benchmark(
        scale_voltage_iso_throughput,
        measured_frequency, STATIC_FREQUENCY_MHZ,
    )
    paper_input = scale_voltage_iso_throughput(
        DYNAMIC_FREQUENCY_MHZ, STATIC_FREQUENCY_MHZ
    )

    report = ExperimentReport(
        "Sec. IV-B", "Voltage scaling at iso-throughput"
    )
    report.add("voltage reduction", VOLTAGE_REDUCTION_V * 1000.0,
               result.voltage_reduction_v * 1000.0, unit=" mV")
    report.add("baseline efficiency", CONVENTIONAL_UW_PER_MHZ,
               result.baseline_uw_per_mhz, unit=" uW/MHz")
    report.add("scaled efficiency", DYNAMIC_SCALED_UW_PER_MHZ,
               result.scaled_uw_per_mhz, unit=" uW/MHz")
    report.add("efficiency gain", ENERGY_EFFICIENCY_GAIN_PERCENT,
               result.efficiency_gain_percent, unit=" %")
    report.note(f"driven by our measured suite average "
                f"{measured_frequency:.0f} MHz")
    report.note(
        "with the paper's own 680 MHz input: "
        + paper_input.summary()
    )

    table = format_table(
        ["Input", "V_dd [V]", "dV [mV]", "uW/MHz", "Gain [%]"],
        [
            ("measured avg", f"{result.scaled_voltage:.3f}",
             f"{1000 * result.voltage_reduction_v:.0f}",
             f"{result.scaled_uw_per_mhz:.2f}",
             f"{result.efficiency_gain_percent:.1f}"),
            ("paper 680 MHz", f"{paper_input.scaled_voltage:.3f}",
             f"{1000 * paper_input.voltage_reduction_v:.0f}",
             f"{paper_input.scaled_uw_per_mhz:.2f}",
             f"{paper_input.efficiency_gain_percent:.1f}"),
        ],
        title="Sec. IV-B — iso-throughput voltage scaling",
    )
    publish("power_voltage_scaling", report.render() + "\n\n" + table)

    assert abs(
        paper_input.scaled_uw_per_mhz - DYNAMIC_SCALED_UW_PER_MHZ
    ) < 0.4
    assert abs(
        paper_input.voltage_reduction_v - VOLTAGE_REDUCTION_V
    ) < 0.012
    assert result.voltage_reduction_v >= paper_input.voltage_reduction_v
