"""Perf bench — observability overhead: disabled guard and enabled cost.

The ``repro.obs`` contract is that tracing is *free when off*: every
span site goes through one module-global check and a shared no-op
context manager, so a telemetry-disabled sweep must be indistinguishable
from a build without the instrumentation.  This bench pins that:

- **disabled guard**: the per-call cost of a disabled span site,
  measured directly, extrapolated over the span sites an enabled sweep
  actually hits — gated at <2% of the sweep's wall time;
- **enabled cost**: the same warm-store sweep with ``telemetry=True``,
  reported (not gated — enabled tracing is allowed to cost something);
- **purity**: both runs must produce bit-identical result rows.

Writes ``BENCH_obs.json`` at the repository root (CI artifact, tracked
PR over PR).

Runs standalone (``python benchmarks/bench_obs_overhead.py``) and under
pytest (``pytest benchmarks/bench_obs_overhead.py``).
"""

import json
import pathlib
import shutil
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from conftest import publish  # noqa: E402

from repro.api import Session  # noqa: E402
from repro.dta.compiled import clear_compiled_cache  # noqa: E402
from repro.lab import ArtifactStore, ScenarioGrid  # noqa: E402
from repro.obs import trace as obs_trace  # noqa: E402
from repro.obs.host import host_metadata  # noqa: E402
from repro.utils.tables import format_table  # noqa: E402

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_obs.json"

#: The gate: with tracing disabled, the span guards hit during a sweep
#: may cost at most this fraction of the sweep's wall time.
DISABLED_OVERHEAD_BUDGET_PERCENT = 2.0

#: Calls used to measure the disabled span guard (module lookup + no-op
#: context manager enter/exit).
GUARD_CALLS = 200_000

#: Warm-sweep trials per mode; the min filters scheduler noise.
TRIALS = 3

GRID = ScenarioGrid(
    name="bench-obs-overhead",
    policies=("instruction", "two-class", "genie"),
    margins=(0.0, 5.0, 10.0),
    check_safety=True,
)                           # workloads=() -> the full Fig. 8 suite


def _disabled_guard_ns():
    """Per-call cost of a span site when no tracer is installed."""
    previous = obs_trace.set_tracer(None)
    try:
        span = obs_trace.span
        start = time.perf_counter()
        for _ in range(GUARD_CALLS):
            with span("bench.noop"):
                pass
        seconds = time.perf_counter() - start
    finally:
        obs_trace.set_tracer(previous)
    return seconds / GUARD_CALLS * 1e9


def _timed_sweep(store_root, telemetry):
    """One warm-store sweep; returns (outcome, seconds, span_count)."""
    clear_compiled_cache()
    session = Session(store=ArtifactStore(store_root), telemetry=telemetry)
    start = time.perf_counter()
    outcome = session.sweep(GRID)
    seconds = time.perf_counter() - start
    spans = len(session.telemetry.snapshot()) if telemetry else 0
    return outcome, seconds, spans


def run_overhead_comparison(store_root=None):
    """Measure guard cost + warm sweep both ways; returns metrics."""
    owns_root = store_root is None
    if owns_root:
        store_root = tempfile.mkdtemp(prefix="repro-bench-obs-")
    try:
        # one cold run populates the store; everything timed is warm
        _timed_sweep(store_root, telemetry=False)

        disabled_seconds = enabled_seconds = float("inf")
        disabled_rows = enabled_rows = None
        span_count = 0
        for _ in range(TRIALS):
            outcome, seconds, _ = _timed_sweep(store_root, telemetry=False)
            disabled_seconds = min(disabled_seconds, seconds)
            disabled_rows = outcome.rows
            outcome, seconds, spans = _timed_sweep(store_root,
                                                   telemetry=True)
            enabled_seconds = min(enabled_seconds, seconds)
            enabled_rows = outcome.rows
            span_count = spans

        guard_ns = _disabled_guard_ns()
        # every recorded span is one guard hit the disabled run also
        # pays (the spans *not* recorded when disabled are the same
        # sites, so the enabled span count is the guard-hit count)
        guard_seconds = span_count * guard_ns / 1e9
        disabled_overhead_percent = round(
            guard_seconds / disabled_seconds * 100, 3
        )

        mismatches = sum(
            1 for row, expected in zip(enabled_rows, disabled_rows)
            if row != expected
        )
        return {
            "evaluations": GRID.num_evaluations,
            "warm_disabled_seconds": round(disabled_seconds, 4),
            "warm_enabled_seconds": round(enabled_seconds, 4),
            "enabled_overhead_percent": round(
                (enabled_seconds - disabled_seconds)
                / disabled_seconds * 100, 1
            ),
            "spans_per_sweep": span_count,
            "disabled_guard_ns_per_call": round(guard_ns, 1),
            "disabled_overhead_percent": disabled_overhead_percent,
            "disabled_overhead_budget_percent":
                DISABLED_OVERHEAD_BUDGET_PERCENT,
            "mismatches": mismatches,
            "host": host_metadata(engine="vector"),
        }
    finally:
        if owns_root:
            shutil.rmtree(store_root, ignore_errors=True)


def report(metrics):
    table = format_table(
        ["Measurement", "Value", "Notes"],
        [
            ("warm sweep, telemetry off",
             f"{metrics['warm_disabled_seconds']:.3f} s",
             f"{metrics['evaluations']} evaluations"),
            ("warm sweep, telemetry on",
             f"{metrics['warm_enabled_seconds']:.3f} s",
             f"{metrics['spans_per_sweep']} spans, "
             f"{metrics['enabled_overhead_percent']:+.1f}%"),
            ("disabled span guard",
             f"{metrics['disabled_guard_ns_per_call']:.0f} ns/call",
             f"{metrics['disabled_overhead_percent']:.3f}% of sweep "
             f"(budget {metrics['disabled_overhead_budget_percent']:.0f}%)"),
        ],
        title="Perf — observability overhead",
    )
    BENCH_JSON.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    publish("obs_overhead", table + f"\n  wrote {BENCH_JSON.name}")
    return table


def test_obs_overhead():
    metrics = run_overhead_comparison()
    report(metrics)
    # telemetry is pure observation: identical rows either way
    assert metrics["mismatches"] == 0, metrics
    # the tentpole bar: tracing-disabled overhead under 2%
    assert (metrics["disabled_overhead_percent"]
            < metrics["disabled_overhead_budget_percent"]), metrics


if __name__ == "__main__":
    metrics = run_overhead_comparison()
    report(metrics)
    failed = (
        metrics["mismatches"]
        or metrics["disabled_overhead_percent"]
        >= metrics["disabled_overhead_budget_percent"]
    )
    sys.exit(1 if failed else 0)
