"""Ablation A2 — clock-generator quantisation.

The paper assumes a cycle-by-cycle tunable clock generator ([9]-[11]) but
leaves its design out of scope.  This ablation measures how much of the
fine-grained gain survives realistic generators: ring oscillators with
different tap spacings and a small multi-PLL mux.
"""

from conftest import publish

from repro.clocking.generator import (
    IdealClockGenerator,
    MultiPLLClockGenerator,
    TunableRingOscillator,
)
from repro.clocking.policies import InstructionLutPolicy
from repro.flow.evaluate import (
    SweepConfig,
    average_speedup_percent,
)
from repro.utils.tables import format_table
from repro.workloads.suite import benchmark_suite

GENERATORS = [
    ("ideal (paper)", lambda: IdealClockGenerator()),
    ("ring 25 ps taps", lambda: TunableRingOscillator(step_ps=25.0)),
    ("ring 50 ps taps", lambda: TunableRingOscillator(step_ps=50.0)),
    ("ring 100 ps taps", lambda: TunableRingOscillator(step_ps=100.0)),
    ("5-PLL mux", lambda: MultiPLLClockGenerator()),
]


def _run_all(session):
    lut = session.lut
    configs = [
        SweepConfig(
            policy=lambda: InstructionLutPolicy(lut),
            generator=factory, check_safety=False, label=name,
        )
        for name, factory in GENERATORS
    ]
    rows = session.evaluate_results(benchmark_suite(), configs)
    return {name: row for (name, _), row in zip(GENERATORS, rows)}


def test_ablation_quantization(benchmark, session, store):
    results = benchmark(_run_all, session)

    speedups = {
        name: average_speedup_percent(results[name]) for name, _ in GENERATORS
    }
    switch_rates = {
        name: sum(r.switch_rate for r in results[name]) / len(results[name])
        for name, _ in GENERATORS
    }
    rows = [
        (name, f"{speedups[name]:+.1f} %", f"{switch_rates[name]:.2f}")
        for name, _ in GENERATORS
    ]
    table = format_table(
        ["Clock generator", "Avg. speedup", "Switch rate"], rows,
        title="A2 — generator quantisation vs. achievable speedup",
    )
    publish("ablation_quantization", table)

    ordered = [speedups[name] for name, _ in GENERATORS[:4]]
    assert ordered[0] >= ordered[1] >= ordered[2] >= ordered[3]
    # even the coarse 5-PLL mux keeps a solid fraction of the gain
    assert speedups["5-PLL mux"] > 0.5 * speedups["ideal (paper)"]
    # safety is never traded: every generator rounds periods up
    for name, _ in GENERATORS:
        for result in results[name]:
            assert result.min_period_ps >= 0
