"""Table II — dynamic instruction delay worst cases.

Regenerates the per-instruction worst-case dynamic delays and their
limiting pipeline stage from the characterisation flow (gate-level
simulation -> DTA -> extraction), exactly the paper's methodology.
"""

from conftest import publish

from repro.dta.extraction import extract_lut
from repro.flow.experiment import ExperimentReport
from repro.paperdata import TABLE2_INSTRUCTION_DELAYS
from repro.utils.tables import format_table


def _extract(characterization, design):
    run = characterization.runs[-1]
    return extract_lut(
        run.dta, run.trace, design.static_period_ps, min_occurrences=1
    )


def test_table2_instruction_delays(benchmark, characterization, design, lut):
    benchmark(_extract, characterization, design)   # extraction cost

    report = ExperimentReport(
        "Table II", "Dynamic instruction delay worst cases [ps]"
    )
    rows = []
    for cls, (paper_delay, paper_stage) in sorted(
        TABLE2_INSTRUCTION_DELAYS.items()
    ):
        measured_delay = lut.class_max(cls)
        measured_stage = lut.limiting_stage(cls).name
        report.add(f"{cls} max delay", paper_delay, measured_delay,
                   unit=" ps")
        rows.append((
            cls, f"{measured_delay:.0f}", measured_stage,
            f"{paper_delay:.0f}", paper_stage,
            "OK" if measured_stage == paper_stage else "MISMATCH",
        ))
    table = format_table(
        ["Instruction", "Measured [ps]", "Stage", "Paper [ps]",
         "Paper stage", "Stage match"],
        rows,
        title="Table II — dynamic instruction delay worst cases",
    )
    publish(
        "table2_instruction_delays",
        report.render() + "\n\n" + table + "\n\nFull LUT:\n"
        + lut.render(),
    )

    assert report.max_abs_deviation_percent() < 2.0
    for row in rows:
        assert row[5] == "OK", row
