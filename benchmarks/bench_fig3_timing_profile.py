"""Fig. 3 — timing profile: conventional wall vs. critical-range design.

Regenerates the path-delay histograms of the two implementation variants
and the wall metrics that motivate the paper's implementation step.
"""

from conftest import publish

from repro.timing.sta import run_sta
from repro.timing.wall import compare_walls


def test_fig3_timing_profile(benchmark, design, conventional_design):
    conventional, optimized = benchmark(
        compare_walls, conventional_design.netlist, design.netlist
    )

    lines = ["Fig. 3 — timing profile (path-count histograms)", ""]
    for label, netlist in (
        ("conventional", conventional_design.netlist),
        ("critical-range", design.netlist),
    ):
        histogram = netlist.delay_histogram(num_bins=21, high=2100.0)
        lines.append(f"--- {label} implementation "
                     f"(STA {run_sta(netlist).critical_delay_ps:.0f} ps)")
        lines.append(histogram.render(width=40))
        lines.append("")
    lines.append(conventional.summary())
    lines.append(optimized.summary())
    lines.append("")
    lines.append(
        "paper: conventional flows produce a 'timing wall' of near-critical"
    )
    lines.append(
        "paths; critical-range optimisation keeps sub-critical paths short."
    )
    publish("fig3_timing_profile", "\n".join(lines))

    # the figure's qualitative claims
    assert (
        conventional.near_critical_fraction
        > 5 * optimized.near_critical_fraction
    )
    assert optimized.median_delay_ps < conventional.median_delay_ps
