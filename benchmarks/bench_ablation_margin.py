"""Ablation A4 — guard-band re-insertion.

The paper's scheme runs with zero margin on the characterised delays
(footnote 2: operand and environmental worst cases are folded into the
characterisation).  This ablation sweeps an explicit safety margin on top
of the LUT prediction — the knob a deployment would use against
uncharacterised variation (the paper's conclusion suggests online LUT
updates instead).
"""

from conftest import publish

from repro.clocking.policies import InstructionLutPolicy
from repro.flow.evaluate import (
    SweepConfig,
    average_speedup_percent,
)
from repro.utils.tables import format_table
from repro.workloads.suite import benchmark_suite

MARGINS = (0.0, 2.0, 5.0, 10.0, 15.0, 20.0)


def _sweep(session):
    """One batch call: traces are compiled once, margins are re-scalings."""
    lut = session.lut
    configs = [
        SweepConfig(
            policy=lambda: InstructionLutPolicy(lut),
            margin_percent=margin, check_safety=False,
            label=f"margin={margin:g}%",
        )
        for margin in MARGINS
    ]
    rows = session.evaluate_results(benchmark_suite(), configs)
    return dict(zip(MARGINS, rows))


def test_ablation_margin(benchmark, session, store):
    results = benchmark(_sweep, session)

    speedups = {
        margin: average_speedup_percent(results[margin])
        for margin in MARGINS
    }
    rows = [
        (f"{margin:.0f} %", f"{speedups[margin]:+.1f} %")
        for margin in MARGINS
    ]
    table = format_table(
        ["Safety margin", "Avg. speedup"], rows,
        title="A4 — guard-band re-insertion vs. remaining speedup",
    )
    publish("ablation_margin", table)

    ordered = [speedups[margin] for margin in MARGINS]
    assert ordered == sorted(ordered, reverse=True)
    assert speedups[0.0] > 35.0
    # even a 10 % guard band retains a useful gain
    assert speedups[10.0] > 20.0
