"""Fig. 6 — which pipeline stage limits each cycle.

Regenerates the pie-chart shares: the execute stage holds the limiting
endpoint in ~93 % of cycles, the address stage (instruction-memory
endpoints) in ~7 %, every other stage below 1 %.
"""

import numpy as np
from conftest import publish

from repro.flow.experiment import ExperimentReport
from repro.paperdata import STAGE_LIMITING_SHARES
from repro.sim.trace import Stage
from repro.utils.tables import format_table


def _shares(characterization):
    hand_runs = [
        run for run in characterization.runs
        if not run.program_name.startswith("chargen")
    ]
    limiting = np.concatenate(
        [run.dta.limiting_stage for run in hand_runs]
    )
    return {
        stage: float((limiting == stage.value).sum()) / len(limiting)
        for stage in Stage
    }


def test_fig6_stage_limiting(benchmark, characterization):
    shares = benchmark(_shares, characterization)

    report = ExperimentReport("Fig. 6", "Limiting-stage shares")
    rows = []
    for stage in Stage:
        paper = STAGE_LIMITING_SHARES[stage.name] * 100.0
        measured = shares[stage] * 100.0
        rows.append((stage.name, f"{measured:.1f} %", f"{paper:.1f} %"))
        if paper > 0:
            report.add(f"{stage.name} share", paper, measured, unit=" %")
    table = format_table(
        ["Stage", "Measured", "Paper"], rows,
        title="Fig. 6 — fraction of cycles limited by each stage",
    )
    publish("fig6_stage_limiting", report.render() + "\n\n" + table)

    dominant = max(shares, key=lambda stage: shares[stage])
    assert dominant == Stage.EX
    assert shares[Stage.EX] > 0.80
    assert 0.02 < shares[Stage.ADR] < 0.20
    for stage in (Stage.FE, Stage.DC, Stage.WB):
        assert shares[stage] < 0.01
