"""Perf bench — sweep orchestration: cold vs. warm store vs. parallel.

Runs the full 18-kernel grid through :class:`repro.lab.SweepRunner` four
ways and writes the timings to ``BENCH_sweep.json`` at the repository
root (CI artifact, tracked PR over PR):

- **cold**: empty artifact store — pays characterisation + every
  pipeline simulation;
- **warm**: same store again — must re-simulate *nothing* (the store hit
  counters and the engine's simulation counter prove it);
- **serial-sim / parallel-sim**: traces evicted, LUT warm — the same
  simulation-bound workload serially and with ``--jobs 2``, which is the
  parallel-speedup measurement.

Every run's merged rows must be bit-identical to the serial in-process
``evaluate_batch`` reference (independently characterised, no store).

Runs standalone (``python benchmarks/bench_perf_sweep.py``) and under
pytest (``pytest benchmarks/bench_perf_sweep.py``).
"""

import gc
import json
import os
import pathlib
import shutil
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from conftest import publish  # noqa: E402

from repro.api import Session  # noqa: E402
from repro.dta.compiled import (  # noqa: E402
    clear_compiled_cache,
    reset_simulation_count,
    set_trace_store,
)
from repro.lab import ArtifactStore, ScenarioGrid  # noqa: E402
from repro.obs.host import host_metadata  # noqa: E402
from repro.sim import lockstep, predecode  # noqa: E402
from repro.utils.tables import format_table  # noqa: E402

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_sweep.json"

#: PR 2's shipped cold-sweep wall time (scalar pipeline simulator +
#: record-path characterisation, single process) — the baseline the
#: vectorized two-phase engine and array characterisation are measured
#: against, tracked PR over PR in ``BENCH_sweep.json``.
PR2_BASELINE_COLD_SECONDS = 5.235

#: PR 6 budget: the cold full-suite sweep (empty store, in-process) must
#: finish under this on CI hardware.  Asserted where a second core
#: exists (single-core runners time everything noisily).
COLD_SWEEP_BUDGET_SECONDS = 0.2

#: Lane count of the lockstep ISS micro-benchmark.
LOCKSTEP_BATCH_LANES = 1000

GRID = ScenarioGrid(
    name="bench-perf-sweep",
    policies=("instruction", "two-class", "genie"),
    margins=(0.0, 5.0, 10.0),
    check_safety=True,      # exercise the delay matrices end to end
)                           # workloads=() -> the full Fig. 8 suite


def _reference_rows(grid):
    """Serial in-process Session rows: no store, no runner — the
    semantics every orchestrated run must reproduce bit-identically."""
    previous = set_trace_store(None)
    try:
        point = grid.design_points()[0]
        session = Session.for_design(
            point.build(), max_cycles=grid.max_cycles
        )
        frame = session.evaluate(
            grid.programs(), configs=grid.config_specs()
        )
        return frame.to_rows()
    finally:
        set_trace_store(previous)


def _timed_run(store_root, jobs):
    """One orchestrated run from a cold in-memory state."""
    clear_compiled_cache()
    reset_simulation_count()
    session = Session(store=ArtifactStore(store_root), jobs=jobs)
    start = time.perf_counter()
    outcome = session.sweep(GRID)
    seconds = time.perf_counter() - start
    return outcome, seconds


def _evict_traces(store_root):
    shutil.rmtree(pathlib.Path(store_root) / "traces", ignore_errors=True)


def _available_cores():
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:                           # pragma: no cover
        return os.cpu_count() or 1


def _lockstep_benchmark():
    """Per-program ISS cost: scalar object layer vs. the lockstep batch.

    Both sides get pre-built decode images (decode cost is shared and
    reported separately); the lockstep side starts from cold image
    caches so no lane is served from a memoised ISS result.
    """
    from repro.sim.iss import FunctionalSimulator
    from repro.workloads.randomgen import generate_characterization_program

    programs = [
        generate_characterization_program(seed=seed, length=40, repeats=1)
        for seed in range(1, LOCKSTEP_BATCH_LANES + 1)
    ]

    # best-of-2 full-size trials per engine: the first pass doubles as
    # the warm-up (imports, allocator arenas for the batch-sized arrays)
    # and the min filters single-core scheduler noise.  GC is paused
    # around the timed regions — with the sweep runs' objects alive, a
    # collection mid-batch costs more than the batch itself.
    scalar_seconds = float("inf")
    lockstep_seconds = float("inf")
    batch = []
    for _ in range(2):
        predecode.clear_images()
        for program in programs:
            predecode.image_for(program)
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            for program in programs:
                FunctionalSimulator(program).run()
            scalar_seconds = min(
                scalar_seconds, time.perf_counter() - start
            )
        finally:
            gc.enable()

        predecode.clear_images()
        for program in programs:
            predecode.image_for(program)
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            batch = lockstep.collect_batch(programs)
            lockstep_seconds = min(
                lockstep_seconds, time.perf_counter() - start
            )
        finally:
            gc.enable()
    deferred = sum(1 for data in batch if data is None)
    predecode.clear_images()

    lanes = len(programs)
    return {
        "lockstep_batch_lanes": lanes,
        "lockstep_deferred_lanes": deferred,
        "scalar_iss_programs_per_second": round(lanes / scalar_seconds, 1),
        "lockstep_programs_per_second": round(lanes / lockstep_seconds, 1),
        "lockstep_speedup_vs_scalar_iss": round(
            scalar_seconds / lockstep_seconds, 2
        ),
    }


def run_sweep_comparison(store_root=None):
    """Time cold/warm/serial-sim/parallel runs; returns the metrics dict."""
    owns_root = store_root is None
    if owns_root:
        store_root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        # the reference run is where the suite's decode + ISS work
        # happens (later runs reuse the process-level image cache, by
        # design — "cold" means cold *store*), so meter it there
        predecode.clear_images()
        predecode.reset_stats()
        reference = _reference_rows(GRID)
        decode_stats = predecode.stats()

        cold, cold_seconds = _timed_run(store_root, jobs=1)
        warm, warm_seconds = _timed_run(store_root, jobs=1)

        _evict_traces(store_root)
        serial, serial_seconds = _timed_run(store_root, jobs=1)
        _evict_traces(store_root)
        parallel, parallel_seconds = _timed_run(store_root, jobs=2)

        mismatches = sum(
            1
            for run in (cold, warm, serial, parallel)
            for row, expected in zip(run.rows, reference)
            if row != expected
        )

        warm_stats = warm.store_stats
        return {
            **_lockstep_benchmark(),
            "decode_seconds": round(decode_stats["decode_seconds"], 4),
            "iss_seconds": round(decode_stats["iss_seconds"], 4),
            "parallel_fallback": parallel.parallel_fallback,
            "parallel_jobs_effective": parallel.jobs_effective,
            "programs": len(GRID.workload_specs()),
            "configs": len(GRID.config_specs()),
            "evaluations": GRID.num_evaluations,
            "jobs": 2,
            "cores": _available_cores(),
            "baseline_pr2_cold_seconds": PR2_BASELINE_COLD_SECONDS,
            "cold_speedup_vs_pr2": round(
                PR2_BASELINE_COLD_SECONDS / cold_seconds, 2
            ),
            "cold_seconds": round(cold_seconds, 3),
            "warm_seconds": round(warm_seconds, 3),
            "serial_sim_seconds": round(serial_seconds, 3),
            "parallel_sim_seconds": round(parallel_seconds, 3),
            "warm_speedup_vs_cold": round(cold_seconds / warm_seconds, 2),
            "parallel_speedup": round(serial_seconds / parallel_seconds, 2),
            "warm_simulations": warm.simulations,
            "warm_trace_hits": warm_stats.get("trace", "hits"),
            "warm_trace_misses": warm_stats.get("trace", "misses"),
            "warm_lut_misses": warm_stats.get("lut", "misses"),
            "mismatches": mismatches,
            "host": host_metadata(engine="vector"),
        }
    finally:
        if owns_root:
            shutil.rmtree(store_root, ignore_errors=True)


def report(metrics):
    table = format_table(
        ["Run", "Wall time", "Notes"],
        [
            ("cold store, jobs=1", f"{metrics['cold_seconds']:.2f} s",
             f"characterise + simulate everything "
             f"({metrics['cold_speedup_vs_pr2']:.1f}x vs PR 2's "
             f"{metrics['baseline_pr2_cold_seconds']:.2f} s)"),
            ("warm store, jobs=1", f"{metrics['warm_seconds']:.2f} s",
             f"{metrics['warm_simulations']} simulations, "
             f"{metrics['warm_trace_misses']} trace misses"),
            ("traces evicted, jobs=1",
             f"{metrics['serial_sim_seconds']:.2f} s", "serial baseline"),
            ("traces evicted, jobs=2",
             f"{metrics['parallel_sim_seconds']:.2f} s",
             ("in-process fallback (small run)"
              if metrics["parallel_fallback"]
              else f"{metrics['parallel_speedup']:.2f}x vs. serial")),
            ("lockstep ISS batch",
             f"{metrics['lockstep_batch_lanes']} lanes",
             f"{metrics['lockstep_programs_per_second']:.0f} prog/s "
             f"({metrics['lockstep_speedup_vs_scalar_iss']:.2f}x vs. "
             f"scalar ISS)"),
        ],
        title=(
            f"Perf — sweep orchestration, {metrics['programs']} programs "
            f"x {metrics['configs']} configs"
        ),
    )
    BENCH_JSON.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    publish("perf_sweep", table + f"\n  wrote {BENCH_JSON.name}")
    return table


def _parallel_ok(metrics):
    """jobs=2 must either win outright or take the recorded in-process
    fallback — a slower process pool is exactly the PR-2 regression."""
    return (
        metrics["parallel_fallback"]
        or metrics["parallel_speedup"] >= 1.0
    )


def test_perf_sweep():
    metrics = run_sweep_comparison()
    report(metrics)
    # every orchestrated run is bit-identical to in-process evaluate_batch
    assert metrics["mismatches"] == 0, metrics
    # the warm store serves everything: zero simulations, zero misses
    assert metrics["warm_simulations"] == 0, metrics
    assert metrics["warm_trace_misses"] == 0, metrics
    assert metrics["warm_lut_misses"] == 0, metrics
    assert _parallel_ok(metrics), metrics
    # batched ISS execution must beat the per-program object layer
    assert metrics["lockstep_speedup_vs_scalar_iss"] > 1.0, metrics
    # wall-clock budget, only meaningful on multi-core CI hardware
    if metrics["cores"] >= 2:
        assert (metrics["cold_seconds"]
                < COLD_SWEEP_BUDGET_SECONDS), metrics


if __name__ == "__main__":
    metrics = run_sweep_comparison()
    report(metrics)
    failed = (
        metrics["mismatches"]
        or metrics["warm_simulations"]
        or metrics["warm_trace_misses"]
        or not _parallel_ok(metrics)
        or metrics["lockstep_speedup_vs_scalar_iss"] <= 1.0
        or (metrics["cores"] >= 2
            and metrics["cold_seconds"] >= COLD_SWEEP_BUDGET_SECONDS)
    )
    sys.exit(1 if failed else 0)
