"""Table I — effect of critical-range optimisation on dynamic worst cases.

Regenerates the per-instruction max-delay factors (optimised /
conventional) by characterising *both* design variants and comparing the
extracted per-class worst cases, plus the 9 % STA-period penalty.
"""

from conftest import publish

from repro.flow.experiment import ExperimentReport
from repro.paperdata import (
    CRITICAL_RANGE_STATIC_PENALTY_PERCENT,
    TABLE1_CRITICAL_RANGE_FACTORS,
)
from repro.utils.tables import format_table


def _measure_factors(lut, conventional_characterization):
    conventional_lut = conventional_characterization.lut
    factors = {}
    for cls in TABLE1_CRITICAL_RANGE_FACTORS:
        if not (lut.is_characterized(cls)
                and conventional_lut.is_characterized(cls)):
            continue
        factors[cls] = lut.class_max(cls) / conventional_lut.class_max(cls)
    return factors


def test_table1_critical_range(benchmark, design, conventional_design,
                               lut, conventional_characterization):
    factors = benchmark(
        _measure_factors, lut, conventional_characterization
    )

    report = ExperimentReport(
        "Table I", "Critical-range optimisation: dynamic delay factors"
    )
    for cls, paper_factor in sorted(TABLE1_CRITICAL_RANGE_FACTORS.items()):
        if cls in factors:
            report.add(f"{cls} factor", paper_factor, factors[cls])
    static_penalty = (
        design.static_period_ps / conventional_design.static_period_ps - 1.0
    ) * 100.0
    report.add(
        "STA period increase", CRITICAL_RANGE_STATIC_PENALTY_PERCENT,
        static_penalty, unit=" %",
    )
    report.note(
        "factors measured from independently characterised variants "
        "(both LUTs extracted by the DTA flow, not read from the profile)"
    )

    rows = [
        (cls, f"{factors[cls]:.2f}",
         f"{TABLE1_CRITICAL_RANGE_FACTORS[cls]:.2f}")
        for cls in sorted(factors)
    ]
    table = format_table(
        ["Instruction", "Measured factor", "Paper factor"], rows,
        title="Table I — max. delay factor (critical-range / conventional)",
    )
    publish("table1_critical_range", report.render() + "\n\n" + table)

    assert report.max_abs_deviation_percent() < 10.0
