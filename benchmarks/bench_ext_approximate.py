"""Extension E1 — approximate computing by over-scaling (paper Sec. IV-A).

The paper notes that the multiplier's ~300 ps data-dependent spread "could
be further leveraged by approximate computing techniques ... allowing a
violation of the timing requirements of certain paths".  This bench sweeps
over-scaling factors below the safe LUT period and reports violation rates
and the error statistics of the affected results.
"""

from conftest import publish

from repro.utils.tables import format_table
from repro.workloads import get_kernel

FACTORS = (1.0, 0.97, 0.94, 0.91, 0.88, 0.85)


def test_ext_approximate_overscaling(benchmark, session, store):
    program = get_kernel("matmult").program()   # multiply-heavy workload
    reports = benchmark(
        session.overscaling_reports, program, list(FACTORS)
    )

    rows = []
    for report in reports:
        rows.append((
            f"x{report.overscale_factor:.2f}",
            f"{100 * report.violation_rate:.2f} %",
            len(report.approx_results),
            f"{report.mean_corrupted_bits:.1f}",
            f"{report.mean_relative_error:.3f}",
            f"{report.total_time_ps / 1e3:.1f}",
        ))
    table = format_table(
        ["Over-scaling", "Violating cycles", "Approx. results",
         "Mean corrupted bits", "Mean rel. error", "Run time [ns]"],
        rows,
        title="E1 — approximate over-scaling on matmult (beyond-safe clocking)",
    )
    note = (
        "\nat x1.00 the paper's scheme is error-free; shrinking the period\n"
        "first violates the deepest data-dependent paths (the multiplier),\n"
        "turning exact results into approximate ones — Sec. IV-A's outlook."
    )
    publish("ext_approximate", table + note)

    assert reports[0].violation_cycles == 0
    rates = [report.violation_rate for report in reports]
    assert rates == sorted(rates)
    assert rates[-1] > 0.0
    deep = reports[-1]
    assert any("l.mul" in cls for cls in deep.violations_by_class)
