"""Fig. 8 — per-benchmark effective clock frequency.

Regenerates the paper's headline figure: conventional clocking at the STA
limit (494 MHz) vs. instruction-based dynamic clock adjustment, per
benchmark and averaged (+38 % -> 680 MHz in the paper), plus the give-up
relative to the genie bound (Sec. IV-B).
"""

from conftest import publish

from repro.clocking.policies import GeniePolicy
from repro.flow.evaluate import (
    SweepConfig,
    average_frequency_mhz,
    average_speedup_percent,
)
from repro.flow.experiment import ExperimentReport
from repro.flow.reporting import render_suite_results
from repro.paperdata import (
    DYNAMIC_FREQUENCY_MHZ,
    DYNAMIC_SPEEDUP_PERCENT,
    GIVE_UP_PERCENT,
    STATIC_FREQUENCY_MHZ,
)
from repro.workloads.suite import benchmark_suite


def _genie_sweep(session):
    configs = [SweepConfig(
        policy=lambda: GeniePolicy(session.design.excitation),
        check_safety=False, label="genie",
    )]
    return session.evaluate_results(benchmark_suite(), configs)[0]


def test_fig8_benchmark_speedups(benchmark, session, design, suite_results,
                                 store):
    genie_results = benchmark(_genie_sweep, session)

    lut_speedup = average_speedup_percent(suite_results)
    lut_frequency = average_frequency_mhz(suite_results)
    genie_speedup = average_speedup_percent(genie_results)
    give_up = genie_speedup - lut_speedup

    report = ExperimentReport(
        "Fig. 8", "Effective clock frequency with dynamic clock adjustment"
    )
    report.add("conventional frequency", STATIC_FREQUENCY_MHZ,
               1e6 / design.static_period_ps, unit=" MHz")
    report.add("dynamic frequency (avg)", DYNAMIC_FREQUENCY_MHZ,
               lut_frequency, unit=" MHz")
    report.add("average speedup", DYNAMIC_SPEEDUP_PERCENT, lut_speedup,
               unit=" %")
    report.add("give-up vs. genie", GIVE_UP_PERCENT, give_up, unit=" %")
    report.note(
        "suite: CoreMark-like composite + BEEBS-like kernels "
        "(hand-written equivalents, see DESIGN.md)"
    )

    table = render_suite_results(
        suite_results, design.static_period_ps,
        title="Fig. 8 — per-benchmark effective clock frequency @ 0.70 V",
    )
    publish(
        "fig8_benchmark_speedups",
        report.render() + "\n\n" + table
        + f"\n  artifact store: {store.stats.summary()}",
    )

    assert abs(lut_speedup - DYNAMIC_SPEEDUP_PERCENT) < 8.0
    assert abs(lut_frequency - DYNAMIC_FREQUENCY_MHZ) < 45.0
    assert 0 < give_up < 20.0
    for result in suite_results:
        assert result.speedup_percent > 20.0, result.program_name
