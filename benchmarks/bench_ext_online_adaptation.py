"""Extension E2 — online LUT updating under PVT drift (paper Sec. V).

The paper's conclusion proposes handling process/temperature/voltage
variations "by (online-)updating of the used delay prediction table".
This bench subjects the core to a drifting environment (thermal swing +
supply droops + aging) and compares:

- the nominal scheme with no guard band (unsafe under drift),
- a static guard band sized for worst-case drift (safe, slow),
- online LUT rescaling from a replica-path monitor (safe, fast).
"""

from conftest import publish

from repro.adapt.environment import EnvironmentModel
from repro.adapt.online import SCHEMES
from repro.utils.tables import format_table
from repro.workloads import get_kernel


def _compare(session, program, environment):
    results = session.adapt_results([program], environment)
    return dict(zip(SCHEMES, results))


def test_ext_online_adaptation(benchmark, session, store):
    environment = EnvironmentModel()
    program = get_kernel("crc32").program()
    results = benchmark(_compare, session, program, environment)

    rows = []
    for scheme in ("fixed-none", "fixed-guard", "online"):
        result = results[scheme]
        rows.append((
            scheme,
            f"{result.effective_frequency_mhz:.0f}",
            result.violations,
            result.lut_updates,
        ))
    table = format_table(
        ["Scheme", "f_eff [MHz]", "Violations", "LUT updates"],
        rows,
        title=(
            "E2 — online LUT adaptation under PVT drift "
            f"(max drift {results['online'].max_drift_seen:.3f})"
        ),
    )
    gain = (
        results["online"].effective_frequency_mhz
        / results["fixed-guard"].effective_frequency_mhz - 1.0
    ) * 100.0
    note = (
        f"\nonline updating recovers {gain:.1f} % over the static guard"
        " band while staying error-free — the paper's Sec. V outlook."
    )
    publish("ext_online_adaptation", table + note)

    assert results["fixed-none"].violations > 0
    assert results["fixed-guard"].is_safe
    assert results["online"].is_safe
    assert (
        results["online"].effective_frequency_mhz
        > results["fixed-guard"].effective_frequency_mhz
    )
