"""Shared fixtures and report plumbing for the bench harnesses.

Every bench regenerates one table or figure of the paper and prints the
paper value next to the measured one.  Rendered reports are also written to
``benchmarks/reports/`` so the artefacts survive the run.
"""

import pathlib

import pytest

from repro.flow.characterize import characterize
from repro.timing.design import build_design
from repro.timing.profiles import DesignVariant

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def design():
    return build_design(DesignVariant.CRITICAL_RANGE)


@pytest.fixture(scope="session")
def conventional_design():
    return build_design(DesignVariant.CONVENTIONAL)


@pytest.fixture(scope="session")
def characterization(design):
    return characterize(design)


@pytest.fixture(scope="session")
def lut(characterization):
    return characterization.lut


@pytest.fixture(scope="session")
def conventional_characterization(conventional_design):
    return characterize(conventional_design)


@pytest.fixture(scope="session")
def suite_results(design, lut):
    """Instruction-LUT evaluation of the full benchmark suite (Fig. 8),
    through the compiled-trace batch engine."""
    from repro.clocking.policies import InstructionLutPolicy
    from repro.flow.evaluate import SweepConfig, evaluate_batch
    from repro.workloads.suite import benchmark_suite

    configs = [SweepConfig(
        policy=lambda: InstructionLutPolicy(lut),
        check_safety=False, label="instruction-lut",
    )]
    return evaluate_batch(benchmark_suite(), design, configs)[0]


def publish(name, text):
    """Print a report and persist it under benchmarks/reports/."""
    print()
    print(text)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n")
