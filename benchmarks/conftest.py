"""Shared fixtures and report plumbing for the bench harnesses.

Every bench regenerates one table or figure of the paper and prints the
paper value next to the measured one.  Rendered reports are also written to
``benchmarks/reports/`` so the artefacts survive the run.

The bench session runs against the persistent artifact store
(``$REPRO_STORE``, default ``<repo>/.repro-store``): compiled traces and
the evaluation LUT are pulled from it, so a warm store re-runs the whole
bench suite without a single pipeline simulation or characterisation of
the evaluation design.  Benches that need per-run DTA artefacts (the
histogram figures) still use the full ``characterization`` fixture.
"""

import os
import pathlib

import pytest

from repro.dta.compiled import set_trace_store
from repro.flow.characterize import characterize
from repro.lab.store import ArtifactStore
from repro.timing.design import build_design
from repro.timing.profiles import DesignVariant

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

STORE_DIR = pathlib.Path(
    os.environ.get(
        "REPRO_STORE", pathlib.Path(__file__).parent.parent / ".repro-store"
    )
)


@pytest.fixture(scope="session")
def store():
    """Session-wide artifact store shared by every bench."""
    return ArtifactStore(STORE_DIR)


@pytest.fixture(autouse=True)
def _attach_store(store):
    """Attach the store to the compiled-trace cache for each bench (and
    only for benches — the tier-1 tests in ``tests/`` share the process
    and must stay hermetic), so every ``evaluate_batch`` call here reads
    and writes through it."""
    previous = set_trace_store(store)
    yield
    set_trace_store(previous)


@pytest.fixture(scope="session")
def design():
    return build_design(DesignVariant.CRITICAL_RANGE)


@pytest.fixture(scope="session")
def conventional_design():
    return build_design(DesignVariant.CONVENTIONAL)


@pytest.fixture(scope="session")
def characterization(design):
    return characterize(design)


@pytest.fixture(scope="session")
def lut(design, store):
    """Evaluation LUT, pulled from the store (characterised on a cold
    store, loaded on a warm one)."""
    return store.get_lut(design)


@pytest.fixture(scope="session")
def conventional_characterization(conventional_design):
    return characterize(conventional_design)


@pytest.fixture(scope="session")
def suite_results(design, lut, store):
    """Instruction-LUT evaluation of the full benchmark suite (Fig. 8),
    through the compiled-trace batch engine; traces come from the store
    when it is warm.

    Session-scoped fixtures instantiate before the function-scoped
    ``_attach_store`` autouse fixture, so this attaches the store
    itself."""
    from repro.clocking.policies import InstructionLutPolicy
    from repro.flow.evaluate import SweepConfig, evaluate_batch
    from repro.workloads.suite import benchmark_suite

    configs = [SweepConfig(
        policy=lambda: InstructionLutPolicy(lut),
        check_safety=False, label="instruction-lut",
    )]
    previous = set_trace_store(store)
    try:
        return evaluate_batch(benchmark_suite(), design, configs)[0]
    finally:
        set_trace_store(previous)


def publish(name, text):
    """Print a report and persist it under benchmarks/reports/."""
    print()
    print(text)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n")
