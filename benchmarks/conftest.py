"""Shared fixtures and report plumbing for the bench harnesses.

Every bench regenerates one table or figure of the paper and prints the
paper value next to the measured one.  Rendered reports are also written to
``benchmarks/reports/`` so the artefacts survive the run.

The bench session runs against the persistent artifact store
(``$REPRO_STORE``, default ``<repo>/.repro-store``): compiled traces and
the evaluation LUT are pulled from it, so a warm store re-runs the whole
bench suite without a single pipeline simulation or characterisation of
the evaluation design.  Benches that need per-run DTA artefacts (the
histogram figures) still use the full ``characterization`` fixture.
"""

import os
import pathlib

import pytest

from repro.dta.compiled import set_trace_store
from repro.flow.characterize import characterize
from repro.lab.store import ArtifactStore
from repro.timing.design import build_design
from repro.timing.profiles import DesignVariant

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

STORE_DIR = pathlib.Path(
    os.environ.get(
        "REPRO_STORE", pathlib.Path(__file__).parent.parent / ".repro-store"
    )
)


@pytest.fixture(scope="session")
def store():
    """Session-wide artifact store shared by every bench."""
    return ArtifactStore(STORE_DIR)


@pytest.fixture(autouse=True)
def _attach_store(store):
    """Attach the store to the compiled-trace cache for each bench (and
    only for benches — the tier-1 tests in ``tests/`` share the process
    and must stay hermetic), so every ``evaluate_batch`` call here reads
    and writes through it."""
    previous = set_trace_store(store)
    yield
    set_trace_store(previous)


@pytest.fixture(scope="session")
def design():
    return build_design(DesignVariant.CRITICAL_RANGE)


@pytest.fixture(scope="session")
def conventional_design():
    return build_design(DesignVariant.CONVENTIONAL)


@pytest.fixture(scope="session")
def characterization(design):
    return characterize(design)


@pytest.fixture(scope="session")
def lut(design, store):
    """Evaluation LUT, pulled from the store (characterised on a cold
    store, loaded on a warm one)."""
    return store.get_lut(design)


@pytest.fixture(scope="session")
def session(design, lut, store):
    """Session-wide :class:`repro.api.Session` facade every bench
    evaluates through (design + LUT shared, traces via the store)."""
    from repro.api import Session

    return Session.for_design(design, lut=lut, store=store)


@pytest.fixture(scope="session")
def conventional_characterization(conventional_design):
    return characterize(conventional_design)


@pytest.fixture(scope="session")
def suite_results(session, lut):
    """Instruction-LUT evaluation of the full benchmark suite (Fig. 8)
    through the Session facade; traces come from the session's store
    when it is warm (the Session attaches it itself, so session-scoped
    fixtures need no ``_attach_store``)."""
    from repro.clocking.policies import InstructionLutPolicy
    from repro.flow.evaluate import SweepConfig
    from repro.workloads.suite import benchmark_suite

    configs = [SweepConfig(
        policy=lambda: InstructionLutPolicy(lut),
        check_safety=False, label="instruction-lut",
    )]
    return session.evaluate_results(benchmark_suite(), configs)[0]


def publish(name, text):
    """Print a report and persist it under benchmarks/reports/."""
    print()
    print(text)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n")
