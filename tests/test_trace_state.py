"""Trace-container and architectural-state tests."""

import pytest

from repro.sim.pipeline import PipelineSimulator
from repro.sim.state import ArchState
from repro.sim.trace import (
    BUBBLE_VIEW,
    PIPELINE_STAGES,
    STAGE_NAMES,
    Stage,
    StageView,
)
from repro.workloads import get_kernel


class TestStage:
    def test_order_matches_paper(self):
        assert [stage.name for stage in PIPELINE_STAGES] == [
            "ADR", "FE", "DC", "EX", "CTRL", "WB",
        ]

    def test_names_cover_all(self):
        assert set(STAGE_NAMES) == set(Stage)

    def test_intenum_ordering(self):
        assert Stage.ADR < Stage.EX < Stage.WB


class TestStageView:
    def test_bubble_detection(self):
        assert BUBBLE_VIEW.is_bubble
        view = StageView(mnemonic="l.add", timing_class="l.add(i)", pc=0,
                         seq=1)
        assert not view.is_bubble

    def test_frozen(self):
        with pytest.raises(AttributeError):
            BUBBLE_VIEW.mnemonic = "l.add"


class TestPipelineTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        pipe = PipelineSimulator(get_kernel("statemachine").program())
        pipe.run()
        return pipe.trace

    def test_cpi(self, trace):
        assert trace.cpi == trace.num_cycles / trace.num_retired

    def test_stage_utilization(self, trace):
        utilization = trace.stage_utilization()
        for stage in Stage:
            assert 0.0 < utilization[stage] <= 1.0
        # EX sees every instruction plus bubbles; ADR is always occupied
        assert utilization[Stage.ADR] > 0.9

    def test_class_mix_sums_to_retired(self, trace):
        mix = trace.class_mix()
        assert sum(mix.values()) == trace.num_retired
        assert "l.sfxx(i)" in mix

    def test_retired_trace_matches_records(self, trace):
        assert len(trace.retired_trace()) == trace.num_retired

    def test_empty_trace_cpi_rejected(self):
        from repro.sim.trace import PipelineTrace
        with pytest.raises(ValueError):
            PipelineTrace(program_name="x").cpi


class TestArchState:
    def test_r0_hardwired(self):
        state = ArchState()
        state.write_reg(0, 123)
        assert state.read_reg(0) == 0

    def test_write_truncates(self):
        state = ArchState()
        state.write_reg(5, 1 << 36)
        assert state.read_reg(5) == 0

    def test_snapshot_immutable(self):
        state = ArchState(entry=0x40)
        snap = state.snapshot()
        state.write_reg(1, 9)
        assert snap[0][1] == 0
        assert snap[3] == 0x40

    def test_repr(self):
        assert "pc=0x" in repr(ArchState())
