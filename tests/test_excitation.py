"""Excitation-model tests: bounds, worst patterns, determinism, scaling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import CycleRecord, Stage, StageView
from repro.timing.excitation import (
    ExcitationModel,
    driver_view,
    ex_criticality,
    is_worst_pattern,
)
from repro.timing.library import CellLibrary
from repro.timing.profiles import (
    BUBBLE_CLASS,
    DesignVariant,
    load_profile,
)

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)

PROFILE = load_profile(DesignVariant.CRITICAL_RANGE)
MODEL = ExcitationModel(PROFILE)


def make_record(ex_mnemonic="l.add", ex_class="l.add(i)", a=1, b=2,
                pc=0x100, redirect=False, stall=False, bubble_ex=False):
    ex_view = (
        StageView() if bubble_ex else StageView(
            mnemonic=ex_mnemonic, timing_class=ex_class, pc=pc, seq=7
        )
    )
    other = StageView(
        mnemonic="l.addi", timing_class="l.add(i)", pc=pc + 4, seq=8
    )
    slots = tuple(
        ex_view if stage == Stage.EX else other for stage in Stage
    )
    return CycleRecord(
        cycle=0, slots=slots,
        ex_operands=None if bubble_ex else (a, b),
        redirect=redirect, stall=stall,
    )


class TestWorstPatterns:
    def test_mul_all_ones(self):
        assert is_worst_pattern("l.mul", 0xFFFFFFFF, 0xFFFFFFFF)
        assert not is_worst_pattern("l.mul", 0xFFFFFFFF, 1)

    def test_alu_and_setflag(self):
        assert is_worst_pattern("l.add", 0xFFFFFFFF, 0xFFFFFFFF)
        assert is_worst_pattern("l.sfeq", 0xFFFFFFFF, 0xFFFFFFFF)
        assert not is_worst_pattern("l.add", 0, 0)

    def test_shift_needs_all_ones_input(self):
        assert is_worst_pattern("l.slli", 0xFFFFFFFF, 3)
        assert not is_worst_pattern("l.slli", 1, 31)

    def test_memory_high_address(self):
        assert is_worst_pattern("l.lwz", 0xFFFFFFF0, 0)
        assert is_worst_pattern("l.sw", 0xFFFFFFFC, 5)
        assert not is_worst_pattern("l.lwz", 0x10000, 0)

    def test_div_worst_divisor(self):
        assert is_worst_pattern("l.div", 0xFFFFFFFF, 1)
        assert not is_worst_pattern("l.div", 0xFFFFFFFF, 2)

    def test_jumps_always_worst(self):
        assert is_worst_pattern("l.j", 0, 0)
        assert is_worst_pattern("l.jr", 0, 0)

    def test_branch_worst_when_taken(self):
        assert is_worst_pattern("l.bf", 0, 0, taken=True)
        assert not is_worst_pattern("l.bf", 0, 0, taken=False)

    def test_nop_constant(self):
        assert is_worst_pattern("l.nop", 0, 0)

    def test_movhi_immediate_pattern(self):
        assert is_worst_pattern("l.movhi", 0, 0xFFFF)
        assert not is_worst_pattern("l.movhi", 0, 0x1234)


class TestCriticality:
    def test_worst_pattern_is_one(self):
        assert ex_criticality("l.mul", 0xFFFFFFFF, 0xFFFFFFFF, 0x40) == 1.0

    @given(a=u32, b=u32)
    @settings(max_examples=200)
    def test_bounded(self, a, b):
        crit = ex_criticality("l.add", a, b, 0x100)
        assert 0.0 <= crit <= 1.0

    @given(a=u32, b=u32)
    @settings(max_examples=200)
    def test_non_worst_below_ceiling(self, a, b):
        if not is_worst_pattern("l.xor", a, b):
            assert ex_criticality("l.xor", a, b, 0x10) <= 0.97

    def test_deterministic(self):
        assert ex_criticality("l.add", 5, 9, 0x20) == \
            ex_criticality("l.add", 5, 9, 0x20)

    def test_pc_sensitivity(self):
        values = {
            ex_criticality("l.add", 5, 9, pc) for pc in range(0, 400, 4)
        }
        assert len(values) > 50   # different sites excite different paths


class TestGroupDelays:
    @given(a=u32, b=u32)
    @settings(max_examples=200)
    def test_ex_delay_never_exceeds_class_max(self, a, b):
        record = make_record(a=a, b=b)
        excited = MODEL.group_delay(record, Stage.EX)
        assert excited.delay_ps <= PROFILE.ex_spec("l.add(i)").max_ps + 1e-6

    def test_worst_pattern_reaches_max_exactly(self):
        record = make_record(a=0xFFFFFFFF, b=0xFFFFFFFF)
        excited = MODEL.group_delay(record, Stage.EX)
        assert excited.delay_ps == pytest.approx(
            PROFILE.ex_spec("l.add(i)").max_ps
        )

    def test_bubble_delay(self):
        record = make_record(bubble_ex=True)
        excited = MODEL.group_delay(record, Stage.EX)
        assert excited.driver_class == BUBBLE_CLASS
        assert excited.delay_ps == pytest.approx(
            PROFILE.bubble_delays[Stage.EX]
        )

    def test_adr_driven_by_ex(self):
        record = make_record(ex_mnemonic="l.j", ex_class="l.j",
                             redirect=True)
        excited = MODEL.group_delay(record, Stage.ADR)
        assert excited.driver_class == "l.j"
        assert excited.delay_ps == pytest.approx(
            PROFILE.adr_redirect.max_ps
        )
        assert excited.redirect

    def test_adr_sequential_without_redirect(self):
        record = make_record()
        excited = MODEL.group_delay(record, Stage.ADR)
        assert excited.delay_ps == pytest.approx(PROFILE.adr_seq.max_ps)

    def test_adr_bubble_driver(self):
        record = make_record(bubble_ex=True)
        excited = MODEL.group_delay(record, Stage.ADR)
        assert excited.driver_class == BUBBLE_CLASS
        assert excited.delay_ps == pytest.approx(PROFILE.adr_seq.max_ps)

    def test_stall_gives_hold_delay(self):
        record = make_record(stall=True)
        excited = MODEL.group_delay(record, Stage.ADR)
        assert excited.held
        assert excited.delay_ps == pytest.approx(PROFILE.hold_delay_ps)

    def test_cycle_max_covers_all_groups(self):
        record = make_record(ex_mnemonic="l.mul", ex_class="l.mul(i)",
                             a=0xFFFFFFFF, b=0xFFFFFFFF)
        assert MODEL.cycle_max(record) == pytest.approx(
            PROFILE.ex_spec("l.mul(i)").max_ps
        )

    def test_driver_view_mapping(self):
        record = make_record()
        assert driver_view(record, Stage.ADR) == record.view(Stage.EX)
        for stage in (Stage.FE, Stage.DC, Stage.EX, Stage.CTRL, Stage.WB):
            assert driver_view(record, stage) == record.view(stage)


class TestVoltageScaling:
    def test_delays_scale_with_library(self):
        low_voltage = ExcitationModel(PROFILE, CellLibrary.at(0.60))
        record = make_record(a=0xFFFFFFFF, b=0xFFFFFFFF)
        ref = MODEL.group_delay(record, Stage.EX).delay_ps
        scaled = low_voltage.group_delay(record, Stage.EX).delay_ps
        assert scaled > ref
        assert scaled / ref == pytest.approx(
            low_voltage.library.delay_scale, rel=1e-3
        )

    def test_scaling_preserves_ratios(self):
        """Voltage scaling must not change which class is slower."""
        low_voltage = ExcitationModel(PROFILE, CellLibrary.at(0.55))
        fast = make_record(ex_mnemonic="l.slli", ex_class="l.sll(i)",
                           a=0xFFFFFFFF, b=3)
        slow = make_record(ex_mnemonic="l.mul", ex_class="l.mul(i)",
                           a=0xFFFFFFFF, b=0xFFFFFFFF)
        assert (
            low_voltage.group_delay(slow, Stage.EX).delay_ps
            > low_voltage.group_delay(fast, Stage.EX).delay_ps
        )
