"""repro.obs unit tests: tracer, exporters, progress line, host facts."""

import io
import json

import pytest

from repro.api.frame import TELEMETRY_SCHEMA
from repro.obs import trace as obs_trace
from repro.obs.export import (
    chrome_trace,
    summary_csv,
    summary_rows,
    telemetry_frame,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.host import host_metadata
from repro.obs.progress import UnitProgress


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    """Tests own the process-wide tracer slot; leave it as found."""
    previous = obs_trace.set_tracer(None)
    yield
    obs_trace.set_tracer(previous)


def _record(name="a.b", pid=1, worker="session", depth=0, start=0.0,
            dur=1.0, cpu=0.5, attrs=None):
    return {
        "span": name, "category": name.split(".", 1)[0],
        "worker": worker, "pid": pid, "depth": depth,
        "start_us": start, "duration_us": dur, "cpu_us": cpu,
        "attrs": attrs or {},
    }


class TestTracer:
    def test_disabled_span_is_a_shared_noop(self):
        assert obs_trace.get_tracer() is None
        assert not obs_trace.is_enabled()
        first = obs_trace.span("x.y")
        second = obs_trace.span("z.w", key="value")
        assert first is second         # singleton: no allocation per site
        with first:
            pass

    def test_records_nested_spans(self):
        tracer = obs_trace.Tracer(label="t")
        obs_trace.set_tracer(tracer)
        assert obs_trace.is_enabled()
        with obs_trace.span("outer.op", grid="g"):
            with obs_trace.span("inner.op"):
                pass
        inner, outer = tracer.snapshot()   # completion order
        assert inner["span"] == "inner.op" and outer["span"] == "outer.op"
        assert outer["depth"] == 0 and inner["depth"] == 1
        assert outer["category"] == "outer"
        assert outer["worker"] == "t"
        assert outer["attrs"] == {"grid": "g"}
        assert inner["start_us"] >= outer["start_us"]
        assert outer["duration_us"] >= inner["duration_us"] >= 0.0
        assert outer["cpu_us"] >= 0.0
        assert tracer._stack == []

    def test_span_recorded_even_when_body_raises(self):
        tracer = obs_trace.Tracer()
        obs_trace.set_tracer(tracer)
        with pytest.raises(RuntimeError):
            with obs_trace.span("fails.here"):
                raise RuntimeError("boom")
        assert [s["span"] for s in tracer.snapshot()] == ["fails.here"]
        assert tracer._stack == []

    def test_set_tracer_returns_previous(self):
        first = obs_trace.Tracer()
        assert obs_trace.set_tracer(first) is None
        second = obs_trace.Tracer()
        assert obs_trace.set_tracer(second) is first
        assert obs_trace.get_tracer() is second

    def test_drain_clears_the_buffer(self):
        tracer = obs_trace.Tracer()
        obs_trace.set_tracer(tracer)
        with obs_trace.span("one.two"):
            pass
        drained = tracer.drain()
        assert [s["span"] for s in drained] == ["one.two"]
        assert tracer.snapshot() == []

    def test_merge_worker_spans_absorbs_onto_active_tracer(self):
        tracer = obs_trace.Tracer()
        obs_trace.set_tracer(tracer)
        shipped = [_record("w.op", pid=999, worker="worker-999")]
        obs_trace.merge_worker_spans(shipped)
        assert tracer.snapshot() == shipped

    def test_merge_worker_spans_noop_when_disabled(self):
        obs_trace.merge_worker_spans([_record()])   # must not raise


class TestChromeTrace:
    def test_structure_and_tracks(self):
        spans = [
            _record("sweep.unit", pid=10, worker="session", start=5.0),
            _record("iss.collect", pid=11, worker="worker-11", start=2.0),
            _record("sweep.merge", pid=10, worker="session", start=9.0),
        ]
        payload = chrome_trace(spans, counters={"sim.simulations": 3},
                               label="demo")
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["counters"] == {"sim.simulations": 3}
        metas = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metas
                 if e["name"] == "process_name"}
        assert names == {"demo:session", "demo:worker-11"}
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        # per-pid tracks, time-ordered within a track
        assert [(e["pid"], e["name"]) for e in events] == [
            (10, "sweep.unit"), (10, "sweep.merge"), (11, "iss.collect"),
        ]
        assert events[0]["args"]["cpu_us"] == 0.5

    def test_validate_accepts_own_output_and_reports_categories(self):
        spans = [_record("a.x"), _record("b.y", pid=2)]
        categories = validate_chrome_trace(chrome_trace(spans))
        assert categories == {"a", "b"}

    def test_validate_rejects_malformed_payloads(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        bad_dur = chrome_trace([_record(dur=-1.0)])
        with pytest.raises(ValueError):
            validate_chrome_trace(bad_dur)
        bad_phase = chrome_trace([_record()])
        bad_phase["traceEvents"][-1]["ph"] = "B"
        with pytest.raises(ValueError):
            validate_chrome_trace(bad_phase)

    def test_write_chrome_trace_is_valid_json_on_disk(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, [_record()], counters={"k": 1})
        payload = json.loads(path.read_text())
        validate_chrome_trace(payload)
        assert payload["otherData"]["counters"] == {"k": 1}


class TestSummaries:
    def test_summary_rows_aggregate_and_order(self):
        spans = [
            _record("fast.op", dur=100.0, cpu=50.0),
            _record("slow.op", dur=4000.0, cpu=1000.0),
            _record("fast.op", dur=300.0, cpu=150.0),
        ]
        rows = summary_rows(spans)
        assert [r["span"] for r in rows] == ["slow.op", "fast.op"]
        fast = rows[1]
        assert fast["count"] == 2
        assert fast["wall_ms"] == pytest.approx(0.4)
        assert fast["cpu_ms"] == pytest.approx(0.2)
        assert fast["mean_ms"] == pytest.approx(0.2)

    def test_summary_csv_shape(self):
        text = summary_csv([_record("a.x"), _record("a.x")])
        lines = text.strip().split("\n")
        assert lines[0] == "span,category,count,wall_ms,cpu_ms,mean_ms"
        assert lines[1].startswith("a.x,a,2,")

    def test_telemetry_frame_schema(self):
        frame = telemetry_frame([_record(attrs={"program": "fib"})])
        assert frame.schema == TELEMETRY_SCHEMA
        row = frame.row(0)
        assert row["span"] == "a.b"
        assert row["attrs"] == {"program": "fib"}


class _TtyStream(io.StringIO):
    def isatty(self):
        return True


class TestUnitProgress:
    def test_renders_count_percent_and_eta(self):
        clock = iter([0.0, 10.0, 20.0]).__next__
        stream = _TtyStream()
        progress = UnitProgress(4, stream=stream, clock=clock,
                                label="sweep g")
        progress.update(0)          # arms the rate baseline at t=0
        progress.update(1)          # t=10 -> 10 s/unit, 3 left
        progress.update(2)          # t=20 -> 10 s/unit, 2 left
        progress.finish()
        text = stream.getvalue()
        assert "\rsweep g 1/4 units (25%) eta 30.0s" in text
        assert "\rsweep g 2/4 units (50%) eta 20.0s" in text
        assert text.endswith("\n")

    def test_resumed_units_do_not_skew_the_rate(self):
        clock = iter([0.0, 5.0]).__next__
        stream = _TtyStream()
        progress = UnitProgress(10, stream=stream, clock=clock)
        progress.update(8)          # 8 resumed before any local work
        progress.update(9)          # 5 s for ONE local unit -> eta 5 s
        assert "eta 5.0s" in stream.getvalue()

    def test_total_updates_via_callback(self):
        stream = _TtyStream()
        progress = UnitProgress(0, stream=stream)
        progress.update(1, total=3)
        assert "1/3 units (33%)" in stream.getvalue()

    def test_disabled_on_non_tty(self):
        stream = io.StringIO()      # isatty() -> False
        progress = UnitProgress(4, stream=stream)
        assert not progress.enabled
        progress.update(1)
        progress.finish()
        assert stream.getvalue() == ""

    def test_finish_silent_when_nothing_rendered(self):
        stream = _TtyStream()
        UnitProgress(4, stream=stream).finish()
        assert stream.getvalue() == ""


class TestHostMetadata:
    def test_fields(self):
        meta = host_metadata()
        assert meta["cores_usable"] >= 1
        assert meta["cores_total"] >= meta["cores_usable"] >= 1
        assert meta["python_version"].count(".") == 2
        assert meta["numpy_version"]
        assert meta["platform"] and meta["machine"]
        assert "engine" not in meta
        assert json.loads(json.dumps(meta)) == meta

    def test_engine_tag(self):
        assert host_metadata(engine="vector")["engine"] == "vector"
