"""Characterisation-flow and experiment-record tests."""

import pytest

from repro.flow.characterize import characterize
from repro.flow.experiment import Comparison, ExperimentReport
from repro.timing.profiles import BUBBLE_CLASS
from repro.workloads import get_kernel


class TestCharacterizationFlow:
    def test_default_flow_completes(self, characterization):
        assert characterization.num_runs >= 3
        assert characterization.total_cycles > 10_000
        assert characterization.lut.classes()

    def test_characterization_cycle_budget_like_paper(self, characterization):
        """The paper characterises with a 14 k-cycle gate-level run; our
        default suite is of the same order."""
        assert 10_000 <= characterization.total_cycles <= 100_000

    def test_run_lookup(self, characterization):
        run = characterization.run_named("crc32")
        assert run.num_cycles > 0
        with pytest.raises(KeyError):
            characterization.run_named("missing")

    def test_custom_program_set(self, design):
        result = characterize(
            design, programs=[get_kernel("fib").program()], keep_runs=False
        )
        assert result.num_runs == 0           # runs not kept
        assert result.lut.is_characterized("l.add(i)")
        # fib never multiplies: mul must fall back to static
        assert not result.lut.is_characterized("l.mul(i)")

    def test_partial_characterization_is_safe_fallback(self, design):
        from repro.clocking.policies import InstructionLutPolicy
        from repro.flow.evaluate import evaluate_program
        from repro.sim.trace import Stage

        partial = characterize(
            design, programs=[get_kernel("fib").program()], keep_runs=False
        )
        assert partial.lut.entry("l.mul(i)", Stage.EX) == \
            design.static_period_ps
        # evaluating a mul-heavy program with the partial LUT stays safe
        result = evaluate_program(
            get_kernel("dotprod").program(), design,
            InstructionLutPolicy(partial.lut),
        )
        assert result.is_safe
        assert BUBBLE_CLASS in partial.lut.characterized


class TestExperimentRecords:
    def test_comparison_deviation(self):
        comparison = Comparison("x", paper=100.0, measured=105.0)
        assert comparison.deviation_percent == pytest.approx(5.0)

    def test_report_rendering(self):
        report = ExperimentReport("Fig. 8", "speedups")
        report.add("average speedup", 38.0, 42.9, unit=" %")
        report.note("measured on the BEEBS-like suite")
        text = report.render()
        assert "Fig. 8" in text
        assert "+12.9%" in text
        assert "note:" in text

    def test_max_abs_deviation(self):
        report = ExperimentReport("T", "t")
        report.add("a", 10.0, 11.0)
        report.add("b", 10.0, 9.5)
        assert report.max_abs_deviation_percent() == pytest.approx(10.0)

    def test_max_abs_deviation_empty_report(self):
        """Empty comparison lists must not crash (satellite fix)."""
        assert ExperimentReport("T", "t").max_abs_deviation_percent() == 0.0

    def test_zero_paper_value_is_zero_safe(self):
        """paper == 0 must not silently propagate NaN (satellite fix)."""
        exact = Comparison("zero-match", paper=0.0, measured=0.0)
        assert exact.deviation_percent == 0.0

        mismatch = Comparison("zero-miss", paper=0.0, measured=3.0)
        assert mismatch.deviation_percent == float("inf")
        assert "n/a" in mismatch.row()[-1]

        report = ExperimentReport("T", "t")
        report.add("zero-match", 0.0, 0.0)
        assert report.max_abs_deviation_percent() == 0.0
        assert "n/a" not in report.render()
