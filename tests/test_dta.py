"""DTA tests: event-log analysis, skew handling, gatesim, histograms."""

import numpy as np
import pytest

from repro.asm import assemble
from repro.dta.analyzer import analyze_event_log
from repro.dta.events import EndpointEvent, EventLog
from repro.dta.gatesim import GateLevelSimulator, run_gatesim
from repro.dta.histograms import class_stage_delays, fig5_histogram, fig7_histograms
from repro.sim.trace import Stage


def _hand_log(period=2000.0, cycles=3):
    """A synthetic event log with known delays."""
    log = EventLog(sim_period_ps=period, num_cycles=cycles)
    log.register_endpoint("ex_reg_0", "EX", 25.0)
    log.register_endpoint("dc_reg_0", "DC", 25.0)
    return log


def _add_event(log, cycle, endpoint, delay, skew=0.0):
    t0 = cycle * log.sim_period_ps
    setup = log.endpoint_setup(endpoint)
    log.add(EndpointEvent(
        cycle=cycle,
        endpoint=endpoint,
        t_data_ps=t0 + delay - setup + skew,
        t_clock_ps=t0 + log.sim_period_ps + skew,
    ))


class TestAnalyzer:
    def test_recovers_known_delay(self):
        log = _hand_log()
        _add_event(log, 0, "ex_reg_0", 1500.0)
        _add_event(log, 1, "ex_reg_0", 900.0)
        _add_event(log, 2, "ex_reg_0", 1200.0)
        result = analyze_event_log(log)
        assert result.stage_delays[Stage.EX].tolist() == [
            1500.0, 900.0, 1200.0
        ]

    def test_clock_skew_cancels(self):
        """Delays must be recovered exactly despite per-endpoint skew."""
        log = _hand_log()
        _add_event(log, 0, "ex_reg_0", 1400.0, skew=+30.0)
        _add_event(log, 1, "ex_reg_0", 1400.0, skew=-30.0)
        _add_event(log, 2, "ex_reg_0", 1400.0, skew=0.0)
        result = analyze_event_log(log)
        assert np.allclose(result.stage_delays[Stage.EX], 1400.0)

    def test_max_per_group_per_cycle(self):
        log = _hand_log(cycles=1)
        log.register_endpoint("ex_reg_1", "EX", 25.0)
        _add_event(log, 0, "ex_reg_0", 1000.0)
        _add_event(log, 0, "ex_reg_1", 1600.0)
        result = analyze_event_log(log)
        assert result.stage_delays[Stage.EX][0] == 1600.0

    def test_limiting_stage(self):
        log = _hand_log(cycles=2)
        _add_event(log, 0, "ex_reg_0", 1500.0)
        _add_event(log, 0, "dc_reg_0", 900.0)
        _add_event(log, 1, "ex_reg_0", 700.0)
        _add_event(log, 1, "dc_reg_0", 1100.0)
        result = analyze_event_log(log)
        assert result.limiting_stage[0] == Stage.EX.value
        assert result.limiting_stage[1] == Stage.DC.value
        shares = result.limiting_stage_shares()
        assert shares[Stage.EX] == 0.5
        assert shares[Stage.DC] == 0.5

    def test_mean_and_speedup(self):
        log = _hand_log(cycles=2)
        _add_event(log, 0, "ex_reg_0", 1000.0)
        _add_event(log, 1, "ex_reg_0", 2000.0)
        result = analyze_event_log(log)
        assert result.mean_cycle_delay_ps == 1500.0
        assert result.genie_speedup_percent(3000.0) == pytest.approx(100.0)

    def test_unregistered_endpoint_rejected(self):
        log = _hand_log(cycles=1)
        log.add(EndpointEvent(0, "ghost", 0.0, 100.0))
        with pytest.raises(ValueError, match="unregistered"):
            analyze_event_log(log)

    def test_timing_violation_in_log_rejected(self):
        log = _hand_log(cycles=1)
        log.add(EndpointEvent(0, "ex_reg_0", t_data_ps=500.0,
                              t_clock_ps=400.0))
        with pytest.raises(ValueError, match="violation"):
            analyze_event_log(log)

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            analyze_event_log(EventLog(sim_period_ps=2000.0, num_cycles=0))


PROGRAM = assemble(
    "start:\n"
    "    l.addi r1, r0, 10\n"
    "loop:\n"
    "    l.mul  r2, r1, r1\n"
    "    l.addi r1, r1, -1\n"
    "    l.sfgtsi r1, 0\n"
    "    l.bf   loop\n"
    "    l.nop\n"
    "    l.nop  0x1\n"
    "    l.nop\n"
    "    l.nop\n",
    name="dta-mini",
)


class TestGateSim:
    def test_produces_consistent_log(self, design):
        result = run_gatesim(PROGRAM, design)
        log = result.event_log
        assert log.num_cycles == result.trace.num_cycles
        assert log.num_events == log.num_cycles * 6 * 3
        log.validate()

    def test_sim_period_must_be_safe(self, design):
        with pytest.raises(ValueError, match="STA"):
            GateLevelSimulator(PROGRAM, design, sim_period_ps=1000.0)

    def test_analysis_bounded_by_profile(self, design):
        result = run_gatesim(PROGRAM, design)
        dta = analyze_event_log(result.event_log)
        assert dta.max_cycle_delay_ps <= design.static_period_ps
        assert dta.mean_cycle_delay_ps < design.static_period_ps
        # the mul worst case bounds everything in this program
        assert dta.max_cycle_delay_ps <= 1899.0 + 1e-6

    def test_pc_trace_available(self, design):
        result = run_gatesim(PROGRAM, design)
        assert result.pc_trace[0] == 0
        assert len(result.pc_trace) == result.trace.num_retired


class TestHistograms:
    def test_fig5_histogram_totals(self, design):
        result = run_gatesim(PROGRAM, design)
        dta = analyze_event_log(result.event_log)
        histogram = fig5_histogram(dta)
        assert histogram.total == dta.num_cycles

    def test_fig7_mul_ex_delays_high(self, design):
        result = run_gatesim(PROGRAM, design)
        dta = analyze_event_log(result.event_log)
        samples = class_stage_delays(dta, result.trace, "l.mul(i)")
        assert samples[Stage.EX], "mul must appear in EX"
        assert max(samples[Stage.EX]) > 1500.0
        # non-EX stages are significantly lower (paper Fig. 7)
        assert max(samples[Stage.DC]) < max(samples[Stage.EX])
        histograms = fig7_histograms(dta, result.trace, "l.mul(i)")
        assert set(histograms) == set(Stage)
