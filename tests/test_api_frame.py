"""ResultFrame: construction, access, aggregation, lossless round-trips."""

import csv
import io
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.frame import (
    EVALUATION_SCHEMA,
    Column,
    ResultFrame,
    schema,
)
from repro.lab.store import ArtifactStore

SIMPLE = schema(
    ("name", "str"),
    ("count", "int"),
    ("value", "float"),
    ("detail", "json"),
)


def simple_frame():
    return ResultFrame.from_rows([
        {"name": "a", "count": 1, "value": 1.5, "detail": [1, 2]},
        {"name": "b", "count": 2, "value": -0.25, "detail": {"k": "v"}},
        {"name": "a", "count": 3, "value": 2.0, "detail": None},
    ], SIMPLE)


class TestConstruction:
    def test_from_rows_types(self):
        frame = simple_frame()
        assert len(frame) == 3
        assert frame["count"].dtype == np.int64
        assert frame["value"].dtype == np.float64
        assert frame["name"].dtype == object

    def test_returned_json_cells_are_copies(self):
        """Mutating a returned row must never corrupt the frame."""
        frame = simple_frame()
        frame.row(0)["detail"].clear()
        assert frame.row(0)["detail"] == [1, 2]
        rows = frame.to_rows()
        rows[0]["detail"].append("junk")
        assert frame.to_rows()[0]["detail"] == [1, 2]

    def test_iter_rows_plain_python(self):
        for row in simple_frame().iter_rows():
            assert type(row["count"]) is int
            assert type(row["value"]) is float
            assert type(row["name"]) is str
        # every row must survive json.dumps as-is
        json.dumps(simple_frame().to_rows())

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="do not match schema"):
            ResultFrame({"name": ["a"]}, SIMPLE)

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            ResultFrame({
                "name": np.array(["a"], dtype=object),
                "count": np.array([1, 2], dtype=np.int64),
                "value": np.array([0.5], dtype=np.float64),
                "detail": np.array([None], dtype=object),
            }, SIMPLE)

    def test_duplicate_column_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ResultFrame.from_rows(
                [], schema(("x", "int"), ("x", "float"))
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown column kind"):
            Column("x", "decimal")

    def test_concat(self):
        frame = simple_frame()
        doubled = ResultFrame.concat([frame, frame])
        assert len(doubled) == 6
        assert doubled.to_rows() == frame.to_rows() + frame.to_rows()

    def test_concat_mismatched_schemas_rejected(self):
        other = ResultFrame.from_rows([], schema(("x", "int")))
        with pytest.raises(ValueError, match="mismatched"):
            ResultFrame.concat([simple_frame(), other])

    def test_empty_frame(self):
        frame = ResultFrame.from_rows([], SIMPLE)
        assert len(frame) == 0
        assert frame.to_rows() == []
        assert ResultFrame.from_json(frame.to_json()) == frame


class TestFiltering:
    def test_where(self):
        frame = simple_frame().where(name="a")
        assert len(frame) == 2
        assert frame.distinct("name") == ["a"]

    def test_where_multiple_keys(self):
        frame = simple_frame().where(name="a", count=3)
        assert frame.to_rows()[0]["value"] == 2.0

    def test_select_callable(self):
        frame = simple_frame().select(lambda row: row["value"] > 0)
        assert len(frame) == 2

    def test_select_mask(self):
        frame = simple_frame().select([True, False, True])
        assert [row["count"] for row in frame.iter_rows()] == [1, 3]

    def test_select_bad_mask_length(self):
        with pytest.raises(ValueError, match="mask length"):
            simple_frame().select([True])

    def test_distinct_first_seen_order(self):
        assert simple_frame().distinct("name") == ["a", "b"]


class TestGroupBy:
    def test_stats(self):
        out = simple_frame().group_by("name", {
            "total": ("count", "sum"),
            "mean_value": ("value", "mean"),
            "low": ("value", "min"),
            "high": ("value", "max"),
            "n": ("count", "count"),
            "first_value": ("value", "first"),
        })
        rows = {row["name"]: row for row in out.iter_rows()}
        assert rows["a"]["total"] == 4.0
        assert rows["a"]["mean_value"] == pytest.approx(1.75)
        assert rows["a"]["low"] == 1.5 and rows["a"]["high"] == 2.0
        assert rows["a"]["n"] == 2 and type(rows["a"]["n"]) is int
        assert rows["a"]["first_value"] == 1.5
        assert rows["b"]["n"] == 1

    def test_group_order_is_first_seen(self):
        out = simple_frame().group_by("name", {"n": ("count", "count")})
        assert [row["name"] for row in out.iter_rows()] == ["a", "b"]

    def test_multiple_keys(self):
        out = simple_frame().group_by(
            ["name", "count"], {"n": ("value", "count")}
        )
        assert len(out) == 3

    def test_unknown_stat_rejected(self):
        with pytest.raises(ValueError, match="unknown stat"):
            simple_frame().group_by("name", {"x": ("value", "median")})

    def test_unknown_column_rejected(self):
        with pytest.raises(KeyError):
            simple_frame().group_by("name", {"x": ("nope", "mean")})

    def test_percentiles(self):
        """p50/p95/p99 match np.percentile (linear interpolation)."""
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        frame = ResultFrame.from_rows(
            [{"k": "g", "v": value} for value in values],
            schema(("k", "str"), ("v", "float")),
        )
        out = frame.group_by("k", {
            "p50": ("v", "p50"), "p95": ("v", "p95"), "p99": ("v", "p99"),
        })
        row = out.row(0)
        assert row["p50"] == np.percentile(values, 50)
        assert row["p95"] == np.percentile(values, 95)
        assert row["p99"] == np.percentile(values, 99)
        assert out.kind_of("p50") == "float"

    def test_percentile_single_row_group(self):
        out = simple_frame().group_by("name", {"p99": ("value", "p99")})
        rows = {row["name"]: row for row in out.iter_rows()}
        assert rows["b"]["p99"] == -0.25

    def test_percentiles_on_int_column(self):
        out = simple_frame().group_by("name", {"p50": ("count", "p50")})
        rows = {row["name"]: row for row in out.iter_rows()}
        assert rows["a"]["p50"] == 2.0      # median of (1, 3)

    @given(st.lists(
        st.floats(min_value=-1e9, max_value=1e9,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=40,
    ))
    @settings(max_examples=60, deadline=None)
    def test_percentiles_property(self, values):
        """Percentiles are ordered, bounded by min/max, and agree with
        np.percentile for any group content."""
        frame = ResultFrame.from_rows(
            [{"k": "g", "v": value} for value in values],
            schema(("k", "str"), ("v", "float")),
        )
        row = frame.group_by("k", {
            "low": ("v", "min"), "p50": ("v", "p50"),
            "p95": ("v", "p95"), "p99": ("v", "p99"),
            "high": ("v", "max"),
        }).row(0)
        assert row["low"] <= row["p50"] <= row["p95"] \
            <= row["p99"] <= row["high"]
        for stat, rank in (("p50", 50), ("p95", 95), ("p99", 99)):
            assert row[stat] == np.percentile(values, rank)


class TestDerivation:
    def test_with_column(self):
        frame = simple_frame().with_column(
            "doubled", "float", simple_frame()["value"] * 2
        )
        assert frame.row(0)["doubled"] == 3.0
        assert frame.schema[-1] == Column("doubled", "float")

    def test_with_column_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already exists"):
            simple_frame().with_column("name", "str", ["x", "y", "z"])


class TestSerialisation:
    def test_json_round_trip_is_lossless(self):
        frame = simple_frame()
        assert ResultFrame.from_json(frame.to_json()) == frame

    def test_float_bits_survive(self):
        values = [0.1 + 0.2, 1e-323, math.pi, float("inf"), float("nan")]
        frame = ResultFrame.from_rows(
            [{"x": v} for v in values], schema(("x", "float"))
        )
        back = ResultFrame.from_json(frame.to_json())
        assert back == frame
        for ours, theirs in zip(frame["x"], back["x"]):
            assert repr(ours) == repr(theirs)

    def test_csv_matches_csv_writer(self):
        frame = simple_frame()
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["name", "count", "value"])
        for row in frame.iter_rows():
            writer.writerow([row["name"], row["count"], row["value"]])
        assert frame.to_csv() == buffer.getvalue()

    def test_csv_skips_json_columns_by_default(self):
        assert "detail" not in frame_header(simple_frame().to_csv())

    def test_csv_explicit_columns(self):
        text = simple_frame().to_csv(columns=["value", "name"])
        assert frame_header(text) == ["value", "name"]

    def test_csv_writes_file(self, tmp_path):
        path = tmp_path / "frame.csv"
        text = simple_frame().to_csv(path)
        assert path.read_bytes().decode() == text

    def test_to_structured(self):
        array = simple_frame().to_structured()
        assert array.dtype.names == ("name", "count", "value")
        assert array["count"].tolist() == [1, 2, 3]
        assert array["name"].tolist() == ["a", "b", "a"]

    def test_store_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        frame = simple_frame()
        store.save_frame("unit", frame)
        assert store.load_frame("unit") == frame
        assert store.stats.get("frame", "writes") == 1
        assert store.stats.get("frame", "hits") == 1

    def test_store_miss_and_corruption(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.load_frame("absent") is None
        assert store.stats.get("frame", "misses") == 1
        store.save_frame("torn", simple_frame())
        path = store.frame_path("torn")
        path.write_text(path.read_text()[:20])          # torn write
        assert store.load_frame("torn") is None
        assert store.stats.get("frame", "corrupt") == 1
        assert not path.exists()                        # discarded

    def test_evaluation_schema_is_runner_row_layout(self):
        # the canonical JSON row and the frame schema must never drift:
        # the runner row delegates to the one evaluation_row definition,
        # whose fields are exactly the schema columns, in order
        import inspect

        from repro.api.session import evaluation_row
        from repro.lab.runner import result_to_dict

        assert "evaluation_row" in inspect.getsource(result_to_dict)
        source = inspect.getsource(evaluation_row)
        positions = [
            source.index(f'"{column.name}"')
            for column in EVALUATION_SCHEMA
        ]
        assert positions == sorted(positions)


def frame_header(text):
    return text.splitlines()[0].split(",")


ROW_STRATEGY = st.fixed_dictionaries({
    "name": st.text(
        alphabet=st.characters(codec="ascii", exclude_characters="\r\n,\""),
        max_size=8,
    ),
    "count": st.integers(min_value=-2**53, max_value=2**53),
    "value": st.floats(allow_nan=True, allow_infinity=True),
    "detail": st.recursive(
        st.none() | st.integers(max_value=2**53, min_value=-2**53)
        | st.text(max_size=6),
        lambda children: st.lists(children, max_size=3),
        max_leaves=4,
    ),
})


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(rows=st.lists(ROW_STRATEGY, max_size=12))
    def test_json_round_trip(self, rows):
        frame = ResultFrame.from_rows(rows, SIMPLE)
        assert ResultFrame.from_json(frame.to_json()) == frame

    @settings(max_examples=30, deadline=None)
    @given(rows=st.lists(ROW_STRATEGY, max_size=8))
    def test_rows_round_trip(self, rows):
        frame = ResultFrame.from_rows(rows, SIMPLE)
        again = ResultFrame.from_rows(frame.to_rows(), SIMPLE)
        assert again == frame

    @settings(max_examples=30, deadline=None)
    @given(rows=st.lists(ROW_STRATEGY, min_size=1, max_size=8),
           data=st.data())
    def test_where_partitions(self, rows, data):
        frame = ResultFrame.from_rows(rows, SIMPLE)
        name = data.draw(st.sampled_from(frame.distinct("name")))
        matching = frame.where(name=name)
        rest = frame.select(lambda row: row["name"] != name)
        assert len(matching) + len(rest) == len(frame)
        assert all(row["name"] == name for row in matching.iter_rows())
