"""Workload suite tests: kernels, suites, random generator coverage."""

import pytest

from repro.isa.classes import all_timing_classes
from repro.sim.iss import FunctionalSimulator
from repro.sim.pipeline import PipelineSimulator
from repro.workloads import all_kernels, get_kernel
from repro.workloads.coremark import coremark_reference
from repro.workloads.randomgen import (
    generate_characterization_program,
    generate_characterization_source,
)
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    benchmark_suite,
    characterization_suite,
    kernel_table,
    suite_names,
)


class TestKernelRegistry:
    def test_suite_size(self):
        assert len(all_kernels()) >= 17

    def test_all_benchmark_names_resolve(self):
        for name in BENCHMARK_NAMES:
            assert get_kernel(name).name == name

    def test_unknown_kernel_message(self):
        with pytest.raises(KeyError, match="available"):
            get_kernel("nope")

    def test_categories_diverse(self):
        categories = {kernel.category for kernel in all_kernels()}
        assert {"alu", "mul", "memory", "control", "mixed"} <= categories

    def test_kernel_table(self):
        rows = kernel_table()
        assert len(rows) == len(all_kernels())

    def test_verify_state_rejects_wrong_value(self):
        kernel = get_kernel("fib")
        simulator = FunctionalSimulator(kernel.program())
        with pytest.raises(AssertionError, match="r11"):
            kernel.verify_state(simulator.state)   # not yet run


class TestKernelExecution:
    @pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.name)
    def test_golden_reference(self, kernel):
        simulator = FunctionalSimulator(kernel.program())
        simulator.run()
        kernel.verify_state(simulator.state)

    def test_coremark_reference_value(self):
        assert 0 <= coremark_reference() <= 0xFFFF

    def test_programs_are_cached(self):
        kernel = get_kernel("crc32")
        assert kernel.program() is kernel.program()


class TestSuites:
    def test_benchmark_suite_assembles(self):
        programs = benchmark_suite()
        assert len(programs) == len(BENCHMARK_NAMES)
        assert suite_names() == list(BENCHMARK_NAMES)

    def test_characterization_suite_composition(self):
        programs = characterization_suite(random_programs=2)
        names = [program.name for program in programs]
        assert sum(1 for n in names if n.startswith("chargen")) == 2
        assert "crc32" in names


class TestRandomGenerator:
    def test_deterministic(self):
        a = generate_characterization_source(seed=9, length=150)
        b = generate_characterization_source(seed=9, length=150)
        assert a == b

    def test_seed_sensitivity(self):
        a = generate_characterization_source(seed=1, length=150)
        b = generate_characterization_source(seed=2, length=150)
        assert a != b

    def test_runs_to_halt_on_both_models(self):
        program = generate_characterization_program(
            seed=4, length=200, repeats=2
        )
        iss = FunctionalSimulator(program)
        iss.run()
        pipe = PipelineSimulator(program)
        pipe.run()
        assert iss.state.regs == pipe.state.regs

    def test_covers_every_timing_class(self):
        """The directed generator must exercise every LUT class (this is
        what makes the characterisation complete)."""
        program = generate_characterization_program(
            seed=1, length=400, repeats=1
        )
        pipe = PipelineSimulator(program)
        pipe.run()
        executed = set(pipe.trace.class_mix())
        missing = set(all_timing_classes()) - executed
        assert not missing, f"classes never executed: {missing}"

    def test_repeats_scale_cycles(self):
        one = PipelineSimulator(
            generate_characterization_program(seed=3, length=150, repeats=1)
        )
        one.run()
        three = PipelineSimulator(
            generate_characterization_program(seed=3, length=150, repeats=3)
        )
        three.run()
        assert three.trace.num_cycles > 2 * one.trace.num_cycles
