"""repro.stream: windowed traces, streaming equivalence, bounded state.

The acceptance property is strict bit-identity: a stream windowed at
*any* size must reproduce the offline engine's results exactly — frames
compare by their deterministic JSON export, so every float, every
violation record and every controller statistic must match.  The suite
drives every registry policy (plus a trained ``learned:`` model) and
every adapt scheme through window sizes {1, 7, 64, whole-program}, and
a Hypothesis property test over arbitrary window partitions.
"""

import json

import numpy as np
import pytest

from repro.adapt import EnvironmentModel
from repro.api import Session
from repro.dta.compiled import get_compiled_trace
from repro.ml.features import (
    WindowedFeatureExtractor,
    extract_features,
)
from repro.stream import (
    DEFAULT_MAX_WINDOWS,
    DEFAULT_WINDOW_CYCLES,
    StreamingSession,
    TraceWindow,
    iter_windows,
    kernel_source,
    ndjson_source,
    program_from_record,
    random_source,
    stream_fingerprint,
    stream_source_for,
    validate_stream_options,
    windows_from_sizes,
)
from repro.workloads import WorkloadError, program_stream, resolve_program

#: Two small kernels keep the full policy × window matrix fast.
PROGRAMS = ["fib", "crc16"]

#: Every registry policy (the ``learned:`` spec gets its own tests).
POLICIES = ["instruction", "static", "ex-only", "two-class", "genie"]

#: Window sizes that exercise the carry paths: single-cycle, a prime
#: that never divides the trace, a typical chunk, and whole-program.
WINDOW_SIZES = [1, 7, 64, None]

ENV = EnvironmentModel()


@pytest.fixture(scope="module")
def session():
    """One offline session (characterised once) shared by the module."""
    return Session()


@pytest.fixture(scope="module")
def offline_frame(session):
    return session.evaluate(
        PROGRAMS, policies=POLICIES, margins=[0.0, 2.0],
        check_safety=True,
    )


@pytest.fixture(scope="module")
def compiled(session):
    return get_compiled_trace(resolve_program("fib"), session.design)


class TestDriftArrayOffset:
    def test_offset_slices_match_full_array(self):
        full = ENV.drift_array(400)
        for start, stop in [(0, 400), (0, 1), (37, 154), (399, 400)]:
            np.testing.assert_array_equal(
                ENV.drift_array(stop - start, start=start),
                full[start:stop],
            )

    def test_window_partition_concatenates_exactly(self):
        full = ENV.drift_array(500)
        for size in (1, 7, 64, 500):
            parts = [
                ENV.drift_array(min(size, 500 - start), start=start)
                for start in range(0, 500, size)
            ]
            np.testing.assert_array_equal(np.concatenate(parts), full)

    def test_nonzero_start_crosses_droop_and_aging(self):
        # far enough out that temperature, droop and aging all differ
        window = ENV.drift_array(100, start=9_950)
        np.testing.assert_array_equal(
            window, ENV.drift_array(10_050)[9_950:]
        )

    def test_point_queries_agree(self):
        values = ENV.drift_array(50, start=123)
        for offset in (0, 17, 49):
            assert values[offset] == ENV.drift(123 + offset)


class TestProgramStream:
    def test_deterministic_per_seed(self):
        a = [p.words for p in program_stream(seed=5, length=80, count=4)]
        b = [p.words for p in program_stream(seed=5, length=80, count=4)]
        assert a == b

    def test_distinct_indices_differ(self):
        a, b = list(program_stream(seed=5, length=80, count=2))
        assert a.words != b.words

    def test_seeds_differ(self):
        a = next(iter(program_stream(seed=1, length=80)))
        b = next(iter(program_stream(seed=2, length=80)))
        assert a.words != b.words

    def test_unique_loops(self):
        programs = list(
            program_stream(seed=3, length=80, unique=2, count=5)
        )
        assert programs[0].words == programs[2].words == programs[4].words
        assert programs[1].words == programs[3].words
        assert programs[0].words != programs[1].words

    def test_count_zero_and_validation(self):
        assert list(program_stream(count=0)) == []
        with pytest.raises(ValueError):
            next(iter(program_stream(unique=0)))
        with pytest.raises(ValueError):
            next(iter(program_stream(count=-1)))

    def test_unbounded_is_lazy(self):
        stream = program_stream(seed=9, length=80)
        first = [next(stream) for _ in range(3)]
        assert len({p.name for p in first}) == 3


class TestTraceWindows:
    def test_windows_tile_the_trace(self, compiled):
        for size in (1, 7, 64, None):
            windows = list(iter_windows(compiled, size))
            assert windows[0].start_cycle == 0
            assert windows[-1].stop_cycle == compiled.num_cycles
            for prev, this in zip(windows, windows[1:]):
                assert this.start_cycle == prev.stop_cycle
            assert [w.index for w in windows] == list(range(len(windows)))
            assert sum(w.num_cycles for w in windows) == compiled.num_cycles

    def test_windows_are_views(self, compiled):
        window = next(iter_windows(compiled, 64))
        assert np.shares_memory(window.class_ids, compiled.class_ids)
        assert np.shares_memory(window.delays, compiled.delays)

    def test_window_delegates_match_parent(self, compiled):
        window = list(iter_windows(compiled, 64))[1]
        start = window.start_cycle
        np.testing.assert_array_equal(
            window.cycle_max_delays(),
            compiled.cycle_max_delays()[start:window.stop_cycle],
        )
        assert window.class_name_at(0, 0) == compiled.class_name_at(start, 0)

    def test_bounds_are_validated(self, compiled):
        with pytest.raises(ValueError):
            TraceWindow(compiled, -1, 4, index=0)
        with pytest.raises(ValueError):
            TraceWindow(compiled, 4, compiled.num_cycles + 1, index=0)
        with pytest.raises(ValueError):
            TraceWindow(compiled, 8, 4, index=0)

    def test_windows_from_sizes_must_cover(self, compiled):
        with pytest.raises(ValueError):
            list(windows_from_sizes(compiled, [compiled.num_cycles - 1]))
        sizes = [10, compiled.num_cycles - 10]
        windows = list(windows_from_sizes(compiled, sizes))
        assert [w.num_cycles for w in windows] == sizes


class TestWindowedFeatureExtractor:
    def test_matches_offline_features_across_partitions(self, compiled):
        offline = extract_features(compiled).matrix
        for size in (1, 7, 64, compiled.num_cycles):
            extractor = WindowedFeatureExtractor()
            parts = [
                extractor.extract(window).matrix
                for window in iter_windows(compiled, size)
            ]
            np.testing.assert_array_equal(np.vstack(parts), offline)

    def test_reset_clears_carry(self, compiled):
        extractor = WindowedFeatureExtractor()
        windows = list(iter_windows(compiled, 64))
        extractor.extract(windows[0])
        extractor.reset()
        fresh = extractor.extract(windows[0]).matrix
        np.testing.assert_array_equal(
            fresh, extract_features(compiled).matrix[:64]
        )


class TestStreamingEquivalence:
    @pytest.mark.parametrize("window", WINDOW_SIZES)
    def test_every_policy_bit_identical(self, session, offline_frame,
                                        window):
        streaming = StreamingSession(session, window_cycles=window)
        frame = streaming.evaluate(
            kernel_source(PROGRAMS), policies=POLICIES,
            margins=[0.0, 2.0], check_safety=True,
        )
        assert frame.to_json() == offline_frame.to_json()

    def test_configs_and_generators_path(self, session):
        offline = session.evaluate(
            ["fib"], policies=["instruction"], generators=["pll"],
            margins=[1.0],
        )
        streaming = StreamingSession(session, window_cycles=13)
        frame = streaming.evaluate(
            ["fib"], policies=["instruction"], generators=["pll"],
            margins=[1.0],
        )
        assert frame.to_json() == offline.to_json()

    def test_rolling_frames_accumulate(self, session):
        updates = []
        streaming = StreamingSession(
            session, window_cycles=64, on_window=updates.append
        )
        streaming.evaluate(["fib"], policies=["instruction"])
        assert [u.index for u in updates] == list(range(len(updates)))
        assert updates[-1].stream_cycles == sum(
            u.num_cycles for u in updates
        )
        cycles = [u.frame.row(0)["num_cycles"] for u in updates]
        assert cycles == sorted(cycles)        # cumulative per program

    def test_memory_bound_holds(self, session):
        streaming = StreamingSession(session, window_cycles=16,
                                     max_windows=3)
        streaming.evaluate(["fib"], policies=["instruction"])
        assert len(streaming.recent_windows) == 3

    def test_stream_evicts_owned_caches(self, session):
        from repro.dta.compiled import is_trace_cached
        from repro.sim import predecode
        from repro.stream import random_source

        programs = list(random_source(seed=17, count=6, length=200,
                                      repeats=1))
        streaming = StreamingSession(session, window_cycles=128,
                                     retain_traces=2)
        streaming.evaluate(programs, policies=["instruction"])
        # only the newest retain_traces programs stay cached; earlier
        # stream programs have both trace and decoded image evicted
        for program in programs[:-2]:
            assert not is_trace_cached(program, session.design,
                                       session.max_cycles)
            assert not predecode.is_image_cached(program)
        for program in programs[-2:]:
            assert is_trace_cached(program, session.design,
                                   session.max_cycles)
            assert predecode.is_image_cached(program)

    def test_stream_counters(self, session):
        from repro.obs import metrics as obs_metrics

        baseline = obs_metrics.gather()
        streaming = StreamingSession(session, window_cycles=64)
        streaming.evaluate(["fib"], policies=["instruction"])
        delta = obs_metrics.delta_since(baseline)
        assert delta["stream.programs"] == 1
        assert delta["stream.windows"] >= 1
        assert delta["stream.cycles"] == get_compiled_trace(
            resolve_program("fib"), session.design
        ).num_cycles

    def test_rejects_session_and_kwargs(self, session):
        with pytest.raises(ValueError):
            StreamingSession(session, voltage=0.8)
        with pytest.raises(ValueError):
            StreamingSession(session, window_cycles=0)


class TestStreamingAdapt:
    @pytest.fixture(scope="class")
    def offline_adapt(self, session):
        return session.adapt(PROGRAMS, ENV)

    @pytest.mark.parametrize("window", WINDOW_SIZES)
    def test_all_schemes_bit_identical(self, session, offline_adapt,
                                       window):
        streaming = StreamingSession(session, window_cycles=window)
        frame = streaming.adapt(kernel_source(PROGRAMS), ENV)
        assert frame.to_json() == offline_adapt.to_json()

    def test_update_interval_and_margin_forwarded(self, session):
        offline = session.adapt(
            ["fib"], ENV, schemes=["online"], update_interval=37,
            tracking_margin=0.04,
        )
        streaming = StreamingSession(session, window_cycles=50)
        frame = streaming.adapt(
            ["fib"], ENV, schemes=["online"], update_interval=37,
            tracking_margin=0.04,
        )
        assert frame.to_json() == offline.to_json()

    def test_rolling_adapt_frames_carry_scheme(self, session):
        updates = []
        streaming = StreamingSession(session, window_cycles=200)
        streaming.adapt(["fib"], ENV, schemes=["online"],
                        on_window=updates.append)
        assert updates and all(u.scheme == "online" for u in updates)
        assert updates[-1].frame.row(0)["lut_updates"] > 0


class TestLearnedStreaming:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        from repro.lab.scenario import ScenarioGrid
        from repro.ml.train import TrainerConfig, train_policy

        grid = ScenarioGrid(
            name="stream-ml", policies=("instruction", "static"),
            margins=(0.0,), voltages=(0.7,),
            workloads=("fib", "crc16"), check_safety=True,
        )
        outcome = train_policy(
            grid, TrainerConfig(calibration_workloads=("fib", "crc16"))
        )
        path = tmp_path_factory.mktemp("model") / "model.npz"
        outcome.model.save(path)
        return str(path)

    @pytest.mark.parametrize("window", [1, 64, None])
    def test_learned_policy_bit_identical(self, session, model_path,
                                          window):
        spec = f"learned:{model_path}"
        offline = session.evaluate(PROGRAMS, policies=[spec])
        streaming = StreamingSession(session, window_cycles=window)
        frame = streaming.evaluate(kernel_source(PROGRAMS),
                                   policies=[spec])
        assert frame.to_json() == offline.to_json()


class TestWindowPartitionProperty:
    """Hypothesis: ANY partition of the trace into windows yields the
    controller's whole-trace period sequence and statistics."""

    def test_arbitrary_partitions_preserve_controller_stats(
            self, session, compiled):
        from hypothesis import given, settings, strategies as st

        from repro.clocking.controller import ClockAdjustmentController
        from repro.clocking.policies import InstructionLutPolicy

        num_cycles = compiled.num_cycles
        reference = ClockAdjustmentController(
            InstructionLutPolicy(session.lut)
        )
        expected = np.asarray(
            reference.periods_for(compiled), dtype=float
        )
        expected_stats = reference.stats

        @settings(max_examples=30, deadline=None)
        @given(st.lists(st.integers(1, num_cycles), min_size=1,
                        max_size=40))
        def check(sizes):
            # clip the partition to exactly cover the trace
            total, clipped = 0, []
            for size in sizes:
                size = min(size, num_cycles - total)
                if size <= 0:
                    break
                clipped.append(size)
                total += size
            if total < num_cycles:
                clipped.append(num_cycles - total)
            controller = ClockAdjustmentController(
                InstructionLutPolicy(session.lut)
            )
            chunks = [
                np.asarray(controller.periods_for(window), dtype=float)
                for window in windows_from_sizes(compiled, clipped)
            ]
            np.testing.assert_array_equal(
                np.concatenate(chunks), expected
            )
            stats = controller.stats
            assert stats.total_time_ps == expected_stats.total_time_ps
            assert stats.min_period_ps == expected_stats.min_period_ps
            assert stats.max_period_ps == expected_stats.max_period_ps
            assert stats.switch_rate == expected_stats.switch_rate

        check()

    def test_random_window_sizes_full_frames(self, session):
        from hypothesis import given, settings, strategies as st

        offline = session.evaluate(["fib"], policies=["instruction"])

        @settings(max_examples=8, deadline=None)
        @given(st.integers(1, 4000))
        def check(window):
            streaming = StreamingSession(session, window_cycles=window)
            frame = streaming.evaluate(["fib"], policies=["instruction"])
            assert frame.to_json() == offline.to_json()

        check()


class TestSources:
    def test_kernel_source_resolves_names(self):
        programs = list(kernel_source(["fib"]))
        assert programs[0].name == "fib"

    def test_random_source_matches_program_stream(self):
        a = [p.words for p in random_source(seed=4, length=80, count=2)]
        b = [p.words for p in program_stream(seed=4, length=80, count=2)]
        assert a == b

    def test_ndjson_records(self):
        kernel = program_from_record({"kernel": "fib"})
        assert kernel.name == "fib"
        random = program_from_record(
            {"randomgen": {"seed": 2, "length": 80, "repeats": 1}}
        )
        assert random.size_words > 0
        with pytest.raises(WorkloadError):
            program_from_record({"nope": 1})
        with pytest.raises(WorkloadError):
            program_from_record([1, 2])

    def test_ndjson_source_skips_blanks_and_decodes_bytes(self):
        lines = [
            b'{"kernel": "fib"}',
            "",
            '{"randomgen": {"seed": 1, "length": 80, "repeats": 1}}\n',
        ]
        programs = list(ndjson_source(lines))
        assert len(programs) == 2
        assert programs[0].name == "fib"

    def test_ndjson_stream_evaluates_identically(self, session):
        offline = session.evaluate(["fib"], policies=["instruction"])
        feed = ['{"kernel": "fib"}']
        streaming = StreamingSession(session, window_cycles=32)
        frame = streaming.evaluate(ndjson_source(feed),
                                   policies=["instruction"])
        assert frame.to_json() == offline.to_json()


class TestStreamOptions:
    def test_defaults_are_canonical(self):
        options = validate_stream_options(None)
        assert options["window_cycles"] == DEFAULT_WINDOW_CYCLES
        assert options["max_windows"] == DEFAULT_MAX_WINDOWS
        assert options["source"] == "workloads"
        # canonical: validating twice is a fixed point
        assert validate_stream_options(options) == options

    def test_rejections(self):
        with pytest.raises(ValueError):
            validate_stream_options({"bogus": 1})
        with pytest.raises(ValueError):
            validate_stream_options({"window_cycles": 0})
        with pytest.raises(ValueError):
            validate_stream_options({"source": "nope"})
        with pytest.raises(ValueError):
            validate_stream_options(
                {"source": "randomgen"}, require_finite=True
            )
        # finite randomgen passes
        options = validate_stream_options(
            {"source": "randomgen", "count": 3}, require_finite=True
        )
        assert options["count"] == 3

    def test_fingerprint_covers_options(self):
        from repro.lab.scenario import ScenarioGrid

        grid = ScenarioGrid(name="fp", workloads=("fib",))
        a = stream_fingerprint(grid, {"window_cycles": 64})
        b = stream_fingerprint(grid, {"window_cycles": 128})
        c = stream_fingerprint(grid, {"window_cycles": 64})
        assert a == c != b
        assert a != grid.fingerprint()

    def test_source_for_grid(self):
        from repro.lab.scenario import ScenarioGrid

        grid = ScenarioGrid(name="src", workloads=("fib", "crc16"))
        names = [p.name for p in stream_source_for(grid, {})]
        assert names == ["fib", "crc16"]
        limited = [p.name for p in
                   stream_source_for(grid, {"count": 1})]
        assert limited == ["fib"]
        random = list(stream_source_for(
            grid, {"source": "randomgen", "count": 2, "length": 80}
        ))
        assert len(random) == 2


class TestServeStreamRegistry:
    """Registry-level stream-job plumbing (full HTTP integration lives
    in test_serve.py)."""

    def test_options_ride_the_job_and_payload(self, tmp_path):
        from repro.lab.store import ArtifactStore
        from repro.serve import JobRegistry
        from repro.serve.pool import job_payload

        class Config:
            store_root = tmp_path / "store"
            sweep_jobs = 1
            engine = "vector"
            telemetry = False

        registry = JobRegistry(ArtifactStore(tmp_path / "store"))
        options = validate_stream_options({"window_cycles": 64})
        job, deduped, cached = registry.submit(
            "stream", "fp", {"name": "g"}, "alice", options
        )
        assert job.options == options
        payload = job_payload(job, Config)
        assert payload["options"] == options
        registry.window_event(job, {"program": "fib", "window": 0})
        assert {"event": "window", "program": "fib",
                "window": 0} in job.events

    def test_stream_is_a_job_kind(self):
        from repro.serve import JOB_KINDS

        assert "stream" in JOB_KINDS


class TestCliTimeout:
    GRID = {"name": "cli", "workloads": ["fib"]}

    def _grid_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(self.GRID))
        return str(path)

    def test_submit_timeout_reaches_client(self, monkeypatch, tmp_path):
        import repro.serve as serve_mod
        from repro.cli import main

        captured = {}

        class FakeClient:
            def __init__(self, url, timeout=60.0):
                captured["timeout"] = timeout

            def submit(self, grid, *, kind, tenant, stream=None):
                raise OSError("offline")

        monkeypatch.setattr(serve_mod, "ServeClient", FakeClient)
        rc = main(["submit", "--grid", self._grid_file(tmp_path),
                   "--timeout", "12"])
        assert rc == 2
        assert captured["timeout"] == 12.0

    def test_stream_timeout_reaches_client(self, monkeypatch, tmp_path):
        import repro.serve as serve_mod
        from repro.cli import main

        captured = {}

        class FakeClient:
            def __init__(self, url, timeout=60.0):
                captured["timeout"] = timeout

            def submit(self, grid, *, kind, tenant, stream=None):
                captured["kind"] = kind
                captured["stream"] = stream
                raise OSError("offline")

        monkeypatch.setattr(serve_mod, "ServeClient", FakeClient)
        rc = main(["stream", "--url", "http://127.0.0.1:1",
                   "--grid", self._grid_file(tmp_path),
                   "--timeout", "7", "--window-cycles", "64"])
        assert rc == 2
        assert captured["timeout"] == 7.0
        assert captured["kind"] == "stream"
        assert captured["stream"]["window_cycles"] == 64
