"""Golden-trace regression corpus.

Small compiled traces — class attribution matrices, slot-state flags and
the ground-truth excited-delay matrix — are checked in under
``tests/golden/`` for three kernels at two operating points.  Any drift in
the pipeline model, the compiled-trace construction, the excitation model
or the library scaling changes at least one golden array and fails here
with the exact field that moved.

Refreshing the corpus after an *intentional* model change::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py \
        --update-golden

then commit the regenerated ``.npz`` files (and bump
``repro.lab.store.SCHEMA_VERSION`` — a model change invalidates persistent
artifact stores for exactly the same reason it moves these goldens).
"""

import pathlib

import numpy as np
import pytest

from repro.dta.compiled import compile_vector_run
from repro.sim import vector
from repro.timing.design import build_design
from repro.timing.profiles import DesignVariant
from repro.workloads.kernels import get_kernel

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Small, structurally diverse kernels: straight-line arithmetic with
#: loads (dotprod), byte swaps with shifts (halfswap), branchy recursion
#: pattern (fib).
KERNELS = ("fib", "halfswap", "dotprod")

#: (variant, voltage) operating points: the paper's evaluation corner and
#: a different profile at a scaled supply.
OPERATING_POINTS = (
    (DesignVariant.CRITICAL_RANGE, 0.70),
    (DesignVariant.CONVENTIONAL, 0.80),
)

#: Arrays persisted per golden trace.
ARRAY_FIELDS = (
    "class_ids", "bubble", "held", "stall", "redirect", "delays",
)

CASES = [
    (kernel, variant, voltage)
    for kernel in KERNELS
    for variant, voltage in OPERATING_POINTS
]


def _case_id(case):
    kernel, variant, voltage = case
    return f"{kernel}-{variant.value}-{voltage:.2f}V"


def _golden_path(case):
    return GOLDEN_DIR / f"{_case_id(case)}.npz"


def _compile_case(case):
    kernel, variant, voltage = case
    program = get_kernel(kernel).program()
    design = build_design(variant, voltage=voltage)
    run = vector.simulate(program)
    assert run is not None
    return compile_vector_run(run, design.excitation)


def _payload(compiled):
    payload = {
        "num_cycles": np.int64(compiled.num_cycles),
        "num_retired": np.int64(compiled.num_retired),
        "class_names": np.array(compiled.class_names, dtype=np.str_),
    }
    for name in ARRAY_FIELDS:
        payload[name] = (
            compiled.delays if name == "delays"
            else getattr(compiled, name)
        )
    return payload


@pytest.mark.parametrize("case", CASES, ids=_case_id)
def test_golden_trace(case, update_golden):
    compiled = _compile_case(case)
    path = _golden_path(case)

    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        np.savez_compressed(path, **_payload(compiled))
        pytest.skip(f"regenerated {path.name}")

    assert path.is_file(), (
        f"golden trace {path.name} missing — run with --update-golden"
    )
    with np.load(path, allow_pickle=False) as golden:
        assert int(golden["num_cycles"]) == compiled.num_cycles
        assert int(golden["num_retired"]) == compiled.num_retired
        assert tuple(str(n) for n in golden["class_names"]) == \
            compiled.class_names
        for name in ARRAY_FIELDS:
            actual = (
                compiled.delays if name == "delays"
                else getattr(compiled, name)
            )
            assert np.array_equal(golden[name], actual), (
                f"{_case_id(case)}: golden field {name!r} drifted "
                f"(re-run with --update-golden only if the model change "
                f"is intentional)"
            )
