"""Multiprocess stress: concurrent writers + readers + gc on one store.

The sweep service points many worker processes (and the server's own
threads) at one store root, with tenant budgets running :meth:`gc`
*while* artifacts are being written and read.  The store's contract
under that load:

- no process ever raises: vanished files, in-flight temp files and torn
  reads are all absorbed by the API (``None`` → recompute);
- every load returns either a valid artifact or ``None`` — never a
  partial/corrupt object;
- gc never deletes an in-flight temp file out from under a writer (a
  writer's ``os.replace`` would raise ``FileNotFoundError``).

Workers are spawned (not forked) — the same start method the service
uses — so this also covers re-import + store attach in a fresh process.
"""

import multiprocessing
import pathlib

from repro.lab.store import ArtifactStore

_MP = multiprocessing.get_context("spawn")

#: Artifact payload; big enough that writes take long enough to overlap
#: with gc scans, small enough to keep the test quick.
_BLOB = "x" * 8_000


def _writer(root, worker, rounds, errors):
    try:
        store = ArtifactStore(root)
        for index in range(rounds):
            store.save_result(f"stress-{worker}-{index}",
                              {"worker": worker, "index": index,
                               "blob": _BLOB})
    except BaseException as error:  # noqa: BLE001 — reported to parent
        errors.put(f"writer-{worker}: {type(error).__name__}: {error}")


def _reader(root, worker, rounds, writers, errors):
    try:
        store = ArtifactStore(root)
        for index in range(rounds):
            name = f"stress-{index % writers}-{index % 7}"
            payload = store.load_result(name)
            # miss (not yet written / evicted) is fine; a hit must be
            # complete — partial artifacts may never escape the store
            if payload is not None and payload.get("blob") != _BLOB:
                errors.put(f"reader-{worker}: torn read of {name!r}")
                return
    except BaseException as error:  # noqa: BLE001
        errors.put(f"reader-{worker}: {type(error).__name__}: {error}")


def _collector(root, rounds, budget, errors):
    try:
        store = ArtifactStore(root)
        for _ in range(rounds):
            result = store.gc(max_bytes=budget)
            if result.failed_files:
                errors.put(f"gc: {result.failed_files} failed unlinks")
                return
    except BaseException as error:  # noqa: BLE001
        errors.put(f"gc: {type(error).__name__}: {error}")


def test_concurrent_writers_readers_and_gc(tmp_path):
    root = str(tmp_path / "store")
    errors = _MP.Queue()
    writers = 3
    budget = 64_000        # a handful of artifacts: gc evicts constantly

    processes = [
        _MP.Process(target=_writer, args=(root, w, 40, errors))
        for w in range(writers)
    ] + [
        _MP.Process(target=_reader, args=(root, r, 120, writers, errors))
        for r in range(2)
    ] + [
        _MP.Process(target=_collector, args=(root, 25, budget, errors)),
        _MP.Process(target=_collector, args=(root, 25, budget, errors)),
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
    failures = []
    while not errors.empty():
        failures.append(errors.get())
    assert not failures, failures
    assert all(process.exitcode == 0 for process in processes)

    # steady state: no temp litter survives, every artifact that is
    # still present loads cleanly (served) and the rest are recomputable
    # misses by construction
    store = ArtifactStore(root)
    leftovers = [
        path for path in pathlib.Path(root).rglob("*")
        if path.is_file() and store._is_temp(path)
    ]
    assert not leftovers, leftovers
    served = 0
    for path in pathlib.Path(root).rglob("*.json"):
        if "results" not in str(path.parent):
            continue
        for worker in range(writers):
            for index in range(40):
                name = f"stress-{worker}-{index}"
                if store.result_path(name) == path:
                    payload = store.load_result(name)
                    assert payload is None or payload["blob"] == _BLOB
                    if payload is not None:
                        served += 1
    final = store.gc(max_bytes=0)
    assert final.failed_files == 0
