"""VCD-lite writer and switching-activity tests."""

import pytest

from repro.dta.vcd import count_value_changes, write_vcd
from repro.power.activity import (
    activity_scaled_power_uw,
    analyze_activity,
)
from repro.power.model import PowerModel
from repro.sim.pipeline import PipelineSimulator
from repro.workloads import get_kernel


def run_trace(name):
    pipe = PipelineSimulator(get_kernel(name).program())
    pipe.run()
    return pipe.trace


class TestVcd:
    def test_structure(self):
        text = write_vcd(run_trace("fib"))
        assert text.startswith("$date")
        assert "$enddefinitions $end" in text
        assert "$var wire 32 A ex_operand_a $end" in text
        assert "#0" in text

    def test_timestamps_cover_all_cycles(self):
        trace = run_trace("fib")
        text = write_vcd(trace)
        last_time = (trace.num_cycles - 1) * 2 + 1
        assert f"#{last_time}" in text

    def test_changes_only_on_change(self):
        """Value lines must only appear when a signal toggles."""
        trace = run_trace("fib")
        text = write_vcd(trace)
        changes = count_value_changes(text)
        # upper bound: every signal changing every cycle
        assert changes < trace.num_cycles * 11
        # lower bound: the clock alone toggles twice per cycle
        assert changes >= trace.num_cycles * 2

    def test_redirect_strobe_present(self):
        text = write_vcd(run_trace("statemachine"))
        assert "1r" in text and "0r" in text


class TestActivity:
    def test_report_fields(self):
        report = analyze_activity(run_trace("crc32"))
        assert report.num_cycles > 0
        assert report.mean_operand_toggles > 0
        assert 0 <= report.control_rate <= 1
        assert 0 <= report.multiplier_rate <= 1
        assert report.activity_factor > 0
        assert "activity" in report.summary()

    def test_mul_heavy_has_higher_mul_rate(self):
        matmult = analyze_activity(run_trace("matmult"))
        crc = analyze_activity(run_trace("crc32"))
        assert matmult.multiplier_rate > crc.multiplier_rate

    def test_suite_factors_near_unity(self):
        factors = [
            analyze_activity(run_trace(name)).activity_factor
            for name in ("crc32", "matmult", "bubblesort", "statemachine")
        ]
        mean = sum(factors) / len(factors)
        assert 0.5 < mean < 2.0

    def test_scaled_power(self):
        model = PowerModel()
        base = model.total_power_uw(0.70, 500.0)
        busy = activity_scaled_power_uw(model, 0.70, 500.0, 1.3)
        idle = activity_scaled_power_uw(model, 0.70, 500.0, 0.7)
        assert busy > base > idle
        # leakage is activity-independent
        assert idle > model.leakage_power_uw(0.70)

    def test_empty_trace_rejected(self):
        from repro.sim.trace import PipelineTrace
        with pytest.raises(ValueError):
            analyze_activity(PipelineTrace(program_name="empty"))
