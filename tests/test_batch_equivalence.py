"""Scalar-vs-vectorized equivalence of the compiled-trace batch engine.

The batch engine must be a pure acceleration: for every policy and every
workload kernel, ``periods_for(compiled_trace)`` must equal the per-record
``period_for(record)`` sequence *exactly* (same table lookups, same float
operations), and the batch :class:`EvaluationResult` must be bit-identical
to the scalar reference path — periods, aggregate stats, and violations.
"""

import numpy as np
import pytest

from repro.clocking.generator import (
    MultiPLLClockGenerator,
    TunableRingOscillator,
)
from repro.clocking.policies import (
    ExOnlyLutPolicy,
    GeniePolicy,
    InstructionLutPolicy,
    StaticClockPolicy,
    TwoClassPolicy,
)
from repro.dta.compiled import compile_trace, get_compiled_trace
from repro.flow.evaluate import (
    SweepConfig,
    evaluate_batch,
    evaluate_program,
    evaluate_program_scalar,
)
from repro.sim.pipeline import PipelineSimulator
from repro.workloads import all_kernels, get_kernel

ALL_KERNEL_NAMES = tuple(kernel.name for kernel in all_kernels())

POLICY_NAMES = ("static", "instruction", "ex-only", "two-class", "genie")


def _make_policy(name, design, lut):
    if name == "static":
        return StaticClockPolicy(design.static_period_ps)
    if name == "instruction":
        return InstructionLutPolicy(lut)
    if name == "ex-only":
        return ExOnlyLutPolicy(lut)
    if name == "two-class":
        return TwoClassPolicy(lut)
    if name == "genie":
        return GeniePolicy(design.excitation)
    raise AssertionError(name)


@pytest.fixture(scope="module")
def compiled_traces(design):
    """One compiled trace per kernel, shared by every policy comparison."""
    return {
        name: get_compiled_trace(get_kernel(name).program(), design)
        for name in ALL_KERNEL_NAMES
    }


class TestPeriodEquivalence:
    """periods_for == [period_for(r) for r in records], exactly, for every
    policy × every workload kernel."""

    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    def test_policy_matches_scalar_on_every_kernel(
            self, design, lut, compiled_traces, policy_name):
        policy = _make_policy(policy_name, design, lut)
        for kernel_name, compiled in compiled_traces.items():
            vectorized = policy.periods_for(compiled)
            scalar = np.array([
                policy.period_for(record)
                for record in compiled.trace.records
            ])
            assert vectorized.shape == scalar.shape, kernel_name
            mismatches = np.nonzero(vectorized != scalar)[0]
            assert mismatches.size == 0, (
                f"{policy_name} on {kernel_name}: first mismatch at cycle "
                f"{mismatches[0] if mismatches.size else '-'}"
            )


class TestResultEquivalence:
    """Full EvaluationResult bit-identity of batch vs. scalar reference."""

    KERNELS = ("crc32", "matmult", "statemachine", "gcd")

    def _assert_identical(self, scalar, batch):
        assert scalar.program_name == batch.program_name
        assert scalar.policy_name == batch.policy_name
        assert scalar.num_cycles == batch.num_cycles
        assert scalar.num_retired == batch.num_retired
        assert scalar.total_time_ps == batch.total_time_ps
        assert scalar.static_period_ps == batch.static_period_ps
        assert scalar.min_period_ps == batch.min_period_ps
        assert scalar.max_period_ps == batch.max_period_ps
        assert scalar.switch_rate == batch.switch_rate
        assert scalar.speedup_percent == batch.speedup_percent
        assert scalar.average_period_ps == batch.average_period_ps
        assert len(scalar.violations) == len(batch.violations)
        for expected, actual in zip(scalar.violations, batch.violations):
            assert expected.cycle == actual.cycle
            assert expected.stage == actual.stage
            assert expected.applied_period_ps == actual.applied_period_ps
            assert expected.excited_delay_ps == actual.excited_delay_ps
            assert expected.driver_class == actual.driver_class

    @pytest.mark.parametrize("name", KERNELS)
    def test_instruction_policy(self, design, lut, name):
        program = get_kernel(name).program()
        policy = InstructionLutPolicy(lut)
        self._assert_identical(
            evaluate_program_scalar(program, design, policy),
            evaluate_program(program, design, policy),
        )

    def test_margin_and_ring_generator(self, design, lut):
        program = get_kernel("crc32").program()
        policy = InstructionLutPolicy(lut)
        kwargs = dict(
            generator=TunableRingOscillator(), margin_percent=7.5,
        )
        self._assert_identical(
            evaluate_program_scalar(program, design, policy, **kwargs),
            evaluate_program(program, design, policy, **kwargs),
        )

    def test_pll_generator(self, design, lut):
        program = get_kernel("fib").program()
        policy = InstructionLutPolicy(lut)
        kwargs = dict(generator=MultiPLLClockGenerator())
        self._assert_identical(
            evaluate_program_scalar(program, design, policy, **kwargs),
            evaluate_program(program, design, policy, **kwargs),
        )

    def test_violations_identical_when_overscaled(self, design):
        """Violation records — cycles, stages, driver classes — must match
        when the clock is deliberately 20 % too fast."""
        program = get_kernel("matmult").program()
        policy = StaticClockPolicy(design.static_period_ps * 0.80)
        scalar = evaluate_program_scalar(program, design, policy)
        batch = evaluate_program(program, design, policy)
        assert not scalar.is_safe
        self._assert_identical(scalar, batch)

    def test_genie_policy(self, design, lut):
        program = get_kernel("statemachine").program()
        policy = GeniePolicy(design.excitation)
        self._assert_identical(
            evaluate_program_scalar(program, design, policy),
            evaluate_program(program, design, policy),
        )


class TestBatchEngine:
    def test_grid_shape_and_order(self, design, lut):
        programs = [get_kernel(n).program() for n in ("fib", "crc16")]
        configs = [
            SweepConfig(policy=lambda: InstructionLutPolicy(lut),
                        check_safety=False, label="lut"),
            SweepConfig(policy=lambda: TwoClassPolicy(lut),
                        check_safety=False, label="two-class"),
            SweepConfig(policy=lambda: InstructionLutPolicy(lut),
                        margin_percent=10.0, check_safety=False,
                        label="lut+margin"),
        ]
        with pytest.warns(DeprecationWarning):
            grid = evaluate_batch(programs, design, configs)
        assert len(grid) == len(configs)
        for row in grid:
            assert [r.program_name for r in row] == ["fib", "crc16"]
        # margin strictly slows the same policy down
        assert (grid[2][0].average_period_ps
                == pytest.approx(grid[0][0].average_period_ps * 1.10))

    def test_batch_matches_scalar_sweep(self, design, lut):
        programs = [get_kernel(n).program() for n in ("fib", "memcpy")]
        config = SweepConfig(
            policy=lambda: InstructionLutPolicy(lut), check_safety=True,
        )
        with pytest.warns(DeprecationWarning):
            batch_row = evaluate_batch(programs, design, [config])[0]
        for program, batch in zip(programs, batch_row):
            scalar = evaluate_program_scalar(
                program, design, InstructionLutPolicy(lut)
            )
            assert scalar.total_time_ps == batch.total_time_ps
            assert scalar.min_period_ps == batch.min_period_ps
            assert len(scalar.violations) == len(batch.violations)

    def test_policy_without_periods_for_falls_back(self, design):
        """Policies that only implement the scalar protocol still work."""

        class OddPolicy:
            name = "odd"

            def __init__(self, period_ps):
                self.period_ps = period_ps

            def period_for(self, record):
                return self.period_ps + (record.cycle % 2)

        program = get_kernel("fib").program()
        policy = OddPolicy(design.static_period_ps)
        scalar = evaluate_program_scalar(
            program, design, policy, check_safety=False
        )
        batch = evaluate_program(program, design, policy, check_safety=False)
        assert scalar.total_time_ps == batch.total_time_ps
        assert scalar.switch_rate == batch.switch_rate


class TestOverscalingEquivalence:
    """The over-scaling evaluation (approx/violations.py) runs on the
    compiled trace; it must reproduce the scalar per-record reference
    bit-identically — counts, dict build order, and every synthesised
    approximate result."""

    @pytest.mark.parametrize("factor", (1.0, 0.94, 0.88))
    def test_overscaling_report_bit_identical(self, design, lut, factor):
        from repro.approx.violations import (
            evaluate_overscaling,
            evaluate_overscaling_scalar,
        )

        program = get_kernel("crc32").program()
        fast = evaluate_overscaling(program, design, lut, factor)
        slow = evaluate_overscaling_scalar(program, design, lut, factor)

        assert fast.program_name == slow.program_name
        assert fast.num_cycles == slow.num_cycles
        assert fast.total_time_ps == slow.total_time_ps
        assert fast.violation_cycles == slow.violation_cycles
        assert fast.violations_by_stage == slow.violations_by_stage
        assert fast.violations_by_class == slow.violations_by_class
        # dict build order too: first-violation order is part of the API
        assert (list(fast.violations_by_stage)
                == list(slow.violations_by_stage))
        assert (list(fast.violations_by_class)
                == list(slow.violations_by_class))
        assert len(fast.approx_results) == len(slow.approx_results)
        for ours, reference in zip(fast.approx_results,
                                   slow.approx_results):
            assert ours.cycle == reference.cycle
            assert ours.mnemonic == reference.mnemonic
            assert ours.exact_value == reference.exact_value
            assert ours.approx_value == reference.approx_value
            assert ours.corrupted_bits == reference.corrupted_bits
        assert fast.mean_relative_error == slow.mean_relative_error

    def test_overscaled_run_actually_violates(self, design, lut):
        """Sanity: the equivalence above is not vacuous — the overscaled
        factor really produces violations and corrupted EX results."""
        from repro.approx.violations import evaluate_overscaling

        program = get_kernel("matmult").program()
        report = evaluate_overscaling(program, design, lut, 0.88)
        assert report.violation_cycles > 0
        assert report.approx_results
        assert report.violation_rate > 0


class TestCompiledTrace:
    def test_class_ids_match_attribution(self, design):
        from repro.dta.extraction import attribute_cycle
        from repro.sim.trace import Stage

        trace = PipelineSimulator(get_kernel("fib").program()).run()
        compiled = compile_trace(trace, design.excitation)
        for record in trace.records[:50]:
            classes = attribute_cycle(record)
            for stage in Stage:
                assert (
                    compiled.class_names[
                        compiled.class_ids[record.cycle, stage]
                    ]
                    == classes[stage]
                )

    def test_delays_match_excitation(self, design):
        from repro.sim.trace import Stage

        trace = PipelineSimulator(get_kernel("fib").program()).run()
        compiled = compile_trace(trace, design.excitation)
        delays = compiled.delays
        for record in trace.records[:50]:
            for stage in Stage:
                expected = design.excitation.group_delay(
                    record, stage
                ).delay_ps
                assert delays[record.cycle, stage] == expected

    def test_cache_reuses_compiled_trace(self, design):
        program = get_kernel("fib").program()
        first = get_compiled_trace(program, design)
        again = get_compiled_trace(
            get_kernel("fib").program(), design
        )
        assert first is again   # content-keyed, not identity-keyed

    def test_genie_bound_shared_with_analyzer(self, design):
        """The genie reduction is literally the same code for the compiled
        delay matrix and the DTA analyzer (satellite: dedup oracle)."""
        from repro.dta.compiled import worst_per_cycle

        trace = PipelineSimulator(get_kernel("fib").program()).run()
        compiled = compile_trace(trace, design.excitation)
        cycle_max, limiting = worst_per_cycle(compiled.delays)
        assert cycle_max.shape == (trace.num_cycles,)
        assert (cycle_max == compiled.cycle_max_delays()).all()
        assert limiting.max() < 6


class TestOnlineAdaptEquivalence:
    """Scalar-vs-array equivalence of the drift-aware online adapter.

    The vectorized ``adapt.online`` engine consumes compiled-trace arrays;
    it must reproduce the per-record reference walk bit-for-bit — the full
    applied-period sequence (including every mid-trace LUT rescale the
    monitor performs), the aggregate time, the violation count and the
    update/drift bookkeeping.
    """

    @pytest.fixture(scope="class")
    def adapt_env(self):
        from repro.adapt.environment import EnvironmentModel

        return EnvironmentModel()

    def _compare(self, program, design, lut, environment, **kwargs):
        from repro.adapt.online import evaluate_with_drift

        reference = evaluate_with_drift(
            program, design, lut, environment, engine="record", **kwargs
        )
        fast = evaluate_with_drift(
            program, design, lut, environment, engine="array", **kwargs
        )
        assert fast.num_cycles == reference.num_cycles
        assert fast.total_time_ps == reference.total_time_ps
        assert fast.violations == reference.violations
        assert fast.lut_updates == reference.lut_updates
        assert fast.max_drift_seen == reference.max_drift_seen
        assert fast.periods == reference.periods
        return reference

    @pytest.mark.parametrize("scheme", ["fixed-none", "fixed-guard",
                                        "online"])
    @pytest.mark.parametrize("kernel", ["fib", "crc16"])
    def test_schemes_bit_identical(self, design, lut, adapt_env, scheme,
                                   kernel):
        self._compare(
            get_kernel(kernel).program(), design, lut, adapt_env,
            scheme=scheme,
        )

    def test_mid_trace_policy_switches(self, design, lut, adapt_env):
        """Frequent monitor updates rescale the prediction policy many
        times mid-trace — including intervals that do not divide the
        cycle count — and every rescale point must line up exactly."""
        program = get_kernel("statemachine").program()
        for interval in (1, 7, 150, 997):
            reference = self._compare(
                program, design, lut, adapt_env,
                scheme="online", update_interval=interval,
            )
            assert reference.lut_updates == -(
                -reference.num_cycles // interval
            )

    def test_tracking_margin_and_drift_shapes(self, design, lut):
        from repro.adapt.environment import EnvironmentModel

        quiet = EnvironmentModel(
            temperature_amplitude=0.01, droop_amplitude=0.0,
            aging_total=0.05, horizon_cycles=2_000,
        )
        self._compare(
            get_kernel("fib").program(), design, lut, quiet,
            scheme="online", update_interval=40, tracking_margin=0.004,
        )

    def test_nominal_environment(self, design, lut):
        from repro.adapt.environment import EnvironmentModel

        self._compare(
            get_kernel("fib").program(), design, lut,
            EnvironmentModel.nominal(), scheme="fixed-none",
        )

    def test_drift_array_matches_scalar_walk(self, adapt_env):
        values = adapt_env.drift_array(4_000)
        for cycle in range(0, 4_000, 97):
            assert values[cycle] == adapt_env.drift(cycle)
