"""Semantics tests: every instruction kind, plus property checks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.instruction import Instruction
from repro.isa.semantics import (
    SemanticsError,
    compute,
    load_extract,
)
from repro.utils.bitops import to_signed32, to_unsigned32

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


def run(mnemonic, a=0, b=0, imm=0, flag=False, carry=False, pc=0x100,
        rd=3, ra=4, rb=5):
    instruction = Instruction(mnemonic, rd=rd, ra=ra, rb=rb, imm=imm)
    return compute(instruction, a, b, flag, carry, pc)


class TestArithmetic:
    def test_add(self):
        assert run("l.add", a=2, b=3).value == 5

    def test_add_wraps_and_sets_carry(self):
        result = run("l.add", a=0xFFFFFFFF, b=1)
        assert result.value == 0
        assert result.carry is True

    def test_addi_sign_extended(self):
        assert run("l.addi", a=10, imm=-3).value == 7

    def test_addc_consumes_carry(self):
        assert run("l.addc", a=1, b=1, carry=True).value == 3
        assert run("l.addc", a=1, b=1, carry=False).value == 2

    def test_sub(self):
        assert run("l.sub", a=5, b=7).value == to_unsigned32(-2)
        assert run("l.sub", a=5, b=7).carry is True   # borrow

    @given(a=u32, b=u32)
    def test_add_matches_python(self, a, b):
        assert run("l.add", a=a, b=b).value == (a + b) & 0xFFFFFFFF

    @given(a=u32, b=u32)
    def test_sub_add_inverse(self, a, b):
        total = run("l.add", a=a, b=b).value
        assert run("l.sub", a=total, b=b).value == a


class TestLogic:
    def test_and_or_xor(self):
        assert run("l.and", a=0b1100, b=0b1010).value == 0b1000
        assert run("l.or", a=0b1100, b=0b1010).value == 0b1110
        assert run("l.xor", a=0b1100, b=0b1010).value == 0b0110

    def test_andi_zero_extends(self):
        assert run("l.andi", a=0xFFFFFFFF, imm=0xFFFF).value == 0xFFFF

    def test_xori_sign_extends(self):
        assert run("l.xori", a=0, imm=-1).value == 0xFFFFFFFF

    @given(a=u32)
    def test_xor_self_inverse(self, a):
        assert run("l.xor", a=a, b=a).value == 0


class TestShifts:
    def test_sll(self):
        assert run("l.slli", a=1, imm=4).value == 16
        assert run("l.sll", a=1, b=31).value == 0x80000000

    def test_srl_vs_sra(self):
        assert run("l.srli", a=0x80000000, imm=31).value == 1
        assert run("l.srai", a=0x80000000, imm=31).value == 0xFFFFFFFF

    def test_shift_amount_masked_to_5_bits(self):
        assert run("l.sll", a=1, b=33).value == 2   # 33 & 31 == 1

    def test_ror(self):
        assert run("l.rori", a=1, imm=1).value == 0x80000000

    @given(a=u32, amount=st.integers(min_value=0, max_value=31))
    def test_srl_matches_python(self, a, amount):
        assert run("l.srl", a=a, b=amount).value == a >> amount


class TestMultiplyDivide:
    def test_mul_signed(self):
        assert run("l.mul", a=to_unsigned32(-3), b=5).value == to_unsigned32(-15)

    def test_mulu_low_word(self):
        result = run("l.mulu", a=0xFFFFFFFF, b=2)
        assert result.value == 0xFFFFFFFE

    def test_muli(self):
        assert run("l.muli", a=7, imm=-2).value == to_unsigned32(-14)

    def test_div_signed_truncates_toward_zero(self):
        assert run("l.div", a=7, b=2).value == 3
        assert run("l.div", a=to_unsigned32(-7), b=2).value == to_unsigned32(-3)

    def test_divu(self):
        assert run("l.divu", a=0xFFFFFFFE, b=2).value == 0x7FFFFFFF

    def test_div_by_zero_defined(self):
        assert run("l.div", a=7, b=0).value == 0xFFFFFFFF
        assert run("l.divu", a=7, b=0).value == 0xFFFFFFFF

    @given(a=u32, b=u32)
    def test_mul_matches_python(self, a, b):
        expected = (to_signed32(a) * to_signed32(b)) & 0xFFFFFFFF
        assert run("l.mul", a=a, b=b).value == expected


class TestMoves:
    def test_movhi(self):
        assert run("l.movhi", imm=0x1234).value == 0x12340000

    def test_extensions(self):
        assert run("l.exths", a=0x8000).value == 0xFFFF8000
        assert run("l.extbs", a=0x80).value == 0xFFFFFF80
        assert run("l.exthz", a=0xABCD1234).value == 0x1234
        assert run("l.extbz", a=0xABCD1234).value == 0x34

    def test_cmov(self):
        assert run("l.cmov", a=1, b=2, flag=True).value == 1
        assert run("l.cmov", a=1, b=2, flag=False).value == 2

    def test_ff1(self):
        assert run("l.ff1", a=0).value == 0
        assert run("l.ff1", a=1).value == 1
        assert run("l.ff1", a=0x80000000).value == 32
        assert run("l.ff1", a=0b1100).value == 3


class TestSetFlag:
    def test_signed_vs_unsigned(self):
        minus_one = to_unsigned32(-1)
        assert run("l.sfgts", a=1, b=minus_one).flag is True
        assert run("l.sfgtu", a=1, b=minus_one).flag is False

    def test_eq_ne(self):
        assert run("l.sfeq", a=5, b=5).flag is True
        assert run("l.sfne", a=5, b=5).flag is False

    def test_immediate_forms(self):
        assert run("l.sfltsi", a=to_unsigned32(-5), imm=0).flag is True
        assert run("l.sfltui", a=5, imm=10).flag is True
        assert run("l.sfgesi", a=0, imm=0).flag is True

    @given(a=u32, b=u32)
    def test_trichotomy(self, a, b):
        lt = run("l.sfltu", a=a, b=b).flag
        eq = run("l.sfeq", a=a, b=b).flag
        gt = run("l.sfgtu", a=a, b=b).flag
        assert [lt, eq, gt].count(True) == 1


class TestMemoryOps:
    def test_load_effective_address(self):
        result = run("l.lwz", a=0x1000, imm=-4)
        assert result.mem_addr == 0xFFC
        assert result.mem_size == 4

    def test_store_truncates_value(self):
        result = run("l.sb", a=0x100, b=0x1FF, imm=0)
        assert result.store_value == 0xFF
        assert result.mem_size == 1

    def test_misaligned_access_rejected(self):
        with pytest.raises(SemanticsError):
            run("l.lwz", a=2, imm=0)
        with pytest.raises(SemanticsError):
            run("l.sh", a=1, imm=0)

    def test_load_extract_variants(self):
        assert load_extract("l.lwz", 0x80000000) == 0x80000000
        assert load_extract("l.lbs", 0x80) == 0xFFFFFF80
        assert load_extract("l.lbz", 0x80) == 0x80
        assert load_extract("l.lhs", 0x8000) == 0xFFFF8000
        assert load_extract("l.lhz", 0x8000) == 0x8000


class TestControl:
    def test_jump_target_pc_relative(self):
        result = run("l.j", imm=4, pc=0x100)
        assert result.branch_taken is True
        assert result.branch_target == 0x110

    def test_backward_jump(self):
        result = run("l.j", imm=-4, pc=0x100)
        assert result.branch_target == 0xF0

    def test_jal_links_past_delay_slot(self):
        result = run("l.jal", imm=4, pc=0x100)
        assert result.link_value == 0x108

    def test_branch_on_flag(self):
        assert run("l.bf", imm=2, flag=True).branch_taken is True
        assert run("l.bf", imm=2, flag=False).branch_taken is False
        assert run("l.bnf", imm=2, flag=False).branch_taken is True

    def test_jr_target_from_register(self):
        result = run("l.jr", b=0x2000)
        assert result.branch_target == 0x2000

    def test_jr_misaligned_rejected(self):
        with pytest.raises(SemanticsError):
            run("l.jr", b=0x2001)

    def test_nop_has_no_effects(self):
        result = run("l.nop")
        assert result.value is None
        assert result.flag is None
        assert result.branch_taken is None
