"""Figure-data CSV export tests."""

import csv

from repro.dta.histograms import class_stage_delays
from repro.flow.figures import (
    export_all,
    fig5_series,
    fig6_series,
    fig7_series,
    fig8_series,
    write_csv,
)
from repro.clocking.policies import InstructionLutPolicy
from repro.flow.evaluate import evaluate_suite
from repro.sim.trace import Stage
from repro.workloads import get_kernel


class TestSeries:
    def test_fig5(self, characterization):
        header, rows = fig5_series(characterization.runs[0].dta)
        assert header == ("delay_ps", "cycles")
        assert sum(count for _, count in rows) > 0

    def test_fig6(self, characterization):
        header, rows = fig6_series(characterization.runs[0].dta)
        assert [row[0] for row in rows] == [s.name for s in Stage]
        assert abs(sum(row[1] for row in rows) - 1.0) < 1e-4

    def test_fig7(self, characterization):
        run = characterization.run_named("matmult")
        samples = class_stage_delays(run.dta, run.trace, "l.mul(i)")
        header, rows = fig7_series(samples)
        assert header[0] == "delay_ps"
        assert len(header) == 7

    def test_fig8(self, design, lut):
        results = evaluate_suite(
            [get_kernel("fib").program()], design,
            lambda: InstructionLutPolicy(lut), check_safety=False,
        )
        header, rows = fig8_series(results, design.static_period_ps)
        assert rows[0][0] == "fib"
        assert rows[0][2] > rows[0][1]   # dynamic beats conventional


class TestWriting:
    def test_write_csv(self, tmp_path, characterization):
        header, rows = fig6_series(characterization.runs[0].dta)
        path = tmp_path / "fig6.csv"
        write_csv(path, header, rows)
        with open(path) as handle:
            parsed = list(csv.reader(handle))
        assert parsed[0] == list(header)
        assert len(parsed) == len(rows) + 1

    def test_export_all(self, tmp_path, characterization, design, lut):
        run = characterization.run_named("matmult")
        samples = class_stage_delays(run.dta, run.trace, "l.mul(i)")
        results = evaluate_suite(
            [get_kernel("fib").program()], design,
            lambda: InstructionLutPolicy(lut), check_safety=False,
        )
        written = export_all(
            tmp_path / "figures", run.dta, samples, results,
            design.static_period_ps,
        )
        assert set(written) == {"fig5", "fig6", "fig7", "fig8"}
        for path in written.values():
            assert path.exists()
