"""Tests for unit conversions and table rendering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.tables import format_table
from repro.utils.units import (
    mhz_to_ps,
    ps_to_mhz,
    speedup_percent,
    uw_per_mhz,
)


class TestUnits:
    def test_paper_static_point(self):
        # 2026 ps is the paper's 494 MHz static limit
        assert ps_to_mhz(2026.0) == pytest.approx(493.6, abs=0.1)

    def test_paper_dynamic_point(self):
        assert mhz_to_ps(680.0) == pytest.approx(1470.6, abs=0.1)

    @given(st.floats(min_value=1.0, max_value=1e7))
    def test_roundtrip(self, period):
        assert mhz_to_ps(ps_to_mhz(period)) == pytest.approx(period)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ps_to_mhz(0.0)
        with pytest.raises(ValueError):
            mhz_to_ps(-1.0)
        with pytest.raises(ValueError):
            uw_per_mhz(10.0, 0.0)

    def test_speedup_percent_paper_genie(self):
        assert speedup_percent(2026.0, 1334.0) == pytest.approx(51.9, abs=0.1)

    def test_uw_per_mhz(self):
        assert uw_per_mhz(6767.8, 494.0) == pytest.approx(13.7, abs=0.01)


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["name", "value"],
            [("a", 1), ("long-name", 22)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-name" in text
        assert "22" in text

    def test_float_formatting(self):
        text = format_table(["x"], [(1.23456,)])
        assert "1.23" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [("only-one",)])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text
