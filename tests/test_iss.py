"""Functional ISS tests: sequencing, delay slots, halting, errors."""

import pytest

from repro.asm import assemble
from repro.sim.iss import FunctionalSimulator, SimulationError, run_program


def run_source(source, **kwargs):
    return run_program(assemble(source), **kwargs)


class TestSequencing:
    def test_straight_line(self):
        simulator = run_source(
            "l.addi r1, r0, 5\n"
            "l.addi r2, r1, 6\n"
            "l.nop 0x1\n"
        )
        assert simulator.state.regs[1] == 5
        assert simulator.state.regs[2] == 11
        assert simulator.state.instret == 3

    def test_r0_stays_zero(self):
        simulator = run_source("l.addi r0, r0, 7\nl.nop 0x1\n")
        assert simulator.state.regs[0] == 0

    def test_memory_readback(self):
        simulator = run_source(
            "l.addi r1, r0, 0x40\n"
            "l.addi r2, r0, 99\n"
            "l.sw   0(r1), r2\n"
            "l.lwz  r3, 0(r1)\n"
            "l.nop  0x1\n"
        )
        assert simulator.state.regs[3] == 99


class TestDelaySlots:
    def test_taken_branch_executes_slot(self):
        simulator = run_source(
            "    l.sfeq r0, r0\n"       # flag := 1
            "    l.bf   target\n"
            "    l.addi r1, r0, 11\n"   # delay slot must execute
            "    l.addi r2, r0, 22\n"   # skipped
            "target:\n"
            "    l.addi r3, r0, 33\n"
            "    l.nop  0x1\n"
        )
        assert simulator.state.regs[1] == 11
        assert simulator.state.regs[2] == 0
        assert simulator.state.regs[3] == 33

    def test_not_taken_branch_falls_through(self):
        simulator = run_source(
            "    l.sfne r0, r0\n"       # flag := 0
            "    l.bf   away\n"
            "    l.addi r1, r0, 1\n"
            "    l.addi r2, r0, 2\n"
            "    l.nop  0x1\n"
            "away:\n"
            "    l.nop  0x1\n"
        )
        assert simulator.state.regs[1] == 1
        assert simulator.state.regs[2] == 2

    def test_jal_sets_link_past_slot(self):
        simulator = run_source(
            "    l.jal sub\n"
            "    l.nop\n"
            "    l.addi r1, r0, 1\n"    # return lands here (pc 8)
            "    l.nop 0x1\n"
            "sub:\n"
            "    l.jr  r9\n"
            "    l.addi r2, r0, 2\n"    # delay slot of the return
        )
        assert simulator.state.regs[9] == 8
        assert simulator.state.regs[1] == 1
        assert simulator.state.regs[2] == 2

    def test_control_in_delay_slot_rejected(self):
        with pytest.raises(SimulationError, match="delay slot"):
            run_source(
                "    l.j a\n"
                "    l.j b\n"
                "a:\n    l.nop 0x1\n"
                "b:\n    l.nop 0x1\n"
            )

    def test_loop_iteration_count(self):
        simulator = run_source(
            "    l.addi r1, r0, 5\n"
            "    l.addi r2, r0, 0\n"
            "loop:\n"
            "    l.addi r2, r2, 1\n"
            "    l.addi r1, r1, -1\n"
            "    l.sfgtsi r1, 0\n"
            "    l.bf  loop\n"
            "    l.nop\n"
            "    l.nop 0x1\n"
        )
        assert simulator.state.regs[2] == 5


class TestHaltAndErrors:
    def test_halt_stops_execution(self):
        simulator = run_source("l.nop 0x1\nl.addi r1, r0, 1\n")
        assert simulator.halted
        assert simulator.state.regs[1] == 0

    def test_step_after_halt_rejected(self):
        simulator = run_source("l.nop 0x1\n")
        with pytest.raises(SimulationError, match="halted"):
            simulator.step()

    def test_runaway_guard(self):
        program = assemble("spin:\n l.j spin\n l.nop\n")
        simulator = FunctionalSimulator(program)
        with pytest.raises(SimulationError, match="exceeded"):
            simulator.run(max_steps=100)

    def test_undecodable_fetch_rejected(self):
        program = assemble(".word 0xFFFFFFFF\n")
        simulator = FunctionalSimulator(program)
        with pytest.raises(SimulationError, match="decode"):
            simulator.step()

    def test_retired_trace_order(self):
        simulator = run_source(
            "l.addi r1, r0, 1\nl.addi r2, r0, 2\nl.nop 0x1\n"
        )
        mnemonics = [i.mnemonic for i in simulator.retired_trace()]
        assert mnemonics == ["l.addi", "l.addi", "l.nop"]
