"""Memory model tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.memory import Memory, MemoryError_

addresses = st.integers(min_value=0, max_value=0xFFFF_FFF0)


class TestBasicAccess:
    def test_default_zero(self):
        assert Memory().load(0x1234, 4) == 0

    def test_word_roundtrip(self):
        memory = Memory()
        memory.store(0x100, 0xDEADBEEF, 4)
        assert memory.load(0x100, 4) == 0xDEADBEEF

    def test_big_endian_byte_order(self):
        memory = Memory()
        memory.store(0x100, 0x11223344, 4)
        assert memory.load(0x100, 1) == 0x11
        assert memory.load(0x101, 1) == 0x22
        assert memory.load(0x102, 2) == 0x3344

    def test_halfword(self):
        memory = Memory()
        memory.store(0x10, 0xABCD, 2)
        assert memory.load(0x10, 2) == 0xABCD
        assert memory.load(0x10, 1) == 0xAB

    def test_store_truncates(self):
        memory = Memory()
        memory.store(0, 0x1FF, 1)
        assert memory.load(0, 1) == 0xFF

    def test_cross_page_access(self):
        memory = Memory()
        memory.store(0xFFE, 0xA1B2C3D4, 4)   # spans the 4 KiB page boundary
        assert memory.load(0xFFE, 4) == 0xA1B2C3D4
        assert memory.load(0x1000, 1) == 0xC3

    def test_high_addresses(self):
        memory = Memory()
        memory.store(0xFFFF_FFF0, 0x12345678, 4)
        assert memory.load(0xFFFF_FFF0, 4) == 0x12345678


class TestValidation:
    def test_bad_size(self):
        with pytest.raises(MemoryError_):
            Memory().load(0, 3)

    def test_out_of_range(self):
        with pytest.raises(MemoryError_):
            Memory().load(0xFFFF_FFFE, 4)
        with pytest.raises(MemoryError_):
            Memory().store(-4, 0, 4)


class TestCopyAndIteration:
    def test_copy_is_independent(self):
        memory = Memory()
        memory.store(0, 42, 4)
        clone = memory.copy()
        clone.store(0, 7, 4)
        assert memory.load(0, 4) == 42
        assert clone.load(0, 4) == 7

    def test_words_iterator(self):
        memory = Memory()
        memory.store_word(0x10, 1)
        memory.store_word(0x2000, 2)
        words = dict(memory.words())
        assert words == {0x10: 1, 0x2000: 2}


class TestProperties:
    @given(addr=addresses, value=st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_word_roundtrip_property(self, addr, value):
        memory = Memory()
        memory.store(addr, value, 4)
        assert memory.load(addr, 4) == value

    @given(addr=addresses,
           values=st.lists(st.integers(min_value=0, max_value=255),
                           min_size=4, max_size=4))
    def test_bytes_compose_word(self, addr, values):
        memory = Memory()
        for offset, byte in enumerate(values):
            memory.store(addr + offset, byte, 1)
        expected = int.from_bytes(bytes(values), "big")
        assert memory.load(addr, 4) == expected
