"""Consistency tests over the instruction specification table."""

import pytest

from repro.isa.classes import (
    PAPER_TABLE_CLASSES,
    all_timing_classes,
    mnemonics_in_class,
    timing_class,
)
from repro.isa.opcodes import SPECS, Format, InstructionKind, spec_for
from repro.isa.registers import (
    REG_COUNT,
    parse_register,
    register_name,
)


class TestRegisters:
    def test_names_roundtrip(self):
        for index in range(REG_COUNT):
            assert parse_register(register_name(index)) == index

    def test_aliases(self):
        assert parse_register("sp") == 1
        assert parse_register("lr") == 9
        assert parse_register("zero") == 0

    def test_case_insensitive(self):
        assert parse_register("R7") == 7

    def test_invalid_rejected(self):
        for bad in ("r32", "x1", "", "r-1", "r1x"):
            with pytest.raises(ValueError):
                parse_register(bad)
        with pytest.raises(ValueError):
            register_name(32)


class TestSpecTable:
    def test_all_mnemonics_prefixed(self):
        assert all(m.startswith("l.") for m in SPECS)

    def test_spec_lookup_error_message(self):
        with pytest.raises(KeyError, match="l.bogus"):
            spec_for("l.bogus")

    def test_control_instructions_have_delay_slots(self):
        for spec in SPECS.values():
            assert spec.is_control == spec.has_delay_slot

    def test_loads_write_rd_and_read_ra(self):
        for spec in SPECS.values():
            if spec.kind == InstructionKind.LOAD:
                assert spec.writes_rd and spec.reads_ra and not spec.reads_rb

    def test_stores_read_both_and_write_nothing(self):
        for spec in SPECS.values():
            if spec.kind == InstructionKind.STORE:
                assert spec.reads_ra and spec.reads_rb
                assert not spec.writes_rd

    def test_setflag_writes_flag_only(self):
        for spec in SPECS.values():
            if spec.kind == InstructionKind.SETFLAG:
                assert spec.writes_flag
                assert not spec.writes_rd

    def test_branches_read_flag(self):
        assert spec_for("l.bf").reads_flag
        assert spec_for("l.bnf").reads_flag
        assert spec_for("l.cmov").reads_flag
        assert not spec_for("l.add").reads_flag

    def test_unique_encodings(self):
        """No two mnemonics may share a complete encoding key."""
        keys = set()
        for spec in SPECS.values():
            key = (spec.major, spec.fmt,
                   tuple(sorted(spec.secondary.items())))
            assert key not in keys, f"duplicate encoding for {spec.mnemonic}"
            keys.add(key)

    def test_immediate_signedness(self):
        assert spec_for("l.addi").signed_imm
        assert not spec_for("l.andi").signed_imm
        assert not spec_for("l.ori").signed_imm
        assert spec_for("l.xori").signed_imm

    def test_jr_fmt(self):
        assert spec_for("l.jr").fmt == Format.JR
        assert spec_for("l.jr").reads_rb


class TestTimingClasses:
    def test_register_and_immediate_forms_share_classes(self):
        assert timing_class("l.add") == timing_class("l.addi") == "l.add(i)"
        assert timing_class("l.and") == timing_class("l.andi")
        assert timing_class("l.mul") == timing_class("l.muli")
        assert timing_class("l.sll") == timing_class("l.slli")

    def test_paper_classes_exist(self):
        available = set(all_timing_classes())
        for cls in PAPER_TABLE_CLASSES:
            assert cls in available, cls

    def test_mnemonics_in_class(self):
        assert "l.add" in mnemonics_in_class("l.add(i)")
        assert "l.addi" in mnemonics_in_class("l.add(i)")
        with pytest.raises(KeyError):
            mnemonics_in_class("no-such-class")

    def test_every_mnemonic_has_a_class(self):
        for mnemonic in SPECS:
            assert timing_class(mnemonic)
