"""Synthetic netlist, STA, timing-wall and SDF tests."""

import pytest

from repro.isa.classes import all_timing_classes
from repro.sim.trace import Stage
from repro.timing.netlist import SyntheticNetlist
from repro.timing.profiles import DesignVariant, load_profile
from repro.timing.sdf import SdfError, parse_sdf, write_sdf
from repro.timing.sta import minimum_period, run_sta
from repro.timing.wall import compare_walls, wall_profile


@pytest.fixture(scope="module")
def optimized_netlist():
    return SyntheticNetlist(load_profile(DesignVariant.CRITICAL_RANGE))


@pytest.fixture(scope="module")
def conventional_netlist():
    return SyntheticNetlist(load_profile(DesignVariant.CONVENTIONAL))


class TestNetlistConstruction:
    def test_sta_equals_profile_static(self, optimized_netlist,
                                       conventional_netlist):
        assert minimum_period(optimized_netlist) == 2026.0
        assert minimum_period(conventional_netlist) == pytest.approx(1859.0)

    def test_critical_path_is_multiplier(self, optimized_netlist):
        critical = max(optimized_netlist.paths, key=lambda p: p.delay_ps)
        assert critical.stage == Stage.EX
        assert critical.timing_class == "l.mul(i)"

    def test_group_max_above_dynamic_worst(self, optimized_netlist):
        """STA pessimism: topological max exceeds the dynamic worst case."""
        profile = optimized_netlist.profile
        for cls in all_timing_classes():
            group_max = optimized_netlist.group_max(Stage.EX, cls)
            assert group_max >= profile.ex_spec(cls).max_ps

    def test_deterministic_generation(self):
        profile = load_profile(DesignVariant.CRITICAL_RANGE)
        a = SyntheticNetlist(profile, seed=5)
        b = SyntheticNetlist(profile, seed=5)
        assert [p.delay_ps for p in a.paths] == [p.delay_ps for p in b.paths]

    def test_seed_changes_population(self):
        profile = load_profile(DesignVariant.CRITICAL_RANGE)
        a = SyntheticNetlist(profile, seed=5)
        b = SyntheticNetlist(profile, seed=6)
        assert [p.delay_ps for p in a.paths] != [p.delay_ps for p in b.paths]

    def test_endpoints_per_stage(self, optimized_netlist):
        for stage in Stage:
            endpoints = optimized_netlist.endpoints_for(stage)
            assert len(endpoints) == 3
            for endpoint in endpoints:
                assert abs(endpoint.skew_ps) <= 30.0
                assert endpoint.setup_ps > 0

    def test_unknown_group_rejected(self, optimized_netlist):
        with pytest.raises(KeyError):
            optimized_netlist.group_max(Stage.EX, "no-such-class")


class TestSta:
    def test_meets_timing_at_sta_period(self, optimized_netlist):
        report = run_sta(optimized_netlist)
        assert report.meets_timing
        assert report.num_violations == 0
        assert report.critical_delay_ps == 2026.0

    def test_violations_below_sta_period(self, optimized_netlist):
        report = run_sta(optimized_netlist, period_ps=1500.0)
        assert not report.meets_timing
        assert report.num_violations > 0
        assert report.worst_slack_ps == pytest.approx(1500.0 - 2026.0)

    def test_stage_worst_covers_all_stages(self, optimized_netlist):
        report = run_sta(optimized_netlist)
        assert set(report.stage_worst) == set(Stage)

    def test_summary_renders(self, optimized_netlist):
        text = run_sta(optimized_netlist).summary()
        assert "WNS" in text and "EX" in text


class TestTimingWall:
    def test_conventional_has_wall(self, conventional_netlist,
                                   optimized_netlist):
        conventional, optimized = compare_walls(
            conventional_netlist, optimized_netlist
        )
        # Fig. 3: the conventional flow bunches paths near the clock
        # constraint; critical-range optimisation pushes them down
        assert (
            conventional.near_critical_fraction
            > 5 * optimized.near_critical_fraction
        )
        assert optimized.short_fraction > conventional.short_fraction
        assert optimized.median_delay_ps < conventional.median_delay_ps

    def test_summary_text(self, optimized_netlist):
        assert "paths" in wall_profile(optimized_netlist).summary()


class TestSdf:
    def test_roundtrip(self, optimized_netlist):
        text = write_sdf(optimized_netlist)
        paths, endpoints = parse_sdf(text)
        assert len(paths) == optimized_netlist.num_paths
        assert len(endpoints) == len(optimized_netlist.endpoints)
        original = {(p.name, p.delay_ps) for p in optimized_netlist.paths}
        parsed = {(p.name, p.delay_ps) for p in paths}
        assert original == parsed

    def test_endpoint_metadata_roundtrip(self, optimized_netlist):
        text = write_sdf(optimized_netlist)
        _, endpoints = parse_sdf(text)
        original = {
            (e.name, e.stage, round(e.skew_ps, 2))
            for e in optimized_netlist.endpoints
        }
        parsed = {(e.name, e.stage, e.skew_ps) for e in endpoints}
        assert original == parsed

    def test_malformed_rejected(self):
        with pytest.raises(SdfError):
            parse_sdf("not sdf at all")
        with pytest.raises(SdfError):
            parse_sdf("(DELAYFILE (SDFVERSION))")
