"""Encoder/decoder tests: exact round trips and error handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.encoding import EncodingError, decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import SPECS, Format

regs = st.integers(min_value=0, max_value=31)
imm16s = st.integers(min_value=-32768, max_value=32767)
imm16u = st.integers(min_value=0, max_value=65535)
imm26s = st.integers(min_value=-(2 ** 25), max_value=2 ** 25 - 1)
shift_amounts = st.integers(min_value=0, max_value=31)


def _sample_instruction(mnemonic, rd=5, ra=6, rb=7, imm=12):
    """A representative valid instruction for any mnemonic."""
    spec = SPECS[mnemonic]
    fmt = spec.fmt
    if fmt in (Format.J, Format.BRANCH):
        return Instruction(mnemonic, imm=imm)
    if fmt == Format.JR:
        return Instruction(mnemonic, rb=rb)
    if fmt == Format.NOP:
        return Instruction(mnemonic, imm=abs(imm))
    if fmt == Format.MOVHI:
        return Instruction(mnemonic, rd=rd, imm=abs(imm))
    if fmt == Format.SHIFT_IMM:
        return Instruction(mnemonic, rd=rd, ra=ra, imm=abs(imm) % 32)
    if fmt in (Format.LOAD, Format.ALU_IMM):
        value = imm if spec.signed_imm else abs(imm)
        return Instruction(mnemonic, rd=rd, ra=ra, imm=value)
    if fmt == Format.STORE:
        return Instruction(mnemonic, ra=ra, rb=rb, imm=imm)
    if fmt == Format.SETFLAG_IMM:
        value = imm if spec.signed_imm else abs(imm)
        return Instruction(mnemonic, ra=ra, imm=value)
    if fmt == Format.SETFLAG_REG:
        return Instruction(mnemonic, ra=ra, rb=rb)
    if fmt == Format.ALU_REG:
        if spec.reads_rb:
            return Instruction(mnemonic, rd=rd, ra=ra, rb=rb)
        return Instruction(mnemonic, rd=rd, ra=ra)
    raise AssertionError(fmt)


class TestRoundTripAllMnemonics:
    @pytest.mark.parametrize("mnemonic", sorted(SPECS))
    def test_roundtrip(self, mnemonic):
        instruction = _sample_instruction(mnemonic)
        word = encode(instruction)
        assert 0 <= word < (1 << 32)
        assert decode(word) == instruction


class TestKnownEncodings:
    """Spot checks against the OR1K architecture manual bit layouts."""

    def test_l_addi(self):
        word = encode(Instruction("l.addi", rd=3, ra=4, imm=0x1234))
        assert word == (0x27 << 26) | (3 << 21) | (4 << 16) | 0x1234

    def test_l_addi_negative(self):
        word = encode(Instruction("l.addi", rd=1, ra=2, imm=-1))
        assert word & 0xFFFF == 0xFFFF

    def test_l_j(self):
        word = encode(Instruction("l.j", imm=-4))
        assert word >> 26 == 0x00
        assert word & 0x3FFFFFF == 0x3FFFFFC

    def test_l_sw_split_immediate(self):
        word = encode(Instruction("l.sw", ra=2, rb=3, imm=0x1234))
        # store immediate splits: imm[15:11] in bits 25-21, imm[10:0] low
        assert (word >> 21) & 0x1F == 0x1234 >> 11
        assert word & 0x7FF == 0x1234 & 0x7FF
        assert (word >> 16) & 0x1F == 2
        assert (word >> 11) & 0x1F == 3

    def test_l_nop_marker(self):
        word = encode(Instruction("l.nop", imm=1))
        assert word == (0x05 << 26) | (0x01 << 24) | 1

    def test_l_mul_subopcode(self):
        word = encode(Instruction("l.mul", rd=1, ra=2, rb=3))
        assert word >> 26 == 0x38
        assert word & 0xF == 0x6
        assert (word >> 8) & 0x3 == 0x3

    def test_shift_types_distinct(self):
        words = {
            encode(Instruction(m, rd=1, ra=2, imm=5))
            for m in ("l.slli", "l.srli", "l.srai", "l.rori")
        }
        assert len(words) == 4


class TestOperandValidation:
    def test_register_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("l.add", rd=32, ra=0, rb=0))

    def test_signed_immediate_overflow(self):
        with pytest.raises(EncodingError):
            encode(Instruction("l.addi", rd=1, ra=1, imm=40000))
        with pytest.raises(EncodingError):
            encode(Instruction("l.addi", rd=1, ra=1, imm=-40000))

    def test_unsigned_immediate_overflow(self):
        with pytest.raises(EncodingError):
            encode(Instruction("l.andi", rd=1, ra=1, imm=-1))
        with pytest.raises(EncodingError):
            encode(Instruction("l.andi", rd=1, ra=1, imm=0x10000))

    def test_branch_offset_overflow(self):
        with pytest.raises(EncodingError):
            encode(Instruction("l.j", imm=1 << 25))

    def test_shift_amount_overflow(self):
        with pytest.raises(EncodingError):
            encode(Instruction("l.slli", rd=1, ra=1, imm=64))


class TestDecodeErrors:
    def test_unknown_major(self):
        with pytest.raises(EncodingError):
            decode(0x3F << 26)

    def test_unknown_alu_subop(self):
        with pytest.raises(EncodingError):
            decode((0x38 << 26) | 0x7)

    def test_unknown_setflag_condition(self):
        with pytest.raises(EncodingError):
            decode((0x39 << 26) | (0x1F << 21))

    def test_not_a_word(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)
        with pytest.raises(EncodingError):
            decode(-1)


class TestPropertyRoundTrips:
    @given(rd=regs, ra=regs, imm=imm16s)
    def test_addi(self, rd, ra, imm):
        instruction = Instruction("l.addi", rd=rd, ra=ra, imm=imm)
        assert decode(encode(instruction)) == instruction

    @given(rd=regs, ra=regs, imm=imm16u)
    def test_andi(self, rd, ra, imm):
        instruction = Instruction("l.andi", rd=rd, ra=ra, imm=imm)
        assert decode(encode(instruction)) == instruction

    @given(ra=regs, rb=regs, imm=imm16s)
    def test_store(self, ra, rb, imm):
        instruction = Instruction("l.sw", ra=ra, rb=rb, imm=imm)
        assert decode(encode(instruction)) == instruction

    @given(imm=imm26s)
    def test_jump(self, imm):
        instruction = Instruction("l.j", imm=imm)
        assert decode(encode(instruction)) == instruction

    @given(rd=regs, ra=regs, rb=regs)
    def test_alu_reg(self, rd, ra, rb):
        for mnemonic in ("l.add", "l.xor", "l.mul", "l.sll", "l.cmov"):
            instruction = Instruction(mnemonic, rd=rd, ra=ra, rb=rb)
            assert decode(encode(instruction)) == instruction

    @given(rd=regs, ra=regs, amount=shift_amounts)
    def test_shift_imm(self, rd, ra, amount):
        instruction = Instruction("l.srai", rd=rd, ra=ra, imm=amount)
        assert decode(encode(instruction)) == instruction
