"""Assembler, disassembler and builder tests."""

import pytest

from repro.asm import (
    AssemblerError,
    ProgramBuilder,
    assemble,
    disassemble,
    disassemble_program,
)
from repro.asm.program import DATA_BASE, Program
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction


class TestBasicAssembly:
    def test_single_instruction(self):
        program = assemble("l.addi r3, r4, -12")
        instruction = program.instruction_at(0)
        assert instruction == Instruction("l.addi", rd=3, ra=4, imm=-12)

    def test_comments_and_blank_lines(self):
        program = assemble(
            "# header comment\n\n  l.nop  ; trailing\n\nl.nop 0x1\n"
        )
        assert program.size_words == 2

    def test_labels_and_branches(self):
        program = assemble(
            "start:\n"
            "    l.addi r1, r0, 3\n"
            "loop:\n"
            "    l.addi r1, r1, -1\n"
            "    l.sfgtsi r1, 0\n"
            "    l.bf loop\n"
            "    l.nop\n"
        )
        branch = program.instruction_at(12)
        assert branch.mnemonic == "l.bf"
        assert branch.imm == (4 - 12) // 4

    def test_forward_references(self):
        program = assemble(
            "    l.j end\n"
            "    l.nop\n"
            "    l.nop\n"
            "end:\n"
            "    l.nop 0x1\n"
        )
        assert program.instruction_at(0).imm == 3

    def test_entry_symbol_detection(self):
        program = assemble("  l.nop\nstart:\n  l.nop 0x1\n")
        assert program.entry == 4

    def test_explicit_entry_symbol(self):
        program = assemble("a:\n l.nop\nb:\n l.nop 0x1\n", entry_symbol="b")
        assert program.entry == 4


class TestDirectives:
    def test_org(self):
        program = assemble(".org 0x100\nl.nop\n")
        assert 0x100 in program.words

    def test_word_and_space(self):
        program = assemble(
            ".data\n"
            "table:\n"
            "    .word 1, 2, 0xdeadbeef\n"
            "    .space 8\n"
            "after:\n"
            "    .word after\n"
        )
        assert program.words[DATA_BASE] == 1
        assert program.words[DATA_BASE + 8] == 0xDEADBEEF
        assert program.symbols["after"] == DATA_BASE + 20
        assert program.words[DATA_BASE + 20] == DATA_BASE + 20

    def test_equ_and_expressions(self):
        program = assemble(
            ".equ N, 5\n"
            ".equ M, N*2+1\n"
            "l.addi r1, r0, M\n"
        )
        assert program.instruction_at(0).imm == 11

    def test_align(self):
        program = assemble("l.nop\n.align 16\naligned:\nl.nop\n")
        assert program.symbols["aligned"] == 16

    def test_data_section_base(self):
        program = assemble("l.nop\n.data\nd:\n.word 7\n")
        assert program.symbols["d"] == DATA_BASE

    def test_hi_lo_pair_with_ori(self):
        """hi()/lo() must compose with l.movhi + l.ori (zero-extending)."""
        program = assemble(
            ".equ ADDR, 0xEDB88320\n"
            "l.movhi r5, hi(ADDR)\n"
            "l.ori   r5, r5, lo(ADDR)\n"
        )
        movhi = program.instruction_at(0)
        ori = program.instruction_at(4)
        assert (movhi.imm << 16) | ori.imm == 0xEDB88320

    def test_char_literal(self):
        program = assemble("l.addi r1, r0, 'A'\n")
        assert program.instruction_at(0).imm == 65


class TestOperandSyntax:
    def test_displacement(self):
        program = assemble("l.lwz r3, -8(r2)\nl.sw 12(r4), r5\n")
        load = program.instruction_at(0)
        store = program.instruction_at(4)
        assert (load.imm, load.ra) == (-8, 2)
        assert (store.imm, store.ra, store.rb) == (12, 4, 5)

    def test_empty_displacement(self):
        program = assemble("l.lwz r3, (r2)\n")
        assert program.instruction_at(0).imm == 0

    def test_register_aliases(self):
        program = assemble("l.add r3, sp, lr\n")
        instruction = program.instruction_at(0)
        assert (instruction.ra, instruction.rb) == (1, 9)


class TestAssemblyErrors:
    @pytest.mark.parametrize("source,fragment", [
        ("l.bogus r1, r2, r3", "unknown"),
        ("l.addi r1, r2", "expects 3"),
        ("l.addi r1, r2, undefined_sym", "undefined symbol"),
        ("x:\nx:\n l.nop", "duplicate label"),
        ("l.lwz r1, 5(notareg)", "not a valid register"),
        (".bogus 4", "unknown directive"),
        ("l.addi r1, r0, ((3)", "parenthes"),
        (".align 3\nl.nop", "power of two"),
    ])
    def test_error_cases(self, source, fragment):
        with pytest.raises(AssemblerError, match=fragment):
            assemble(source)

    def test_error_carries_line_number(self):
        try:
            assemble("l.nop\nl.bogus\n")
        except AssemblerError as err:
            assert err.line_number == 2
        else:
            pytest.fail("expected AssemblerError")

    def test_misaligned_branch_target(self):
        with pytest.raises(AssemblerError, match="aligned"):
            assemble(".equ T, 0x102\nl.j T\n")


class TestProgramContainer:
    def test_duplicate_address_rejected(self):
        program = Program()
        program.add_word(0, 0x15000000)
        with pytest.raises(ValueError, match="twice"):
            program.add_word(0, 0x15000000)

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            Program().add_word(2, 0)

    def test_symbol_lookup_error(self):
        with pytest.raises(KeyError, match="nope"):
            Program().symbol("nope")

    def test_dump_listing(self):
        program = assemble("start:\n l.addi r1, r0, 1\n l.nop 0x1\n")
        listing = program.dump()
        assert "l.addi r1,r0,1" in listing


class TestDisassembler:
    def test_single_word(self):
        word = encode(Instruction("l.addi", rd=3, ra=4, imm=-12))
        assert disassemble(word) == "l.addi r3,r4,-12"

    def test_branch_target_comment(self):
        word = encode(Instruction("l.j", imm=4))
        text = disassemble(word, address=0x100)
        assert "0x00000110" in text

    def test_program_fixpoint(self):
        """asm -> encode -> disassemble -> asm -> identical words."""
        source = (
            "start:\n"
            "    l.movhi r2, 0x1234\n"
            "    l.ori   r2, r2, 0x5678\n"
            "    l.lwz   r3, 4(r2)\n"
            "    l.sfeq  r3, r2\n"
            "    l.bf    start\n"
            "    l.nop\n"
            "    l.nop   0x1\n"
        )
        first = assemble(source)
        listing = disassemble_program(first, with_addresses=False)
        second = assemble(listing)
        assert first.words == second.words


class TestProgramBuilder:
    def test_builds_and_resolves_labels(self):
        builder = ProgramBuilder()
        builder.label("top")
        builder.op("l.addi", rd=1, ra=1, imm=-1)
        builder.op("l.sfgtsi", ra=1, imm=0)
        builder.op("l.bf", target="top")
        builder.op("l.nop")
        builder.nop_halt()
        program = builder.build()
        assert program.instruction_at(8).imm == -2
        assert program.instruction_at(16).imm == 1   # halt marker

    def test_register_names(self):
        builder = ProgramBuilder()
        builder.op("l.add", rd="r3", ra="sp", rb="lr")
        program = builder.build()
        instruction = program.instruction_at(0)
        assert (instruction.rd, instruction.ra, instruction.rb) == (3, 1, 9)

    def test_undefined_label_rejected(self):
        builder = ProgramBuilder()
        builder.op("l.j", target="nowhere")
        with pytest.raises(ValueError, match="nowhere"):
            builder.build()

    def test_label_on_non_branch_rejected(self):
        builder = ProgramBuilder()
        builder.label("x")
        builder.op("l.addi", rd=1, ra=0, imm=0, target="x")
        with pytest.raises(ValueError, match="cannot take a label"):
            builder.build()

    def test_word_and_org(self):
        builder = ProgramBuilder()
        builder.op("l.nop")
        builder.org(0x40)
        builder.word(0xCAFEBABE)
        program = builder.build()
        assert program.words[0x40] == 0xCAFEBABE
