"""Unit and property tests for repro.utils.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    align_down,
    bit,
    bits,
    is_aligned,
    mask,
    popcount,
    rotate_right32,
    sign_extend,
    to_signed32,
    to_unsigned32,
)

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestMask:
    def test_small_masks(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(3) == 0b111
        assert mask(32) == 0xFFFFFFFF

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitExtraction:
    def test_bit(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0
        assert bit(1 << 31, 31) == 1

    def test_bits_opcode_field(self):
        word = 0x9C641234   # l.addi r3, r4, 0x1234
        assert bits(word, 31, 26) == 0x27
        assert bits(word, 25, 21) == 3
        assert bits(word, 20, 16) == 4
        assert bits(word, 15, 0) == 0x1234

    def test_bits_single(self):
        assert bits(0x80000000, 31, 31) == 1

    def test_bits_reversed_range_rejected(self):
        with pytest.raises(ValueError):
            bits(0, 0, 5)


class TestSignExtend:
    def test_known_values(self):
        assert sign_extend(0xFFFF, 16) == -1
        assert sign_extend(0x8000, 16) == -32768
        assert sign_extend(0x7FFF, 16) == 32767
        assert sign_extend(0xFF, 8) == -1
        assert sign_extend(0x7F, 8) == 127

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            sign_extend(0, 0)

    @given(st.integers(min_value=-(2 ** 15), max_value=2 ** 15 - 1))
    def test_roundtrip_16(self, value):
        assert sign_extend(value & 0xFFFF, 16) == value

    @given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    def test_roundtrip_32(self, value):
        assert to_signed32(to_unsigned32(value)) == value


class TestConversions:
    @given(u32)
    def test_unsigned_fixpoint(self, value):
        assert to_unsigned32(value) == value

    @given(u32)
    def test_signed_unsigned_involution(self, value):
        assert to_unsigned32(to_signed32(value)) == value

    def test_truncation(self):
        assert to_unsigned32(1 << 32) == 0
        assert to_unsigned32((1 << 32) + 5) == 5


class TestPopcount:
    def test_values(self):
        assert popcount(0) == 0
        assert popcount(0xFFFFFFFF) == 32
        assert popcount(0b1011) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)

    @given(u32, u32)
    def test_disjoint_additivity(self, a, b):
        assert popcount(a & ~b & 0xFFFFFFFF) + popcount(a & b) == popcount(a)


class TestRotate:
    def test_identity(self):
        assert rotate_right32(0x12345678, 0) == 0x12345678
        assert rotate_right32(0x12345678, 32) == 0x12345678

    def test_known(self):
        assert rotate_right32(0x1, 1) == 0x80000000
        assert rotate_right32(0x80000001, 1) == 0xC0000000

    @given(u32, st.integers(min_value=0, max_value=64))
    def test_popcount_invariant(self, value, amount):
        assert popcount(rotate_right32(value, amount)) == popcount(value)

    @given(u32, st.integers(min_value=0, max_value=31))
    def test_full_rotation_roundtrip(self, value, amount):
        once = rotate_right32(value, amount)
        assert rotate_right32(once, 32 - amount) == value


class TestAlignment:
    def test_align_down(self):
        assert align_down(13, 4) == 12
        assert align_down(16, 4) == 16
        assert align_down(0, 8) == 0

    def test_is_aligned(self):
        assert is_aligned(16, 4)
        assert not is_aligned(18, 4)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            align_down(8, 3)
