"""Tests for histograms and summary statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import Histogram, summarize


class TestSummarize:
    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == pytest.approx(2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_keys(self):
        summary = summarize([1.0])
        assert set(summary.as_dict()) == {
            "count", "mean", "std", "min", "max", "p50", "p95", "p99",
        }


class TestHistogram:
    def test_binning(self):
        histogram = Histogram(low=0.0, high=10.0, num_bins=10)
        histogram.add(0.5)
        histogram.add(9.99)
        histogram.add(5.0)
        assert histogram.counts[0] == 1
        assert histogram.counts[9] == 1
        assert histogram.counts[5] == 1
        assert histogram.total == 3

    def test_under_overflow(self):
        histogram = Histogram(low=0.0, high=10.0, num_bins=5)
        histogram.add(-1.0)
        histogram.add(10.0)    # high edge is exclusive
        histogram.add(25.0)
        assert histogram.underflow == 1
        assert histogram.overflow == 2

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            Histogram(low=1.0, high=1.0, num_bins=4)
        with pytest.raises(ValueError):
            Histogram(low=0.0, high=1.0, num_bins=0)

    def test_mean_approximation(self):
        histogram = Histogram(low=0.0, high=100.0, num_bins=100)
        histogram.extend([10.0] * 50 + [90.0] * 50)
        assert histogram.mean() == pytest.approx(50.0, abs=1.0)

    def test_mode_center(self):
        histogram = Histogram(low=0.0, high=10.0, num_bins=10)
        histogram.extend([4.2, 4.4, 4.8, 1.0])
        assert histogram.mode_center() == pytest.approx(4.5)

    def test_mean_of_empty_rejected(self):
        histogram = Histogram(low=0.0, high=10.0, num_bins=10)
        with pytest.raises(ValueError):
            histogram.mean()

    def test_render_contains_counts(self):
        histogram = Histogram(low=0.0, high=10.0, num_bins=2)
        histogram.extend([1.0, 6.0, 7.0])
        text = histogram.render()
        assert "2" in text and "#" in text

    @given(st.lists(st.floats(min_value=0.0, max_value=99.9), min_size=1,
                    max_size=200))
    def test_total_matches_input(self, values):
        histogram = Histogram(low=0.0, high=100.0, num_bins=17)
        histogram.extend(values)
        assert histogram.total == len(values)

    @given(st.floats(min_value=0.0, max_value=99.99))
    def test_bin_index_bounds(self, value):
        histogram = Histogram(low=0.0, high=100.0, num_bins=13)
        index = histogram.bin_index(value)
        assert 0 <= index < 13
        edges = histogram.bin_edges()
        assert edges[index] <= value < edges[index + 1] + 1e-9
