"""Learned-model artifacts: serialisation, validation, caching."""

import io

import numpy as np
import pytest

import repro.ml.model as model_module
from repro.ml.features import feature_names
from repro.ml.model import (
    LearnedModel,
    ModelError,
    clear_model_cache,
    is_learned_spec,
    load_model,
    load_policy_model,
    parse_learned_spec,
    validate_policy_specs,
)


def tiny_tree_model(**metadata):
    """One split on feature 0 at 0.5: left leaf 0.7, right leaf 1.0."""
    return LearnedModel(
        kind="tree",
        vocabulary=("<bubble>", "l.add(i)"),
        window=8,
        feature_names=feature_names(),
        tree_feature=np.array([0, -1, -1], dtype=np.int32),
        tree_threshold=np.array([0.5, 0.0, 0.0]),
        tree_left=np.array([1, -1, -1], dtype=np.int32),
        tree_right=np.array([2, -1, -1], dtype=np.int32),
        tree_value=np.array([1.0, 0.7, 1.0]),
        metadata=dict(metadata),
    )


def tiny_logistic_model():
    weights = np.zeros(29)
    weights[0] = 1.0        # slow iff standardized feature 0 positive
    return LearnedModel(
        kind="logistic",
        vocabulary=("<bubble>",),
        window=8,
        feature_names=feature_names(),
        weights=weights,
        x_mean=np.zeros(28),
        x_scale=np.ones(28),
        levels=np.array([0.6, 1.0]),
    )


class TestPrediction:
    def test_tree_routes_rows(self):
        model = tiny_tree_model()
        matrix = np.zeros((3, 28))
        matrix[1, 0] = 2.0
        assert model.predict_normalized(matrix).tolist() == [0.7, 1.0, 0.7]

    def test_tree_single_row(self):
        model = tiny_tree_model()
        assert model.predict_normalized(np.zeros(28)).tolist() == [0.7]

    def test_logistic_levels(self):
        model = tiny_logistic_model()
        matrix = np.zeros((2, 28))
        matrix[1, 0] = 3.0
        assert model.predict_normalized(matrix).tolist() == [0.6, 1.0]

    def test_num_leaves(self):
        assert tiny_tree_model().num_leaves == 2
        assert tiny_logistic_model().num_leaves == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError, match="unknown model kind"):
            LearnedModel(kind="forest", vocabulary=(), window=8,
                         feature_names=())


class TestSerialisation:
    def test_bytes_deterministic(self):
        model = tiny_tree_model(seed=3)
        assert model.to_bytes() == model.to_bytes()
        assert model.to_bytes() == tiny_tree_model(seed=3).to_bytes()

    def test_metadata_changes_bytes(self):
        assert tiny_tree_model(seed=1).to_bytes() \
            != tiny_tree_model(seed=2).to_bytes()

    def test_round_trip(self, tmp_path):
        model = tiny_tree_model(grid="g", seed=9)
        path = tmp_path / "m.npz"
        model.save(path)
        loaded = LearnedModel.from_file(path)
        assert loaded == model
        assert loaded.metadata == {"grid": "g", "seed": 9}
        assert loaded.kind == "tree"
        assert loaded.vocabulary == model.vocabulary

    def test_readable_by_plain_numpy(self, tmp_path):
        path = tmp_path / "m.npz"
        tiny_tree_model().save(path)
        with np.load(path, allow_pickle=False) as archive:
            assert "header" in archive
            assert archive["tree_value"].tolist() == [1.0, 0.7, 1.0]

    def test_logistic_round_trip(self, tmp_path):
        model = tiny_logistic_model()
        path = tmp_path / "m.npz"
        model.save(path)
        assert LearnedModel.from_file(path) == model


class TestErrors:
    def test_missing_file(self, tmp_path):
        path = tmp_path / "nope.npz"
        with pytest.raises(ModelError, match=str(path)):
            LearnedModel.from_file(path)

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"this is not a zip")
        with pytest.raises(ModelError, match="corrupt.*bad.npz"):
            LearnedModel.from_file(path)

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "torn.npz"
        tiny_tree_model().save(path)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(ModelError, match="torn.npz"):
            LearnedModel.from_file(path)

    def test_schema_mismatch(self, tmp_path, monkeypatch):
        path = tmp_path / "old.npz"
        tiny_tree_model().save(path)
        monkeypatch.setattr(model_module, "MODEL_SCHEMA_VERSION", 999)
        with pytest.raises(ModelError, match="schema"):
            LearnedModel.from_file(path)

    def test_feature_spec_mismatch(self, tmp_path, monkeypatch):
        path = tmp_path / "old.npz"
        tiny_tree_model().save(path)
        monkeypatch.setattr(model_module, "FEATURE_SPEC_VERSION", 999)
        with pytest.raises(ModelError, match="feature spec"):
            LearnedModel.from_file(path)


class TestSpecs:
    def test_is_learned_spec(self):
        assert is_learned_spec("learned:m.npz")
        assert not is_learned_spec("instruction")
        assert not is_learned_spec(None)

    def test_parse(self):
        assert parse_learned_spec("learned:a/b.npz") == "a/b.npz"
        with pytest.raises(ModelError, match="empty model path"):
            parse_learned_spec("learned:")
        with pytest.raises(ModelError, match="not a learned-policy"):
            parse_learned_spec("instruction")

    def test_validate_ignores_registry_names(self):
        validate_policy_specs(["instruction", "genie", "static"])

    def test_validate_raises_on_missing(self, tmp_path):
        with pytest.raises(ModelError, match="missing.npz"):
            validate_policy_specs(
                ["instruction", f"learned:{tmp_path}/missing.npz"]
            )

    def test_validate_resolves_like_deployment(self, tmp_path,
                                               monkeypatch):
        """Validation and deployment resolve relative paths the same
        way (the working directory), so a validated spec always
        deploys."""
        tiny_tree_model().save(tmp_path / "m.npz")
        monkeypatch.chdir(tmp_path)
        validate_policy_specs(["learned:m.npz"])
        assert load_policy_model("learned:m.npz").kind == "tree"


class TestCache:
    def test_cached_until_file_changes(self, tmp_path):
        clear_model_cache()
        path = tmp_path / "m.npz"
        tiny_tree_model(seed=1).save(path)
        first = load_model(path)
        assert load_model(path) is first
        import os

        tiny_tree_model(seed=2).save(path)
        os.utime(path, ns=(1, 1))   # force a distinct stat signature
        second = load_model(path)
        assert second is not first
        assert second.metadata["seed"] == 2

    def test_load_policy_model(self, tmp_path):
        path = tmp_path / "m.npz"
        tiny_tree_model().save(path)
        model = load_policy_model(f"learned:{path}")
        assert model.kind == "tree"
