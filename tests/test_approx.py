"""Approximate over-scaling extension tests."""

import pytest

from repro.approx.errors import (
    approximate_value,
    error_magnitude_bits,
    relative_error,
)
from repro.approx.violations import evaluate_overscaling, overscaling_sweep
from repro.workloads import get_kernel


class TestErrorModel:
    def test_no_overshoot_no_error(self):
        assert error_magnitude_bits(0.0, 300.0) == 0
        assert error_magnitude_bits(-5.0, 300.0) == 0

    def test_error_monotone_in_overshoot(self):
        bits = [
            error_magnitude_bits(overshoot, 300.0)
            for overshoot in (10, 50, 150, 300, 600)
        ]
        assert bits == sorted(bits)
        assert bits[-1] == 32

    def test_zero_spread_full_corruption(self):
        assert error_magnitude_bits(1.0, 0.0) == 32

    def test_approximate_value_identity(self):
        assert approximate_value(0x12345678, 0) == 0x12345678

    def test_approximate_value_preserves_low_bits(self):
        exact = 0x12345678
        approx = approximate_value(exact, 8)
        assert approx & 0x00FFFFFF == exact & 0x00FFFFFF

    def test_approximate_value_deterministic(self):
        assert approximate_value(42, 16, salt=3) == \
            approximate_value(42, 16, salt=3)

    def test_relative_error(self):
        assert relative_error(100, 100) == 0.0
        assert relative_error(100, 150) == pytest.approx(0.5)
        assert relative_error(0, 0) == 0.0
        assert relative_error(0, 1) == 1.0


class TestOverscaling:
    def test_factor_one_is_error_free(self, design, lut):
        report = evaluate_overscaling(
            get_kernel("matmult").program(), design, lut, 1.0
        )
        assert report.violation_cycles == 0
        assert not report.approx_results

    def test_overscaling_produces_violations(self, design, lut):
        report = evaluate_overscaling(
            get_kernel("matmult").program(), design, lut, 0.85
        )
        assert report.violation_cycles > 0
        assert report.violation_rate > 0

    def test_violation_rate_monotone(self, design, lut):
        program = get_kernel("dotprod").program()
        reports = overscaling_sweep(
            program, design, lut, factors=[1.0, 0.95, 0.90, 0.85]
        )
        rates = [report.violation_rate for report in reports]
        assert rates == sorted(rates)
        assert rates[0] == 0.0

    def test_multiplier_among_first_victims(self, design, lut):
        """The mul class has the deepest data-dependent paths; moderate
        over-scaling must hit it (the paper's candidate for approximate
        computing)."""
        report = evaluate_overscaling(
            get_kernel("matmult").program(), design, lut, 0.90
        )
        assert any(
            "l.mul" in cls for cls in report.violations_by_class
        ), report.violations_by_class

    def test_time_scales_with_factor(self, design, lut):
        program = get_kernel("dotprod").program()
        full = evaluate_overscaling(program, design, lut, 1.0)
        fast = evaluate_overscaling(program, design, lut, 0.90)
        assert fast.total_time_ps == pytest.approx(
            full.total_time_ps * 0.90, rel=1e-9
        )

    def test_invalid_factor_rejected(self, design, lut):
        program = get_kernel("dotprod").program()
        with pytest.raises(ValueError):
            evaluate_overscaling(program, design, lut, 0.0)
        with pytest.raises(ValueError):
            evaluate_overscaling(program, design, lut, 1.2)

    def test_summary_text(self, design, lut):
        report = evaluate_overscaling(
            get_kernel("dotprod").program(), design, lut, 0.9
        )
        assert "violating cycles" in report.summary()
