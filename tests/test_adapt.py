"""Online LUT adaptation (extension E2) tests."""

import pytest

from repro.adapt.environment import EnvironmentModel
from repro.adapt.online import compare_schemes, evaluate_with_drift
from repro.workloads import get_kernel


@pytest.fixture(scope="module")
def environment():
    return EnvironmentModel()


class TestEnvironmentModel:
    def test_nominal_is_unity(self):
        nominal = EnvironmentModel.nominal()
        for cycle in (0, 1_000, 100_000):
            assert nominal.drift(cycle) == pytest.approx(1.0)

    def test_drift_bounded_by_max(self, environment):
        bound = environment.max_drift(50_000)
        for cycle in range(0, 50_000, 487):
            assert environment.drift(cycle) <= bound + 1e-9

    def test_aging_monotone_component(self):
        aging_only = EnvironmentModel(
            temperature_amplitude=0.0, droop_amplitude=0.0,
            aging_total=0.05, horizon_cycles=10_000,
        )
        drifts = [aging_only.drift(c) for c in range(0, 10_001, 1000)]
        assert drifts == sorted(drifts)
        assert drifts[-1] == pytest.approx(1.05)

    def test_droop_pulses(self):
        droop_only = EnvironmentModel(
            temperature_amplitude=0.0, droop_amplitude=0.05,
            aging_total=0.0, droop_every_cycles=1000,
            droop_length_cycles=100,
        )
        in_droop = droop_only.drift(50)
        outside = droop_only.drift(500)
        assert in_droop > outside == pytest.approx(1.0)

    def test_deterministic(self, environment):
        assert environment.drift(1234) == environment.drift(1234)


class TestAdaptiveEvaluation:
    @pytest.fixture(scope="class")
    def schemes(self, design, lut, environment):
        # crc32 runs ~5.6 k cycles: a full droop pulse plus most of a
        # thermal period fall inside the run
        return compare_schemes(
            get_kernel("crc32").program(), design, lut, environment
        )

    def test_no_guard_band_is_unsafe_under_drift(self, schemes):
        assert schemes["fixed-none"].violations > 0

    def test_fixed_guard_is_safe_but_slow(self, schemes):
        assert schemes["fixed-guard"].is_safe
        assert (
            schemes["fixed-guard"].effective_frequency_mhz
            < schemes["fixed-none"].effective_frequency_mhz
        )

    def test_online_is_safe_and_faster_than_guard(self, schemes):
        online = schemes["online"]
        assert online.is_safe
        assert online.lut_updates > 0
        assert (
            online.effective_frequency_mhz
            > schemes["fixed-guard"].effective_frequency_mhz
        )

    def test_nominal_environment_matches_paper_mode(self, design, lut):
        """With no drift, the online scheme's only cost is its tracking
        margin."""
        result = evaluate_with_drift(
            get_kernel("fib").program(), design, lut,
            EnvironmentModel.nominal(), scheme="online",
            tracking_margin=0.0,
        )
        assert result.is_safe
        assert result.max_drift_seen == pytest.approx(1.0)

    def test_unknown_scheme_rejected(self, design, lut, environment):
        with pytest.raises(ValueError):
            evaluate_with_drift(
                get_kernel("fib").program(), design, lut, environment,
                scheme="bogus",
            )

    def test_summary_text(self, schemes):
        assert "LUT updates" in schemes["online"].summary()

    def test_faster_updates_track_tighter(self, design, lut, environment):
        program = get_kernel("crc32").program()
        slow = evaluate_with_drift(
            program, design, lut, environment, update_interval=2_000,
            tracking_margin=0.04,
        )
        fast = evaluate_with_drift(
            program, design, lut, environment, update_interval=100,
            tracking_margin=0.04,
        )
        assert fast.lut_updates > slow.lut_updates
        assert fast.is_safe
