"""Integration tests asserting the paper's headline results hold in shape.

These are the acceptance tests of the reproduction: each checks one
published result with an explicit tolerance.  Exact-number agreement is not
expected (our substrate is a calibrated synthetic model, see DESIGN.md);
the *shape* — who wins, by roughly what factor, in which stage — must hold.
"""

import numpy as np
import pytest

from repro import paperdata
from repro.clocking.policies import GeniePolicy, InstructionLutPolicy
from repro.flow.evaluate import (
    average_frequency_mhz,
    average_speedup_percent,
    evaluate_suite,
)
from repro.power.vfs import scale_voltage_iso_throughput
from repro.sim.trace import Stage
from repro.workloads.suite import benchmark_suite


@pytest.fixture(scope="module")
def suite_results(design, lut):
    return evaluate_suite(
        benchmark_suite(), design, lambda: InstructionLutPolicy(lut),
        check_safety=True,
    )


@pytest.fixture(scope="module")
def genie_results(design):
    return evaluate_suite(
        benchmark_suite(), design,
        lambda: GeniePolicy(design.excitation),
        check_safety=False,
    )


class TestStaticBaseline:
    def test_sta_period(self, design):
        assert design.static_period_ps == paperdata.STATIC_PERIOD_PS

    def test_sta_frequency(self, design):
        from repro.utils.units import ps_to_mhz
        assert ps_to_mhz(design.static_period_ps) == pytest.approx(
            paperdata.STATIC_FREQUENCY_MHZ, rel=0.01
        )


class TestGenieBound:
    """Fig. 5: mean per-cycle delay 1334 ps -> ~50 % theoretical speedup."""

    def test_genie_mean_delay(self, characterization, design):
        hand_runs = [
            run for run in characterization.runs
            if not run.program_name.startswith("chargen")
        ]
        mean = float(np.concatenate(
            [run.dta.cycle_max for run in hand_runs]
        ).mean())
        assert mean == pytest.approx(
            paperdata.GENIE_MEAN_PERIOD_PS, rel=0.05
        )

    def test_genie_speedup_on_suite(self, genie_results):
        speedup = average_speedup_percent(genie_results)
        assert speedup == pytest.approx(
            paperdata.GENIE_SPEEDUP_PERCENT, abs=6.0
        )


class TestInstructionBasedSpeedup:
    """Fig. 8 / abstract: +38 % average, 494 -> 680 MHz."""

    def test_zero_violations_across_suite(self, suite_results):
        for result in suite_results:
            assert result.is_safe, result.program_name

    def test_average_speedup(self, suite_results):
        speedup = average_speedup_percent(suite_results)
        assert speedup == pytest.approx(
            paperdata.DYNAMIC_SPEEDUP_PERCENT, abs=7.0
        )

    def test_average_frequency(self, suite_results):
        frequency = average_frequency_mhz(suite_results)
        assert frequency == pytest.approx(
            paperdata.DYNAMIC_FREQUENCY_MHZ, rel=0.06
        )

    def test_every_benchmark_gains(self, suite_results):
        for result in suite_results:
            assert result.speedup_percent > 20.0, result.program_name

    def test_mul_heavy_benchmarks_gain_least(self, suite_results):
        by_name = {r.program_name: r.speedup_percent for r in suite_results}
        mul_heavy = min(by_name["matmult"], by_name["dotprod"],
                        by_name["fir"])
        others = max(by_name["bubblesort"], by_name["binarysearch"],
                     by_name["insertsort"])
        assert mul_heavy < others

    def test_give_up_vs_genie(self, suite_results, genie_results):
        """Sec. IV-B: instruction granularity gives up ~12 points of the
        genie bound."""
        give_up = (
            average_speedup_percent(genie_results)
            - average_speedup_percent(suite_results)
        )
        assert give_up == pytest.approx(
            paperdata.GIVE_UP_PERCENT, abs=6.0
        )
        assert give_up > 0


class TestLimitingStages:
    """Fig. 6: EX dominates (93 %), ADR second (7 %), others negligible."""

    def test_stage_shares(self, characterization):
        hand_runs = [
            run for run in characterization.runs
            if not run.program_name.startswith("chargen")
        ]
        limiting = np.concatenate(
            [run.dta.limiting_stage for run in hand_runs]
        )
        shares = {
            stage: float((limiting == stage.value).sum()) / len(limiting)
            for stage in Stage
        }
        assert shares[Stage.EX] == pytest.approx(0.93, abs=0.08)
        assert shares[Stage.ADR] == pytest.approx(0.07, abs=0.07)
        assert shares[Stage.ADR] > 0.02
        for stage in (Stage.FE, Stage.DC, Stage.WB):
            assert shares[stage] < 0.01
        assert shares[Stage.CTRL] < 0.05
        assert max(shares, key=lambda s: shares[s]) == Stage.EX


class TestVoltageScalingHeadline:
    """Sec. IV-B: ~70 mV lower supply, 13.7 -> 11.0 µW/MHz, +24 %."""

    def test_with_measured_speedup(self, suite_results):
        frequency = average_frequency_mhz(suite_results)
        result = scale_voltage_iso_throughput(
            frequency, paperdata.STATIC_FREQUENCY_MHZ
        )
        assert result.voltage_reduction_v == pytest.approx(
            paperdata.VOLTAGE_REDUCTION_V, abs=0.02
        )
        assert result.baseline_uw_per_mhz == pytest.approx(
            paperdata.CONVENTIONAL_UW_PER_MHZ, abs=0.1
        )
        assert result.scaled_uw_per_mhz == pytest.approx(
            paperdata.DYNAMIC_SCALED_UW_PER_MHZ, abs=0.6
        )
        assert result.efficiency_gain_percent == pytest.approx(
            paperdata.ENERGY_EFFICIENCY_GAIN_PERCENT, abs=6.0
        )


class TestCriticalRangeStory:
    """Table I / Sec. III-A: the optimisation trades 9 % static speed for
    much lower per-instruction dynamic delays."""

    def test_static_penalty(self, design, conventional_design):
        penalty = (
            design.static_period_ps
            / conventional_design.static_period_ps - 1.0
        ) * 100.0
        assert penalty == pytest.approx(
            paperdata.CRITICAL_RANGE_STATIC_PENALTY_PERCENT, abs=0.5
        )

    def test_dynamic_speedup_requires_optimized_design(
        self, characterization, conventional_characterization,
        design, conventional_design,
    ):
        """The conventional design's timing wall erases most of the gain —
        the reason the paper optimises the implementation first."""
        programs = benchmark_suite()[:4]
        optimized = evaluate_suite(
            programs, design,
            lambda: InstructionLutPolicy(characterization.lut),
            check_safety=False,
        )
        conventional = evaluate_suite(
            programs, conventional_design,
            lambda: InstructionLutPolicy(conventional_characterization.lut),
            check_safety=False,
        )
        optimized_mhz = average_frequency_mhz(optimized)
        conventional_mhz = average_frequency_mhz(conventional)
        # the optimised design must be the faster choice overall despite
        # its 9 % worse STA period
        assert optimized_mhz > conventional_mhz * 1.10
