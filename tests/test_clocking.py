"""Clock generator, policy and controller tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clocking.controller import ClockAdjustmentController
from repro.clocking.generator import (
    ClockGeneratorError,
    IdealClockGenerator,
    MultiPLLClockGenerator,
    TunableRingOscillator,
)
from repro.clocking.policies import (
    ExOnlyLutPolicy,
    GeniePolicy,
    InstructionLutPolicy,
    StaticClockPolicy,
    TwoClassPolicy,
)
from repro.sim.pipeline import PipelineSimulator
from repro.workloads import get_kernel

periods = st.floats(min_value=620.0, max_value=2300.0)


class TestGenerators:
    def test_ideal_identity(self):
        assert IdealClockGenerator().quantize_up(1234.5) == 1234.5

    @given(periods)
    def test_ring_oscillator_safety(self, period):
        generator = TunableRingOscillator()
        granted = generator.quantize_up(period)
        assert granted >= period - 1e-9
        assert granted in generator.available_periods()

    @given(periods)
    def test_ring_oscillator_tightness(self, period):
        granted = TunableRingOscillator(step_ps=50.0).quantize_up(period)
        assert granted - period < 50.0 + 1e-9

    def test_ring_oscillator_range(self):
        generator = TunableRingOscillator(max_period_ps=2000.0)
        with pytest.raises(ClockGeneratorError):
            generator.quantize_up(2100.0)
        assert generator.quantize_up(100.0) == generator.min_period_ps

    @given(periods)
    def test_pll_safety(self, period):
        generator = MultiPLLClockGenerator()
        try:
            granted = generator.quantize_up(period)
        except ClockGeneratorError:
            assert period > max(generator.available_periods())
            return
        assert granted >= period - 1e-9
        assert granted in generator.available_periods()

    def test_pll_default_covers_static(self):
        generator = MultiPLLClockGenerator()
        assert generator.quantize_up(2026.0) == pytest.approx(1e6 / 490.0)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ClockGeneratorError):
            TunableRingOscillator(step_ps=0)
        with pytest.raises(ClockGeneratorError):
            MultiPLLClockGenerator([])
        with pytest.raises(ClockGeneratorError):
            IdealClockGenerator().quantize_up(-5.0)


def _trace_records(kernel_name="statemachine"):
    pipe = PipelineSimulator(get_kernel(kernel_name).program())
    pipe.run()
    return pipe.trace.records


class TestPolicies:
    def test_static_constant(self, design):
        policy = StaticClockPolicy(design.static_period_ps)
        for record in _trace_records()[:20]:
            assert policy.period_for(record) == design.static_period_ps

    def test_ordering_genie_lut_static(self, design, lut):
        """Per cycle: genie <= instruction-LUT <= static (for characterised
        classes) — the fundamental ordering of the paper."""
        genie = GeniePolicy(design.excitation)
        instruction = InstructionLutPolicy(lut)
        static = StaticClockPolicy(design.static_period_ps)
        for record in _trace_records():
            g = genie.period_for(record)
            i = instruction.period_for(record)
            s = static.period_for(record)
            assert g <= i + 1e-6
            assert i <= s + 1e-6

    def test_ex_only_at_least_instruction_floor(self, lut):
        ex_only = ExOnlyLutPolicy(lut)
        instruction = InstructionLutPolicy(lut)
        for record in _trace_records():
            assert (
                ex_only.period_for(record)
                >= instruction.period_for(record) - lut.static_period_ps * 0.01
            )

    def test_ex_only_floor_positive(self, lut):
        assert ExOnlyLutPolicy(lut).floor_ps > 0

    def test_two_class_toggles_two_periods(self, lut):
        policy = TwoClassPolicy(lut)
        observed = {
            policy.period_for(record) for record in _trace_records("matmult")
        }
        assert observed == {policy.fast_period_ps, policy.slow_period_ps}
        assert policy.slow_period_ps > policy.fast_period_ps

    def test_two_class_slow_on_mul(self, lut):
        from repro.dta.extraction import attribute_cycle

        policy = TwoClassPolicy(lut)
        for record in _trace_records("matmult"):
            classes = set(attribute_cycle(record).values())
            if "l.mul(i)" in classes:
                assert policy.period_for(record) == policy.slow_period_ps

    def test_invalid_static_rejected(self):
        with pytest.raises(ValueError):
            StaticClockPolicy(0)


class TestController:
    def test_margin_scales_period(self, lut):
        base = ClockAdjustmentController(InstructionLutPolicy(lut))
        guarded = ClockAdjustmentController(
            InstructionLutPolicy(lut), margin_percent=10.0
        )
        record = _trace_records()[10]
        assert guarded.period_for(record) == pytest.approx(
            base.period_for(record) * 1.10
        )

    def test_quantization_applies(self, lut):
        controller = ClockAdjustmentController(
            InstructionLutPolicy(lut),
            generator=TunableRingOscillator(step_ps=100.0),
        )
        period = controller.period_for(_trace_records()[5])
        assert period % 100.0 == pytest.approx(0.0, abs=1e-6)

    def test_stats_accumulate(self, lut):
        controller = ClockAdjustmentController(InstructionLutPolicy(lut))
        records = _trace_records()
        for record in records:
            controller.period_for(record)
        stats = controller.stats
        assert stats.cycles == len(records)
        assert stats.min_period_ps <= stats.average_period_ps
        assert stats.average_period_ps <= stats.max_period_ps
        assert 0.0 <= stats.switch_rate <= 1.0
        assert stats.switches > 0   # dynamic adjustment actually adjusts

    def test_negative_margin_rejected(self, lut):
        with pytest.raises(ValueError):
            ClockAdjustmentController(
                InstructionLutPolicy(lut), margin_percent=-1
            )

    def test_reset(self, lut):
        controller = ClockAdjustmentController(InstructionLutPolicy(lut))
        controller.period_for(_trace_records()[0])
        controller.reset()
        assert controller.stats.cycles == 0
