"""The multi-tenant sweep service: dedup, caching, backpressure,
tenant budgets.

Unit layers (no HTTP, no simulation): :class:`BoundedJobQueue`
admission discipline and :class:`JobRegistry` dedup/cache precedence.
Integration layer: a real :class:`SweepServer` on a loopback port with
real worker processes — the dedup proof is the unified
``serve.simulations`` counter (pipeline simulations actually run), and
the cache proof is byte-identical result bodies with a zero simulation
delta.
"""

import json
import threading

import pytest

from repro.lab.jobqueue import BoundedJobQueue, QueueFull
from repro.lab.store import ArtifactStore
from repro.obs import metrics as obs_metrics
from repro.serve import (
    JobRegistry,
    ServeClient,
    ServeConfig,
    SweepServer,
    frame_cache_name,
)
from repro.serve.client import ServeError

#: One-unit grid: a single (policy, margin, voltage, workload) cell, so
#: integration jobs finish in well under a second per design point.
GRID = {
    "name": "serve-mini",
    "policies": ["instruction"],
    "margins": [0.0],
    "voltages": [0.7],
    "workloads": ["fib"],
    "check_safety": True,
}

OTHER_GRID = {**GRID, "name": "serve-other", "workloads": ["crc16"]}


def serve_counters(baseline):
    return {
        name: value
        for name, value in obs_metrics.delta_since(baseline).items()
        if name.startswith("serve.")
    }


class TestBoundedJobQueue:
    def test_fifo_claim_order(self):
        queue = BoundedJobQueue(4)
        for key in ("a", "b", "c"):
            queue.submit(key, lambda key=key: f"entry-{key}")
        assert queue.claim() == "entry-a"
        assert queue.claim() == "entry-b"
        assert queue.claim() == "entry-c"
        assert queue.claim() is None

    def test_dedup_returns_existing_entry(self):
        queue = BoundedJobQueue(4)
        first, deduped = queue.submit("k", lambda: object())
        assert not deduped
        again, deduped = queue.submit("k", lambda: object())
        assert deduped
        assert again is first
        assert len(queue) == 1                # no capacity consumed

    def test_claimed_entry_still_dedups_until_finish(self):
        queue = BoundedJobQueue(4)
        entry, _ = queue.submit("k", lambda: "running")
        assert queue.claim() is entry
        again, deduped = queue.submit("k", lambda: "fresh")
        assert deduped and again is entry
        queue.finish("k")
        fresh, deduped = queue.submit("k", lambda: "fresh")
        assert not deduped and fresh == "fresh"

    def test_queue_full_past_bound(self):
        queue = BoundedJobQueue(2)
        queue.submit("a", lambda: 1)
        queue.submit("b", lambda: 2)
        with pytest.raises(QueueFull):
            queue.submit("c", lambda: 3)
        # dedup of an active key never hits the bound
        _, deduped = queue.submit("a", lambda: 1)
        assert deduped
        queue.finish("a")
        queue.submit("c", lambda: 3)          # capacity freed

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedJobQueue(0)


class TestJobRegistry:
    @pytest.fixture
    def store(self, tmp_path):
        return ArtifactStore(tmp_path / "store")

    def test_active_job_dedups_across_tenants(self, store):
        registry = JobRegistry(store)
        job, deduped, cached = registry.submit("sweep", "fp1", GRID,
                                               "alice")
        assert (deduped, cached) == (False, False)
        again, deduped, cached = registry.submit("sweep", "fp1", GRID,
                                                 "bob")
        assert (deduped, cached) == (True, False)
        assert again is job
        assert job.submissions == 2
        assert job.tenants == ["alice", "bob"]

    def test_distinct_fingerprints_distinct_jobs(self, store):
        registry = JobRegistry(store)
        a, _, _ = registry.submit("sweep", "fp1", GRID, "alice")
        b, _, _ = registry.submit("sweep", "fp2", OTHER_GRID, "alice")
        c, _, _ = registry.submit("train", "fp1", GRID, "alice")
        assert len({a.id, b.id, c.id}) == 3   # kind is part of identity

    def test_cache_hit_answers_without_queueing(self, store):
        from repro.api.frame import EVALUATION_SCHEMA, ResultFrame

        store.save_frame(
            frame_cache_name("sweep", "fp1"),
            ResultFrame.from_rows([], EVALUATION_SCHEMA),
        )
        registry = JobRegistry(store)
        job, deduped, cached = registry.submit("sweep", "fp1", GRID,
                                               "alice")
        assert cached and not deduped
        assert job.state == "done" and job.cached
        assert registry.claim() is None       # nothing to execute
        assert len(registry.queue) == 0

    def test_queue_full_raises_and_counts(self, store):
        baseline = obs_metrics.gather()
        registry = JobRegistry(store, queue_limit=1)
        registry.submit("sweep", "fp1", GRID, "alice")
        with pytest.raises(QueueFull):
            registry.submit("sweep", "fp2", OTHER_GRID, "bob")
        assert serve_counters(baseline).get("serve.rejected") == 1

    def test_complete_retires_dedup_window(self, store):
        registry = JobRegistry(store)
        job, _, _ = registry.submit("sweep", "fp1", GRID, "alice")
        assert registry.claim() is job
        registry.complete(job, simulations=3, frame_bytes=128)
        assert job.state == "done"
        assert job.simulations == 3
        fresh, deduped, cached = registry.submit("sweep", "fp1", GRID,
                                                 "bob")
        # no cached frame on disk → a fresh job, not a dedup
        assert fresh is not job and not deduped and not cached

    def test_fail_records_error(self, store):
        registry = JobRegistry(store)
        job, _, _ = registry.submit("sweep", "fp1", GRID, "alice")
        registry.claim()
        registry.fail(job, "worker exploded")
        assert job.state == "failed"
        assert job.error == "worker exploded"
        assert job.events[-1]["event"] == "failed"

    def test_tenant_budget_evicts_lru_frames(self, store):
        from repro.api.frame import EVALUATION_SCHEMA, ResultFrame

        frame = ResultFrame.from_rows([], EVALUATION_SCHEMA)
        baseline = obs_metrics.gather()
        registry = JobRegistry(store, tenant_budget_bytes=1)
        job, _, _ = registry.submit("sweep", "fp1", GRID, "alice")
        registry.claim()
        store.save_frame(job.result_name, frame)
        size = store.frame_path(job.result_name).stat().st_size
        registry.complete(job, simulations=1, frame_bytes=size)
        # a 1-byte budget cannot hold the frame: evicted immediately
        assert not store.frame_path(job.result_name).exists()
        assert serve_counters(baseline)["serve.tenant.evictions"] == 1
        assert registry.tenant_usage() == {"alice": 0}

    def test_tenant_budget_scoped_to_one_tenant(self, store):
        from repro.api.frame import EVALUATION_SCHEMA, ResultFrame

        frame = ResultFrame.from_rows([], EVALUATION_SCHEMA)
        registry = JobRegistry(store, tenant_budget_bytes=1)
        bob_job, _, _ = registry.submit("sweep", "fpB", OTHER_GRID, "bob")
        registry.claim()
        store.save_frame(bob_job.result_name, frame)
        registry.complete(bob_job, frame_bytes=1)   # stays under budget?
        # bob's frame is over his budget too, but completing *alice's*
        # job must only ever evict alice's frames
        store.save_frame(bob_job.result_name, frame)
        alice_job, _, _ = registry.submit("sweep", "fpA", GRID, "alice")
        registry.claim()
        store.save_frame(alice_job.result_name, frame)
        registry.complete(alice_job, frame_bytes=1)
        assert not store.frame_path(alice_job.result_name).exists()
        assert store.frame_path(bob_job.result_name).exists()


@pytest.fixture
def server(tmp_path):
    config = ServeConfig(store_root=tmp_path / "store", port=0,
                         workers=2)
    server = SweepServer(config)
    with server.running() as port:
        yield server, ServeClient(f"http://127.0.0.1:{port}",
                                  timeout=120.0)


class TestServeIntegration:
    def test_dedup_then_cache_hit(self, server):
        """The acceptance path: two concurrent clients submitting the
        same grid run exactly one sweep; a repeat submission after
        completion is served from the frame cache with zero
        re-simulation and a byte-identical body."""
        _, client = server
        baseline = obs_metrics.gather()
        snapshots = [None, None]

        def submit(slot, tenant):
            snapshots[slot] = client.submit(GRID, tenant=tenant)

        threads = [
            threading.Thread(target=submit, args=(0, "alice")),
            threading.Thread(target=submit, args=(1, "bob")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        a, b = snapshots
        assert a["id"] == b["id"]             # one job for both tenants
        assert {a["deduped"], b["deduped"]} == {False, True}

        done = client.wait(a["id"], timeout=120)
        assert done["state"] == "done"
        assert done["submissions"] == 2
        assert sorted(done["tenants"]) == ["alice", "bob"]
        counters = serve_counters(baseline)
        assert counters["serve.submitted"] == 1
        assert counters["serve.deduped"] == 1
        simulations = counters["serve.simulations"]
        assert simulations >= 1               # exactly one sweep ran
        assert done["simulations"] == simulations
        body = client.result_bytes(a["id"])
        frame = client.result(a["id"])
        assert len(frame) == 1                # one grid unit

        # repeat submission: frame-cache hit, zero re-simulation
        repeat = client.submit(GRID, tenant="carol")
        assert repeat["cached"] and repeat["state"] == "done"
        assert repeat["id"] != a["id"]
        assert client.result_bytes(repeat["id"]) == body
        after = serve_counters(baseline)
        assert after["serve.simulations"] == simulations   # unchanged
        assert after["serve.cache.hits"] == 1

    def test_progress_events_stream_to_terminal(self, server):
        _, client = server
        job = client.submit(OTHER_GRID, tenant="alice")
        events = list(client.events(job["id"]))
        assert events[-1] == {"event": "done", "cached": False}
        progress = [e for e in events if e["event"] == "progress"]
        assert progress and progress[-1]["done"] == progress[-1]["total"]

    def test_stream_job_windows_and_identity(self, server):
        """A ``stream`` job emits per-window events on ``/events`` and
        its cached frame is byte-identical to the offline evaluation of
        the same grid."""
        from repro.api import Session
        from repro.lab.scenario import ScenarioGrid

        _, client = server
        job = client.submit(GRID, kind="stream", tenant="alice",
                            stream={"window_cycles": 64})
        events = list(client.events(job["id"]))
        windows = [e for e in events if e["event"] == "window"]
        assert windows, "stream job emitted no window events"
        assert events[-1]["event"] == "done"
        first = windows[0]
        assert first["program"] == "fib"
        assert first["cycles"] == 64
        assert first["rows"][0]["config"] == "instruction/ideal"
        grid = ScenarioGrid.from_dict(GRID)
        point = grid.design_points()[0]
        session = Session(variant=point.variant, voltage=point.voltage)
        offline = session.evaluate(
            list(grid.workload_specs()), configs=grid.config_specs()
        )
        assert client.result_bytes(job["id"]).decode() \
            == offline.to_json()
        # options are part of the identity: same grid, other window
        other = client.submit(GRID, kind="stream", tenant="alice",
                              stream={"window_cycles": 32})
        assert other["id"] != job["id"] and not other["cached"]

    def test_stream_job_rejects_bad_options(self, server):
        _, client = server
        with pytest.raises(ServeError) as excinfo:
            client.submit(GRID, kind="stream", stream={"bogus": 1})
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.submit(GRID, kind="stream",
                          stream={"source": "randomgen"})
        assert excinfo.value.status == 400   # unbounded source

    def test_backpressure_429(self, server):
        """With the queue pinned full, fresh grids bounce with 429 while
        dedup submissions of the active grid still land."""
        srv, client = server
        srv.registry.queue.limit = 1
        srv.pool.submit = lambda job, payload: None   # jobs never finish
        first = client.submit(GRID, tenant="alice")
        assert first["state"] in ("queued", "running")
        with pytest.raises(ServeError) as excinfo:
            client.submit(OTHER_GRID, tenant="bob")
        assert excinfo.value.status == 429
        deduped = client.submit(GRID, tenant="carol")
        assert deduped["deduped"] and deduped["id"] == first["id"]

    def test_bad_requests(self, server):
        _, client = server
        with pytest.raises(ServeError) as excinfo:
            client.submit({"name": "broken", "policies": []},
                          tenant="alice")
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.status("job-999")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client.submit(GRID, kind="bogus")
        assert excinfo.value.status == 400

    def test_result_conflict_while_pending(self, server):
        srv, client = server
        srv.pool.submit = lambda job, payload: None   # never completes
        job = client.submit(GRID, tenant="alice")
        with pytest.raises(ServeError) as excinfo:
            client.result(job["id"])
        assert excinfo.value.status == 409

    def test_status_endpoint(self, server):
        _, client = server
        status = client.server_status()
        assert status["queue_limit"] == 16
        assert status["workers"] == 2
        assert set(status["jobs"]) == {"queued", "running", "done",
                                       "failed"}


class TestTenantBudgetIntegration:
    def test_over_budget_frame_evicted_and_result_gone(self, tmp_path):
        config = ServeConfig(store_root=tmp_path / "store", port=0,
                             workers=1, tenant_budget_bytes=1)
        server = SweepServer(config)
        baseline = obs_metrics.gather()
        with server.running() as port:
            client = ServeClient(f"http://127.0.0.1:{port}",
                                 timeout=120.0)
            job = client.submit(GRID, tenant="alice")
            done = client.wait(job["id"], timeout=120)
            assert done["state"] == "done"
            assert done["frame_bytes"] > 1    # it was over budget ...
            with pytest.raises(ServeError) as excinfo:
                client.result(job["id"])      # ... so it is gone now
            assert excinfo.value.status == 410
            assert client.server_status()["tenants"] == {"alice": 0}
        assert serve_counters(baseline)["serve.tenant.evictions"] >= 1


class TestServeKinds:
    def test_evaluate_and_train_kinds(self, server):
        _, client = server
        evaluated = client.wait(
            client.submit(GRID, kind="evaluate", tenant="alice")["id"],
            timeout=120,
        )
        assert evaluated["state"] == "done"
        eval_frame = client.result(evaluated["id"])
        assert len(eval_frame) == 1
        assert eval_frame.row(0)["program"] == "fib"

        trained = client.wait(
            client.submit(GRID, kind="train", tenant="alice")["id"],
            timeout=120,
        )
        assert trained["state"] == "done"
        train_frame = client.result(trained["id"])
        assert "safe" in train_frame.column_names
        # sweep/evaluate/train of one grid are three distinct jobs
        assert evaluated["fingerprint"] == trained["fingerprint"]
        assert evaluated["id"] != trained["id"]


class TestServeJsonContract:
    def test_job_snapshot_is_json_round_trippable(self, server):
        _, client = server
        job = client.submit(GRID, tenant="alice")
        snapshot = client.status(job["id"])
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["grid"] == "serve-mini"
