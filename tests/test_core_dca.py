"""Top-level DynamicClockAdjustment API and config tests."""

import pytest

from repro.core import DcaConfig, DynamicClockAdjustment
from repro.workloads import get_kernel


@pytest.fixture(scope="module")
def dca(characterization):
    """A DCA instance reusing the session characterisation."""
    return DynamicClockAdjustment(characterization=characterization)


class TestConfig:
    def test_defaults_valid(self):
        config = DcaConfig().validate()
        assert config.policy == "instruction"
        assert config.voltage == 0.70

    @pytest.mark.parametrize("field,value", [
        ("policy", "bogus"),
        ("generator", "bogus"),
        ("margin_percent", -5.0),
    ])
    def test_invalid_rejected(self, field, value):
        config = DcaConfig(**{field: value})
        with pytest.raises(ValueError):
            config.validate()


class TestDca:
    def test_static_frequency(self, dca):
        assert dca.static_frequency_mhz == pytest.approx(493.6, abs=0.1)

    def test_evaluate_default_policy(self, dca):
        result = dca.evaluate(get_kernel("fib").program())
        assert result.policy_name == "instruction-lut"
        assert result.speedup_percent > 25.0
        assert result.is_safe

    def test_policy_override(self, dca):
        result = dca.evaluate(
            get_kernel("fib").program(), policy="static", check_safety=False
        )
        assert result.speedup_percent == pytest.approx(0.0, abs=1e-9)

    def test_all_policies_constructible(self, dca):
        for name in DcaConfig.POLICIES:
            assert dca.make_policy(name) is not None
        with pytest.raises(ValueError):
            dca.make_policy("bogus")

    def test_all_generators_constructible(self, dca):
        for name in DcaConfig.GENERATORS:
            assert dca.make_generator(name) is not None
        with pytest.raises(ValueError):
            dca.make_generator("bogus")

    def test_suite_evaluation(self, dca):
        programs = [get_kernel(n).program() for n in ("fib", "crc16")]
        results = dca.evaluate_suite(programs, check_safety=False)
        assert [r.program_name for r in results] == ["fib", "crc16"]

    def test_lut_table_rendering(self, dca):
        text = dca.lut_table(classes=["l.mul(i)"])
        assert "1899" in text

    def test_ring_generator_quantizes(self, dca):
        result = dca.evaluate(
            get_kernel("fib").program(), generator="ring",
            check_safety=False,
        )
        assert result.min_period_ps % 50.0 == pytest.approx(0.0, abs=1e-6)
