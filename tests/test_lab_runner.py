"""Sweep runner: serial/parallel equivalence, store warming, resume."""

import json

import pytest

from repro.dta.compiled import (
    clear_compiled_cache,
    reset_simulation_count,
)
from repro.lab import ArtifactStore, ScenarioGrid, SweepRunner

#: Small but non-trivial grid: 2 configs x 2 programs, safety checked.
GRID = ScenarioGrid(
    name="runner-test",
    policies=("instruction", "genie"),
    margins=(0.0,),
    workloads=("fib", "crc16"),
    check_safety=True,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Runner tests measure store behaviour; keep the in-memory cache and
    the simulation counter out of the picture."""
    clear_compiled_cache()
    reset_simulation_count()
    yield
    clear_compiled_cache()
    reset_simulation_count()


@pytest.fixture
def seeded_store(tmp_path, design, lut):
    """A store pre-seeded with the session LUT (characterising one per
    test would dominate the suite's runtime); traces start cold."""
    store = ArtifactStore(tmp_path / "store")
    store.save_lut(lut, design)
    store.stats.reset()
    return store


def _run(store, jobs=1, resume=False, grid=GRID):
    runner = SweepRunner(grid, store=store, jobs=jobs)
    return runner.run(resume=resume)


class TestSerialRun:
    def test_row_grid_shape_and_order(self, seeded_store):
        result = _run(seeded_store)
        assert result.units_total == 2
        assert result.units_run == 2
        assert [
            (row["config"], row["program"]) for row in result.rows
        ] == [
            ("instruction/ideal", "fib"),
            ("instruction/ideal", "crc16"),
            ("genie/ideal", "fib"),
            ("genie/ideal", "crc16"),
        ]
        assert result.num_violations == 0

    def test_matches_in_process_evaluate_batch(self, seeded_store, design,
                                               lut):
        """Runner rows are bit-identical to the plain evaluate_batch path
        (same grid, no store, no orchestration)."""
        from repro.core import DcaConfig, DynamicClockAdjustment
        from repro.flow.characterize import CharacterizationResult
        from repro.flow.evaluate import evaluate_batch
        from repro.lab.runner import result_to_dict

        result = _run(seeded_store)

        dca = DynamicClockAdjustment(
            config=DcaConfig(variant=design.variant),
            characterization=CharacterizationResult(design=design, lut=lut),
        )
        specs = GRID.config_specs()
        configs = [spec.make(dca) for spec in specs]
        point = GRID.design_points()[0]
        with pytest.warns(DeprecationWarning):
            reference = evaluate_batch(GRID.programs(), design, configs)
        expected = [
            result_to_dict(res, point, spec)
            for spec, row in zip(specs, reference)
            for res in row
        ]
        assert result.rows == expected

    def test_warm_store_skips_simulation(self, seeded_store):
        cold = _run(seeded_store)
        assert cold.simulations == 2
        assert cold.store_stats.get("trace", "writes") == 2

        clear_compiled_cache()
        seeded_store.stats.reset()
        warm = _run(seeded_store)
        assert warm.simulations == 0
        assert warm.store_stats.get("trace", "misses") == 0
        assert warm.store_stats.get("trace", "hits") == 2
        assert warm.store_stats.get("lut", "misses") == 0
        assert warm.rows == cold.rows

    def test_prior_simulations_not_attributed_to_run(self, seeded_store,
                                                     design):
        """Simulations run before the sweep (other tests, warm parents)
        must not inflate the run's simulation count."""
        from repro.dta.compiled import get_compiled_trace
        from repro.workloads import get_kernel

        get_compiled_trace(get_kernel("gcd").program(), design)
        result = _run(seeded_store)
        assert result.simulations == 2   # only the grid's own programs

    def test_sweep_result_cached_in_store(self, tmp_path, seeded_store):
        result = _run(seeded_store)
        store = ArtifactStore(tmp_path / "store")
        cached = store.load_result(f"sweep:{GRID.fingerprint()}")
        assert cached is not None
        assert cached["results"] == result.rows


class TestParallelRun:
    def test_parallel_bit_identical_to_serial(self, seeded_store):
        serial = _run(seeded_store)
        clear_compiled_cache()
        parallel = _run(seeded_store, jobs=2)
        assert parallel.rows == serial.rows
        assert parallel.jobs == 2

    def test_parallel_cold_traces(self, seeded_store):
        """Workers simulate and populate cold trace entries themselves."""
        result = _run(seeded_store, jobs=2)
        assert result.units_run == 2
        clear_compiled_cache()
        rerun = _run(seeded_store)   # serves from what the workers wrote
        assert rerun.rows == result.rows
        assert rerun.simulations == 0


class TestResume:
    def test_resume_skips_completed_units(self, seeded_store):
        first = _run(seeded_store)
        resumed = _run(seeded_store, resume=True)
        assert resumed.units_resumed == 2
        assert resumed.units_run == 0
        assert resumed.rows == first.rows

    def test_resume_after_partial_manifest(self, seeded_store):
        """Simulate an interrupt: drop one unit from the manifest and
        resume — only the missing unit is re-run."""
        first = _run(seeded_store)
        manifest_path = SweepRunner(GRID, store=seeded_store).manifest_path
        payload = json.loads(manifest_path.read_text())
        removed = "critical_range@0.7/crc16"
        assert removed in payload["completed"]
        del payload["completed"][removed]
        manifest_path.write_text(json.dumps(payload))

        clear_compiled_cache()
        resumed = _run(seeded_store, resume=True)
        assert resumed.units_resumed == 1
        assert resumed.units_run == 1
        assert resumed.rows == first.rows

    def test_corrupt_unit_checkpoint_reruns_unit(self, seeded_store):
        """A damaged per-unit checkpoint in the store means that unit is
        re-run on resume, not crashed on or trusted."""
        first = _run(seeded_store)
        runner = SweepRunner(GRID, store=seeded_store)
        unit_name = runner._unit_result_name("critical_range@0.7/fib")
        seeded_store.result_path(unit_name).write_text("garbage")

        clear_compiled_cache()
        resumed = _run(seeded_store, resume=True)
        assert resumed.units_resumed == 1
        assert resumed.units_run == 1
        assert resumed.rows == first.rows

    def test_nearly_equal_voltages_get_distinct_units(self):
        """Unit ids keep full voltage precision — display rounding must
        never merge two operating points."""
        grid = ScenarioGrid(voltages=(0.699, 0.701), workloads=("fib",))
        ids = [unit_id for unit_id, _, _ in SweepRunner(grid).units()]
        assert len(set(ids)) == 2

    def test_stale_manifest_ignored(self, seeded_store):
        _run(seeded_store)
        other_grid = ScenarioGrid(
            name="runner-test",
            policies=("instruction",),
            workloads=("fib", "crc16"),
            check_safety=True,
        )
        clear_compiled_cache()
        rerun = _run(seeded_store, resume=True, grid=other_grid)
        # different fingerprint: nothing resumed, everything re-run
        assert rerun.units_resumed == 0
        assert rerun.units_run == 2

    def test_no_store_no_manifest(self, tmp_path):
        runner = SweepRunner(GRID, store=None, jobs=1)
        assert runner.manifest_path is None
        result = runner.run()
        assert result.units_run == 2
        assert result.store_stats is None


class TestExports:
    def test_write_json_and_csv(self, tmp_path, seeded_store):
        result = _run(seeded_store)
        json_path = tmp_path / "sweep.json"
        csv_path = tmp_path / "sweep.csv"
        result.write_json(json_path)
        result.write_csv(csv_path)

        document = json.loads(json_path.read_text())
        assert document["fingerprint"] == GRID.fingerprint()
        assert len(document["results"]) == 4
        assert document["units"]["total"] == 2

        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("design_point,config,program")
        assert len(lines) == 1 + 4


class TestShardedCharacterization:
    """Characterisation batches shard across workers and resume from the
    store's per-program ``charlut`` cache — merged LUT bit-identical to
    the serial in-process reference."""

    def _cold_store(self, tmp_path):
        return ArtifactStore(tmp_path / "char-store")

    def test_sharded_lut_bit_identical_to_serial(self, tmp_path, design,
                                                 lut):
        store = self._cold_store(tmp_path)
        sharded = store.get_lut(design, jobs=2)
        # the session `lut` fixture is the serial in-process reference
        assert sharded.to_json() == lut.to_json()
        # one batch per characterisation program, all cold
        assert store.stats.get("charlut", "misses") == 7
        assert store.stats.get("charlut", "writes") == 7
        assert store.stats.get("charlut", "hits") == 0

    def test_warm_runner_characterises_nothing(self, tmp_path, design,
                                               lut):
        store = self._cold_store(tmp_path)
        store.get_lut(design, jobs=2)
        store.stats.reset()
        again = store.get_lut(design)
        assert again.to_json() == lut.to_json()
        assert store.stats.get("lut", "hits") == 1
        assert store.stats.get("charlut", "misses") == 0

    def test_killed_shard_resumes_missing_batches_only(self, tmp_path,
                                                       design, lut):
        """Simulate a characterisation killed mid-flight: some program
        batches are in the store, the merged LUT is not.  Re-running must
        recompute exactly the missing batches (store counters as proof)
        and still merge bit-identically."""
        store = self._cold_store(tmp_path)
        store.get_lut(design, jobs=2)

        # kill: drop the merged LUT and two of the seven batches
        for path in (store.root / "luts").glob("*.json"):
            path.unlink()
        batches = sorted((store.root / "charluts").glob("*.json"))
        assert len(batches) == 7
        for path in batches[:2]:
            path.unlink()

        store.stats.reset()
        resumed = store.get_lut(design, jobs=2)
        assert resumed.to_json() == lut.to_json()
        assert store.stats.get("charlut", "hits") == 5
        assert store.stats.get("charlut", "misses") == 2
        assert store.stats.get("charlut", "writes") == 2

    def test_sharded_runner_end_to_end(self, tmp_path, design, lut):
        """A cold --jobs 2 sweep whose warm-up shards characterisation:
        rows must stay bit-identical to the serial no-store reference."""
        store = self._cold_store(tmp_path)
        parallel = SweepRunner(GRID, store=store, jobs=2).run()

        clear_compiled_cache()
        serial_store = ArtifactStore(tmp_path / "serial-store")
        serial = SweepRunner(GRID, store=serial_store, jobs=1).run()
        assert parallel.rows == serial.rows

    def test_keep_runs_incompatible_with_sharding(self, design):
        from repro.flow.characterize import characterize

        with pytest.raises(ValueError, match="keep_runs"):
            characterize(design, jobs=2, keep_runs=True)


class TestStoreBudget:
    """The optional size budget makes long campaigns self-limit: the
    runner LRU-``gc``s its store after every merged run."""

    def _store_bytes(self, store):
        return sum(
            path.stat().st_size
            for path in store.root.rglob("*") if path.is_file()
        )

    def test_runner_auto_gc_after_merge(self, seeded_store):
        budget = 4096
        runner = SweepRunner(
            GRID, store=seeded_store, store_budget_bytes=budget
        )
        result = runner.run()
        assert result.units_run == 2            # the sweep itself ran
        assert self._store_bytes(seeded_store) <= budget

    def test_no_budget_means_no_eviction(self, seeded_store):
        _run(seeded_store)
        before = self._store_bytes(seeded_store)
        assert before > 4096                    # traces + checkpoints

    def test_session_threads_budget_into_sweep(self, tmp_path, design,
                                               lut):
        from repro.api import Session

        store = ArtifactStore(tmp_path / "store")
        store.save_lut(lut, design)
        session = Session(store=store, store_budget_bytes=2048)
        session.sweep(GRID)
        assert self._store_bytes(store) <= 2048

    def test_budgeted_rows_identical_to_unbudgeted(self, tmp_path, design,
                                                   lut):
        stores = []
        for name in ("plain", "budgeted"):
            store = ArtifactStore(tmp_path / name)
            store.save_lut(lut, design)
            stores.append(store)
        plain = SweepRunner(GRID, store=stores[0]).run()
        clear_compiled_cache()
        budgeted = SweepRunner(
            GRID, store=stores[1], store_budget_bytes=1024
        ).run()
        assert plain.rows == budgeted.rows
