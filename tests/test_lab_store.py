"""Artifact store: round trips, key invalidation, corruption fallback.

The store's contract is that *anything that could change an artifact
changes its key* — schema bumps, another design operating point, edited
program content — and that damaged cache files are detected, counted and
recomputed, never crashed on.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.dta.compiled import (
    clear_compiled_cache,
    compile_trace,
    get_compiled_trace,
    reset_simulation_count,
    set_trace_store,
    simulation_count,
)
from repro.lab.store import ArtifactStore, SCHEMA_VERSION
from repro.sim.pipeline import PipelineSimulator
from repro.workloads import get_kernel

MAX_CYCLES = 4_000_000


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture
def fib_compiled(design):
    program = get_kernel("fib").program()
    trace = PipelineSimulator(program).run()
    compiled = compile_trace(trace, design.excitation)
    compiled.delays   # materialise before freezing
    return program, compiled


class TestTraceRoundTrip:
    def test_bit_identical_arrays(self, design, store, fib_compiled):
        program, compiled = fib_compiled
        store.save_compiled_trace(compiled, program, design, MAX_CYCLES)
        loaded = store.load_compiled_trace(program, design, MAX_CYCLES)

        assert loaded is not None
        assert loaded.program_name == compiled.program_name
        assert loaded.num_cycles == compiled.num_cycles
        assert loaded.num_retired == compiled.num_retired
        assert loaded.class_names == compiled.class_names
        assert loaded.operating_point == compiled.operating_point
        np.testing.assert_array_equal(loaded.class_ids, compiled.class_ids)
        np.testing.assert_array_equal(loaded.bubble, compiled.bubble)
        np.testing.assert_array_equal(loaded.held, compiled.held)
        np.testing.assert_array_equal(loaded.stall, compiled.stall)
        np.testing.assert_array_equal(loaded.redirect, compiled.redirect)
        # delays must be bit-identical (== on floats, not approx)
        assert (loaded.delays == compiled.delays).all()
        # rehydrated traces are store artifacts: no records, no model
        assert loaded.trace is None
        assert loaded.excitation is None

    def test_counters(self, design, store, fib_compiled):
        program, compiled = fib_compiled
        assert store.load_compiled_trace(program, design, MAX_CYCLES) is None
        assert store.stats.get("trace", "misses") == 1
        store.save_compiled_trace(compiled, program, design, MAX_CYCLES)
        assert store.stats.get("trace", "writes") == 1
        store.load_compiled_trace(program, design, MAX_CYCLES)
        assert store.stats.get("trace", "hits") == 1

    def test_rehydrated_evaluation_bit_identical(self, design, lut, store,
                                                 fib_compiled):
        """Every vectorized policy evaluates a rehydrated trace exactly
        as it evaluates the in-memory original."""
        from repro.clocking.policies import (
            ExOnlyLutPolicy,
            GeniePolicy,
            InstructionLutPolicy,
            StaticClockPolicy,
            TwoClassPolicy,
        )

        program, compiled = fib_compiled
        store.save_compiled_trace(compiled, program, design, MAX_CYCLES)
        loaded = store.load_compiled_trace(program, design, MAX_CYCLES)
        policies = (
            StaticClockPolicy(design.static_period_ps),
            InstructionLutPolicy(lut),
            ExOnlyLutPolicy(lut),
            TwoClassPolicy(lut),
            GeniePolicy(design.excitation),
        )
        for policy in policies:
            original = policy.periods_for(compiled)
            rehydrated = policy.periods_for(loaded)
            assert (original == rehydrated).all(), policy.name

    def test_genie_rejects_rehydrated_trace_of_other_point(
            self, design, conventional_design, store, fib_compiled):
        """The genie's cross-operating-point fallback needs per-record
        state a rehydrated trace does not have — clear error, no
        AttributeError."""
        from repro.clocking.policies import GeniePolicy

        program, compiled = fib_compiled
        store.save_compiled_trace(compiled, program, design, MAX_CYCLES)
        loaded = store.load_compiled_trace(program, design, MAX_CYCLES)
        policy = GeniePolicy(conventional_design.excitation)
        with pytest.raises(ValueError, match="store-rehydrated"):
            policy.periods_for(loaded)


class TestInvalidation:
    """Each key ingredient must force a miss when it changes."""

    def test_schema_version_bump_misses(self, design, store, fib_compiled):
        program, compiled = fib_compiled
        store.save_compiled_trace(compiled, program, design, MAX_CYCLES)
        bumped = ArtifactStore(store.root,
                               schema_version=SCHEMA_VERSION + 1)
        assert bumped.load_compiled_trace(
            program, design, MAX_CYCLES
        ) is None
        assert bumped.stats.get("trace", "misses") == 1
        # the old-schema entry is untouched and still serves old readers
        assert store.load_compiled_trace(
            program, design, MAX_CYCLES
        ) is not None

    def test_changed_operating_point_misses(self, design,
                                            conventional_design, store,
                                            fib_compiled):
        program, compiled = fib_compiled
        store.save_compiled_trace(compiled, program, design, MAX_CYCLES)
        # another variant
        assert store.load_compiled_trace(
            program, conventional_design, MAX_CYCLES
        ) is None
        # another supply voltage
        assert store.load_compiled_trace(
            program, design.at_voltage(0.80), MAX_CYCLES
        ) is None

    def test_changed_program_content_misses(self, design, store,
                                            fib_compiled):
        program, compiled = fib_compiled
        store.save_compiled_trace(compiled, program, design, MAX_CYCLES)
        other = get_kernel("crc16").program()
        assert store.load_compiled_trace(other, design, MAX_CYCLES) is None

    def test_changed_cycle_budget_misses(self, design, store, fib_compiled):
        program, compiled = fib_compiled
        store.save_compiled_trace(compiled, program, design, MAX_CYCLES)
        assert store.load_compiled_trace(program, design, 1_000) is None

    def test_lut_schema_and_point_invalidation(self, design,
                                               conventional_design, lut,
                                               store):
        store.save_lut(lut, design)
        assert store.load_lut(design) is not None
        assert store.load_lut(conventional_design) is None
        bumped = ArtifactStore(store.root,
                               schema_version=SCHEMA_VERSION + 1)
        assert bumped.load_lut(design) is None
        assert store.load_lut(design, min_occurrences=1) is None


class TestCorruption:
    """Damaged cache files fall back to recompute — never crash."""

    def test_corrupt_trace_recomputes(self, design, store, fib_compiled):
        program, compiled = fib_compiled
        store.save_compiled_trace(compiled, program, design, MAX_CYCLES)
        path = store.trace_path(program, design, MAX_CYCLES)
        path.write_bytes(b"this is not an npz archive")

        assert store.load_compiled_trace(program, design, MAX_CYCLES) is None
        assert store.stats.get("trace", "corrupt") == 1
        assert not path.exists()   # damaged entry is discarded

        # through the cache layer: the miss falls back to re-simulation
        previous = set_trace_store(store)
        clear_compiled_cache()
        reset_simulation_count()
        try:
            recomputed = get_compiled_trace(program, design)
            assert simulation_count() == 1
            assert recomputed.trace is not None
            assert (recomputed.delays == compiled.delays).all()
            # and the recompute re-populated the store
            clear_compiled_cache()
            warm = get_compiled_trace(program, design)
            assert simulation_count() == 1
            assert warm.trace is None
        finally:
            set_trace_store(previous)
            clear_compiled_cache()

    def test_truncated_trace_recomputes(self, design, store, fib_compiled):
        program, compiled = fib_compiled
        store.save_compiled_trace(compiled, program, design, MAX_CYCLES)
        path = store.trace_path(program, design, MAX_CYCLES)
        path.write_bytes(path.read_bytes()[:100])   # torn write
        assert store.load_compiled_trace(program, design, MAX_CYCLES) is None
        assert store.stats.get("trace", "corrupt") == 1

    def test_corrupt_lut_falls_back(self, design, lut, store):
        store.save_lut(lut, design)
        path = store.lut_path(design, 30)
        path.write_text("{ not json")
        assert store.load_lut(design) is None
        assert store.stats.get("lut", "corrupt") == 1
        assert not path.exists()
        # a fresh save works again and round-trips exactly
        store.save_lut(lut, design)
        reloaded = store.load_lut(design)
        for cls in lut.classes():
            assert reloaded.row(cls) == lut.row(cls)
        assert reloaded.characterized == lut.characterized
        assert reloaded.static_period_ps == lut.static_period_ps

    def test_wrong_payload_type_falls_back(self, design, lut, store):
        store.save_lut(lut, design)
        path = store.lut_path(design, 30)
        path.write_text(json.dumps({"schema": SCHEMA_VERSION, "lut": 42}))
        assert store.load_lut(design) is None
        assert store.stats.get("lut", "corrupt") == 1

    def test_corrupt_result_falls_back(self, store):
        store.save_result("sweep:abc", {"rows": [1, 2, 3]})
        assert store.load_result("sweep:abc") == {"rows": [1, 2, 3]}
        store.result_path("sweep:abc").write_text("garbage")
        assert store.load_result("sweep:abc") is None
        assert store.stats.get("result", "corrupt") == 1


class TestGetLut:
    def test_get_lut_characterises_once(self, design, lut, store):
        """A pre-seeded store serves the LUT without characterising."""
        store.save_lut(lut, design)
        served = store.get_lut(design)
        assert store.stats.get("lut", "hits") == 1
        for cls in lut.classes():
            assert served.row(cls) == lut.row(cls)


class TestGc:
    """LRU garbage collection: newest artifacts survive a size budget."""

    def _populate(self, store, tmp_path):
        """Four artifacts with a controlled LRU order (oldest first)."""
        import os
        import time

        for index in range(4):
            store.save_result(f"gc-{index}", {"payload": "x" * 256})
        paths = sorted(
            (path for path in store.root.rglob("*") if path.is_file()),
            key=lambda path: path.name,
        )
        base = time.time() - 1_000
        ordered = []
        for index, name in enumerate(f"gc-{i}" for i in range(4)):
            path = store.result_path(name)
            os.utime(path, (base + index * 60, base + index * 60))
            ordered.append(path)
        assert len(paths) == 4
        return ordered

    def test_gc_removes_least_recently_used(self, store, tmp_path):
        ordered = self._populate(store, tmp_path)
        sizes = [path.stat().st_size for path in ordered]
        # budget for exactly the two newest artifacts
        budget = sizes[2] + sizes[3]
        result = store.gc(max_bytes=budget)
        assert result.removed_files == 2
        assert result.kept_files == 2
        assert not ordered[0].exists() and not ordered[1].exists()
        assert ordered[2].exists() and ordered[3].exists()

    def test_gc_load_refreshes_lru_clock(self, store, tmp_path):
        """A hit touches the artifact's mtime, protecting it from gc."""
        ordered = self._populate(store, tmp_path)
        assert store.load_result("gc-0") is not None   # oldest becomes MRU
        budget = sum(path.stat().st_size for path in ordered[:2])
        result = store.gc(max_bytes=budget)
        assert ordered[0].exists()            # refreshed by the load
        assert not ordered[1].exists()        # now the LRU victim
        assert result.removed_files == 2

    def test_gc_dry_run_deletes_nothing(self, store, tmp_path):
        ordered = self._populate(store, tmp_path)
        result = store.gc(max_bytes=0, dry_run=True)
        assert result.removed_files == 4
        assert all(path.exists() for path in ordered)

    def test_gc_zero_budget_empties_store(self, store, tmp_path):
        ordered = self._populate(store, tmp_path)
        result = store.gc(max_bytes=0)
        assert result.kept_files == 0
        assert not any(path.exists() for path in ordered)
        assert result.summary().startswith("kept 0 files")

    def test_gc_negative_budget_rejected(self, store):
        with pytest.raises(ValueError):
            store.gc(max_bytes=-1)

    def test_gc_empty_store(self, store):
        result = store.gc(max_bytes=1024)
        assert result.scanned_files == 0
        assert result.removed_files == 0

    def test_gc_covers_traces_and_charluts(self, store, fib_compiled,
                                           design):
        program, compiled = fib_compiled
        store.save_compiled_trace(compiled, program, design, MAX_CYCLES)
        lut = _tiny_lut(design)
        store.save_char_lut(lut, 123, design, program)
        result = store.gc(max_bytes=0)
        assert result.removed_files == 2
        assert store.load_compiled_trace(program, design, MAX_CYCLES) is None
        assert store.load_char_lut(design, program) is None


def _tiny_lut(design):
    from repro.dta.lut import DelayLUT

    return DelayLUT(static_period_ps=design.static_period_ps)


class TestCharLutRoundTrip:
    def test_round_trip(self, store, design, lut):
        from repro.workloads import get_kernel

        program = get_kernel("fib").program()
        store.save_char_lut(lut, 4321, design, program)
        loaded = store.load_char_lut(design, program)
        assert loaded is not None
        cached_lut, num_cycles = loaded
        assert num_cycles == 4321
        assert cached_lut.to_json() == lut.to_json()
        assert store.stats.get("charlut", "hits") == 1

    def test_torn_charlut_recomputed(self, store, design, lut):
        from repro.workloads import get_kernel

        program = get_kernel("fib").program()
        store.save_char_lut(lut, 99, design, program)
        path = store.char_lut_path(design, program)
        path.write_text(path.read_text()[:40])     # torn write
        assert store.load_char_lut(design, program) is None
        assert store.stats.get("charlut", "corrupt") == 1
        assert not path.exists()

    def test_key_varies_with_program_and_threshold(self, store, design):
        from repro.workloads import get_kernel

        fib = get_kernel("fib").program()
        crc = get_kernel("crc16").program()
        assert store.char_lut_path(design, fib) != \
            store.char_lut_path(design, crc)
        assert store.char_lut_path(design, fib, min_occurrences=5) != \
            store.char_lut_path(design, fib)
        assert store.char_lut_path(design, fib, sim_period_ps=2000.0) != \
            store.char_lut_path(design, fib)


class TestModelArtifacts:
    """Learned-policy models share the store contract of traces/LUTs:
    content-addressed, schema-versioned, corruption → counted miss."""

    @staticmethod
    def _model(seed=0):
        from repro.ml.features import feature_names
        from repro.ml.model import LearnedModel

        return LearnedModel(
            kind="tree",
            vocabulary=("<bubble>",),
            window=8,
            feature_names=feature_names(),
            tree_feature=np.array([-1], dtype=np.int32),
            tree_threshold=np.array([0.0]),
            tree_left=np.array([-1], dtype=np.int32),
            tree_right=np.array([-1], dtype=np.int32),
            tree_value=np.array([1.0]),
            metadata={"seed": seed},
        )

    def test_round_trip_and_counters(self, store):
        assert store.load_model("m") is None
        assert store.stats.get("model", "misses") == 1
        model = self._model()
        store.save_model("m", model)
        assert store.stats.get("model", "writes") == 1
        assert store.load_model("m") == model
        assert store.stats.get("model", "hits") == 1

    def test_names_are_content_addressed(self, store):
        assert store.model_path("a") != store.model_path("b")
        assert store.model_path("a").suffix == ".npz"
        assert store.model_path("a").parent.name == "models"

    def test_corruption_discards_and_misses(self, store):
        store.save_model("m", self._model())
        store.model_path("m").write_bytes(b"torn")
        assert store.load_model("m") is None
        assert store.stats.get("model", "corrupt") == 1
        assert not store.model_path("m").exists()

    def test_schema_bump_invalidates(self, store, tmp_path):
        store.save_model("m", self._model())
        bumped = ArtifactStore(store.root,
                               schema_version=SCHEMA_VERSION + 1)
        assert bumped.load_model("m") is None   # different key: a miss
        assert bumped.stats.get("model", "misses") == 1

    def test_models_are_gc_eligible(self, store):
        store.save_model("m", self._model())
        result = store.gc(max_bytes=0)
        assert result.removed_files == 1
        assert not store.model_path("m").exists()


class TestGcStrictLru:
    def test_older_small_file_cannot_outlive_newer_large_one(self, store):
        """The first artifact that overflows the budget marks the recency
        cut: everything older is evicted too, even if it would fit."""
        import os
        import time

        store.save_result("big-new", {"blob": "x" * 4000})
        store.save_result("small-old", {"blob": "y"})
        base = time.time() - 1_000
        os.utime(store.result_path("small-old"), (base, base))
        os.utime(store.result_path("big-new"), (base + 600, base + 600))

        big = store.result_path("big-new")
        small = store.result_path("small-old")
        # budget below the big file: nothing may survive — keeping the
        # stale small file while evicting the fresh big one would be
        # recency inversion
        result = store.gc(max_bytes=big.stat().st_size - 1)
        assert not big.exists() and not small.exists()
        assert result.kept_files == 0
        assert result.removed_files == 2


class TestGcConcurrencySemantics:
    """GC against concurrent writers and evictors: in-flight temp files
    are untouchable, vanished entries are tolerated and reported, and
    ``removed_*`` never counts an unlink that did not happen."""

    def test_gc_skips_inflight_temp_files(self, store):
        store.save_result("keep", {"v": 1})
        # what _write_atomic's mkstemp leaves while a writer is mid-flight
        results_dir = store.result_path("keep").parent
        tmp_npz = results_dir / "deadbeef012345ab.tmp.npz"
        tmp_npz.write_bytes(b"x" * 10_000)
        tmp_json = results_dir / "deadbeef012345cd.tmp.json"
        tmp_json.write_text("{} " * 1_000)
        manifest_tmp = results_dir / "manifest.tmp"
        manifest_tmp.write_text("{}")

        result = store.gc(max_bytes=0)
        assert tmp_npz.exists() and tmp_json.exists()
        assert manifest_tmp.exists()
        assert result.scanned_files == 1          # only the real artifact
        assert result.removed_files == 1

    def test_gc_tolerates_entry_vanishing_before_stat(self, store):
        """A path another process evicted between scan and ``stat`` is
        reported as vanished, not raised."""
        store.save_result("real", {"v": 1})
        ghost = store.result_path("real").parent / "gone.json"
        result = store.gc(
            max_bytes=0,
            paths=[store.result_path("real"), ghost],
        )
        assert result.vanished_files == 1
        assert result.removed_files == 1
        assert not store.result_path("real").exists()

    def test_gc_counts_vanished_unlink_not_removed(self, store,
                                                   monkeypatch):
        """Another process unlinking the victim first must not inflate
        ``removed_files``/``removed_bytes``."""
        store.save_result("victim", {"v": 1})
        original = ArtifactStore._discard

        def racing_discard(self, path):
            path.unlink(missing_ok=True)      # the "other process" wins
            return original(self, path)

        monkeypatch.setattr(ArtifactStore, "_discard", racing_discard)
        result = store.gc(max_bytes=0)
        assert result.removed_files == 0
        assert result.removed_bytes == 0
        assert result.vanished_files == 1

    def test_gc_counts_failed_unlink_not_removed(self, store,
                                                 monkeypatch):
        """An unlink that fails (file persists) is surfaced as failed,
        never counted as an eviction."""
        store.save_result("stuck", {"v": 1})

        def failing_discard(self, path):
            return ArtifactStore._FAILED

        monkeypatch.setattr(ArtifactStore, "_discard", failing_discard)
        result = store.gc(max_bytes=0)
        assert result.removed_files == 0
        assert result.failed_files == 1
        assert store.result_path("stuck").exists()
        assert "FAILED" in result.summary()

    def test_discard_outcomes(self, store, monkeypatch):
        store.save_result("x", {"v": 1})
        path = store.result_path("x")
        assert store._discard(path) == ArtifactStore._REMOVED
        assert store._discard(path) == ArtifactStore._VANISHED

        def raise_oserror(self):
            raise OSError("busy")

        monkeypatch.setattr(pathlib.Path, "unlink", raise_oserror)
        assert store._discard(path) == ArtifactStore._FAILED

    def test_gc_paths_restricts_eligibility(self, store):
        """``paths=`` (the per-tenant budget hook) only ever evicts the
        named files, LRU-ordered among themselves."""
        import os
        import time

        for index in range(3):
            store.save_result(f"tenant-a-{index}", {"v": index})
        store.save_result("tenant-b", {"v": 99})
        base = time.time() - 1_000
        tenant_a = [store.result_path(f"tenant-a-{i}") for i in range(3)]
        for index, path in enumerate(tenant_a):
            os.utime(path, (base + index, base + index))

        result = store.gc(
            max_bytes=tenant_a[2].stat().st_size, paths=tenant_a
        )
        assert store.result_path("tenant-b").exists()   # out of scope
        assert tenant_a[2].exists()                     # newest kept
        assert not tenant_a[0].exists() and not tenant_a[1].exists()
        assert result.removed_files == 2


class TestStoreStatsThreadSafety:
    def test_concurrent_record_loses_no_increments(self, store):
        """The sweep service hits one StoreStats from the event loop and
        watcher threads at once; ``+=`` on the shared dict must not drop
        updates."""
        import threading

        stats = store.stats
        increments = 5_000

        def hammer():
            for _ in range(increments):
                stats.record("frame", "hits")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.counts["frame"]["hits"] == 8 * increments

    def test_merge_accepts_stats_and_dict(self, store, tmp_path):
        other = ArtifactStore(tmp_path / "other")
        other.stats.record("trace", "misses")
        store.stats.merge(other.stats)
        store.stats.merge({"trace": {"misses": 2}})
        assert store.stats.counts["trace"]["misses"] == 3
