"""CLI tests (argument parsing and end-to-end subcommands)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["sta"])
        assert args.variant == "critical_range"
        assert args.voltage == 0.70

    def test_evaluate_options(self):
        args = build_parser().parse_args(
            ["evaluate", "crc32", "--policy", "genie", "--margin", "5"]
        )
        assert args.policy == "genie"
        assert args.margin == 5.0

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "crc32", "fib", "--policy", "instruction",
             "--policy", "genie", "--margin", "0", "--margin", "10",
             "--check-safety"]
        )
        assert args.programs == ["crc32", "fib"]
        assert args.policy == ["instruction", "genie"]
        assert args.margin == [0.0, 10.0]
        assert args.check_safety


class TestCommands:
    def test_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "crc32" in out and "matmult" in out

    def test_asm_kernel(self, capsys):
        assert main(["asm", "fib"]) == 0
        out = capsys.readouterr().out
        assert "l.addi" in out

    def test_asm_file(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text("l.addi r1, r0, 7\nl.nop 0x1\n")
        assert main(["asm", str(source)]) == 0
        assert "l.addi r1,r0,7" in capsys.readouterr().out

    def test_run_kernel(self, capsys):
        assert main(["run", "fib", "--regs"]) == 0
        out = capsys.readouterr().out
        assert "CPI" in out and "r11" in out

    def test_sta(self, capsys):
        assert main(["sta"]) == 0
        out = capsys.readouterr().out
        assert "2026" in out

    def test_sta_conventional(self, capsys):
        assert main(["sta", "--variant", "conventional"]) == 0
        assert "1859" in capsys.readouterr().out

    def test_characterize_and_evaluate_roundtrip(self, tmp_path, capsys):
        lut_path = tmp_path / "lut.json"
        assert main(["characterize", "-o", str(lut_path)]) == 0
        payload = json.loads(lut_path.read_text())
        assert "entries" in payload

        assert main(["evaluate", "fib", "--lut", str(lut_path)]) == 0
        out = capsys.readouterr().out
        assert "violations 0" in out

        assert main(["table2", "--lut", str(lut_path)]) == 0
        assert "1899" in capsys.readouterr().out

        csv_path = tmp_path / "sweep.csv"
        assert main([
            "sweep", "fib", "crc16", "--lut", str(lut_path),
            "--policy", "instruction", "--policy", "genie",
            "--margin", "0", "--margin", "10",
            "--check-safety", "--csv", str(csv_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "4 configs" in out
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("config,benchmark")
        assert len(lines) == 1 + 2 * 4   # header + programs x configs


class TestProgramErrors:
    """Bad program specs exit nonzero with a friendly message — never a
    raw traceback."""

    def test_unknown_kernel(self, capsys):
        assert main(["run", "nosuchkernel"]) == 2
        err = capsys.readouterr().err
        assert "unknown kernel 'nosuchkernel'" in err
        assert "crc32" in err        # the message lists bundled kernels

    def test_missing_assembly_file(self, tmp_path, capsys):
        missing = tmp_path / "missing.s"
        assert main(["asm", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "assembly file not found" in err

    def test_evaluate_fails_fast_before_characterisation(self, capsys):
        assert main(["evaluate", "nosuchkernel"]) == 2
        captured = capsys.readouterr()
        assert "unknown kernel" in captured.err
        assert "characterising" not in captured.err   # failed fast


class TestGridSweep:
    def test_grid_end_to_end_with_resume_and_jobs(self, tmp_path, capsys,
                                                  design, lut):
        """Grid mode: run, export, then resume warm with --jobs 2."""
        import json as jsonlib

        from repro.dta.compiled import clear_compiled_cache
        from repro.lab.store import ArtifactStore

        store_dir = tmp_path / "store"
        # seed the LUT so the CLI test does not re-characterise
        ArtifactStore(store_dir).save_lut(lut, design)
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(jsonlib.dumps({
            "name": "cli-grid",
            "policies": ["instruction", "genie"],
            "workloads": ["fib", "crc16"],
            "check_safety": True,
        }))
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"

        clear_compiled_cache()
        assert main([
            "sweep", "--grid", str(grid_path), "--store", str(store_dir),
            "--json", str(json_path), "--csv", str(csv_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "cli-grid" in out
        document = jsonlib.loads(json_path.read_text())
        assert len(document["results"]) == 2 * 2
        assert csv_path.read_text().startswith("design_point,config")

        clear_compiled_cache()
        assert main([
            "sweep", "--grid", str(grid_path), "--store", str(store_dir),
            "--resume", "--jobs", "2",
        ]) == 0
        assert "(2 resumed)" in capsys.readouterr().out

    def test_grid_file_errors(self, tmp_path, capsys):
        assert main(["sweep", "--grid", str(tmp_path / "nope.json")]) == 2
        assert "not found" in capsys.readouterr().err

        bad = tmp_path / "bad.json"
        bad.write_text('{"policies": ["warp-speed"]}')
        assert main(["sweep", "--grid", str(bad)]) == 2
        assert "warp-speed" in capsys.readouterr().err

    def test_grid_rejects_conflicting_axes(self, tmp_path, capsys):
        grid_path = tmp_path / "grid.json"
        grid_path.write_text("{}")
        assert main(
            ["sweep", "fib", "--grid", str(grid_path)]
        ) == 2
        assert "grid file" in capsys.readouterr().err
        # safety gating and LUT reuse live in the grid file, not flags
        assert main(
            ["sweep", "--grid", str(grid_path), "--check-safety"]
        ) == 2
        assert main(
            ["sweep", "--grid", str(grid_path), "--lut", "lut.json"]
        ) == 2

    def test_grid_rejects_design_flags(self, tmp_path, capsys):
        """--variant/--voltage would be silently shadowed by the grid's
        own axes; reject them like the other per-flag axes."""
        grid_path = tmp_path / "grid.json"
        grid_path.write_text("{}")
        assert main(
            ["sweep", "--grid", str(grid_path), "--voltage", "0.8"]
        ) == 2
        assert main(
            ["sweep", "--grid", str(grid_path), "--variant", "conventional"]
        ) == 2

    def test_jobs_resume_json_require_grid(self, capsys):
        assert main(["sweep", "--jobs", "2"]) == 2
        assert main(["sweep", "--resume"]) == 2
        assert main(["sweep", "--json", "out.json"]) == 2

    def test_grid_sweep_store_max_size(self, tmp_path, capsys, design,
                                       lut):
        """--store-max-size LRU-evicts the store after the merged run."""
        import json as jsonlib

        from repro.dta.compiled import clear_compiled_cache
        from repro.lab.store import ArtifactStore

        store_dir = tmp_path / "store"
        ArtifactStore(store_dir).save_lut(lut, design)
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(jsonlib.dumps({
            "name": "budgeted", "policies": ["instruction"],
            "workloads": ["fib"],
        }))
        clear_compiled_cache()
        assert main([
            "sweep", "--grid", str(grid_path), "--store", str(store_dir),
            "--store-max-size", "1K",
        ]) == 0
        total = sum(
            path.stat().st_size
            for path in store_dir.rglob("*") if path.is_file()
        )
        assert total <= 1024
        capsys.readouterr()

    def test_sweep_store_max_size_invalid(self, tmp_path, capsys):
        grid_path = tmp_path / "grid.json"
        grid_path.write_text('{"workloads": ["fib"]}')
        assert main([
            "sweep", "--grid", str(grid_path), "--store",
            str(tmp_path / "store"), "--store-max-size", "plenty",
        ]) == 2
        assert "invalid size" in capsys.readouterr().err

    def test_sweep_store_max_size_requires_store(self, tmp_path, capsys):
        """A budget with nothing to evict is a user error, not a no-op."""
        grid_path = tmp_path / "grid.json"
        grid_path.write_text('{"workloads": ["fib"]}')
        assert main([
            "sweep", "--grid", str(grid_path),
            "--store-max-size", "64K",
        ]) == 2
        assert "requires --store" in capsys.readouterr().err
        assert main([
            "sweep", "fib", "--store-max-size", "64K",
        ]) == 2
        assert "requires --store" in capsys.readouterr().err

    def test_legacy_sweep_honours_store(self, tmp_path, capsys, design,
                                        lut):
        """Without --grid, --store still caches traces and the LUT."""
        from repro.dta.compiled import clear_compiled_cache
        from repro.lab.store import ArtifactStore

        store_dir = tmp_path / "store"
        ArtifactStore(store_dir).save_lut(lut, design)
        clear_compiled_cache()
        assert main([
            "sweep", "fib", "--store", str(store_dir),
            "--policy", "instruction",
        ]) == 0
        err = capsys.readouterr().err
        assert "characterising" not in err    # LUT came from the store
        assert any((store_dir / "traces").iterdir())


class TestStoreGc:
    def test_parse_size(self):
        from repro.cli import parse_size

        assert parse_size("4096") == 4096
        assert parse_size("4K") == 4096
        assert parse_size("1.5M") == int(1.5 * (1 << 20))
        assert parse_size("2G") == 2 << 30
        assert parse_size("500MB") == 500 << 20
        with pytest.raises(ValueError):
            parse_size("chunky")
        with pytest.raises(ValueError):
            parse_size("-1M")

    def test_store_gc_evicts_to_budget(self, tmp_path, capsys):
        from repro.lab.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        for index in range(3):
            store.save_result(f"r{index}", {"blob": "y" * 512})
        code = main([
            "store", "gc", "--store", str(store.root), "--max-size", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "evicted 3" in out
        assert not any((store.root / "results").glob("*.json"))

    def test_store_gc_dry_run(self, tmp_path, capsys):
        from repro.lab.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        store.save_result("keep", {"blob": "z"})
        code = main([
            "store", "gc", "--store", str(store.root),
            "--max-size", "0", "--dry-run",
        ])
        assert code == 0
        assert "would evict 1" in capsys.readouterr().out
        assert store.load_result("keep") == {"blob": "z"}

    def test_store_gc_missing_directory(self, tmp_path, capsys):
        code = main([
            "store", "gc", "--store", str(tmp_path / "nope"),
            "--max-size", "1M",
        ])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_store_gc_bad_size(self, tmp_path, capsys):
        (tmp_path / "s").mkdir()
        code = main([
            "store", "gc", "--store", str(tmp_path / "s"),
            "--max-size", "many",
        ])
        assert code == 2
        assert "invalid size" in capsys.readouterr().err


class TestLearnedPolicyErrors:
    """learned:<model> specs fail fast (exit 2, naming the path) before
    any simulation or characterisation runs."""

    def test_parser_accepts_learned_spec(self):
        args = build_parser().parse_args(
            ["evaluate", "crc32", "--policy", "learned:m.npz"]
        )
        assert args.policy == "learned:m.npz"

    def test_parser_rejects_unknown_policy(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["evaluate", "crc32", "--policy", "warp-speed"]
            )
        assert "learned:<model.npz>" in capsys.readouterr().err

    def test_evaluate_missing_model(self, tmp_path, capsys):
        missing = tmp_path / "missing.npz"
        assert main(
            ["evaluate", "crc32", "--policy", f"learned:{missing}"]
        ) == 2
        captured = capsys.readouterr()
        assert str(missing) in captured.err
        assert "not found" in captured.err
        assert "characterising" not in captured.err   # failed fast

    def test_evaluate_corrupt_model(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.npz"
        corrupt.write_bytes(b"not a model")
        assert main(
            ["evaluate", "crc32", "--policy", f"learned:{corrupt}"]
        ) == 2
        captured = capsys.readouterr()
        assert "corrupt" in captured.err and str(corrupt) in captured.err
        assert "characterising" not in captured.err

    def test_flag_sweep_missing_model(self, tmp_path, capsys):
        missing = tmp_path / "missing.npz"
        assert main(
            ["sweep", "fib", "--policy", f"learned:{missing}"]
        ) == 2
        assert str(missing) in capsys.readouterr().err

    def test_grid_sweep_missing_model(self, tmp_path, capsys):
        missing = tmp_path / "missing.npz"
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({
            "name": "g", "policies": [f"learned:{missing}"],
            "workloads": ["fib"],
        }))
        assert main(["sweep", "--grid", str(grid)]) == 2
        captured = capsys.readouterr()
        assert str(missing) in captured.err
        assert "units" not in captured.err            # never started


class TestTrain:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["train", "--grid", "g.json"])
        assert args.out == "model.npz"
        assert args.model == "tree"
        assert args.seed == 0
        assert not args.no_eval

    def test_train_end_to_end(self, tmp_path, capsys):
        """Train on a tiny grid, write report, deploy via evaluate."""
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({
            "name": "cli-train", "policies": ["static"],
            "workloads": ["fib"], "check_safety": True,
        }))
        out = tmp_path / "model.npz"
        report = tmp_path / "BENCH_train.json"
        code = main([
            "train", "--grid", str(grid), "--out", str(out),
            "--report", str(report), "--seed", "3",
        ])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert out.is_file()
        assert "Learned vs static" in captured.out
        document = json.loads(report.read_text())
        assert document["train"]["grid"] == "cli-train"
        assert document["train"]["config"]["seed"] == 3
        assert document["eval"]["safe"] is True
        assert document["eval"]["faster_than_static"] is True
        assert document["eval"]["learned"]["violations"] == 0

        # the written artifact deploys through the registry
        assert main(
            ["evaluate", "fib", "--policy", f"learned:{out}"]
        ) == 0
        assert "violations 0" in capsys.readouterr().out

    def test_train_no_eval_skips_suite(self, tmp_path, capsys):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({
            "name": "cli-train", "policies": ["static"],
            "workloads": ["fib"], "check_safety": True,
        }))
        out = tmp_path / "model.npz"
        report = tmp_path / "r.json"
        code = main([
            "train", "--grid", str(grid), "--out", str(out),
            "--report", str(report), "--no-eval",
        ])
        assert code == 0
        assert "Learned vs static" not in capsys.readouterr().out
        assert "eval" not in json.loads(report.read_text())

    def test_train_stores_model_artifact(self, tmp_path, capsys):
        from repro.lab.store import ArtifactStore

        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({
            "name": "cli-train", "policies": ["static"],
            "workloads": ["fib"], "check_safety": True,
        }))
        store_dir = tmp_path / "store"
        code = main([
            "train", "--grid", str(grid),
            "--out", str(tmp_path / "model.npz"),
            "--store", str(store_dir), "--no-eval",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "stored model artifact" in out
        from repro.lab.scenario import ScenarioGrid

        fingerprint = ScenarioGrid.from_file(grid).fingerprint()
        name = f"train:{fingerprint}:0:tree"
        assert ArtifactStore(store_dir).load_model(name) is not None

    def test_train_bad_grid(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"policies": ["warp"]}')
        assert main(["train", "--grid", str(bad)]) == 2
        assert "unknown policy" in capsys.readouterr().err


class TestObservability:
    """--trace / --progress / the profile subcommand."""

    @staticmethod
    def _seeded(tmp_path, design, lut):
        from repro.lab.store import ArtifactStore

        store_dir = tmp_path / "store"
        ArtifactStore(store_dir).save_lut(lut, design)
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(json.dumps({
            "name": "cli-obs",
            "policies": ["instruction"],
            "workloads": ["fib", "crc16"],
            "check_safety": True,
        }))
        return store_dir, grid_path

    def test_parser_accepts_trace_and_progress(self):
        args = build_parser().parse_args(
            ["sweep", "--grid", "g.json", "--trace", "t.json",
             "--progress"]
        )
        assert args.trace == "t.json" and args.progress

    def test_parser_profile_defaults(self):
        args = build_parser().parse_args(["profile", "g.json"])
        assert args.grid == "g.json"
        assert args.jobs == 1 and args.store is None
        assert args.trace is None and not args.resume

    def test_trace_and_progress_require_grid(self, capsys):
        assert main(["sweep", "--trace", "t.json"]) == 2
        assert "--trace" in capsys.readouterr().err
        assert main(["sweep", "--progress"]) == 2
        assert "--progress" in capsys.readouterr().err

    def test_sweep_trace_writes_valid_chrome_trace(self, tmp_path, capsys,
                                                   design, lut):
        from repro.dta.compiled import clear_compiled_cache
        from repro.obs.export import validate_chrome_trace

        store_dir, grid_path = self._seeded(tmp_path, design, lut)
        trace_path = tmp_path / "trace.json"
        clear_compiled_cache()
        assert main([
            "sweep", "--grid", str(grid_path), "--store", str(store_dir),
            "--trace", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert f"wrote {trace_path}" in out
        payload = json.loads(trace_path.read_text())
        categories = validate_chrome_trace(payload)
        assert {"session", "sweep", "evaluate", "store"} <= categories
        assert payload["otherData"]["counters"]

    def test_sweep_progress_silent_off_tty(self, tmp_path, capsys, design,
                                           lut):
        store_dir, grid_path = self._seeded(tmp_path, design, lut)
        assert main([
            "sweep", "--grid", str(grid_path), "--store", str(store_dir),
            "--progress",
        ]) == 0
        captured = capsys.readouterr()
        assert "cli-obs" in captured.out
        assert "\r" not in captured.err   # non-TTY: line never renders

    def test_profile_end_to_end(self, tmp_path, capsys, design, lut):
        from repro.dta.compiled import clear_compiled_cache

        store_dir, grid_path = self._seeded(tmp_path, design, lut)
        clear_compiled_cache()
        assert main([
            "profile", str(grid_path), "--store", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "Profile 'cli-obs'" in out
        assert "session.sweep" in out
        assert "counters:" in out
        assert "store:" in out

    def test_profile_with_trace_export(self, tmp_path, capsys, design,
                                       lut):
        from repro.obs.export import validate_chrome_trace

        store_dir, grid_path = self._seeded(tmp_path, design, lut)
        trace_path = tmp_path / "profile-trace.json"
        assert main([
            "profile", str(grid_path), "--store", str(store_dir),
            "--trace", str(trace_path),
        ]) == 0
        validate_chrome_trace(json.loads(trace_path.read_text()))

    def test_profile_bad_grid(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "nope.json")]) == 2
        assert "not found" in capsys.readouterr().err
