"""CLI tests (argument parsing and end-to-end subcommands)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["sta"])
        assert args.variant == "critical_range"
        assert args.voltage == 0.70

    def test_evaluate_options(self):
        args = build_parser().parse_args(
            ["evaluate", "crc32", "--policy", "genie", "--margin", "5"]
        )
        assert args.policy == "genie"
        assert args.margin == 5.0

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "crc32", "fib", "--policy", "instruction",
             "--policy", "genie", "--margin", "0", "--margin", "10",
             "--check-safety"]
        )
        assert args.programs == ["crc32", "fib"]
        assert args.policy == ["instruction", "genie"]
        assert args.margin == [0.0, 10.0]
        assert args.check_safety


class TestCommands:
    def test_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "crc32" in out and "matmult" in out

    def test_asm_kernel(self, capsys):
        assert main(["asm", "fib"]) == 0
        out = capsys.readouterr().out
        assert "l.addi" in out

    def test_asm_file(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text("l.addi r1, r0, 7\nl.nop 0x1\n")
        assert main(["asm", str(source)]) == 0
        assert "l.addi r1,r0,7" in capsys.readouterr().out

    def test_run_kernel(self, capsys):
        assert main(["run", "fib", "--regs"]) == 0
        out = capsys.readouterr().out
        assert "CPI" in out and "r11" in out

    def test_sta(self, capsys):
        assert main(["sta"]) == 0
        out = capsys.readouterr().out
        assert "2026" in out

    def test_sta_conventional(self, capsys):
        assert main(["sta", "--variant", "conventional"]) == 0
        assert "1859" in capsys.readouterr().out

    def test_characterize_and_evaluate_roundtrip(self, tmp_path, capsys):
        lut_path = tmp_path / "lut.json"
        assert main(["characterize", "-o", str(lut_path)]) == 0
        payload = json.loads(lut_path.read_text())
        assert "entries" in payload

        assert main(["evaluate", "fib", "--lut", str(lut_path)]) == 0
        out = capsys.readouterr().out
        assert "violations 0" in out

        assert main(["table2", "--lut", str(lut_path)]) == 0
        assert "1899" in capsys.readouterr().out

        csv_path = tmp_path / "sweep.csv"
        assert main([
            "sweep", "fib", "crc16", "--lut", str(lut_path),
            "--policy", "instruction", "--policy", "genie",
            "--margin", "0", "--margin", "10",
            "--check-safety", "--csv", str(csv_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "4 configs" in out
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("config,benchmark")
        assert len(lines) == 1 + 2 * 4   # header + programs x configs
