"""Delay-profile tests: coverage, paper anchors, variant derivation."""

import pytest

from repro.isa.classes import all_timing_classes
from repro.paperdata import (
    TABLE1_CRITICAL_RANGE_FACTORS,
    TABLE2_INSTRUCTION_DELAYS,
)
from repro.sim.trace import Stage
from repro.timing.profiles import (
    BUBBLE_CLASS,
    DelayProfile,
    DesignVariant,
    load_profile,
)


@pytest.fixture(scope="module")
def optimized():
    return load_profile(DesignVariant.CRITICAL_RANGE)


@pytest.fixture(scope="module")
def conventional():
    return load_profile(DesignVariant.CONVENTIONAL)


class TestCoverage:
    def test_every_timing_class_has_ex_entry(self, optimized, conventional):
        for cls in all_timing_classes():
            assert optimized.ex_spec(cls).max_ps > 0
            assert conventional.ex_spec(cls).max_ps > 0

    def test_every_class_has_all_stage_specs(self, optimized):
        for cls in all_timing_classes():
            for stage in Stage:
                spec = optimized.stage_spec(cls, stage)
                assert spec.max_ps > 0

    def test_bubble_delays_for_all_stages(self, optimized):
        for stage in Stage:
            assert stage in optimized.bubble_delays


class TestPhysicalInvariants:
    def test_dynamic_below_static(self, optimized, conventional):
        for profile in (optimized, conventional):
            for cls in all_timing_classes():
                assert profile.class_row_max(cls) < profile.static_period_ps

    def test_spread_below_max(self, optimized):
        for cls in all_timing_classes():
            spec = optimized.ex_spec(cls)
            assert 0 <= spec.spread_ps < spec.max_ps

    def test_redirect_longer_than_sequential(self, optimized):
        assert optimized.adr_redirect.max_ps > optimized.adr_seq.max_ps

    def test_dc_below_adr_seq(self, optimized):
        # weak-EX cycles must be attributed to the instruction memory
        assert optimized.dc["default"].max_ps < optimized.adr_seq.max_ps

    def test_hold_delay_small(self, optimized):
        assert optimized.hold_delay_ps < optimized.adr_seq.max_ps / 2


class TestPaperAnchors:
    def test_static_periods(self, optimized, conventional):
        assert optimized.static_period_ps == 2026.0
        assert conventional.static_period_ps == pytest.approx(1859.0)
        ratio = optimized.static_period_ps / conventional.static_period_ps
        assert ratio == pytest.approx(1.09, abs=0.002)

    @pytest.mark.parametrize("cls,expected", [
        (cls, values) for cls, values in TABLE2_INSTRUCTION_DELAYS.items()
    ])
    def test_table2_values(self, optimized, cls, expected):
        delay, stage_name = expected
        assert optimized.class_row_max(cls) == pytest.approx(delay)
        assert optimized.class_limiting_stage(cls).name == stage_name

    @pytest.mark.parametrize("cls,factor", [
        (cls, f) for cls, f in TABLE1_CRITICAL_RANGE_FACTORS.items()
    ])
    def test_table1_factors(self, optimized, conventional, cls, factor):
        measured = (
            optimized.class_row_max(cls) / conventional.class_row_max(cls)
        )
        assert measured == pytest.approx(factor, abs=0.03)

    def test_lmul_spread_near_300ps(self, optimized):
        assert optimized.ex_spec("l.mul(i)").spread_ps == pytest.approx(
            300.0, abs=20.0
        )


class TestVariantDerivation:
    def test_mul_is_worse_in_optimized(self, optimized, conventional):
        """Critical-range optimisation makes only the multiplier slower."""
        assert (
            optimized.ex_spec("l.mul(i)").max_ps
            > conventional.ex_spec("l.mul(i)").max_ps
        )

    def test_most_classes_improve(self, optimized, conventional):
        improved = sum(
            1 for cls in all_timing_classes()
            if optimized.class_row_max(cls) < conventional.class_row_max(cls)
        )
        assert improved >= len(all_timing_classes()) - 2

    def test_conventional_capped_below_static(self, conventional):
        for cls in all_timing_classes():
            assert (
                conventional.class_row_max(cls)
                <= conventional.static_period_ps * 0.996
            )

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            load_profile("bogus")


class TestLookupHelpers:
    def test_ctrl_categories(self, optimized):
        assert (
            optimized.ctrl_spec("l.lwz").max_ps
            > optimized.ctrl_spec("l.add(i)").max_ps
        )
        assert (
            optimized.ctrl_spec("l.sw").max_ps
            > optimized.ctrl_spec("l.nop").max_ps
        )

    def test_wb_write_vs_nowrite(self, optimized):
        assert (
            optimized.wb_spec("l.add(i)").max_ps
            > optimized.wb_spec("l.sw").max_ps
        )

    def test_adr_spec_redirect_only_for_control(self, optimized):
        assert optimized.adr_spec("l.j", True).max_ps == \
            optimized.adr_redirect.max_ps
        assert optimized.adr_spec("l.add(i)", True).max_ps == \
            optimized.adr_seq.max_ps
        assert optimized.adr_spec("l.j", False).max_ps == \
            optimized.adr_seq.max_ps

    def test_unknown_stage_rejected(self, optimized):
        with pytest.raises(KeyError):
            optimized.stage_spec("l.add(i)", "EX")

    def test_bubble_class_constant(self):
        assert BUBBLE_CLASS == "<bubble>"

    def test_profile_is_dataclass_instance(self, optimized):
        assert isinstance(optimized, DelayProfile)
