"""Shared fixtures.

Characterisation is the expensive step (gate-level simulation of the full
characterisation suite), so one result is shared session-wide; tests must
treat it as read-only.
"""

import pytest

from repro.flow.characterize import characterize
from repro.timing.design import build_design
from repro.timing.profiles import DesignVariant


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate the golden compiled-trace corpus under "
             "tests/golden/ instead of comparing against it",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def design():
    """The critical-range design at 0.70 V (the paper's configuration)."""
    return build_design(DesignVariant.CRITICAL_RANGE)


@pytest.fixture(scope="session")
def conventional_design():
    return build_design(DesignVariant.CONVENTIONAL)


@pytest.fixture(scope="session")
def characterization(design):
    """Full characterisation of the critical-range design."""
    return characterize(design)


@pytest.fixture(scope="session")
def lut(characterization):
    return characterization.lut


@pytest.fixture(scope="session")
def conventional_characterization(conventional_design):
    return characterize(conventional_design)
