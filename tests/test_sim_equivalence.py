"""Differential harness: the vectorized pipeline engine vs. the scalar
reference.

The two-phase engine in :mod:`repro.sim.vector` must be *bit-identical* to
:class:`repro.sim.pipeline.PipelineSimulator` — same cycle records (all six
stage views, operands, stall/redirect flags), same retired stream, same
architectural state, and the same compiled-trace matrices including the
lazily materialised ground-truth delay matrix.  This module enforces that
over:

- every bundled kernel (including the div-heavy ``gcd``) at several
  divider latencies;
- directed corner programs exercising the drain tail (divides and
  load-use hazards straddling the halt), squashed wrong-path slots and
  memory aliasing;
- at least 200 seeded semi-random programs from the characterisation
  generator;
- Hypothesis-generated random programs, when Hypothesis is installed
  (the seeded sweep above is the deterministic fallback).

Programs the vector engine cannot reconstruct (stores into fetched
addresses) must transparently fall back to the scalar engine — also
verified here.
"""

import numpy as np
import pytest

from repro.asm import assemble
from repro.dta.compiled import compile_trace, compile_vector_run
from repro.sim import lockstep, predecode, vector
from repro.sim.iss import SimulationError
from repro.sim.pipeline import PipelineSimulator
from repro.timing.design import build_design
from repro.workloads.kernels import all_kernels
from repro.workloads.randomgen import generate_characterization_program

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:                                   # pragma: no cover
    HAVE_HYPOTHESIS = False

#: Shared design for compiled-trace comparisons (delays included).
DESIGN = build_design()

#: Number of seeded random programs in the deterministic sweep.
NUM_RANDOM_PROGRAMS = 200


def assert_equivalent(program, div_latency=32, check_delays=False):
    """Assert the vector engine reproduces the scalar engine exactly."""
    scalar = PipelineSimulator(program, div_latency=div_latency)
    scalar.run()
    run = vector.simulate(program, div_latency=div_latency)
    assert run is not None, (
        f"unexpected fallback for {program.name}: "
        f"{vector.last_fallback_reason()}"
    )

    reference = scalar.trace
    fast = run.trace
    assert fast.num_cycles == reference.num_cycles
    assert fast.retired == reference.retired
    for expected, actual in zip(reference.records, fast.records):
        assert actual == expected, (
            f"{program.name}: cycle {expected.cycle} differs\n"
            f"  scalar: {expected}\n  vector: {actual}"
        )
    assert run.state.regs == scalar.state.regs
    assert run.state.flag == scalar.state.flag
    assert run.state.carry == scalar.state.carry
    assert run.state.instret == scalar.state.instret

    reference_compiled = compile_trace(reference, DESIGN.excitation)
    fast_compiled = compile_vector_run(run, DESIGN.excitation)
    assert fast_compiled.class_names == reference_compiled.class_names
    for field in ("class_ids", "bubble", "held", "stall", "redirect"):
        assert np.array_equal(
            getattr(fast_compiled, field), getattr(reference_compiled, field)
        ), f"{program.name}: compiled {field} differs"
    if check_delays:
        assert np.array_equal(
            fast_compiled.delays, reference_compiled.delays
        ), f"{program.name}: delay matrices differ"


class TestBundledKernels:
    @pytest.mark.parametrize(
        "kernel", all_kernels(), ids=lambda kernel: kernel.name
    )
    def test_kernel_bit_identical(self, kernel):
        assert_equivalent(kernel.program(), check_delays=True)

    @pytest.mark.parametrize("div_latency", [1, 2, 7, 32])
    def test_divider_latencies(self, div_latency):
        from repro.workloads.kernels import get_kernel

        assert_equivalent(
            get_kernel("gcd").program(), div_latency=div_latency
        )


def _assemble(body, name="directed"):
    """Small directed program with a scratch data area."""
    source = "\n".join([
        "start:",
        "    l.movhi r20, hi(scratch)",
        "    l.ori   r20, r20, lo(scratch)",
        *[f"    {line}" for line in body],
        "    l.nop   0x1",
        "    l.nop",
        "    l.nop",
        ".data",
        "scratch:",
        "    .space 64",
    ])
    return assemble(source, name=name)


class TestDirectedCorners:
    """Drain-tail and hazard corners the array reconstruction must nail."""

    def test_load_use_interlock(self):
        assert_equivalent(_assemble([
            "l.addi r3, r0, 7",
            "l.sw   0(r20), r3",
            "l.lwz  r4, 0(r20)",
            "l.addi r5, r4, 1",      # load-use: one bubble
        ]))

    def test_load_no_use_gap(self):
        assert_equivalent(_assemble([
            "l.lwz  r4, 0(r20)",
            "l.addi r6, r0, 1",      # independent: no stall
            "l.addi r5, r4, 1",
        ]))

    def test_div_then_halt(self):
        assert_equivalent(_assemble([
            "l.addi r3, r0, 100",
            "l.addi r4, r0, 3",
            "l.div  r5, r3, r4",     # divider drains right into the halt
        ]), div_latency=5)

    def test_div_in_drain(self):
        # the divide sits *after* the halt: it is fetched, enters EX while
        # draining, never starts, and stalls the back of the trace
        program = assemble("\n".join([
            "start:",
            "    l.addi r3, r0, 9",
            "    l.addi r4, r0, 2",
            "    l.nop  0x1",
            "    l.div  r5, r3, r4",
            "    l.addi r6, r0, 1",
            "    l.nop",
        ]), name="drain-div")
        assert_equivalent(program, div_latency=4)

    def test_load_use_in_drain(self):
        program = assemble("\n".join([
            "start:",
            "    l.movhi r20, hi(scratch)",
            "    l.ori   r20, r20, lo(scratch)",
            "    l.nop  0x1",
            "    l.lwz  r4, 0(r20)",
            "    l.addi r5, r4, 1",   # post-halt load-use interlock
            "    l.nop",
            "    l.nop",
            ".data",
            "scratch:",
            "    .space 16",
        ]), name="drain-load-use")
        assert_equivalent(program)

    def test_taken_branch_squash(self):
        assert_equivalent(_assemble([
            "l.addi r3, r0, 1",
            "l.sfeqi r3, 1",
            "l.bf   target",
            "l.addi r4, r0, 2",      # delay slot
            "l.addi r5, r0, 3",      # squashed wrong-path word",
            "target:",
            "l.addi r6, r0, 4",
        ]))

    def test_halt_in_delay_slot_of_taken_branch(self):
        # the wrong-path victim is fetched *after* the halt word
        program = assemble("\n".join([
            "start:",
            "    l.addi r3, r0, 1",
            "    l.sfeqi r3, 1",
            "    l.bf   target",
            "    l.nop  0x1",         # halt retires in the delay slot
            "    l.addi r5, r0, 3",
            "target:",
            "    l.addi r6, r0, 4",
            "    l.nop",
        ]), name="halt-delay-slot")
        assert_equivalent(program)

    def test_backward_loop(self):
        assert_equivalent(_assemble([
            "l.addi r3, r0, 5",
            "loop:",
            "l.addi r3, r3, -1",
            "l.sfgtsi r3, 0",
            "l.bf   loop",
            "l.nop",
        ]))

    def test_memory_aliasing(self):
        # byte/half/word stores overlapping the same word, then loads
        assert_equivalent(_assemble([
            "l.movhi r3, 0x1234",
            "l.ori  r3, r3, 0x5678",
            "l.sw   0(r20), r3",
            "l.sb   1(r20), r3",
            "l.sh   2(r20), r3",
            "l.lwz  r4, 0(r20)",
            "l.lbs  r5, 1(r20)",
            "l.lhz  r6, 2(r20)",
            "l.addi r7, r6, 1",
        ]))

    def test_jal_and_jr(self):
        program = assemble("\n".join([
            "start:",
            "    l.jal  callee",
            "    l.addi r3, r0, 1",
            "    l.addi r4, r0, 2",
            "    l.nop  0x1",
            "    l.nop",
            "callee:",
            "    l.jr   r9",
            "    l.addi r5, r0, 3",
        ]), name="call-return")
        assert_equivalent(program)

    def test_max_cycles_exceeded_raises_like_scalar(self):
        program = _assemble(["l.addi r3, r0, 1"] * 8)
        with pytest.raises(SimulationError):
            PipelineSimulator(program).run(max_cycles=5)
        with pytest.raises(SimulationError):
            vector.simulate(program, max_cycles=5)


class TestScalarFallback:
    """Programs the array engine must hand to the scalar reference."""

    def test_store_into_fetch_path_falls_back(self):
        # the program stores a word into its own upcoming straight-line
        # path; fetch-time and execute-time decode could diverge, so the
        # vector engine must refuse
        source = "\n".join([
            "start:",
            "    l.movhi r3, hi(patched)",
            "    l.ori  r3, r3, lo(patched)",
            "    l.movhi r4, 0x1520",     # l.nop 0x0 encoding (0x15000000)",
            "    l.sw   0(r3), r4",
            "patched:",
            "    l.addi r5, r0, 7",
            "    l.nop  0x1",
            "    l.nop",
        ])
        program = assemble(source, name="self-store")
        vector.reset_fallback_count()
        run = vector.simulate(program)
        assert run is None
        assert vector.fallback_count() == 1
        assert "fetched" in vector.last_fallback_reason()

        # the integrated path still produces the scalar-reference result
        from repro.dta.compiled import (
            clear_compiled_cache,
            get_compiled_trace,
        )

        clear_compiled_cache()
        compiled = get_compiled_trace(program, DESIGN)
        reference = compile_trace(
            PipelineSimulator(program).run(), DESIGN.excitation
        )
        assert compiled.class_names == reference.class_names
        assert np.array_equal(compiled.class_ids, reference.class_ids)
        assert np.array_equal(compiled.delays, reference.delays)
        clear_compiled_cache()

    def test_clean_programs_do_not_fall_back(self):
        vector.reset_fallback_count()
        for kernel in all_kernels():
            assert vector.simulate(kernel.program()) is not None
        assert vector.fallback_count() == 0


class TestRandomPrograms:
    """Seeded semi-random sweep (runs with or without Hypothesis).

    The characterisation generator mixes hazard-prone ALU/shift/multiply
    traffic, loads/stores with overlapping scratch addresses, guaranteed
    taken and not-taken control transfers, and divides — the exact mix the
    paper uses to excite worst-case paths.
    """

    @pytest.mark.parametrize("chunk", range(10))
    def test_random_program_chunk(self, chunk):
        per_chunk = NUM_RANDOM_PROGRAMS // 10
        for seed in range(chunk * per_chunk, (chunk + 1) * per_chunk):
            program = generate_characterization_program(
                seed=seed, length=40, repeats=1
            )
            assert_equivalent(
                program, check_delays=(seed % 25 == 0)
            )


def _assert_runs_identical(reference, candidate, name):
    """Two :class:`VectorPipelineRun` objects must agree bit-for-bit."""
    assert candidate is not None, f"{name}: unexpected lockstep fallback"
    assert candidate.state.regs == reference.state.regs, name
    assert candidate.state.pc == reference.state.pc, name
    assert candidate.state.flag == reference.state.flag, name
    assert candidate.state.carry == reference.state.carry, name
    assert candidate.state.instret == reference.state.instret, name
    assert candidate.num_cycles == reference.num_cycles, name
    assert candidate.num_slots == reference.num_slots, name
    assert candidate.retired == reference.retired, name
    for field in (
        "slot_pc", "slot_class", "slot_kind", "slot_a", "slot_b",
        "slot_taken", "slot_is_instr", "slot_squashed", "stall",
        "redirect", "ex_occ", "ex_held", "ctrl_occ", "wb_occ",
    ):
        assert np.array_equal(
            getattr(candidate, field), getattr(reference, field)
        ), f"{name}: lockstep {field} differs"
    assert dict(candidate.memory.words()) == dict(
        reference.memory.words()
    ), name


def _lockstep_vs_vector(programs, div_latency=32, compiled_indices=()):
    """Differential check: a lockstep batch against per-program vector
    runs, each computed from cold image caches so the batched engine
    cannot serve memoised per-program results."""
    predecode.clear_images()
    references = [
        vector.simulate(program, div_latency=div_latency)
        for program in programs
    ]
    predecode.clear_images()
    runs = lockstep.simulate_batch(programs, div_latency=div_latency)
    for index, (reference, candidate) in enumerate(
        zip(references, runs)
    ):
        name = f"lane {index} ({programs[index].name})"
        if reference is None:
            assert candidate is None, (
                f"{name}: vector fell back but lockstep did not"
            )
            continue
        _assert_runs_identical(reference, candidate, name)
        if index in compiled_indices:
            expected = compile_vector_run(reference, DESIGN.excitation)
            actual = compile_vector_run(candidate, DESIGN.excitation)
            assert actual.class_names == expected.class_names, name
            for field in ("class_ids", "bubble", "held", "stall",
                          "redirect"):
                assert np.array_equal(
                    getattr(actual, field), getattr(expected, field)
                ), f"{name}: compiled {field} differs"
            assert np.array_equal(actual.delays, expected.delays), (
                f"{name}: delay matrices differ"
            )
    return runs


class TestLockstepEquivalence:
    """The cross-program lockstep engine vs. the per-program engines."""

    def test_bundled_kernels_batch(self):
        programs = [kernel.program() for kernel in all_kernels()]
        _lockstep_vs_vector(
            programs, compiled_indices=range(len(programs))
        )

    @pytest.mark.parametrize("div_latency", [1, 7, 32])
    def test_divider_latencies_batch(self, div_latency):
        from repro.workloads.kernels import get_kernel

        programs = [
            get_kernel(name).program() for name in ("gcd", "fib", "crc16")
        ]
        _lockstep_vs_vector(programs, div_latency=div_latency)

    @pytest.mark.parametrize("chunk", range(4))
    def test_random_program_batches(self, chunk):
        per_chunk = NUM_RANDOM_PROGRAMS // 4
        programs = [
            generate_characterization_program(seed=seed, length=40,
                                              repeats=1)
            for seed in range(chunk * per_chunk, (chunk + 1) * per_chunk)
        ]
        # every lane bit-identical; compiled traces spot-checked per chunk
        _lockstep_vs_vector(programs, compiled_indices=(0, per_chunk - 1))

    def test_ragged_batch(self):
        """Lanes of wildly different lengths retire correctly: short
        lanes halt early and drop out while long lanes keep stepping."""
        from repro.workloads.kernels import get_kernel

        tiny = _assemble(["l.addi r3, r0, 1"], name="tiny")
        programs = [
            tiny,
            get_kernel("matmult").program(),       # thousands of steps
            _assemble(["l.addi r3, r0, 2"] * 3, name="short"),
            get_kernel("fib").program(),
            _assemble(["l.movhi r4, 0x7"], name="mini"),
        ]
        _lockstep_vs_vector(
            programs, compiled_indices=range(len(programs))
        )

    def test_duplicate_programs_share_one_lane(self):
        """The same program content appearing on several lanes executes
        once and every lane gets the identical result."""
        from repro.workloads.kernels import get_kernel

        program = get_kernel("fib").program()
        predecode.clear_images()
        runs = lockstep.simulate_batch([program, program, program])
        _assert_runs_identical(runs[0], runs[1], "duplicate lane 1")
        _assert_runs_identical(runs[0], runs[2], "duplicate lane 2")

    def test_fallback_lane_does_not_poison_batch(self):
        """A lane the fast engines cannot represent (store into the fetch
        path) falls back per-lane; its neighbours stay lockstep."""
        from repro.workloads.kernels import get_kernel

        self_store = assemble("\n".join([
            "start:",
            "    l.movhi r3, hi(patched)",
            "    l.ori  r3, r3, lo(patched)",
            "    l.movhi r4, 0x1520",
            "    l.sw   0(r3), r4",
            "patched:",
            "    l.addi r5, r0, 7",
            "    l.nop  0x1",
            "    l.nop",
        ]), name="self-store")
        programs = [
            get_kernel("fib").program(), self_store,
            get_kernel("crc16").program(),
        ]
        runs = _lockstep_vs_vector(programs)
        assert runs[1] is None      # deferred exactly like vector.simulate

    def test_budget_overrun_defers_every_lane(self):
        programs = [
            _assemble(["l.addi r3, r0, 1"] * 8, name="budget-a"),
            _assemble(["l.addi r4, r0, 2"] * 8, name="budget-b"),
        ]
        predecode.clear_images()
        batch = lockstep.collect_batch(programs, max_cycles=5)
        assert batch == [None, None]


_MNEMONIC_POOL = (
    "l.add", "l.addi", "l.sub", "l.and", "l.or", "l.xori", "l.slli",
    "l.srl", "l.mul", "l.ff1", "l.exths", "l.cmov", "l.sfeq", "l.sfgts",
)


if HAVE_HYPOTHESIS:

    @st.composite
    def _programs(draw):
        """Random straight-line/branchy programs over a hazardous register
        window, with aliased memory traffic and an optional divide."""
        lines = [
            "start:",
            "    l.movhi r20, hi(scratch)",
            "    l.ori   r20, r20, lo(scratch)",
            "    l.addi  r2, r0, 41",
            "    l.addi  r3, r0, -3",
        ]
        num_ops = draw(st.integers(min_value=1, max_value=24))
        for index in range(num_ops):
            choice = draw(st.integers(min_value=0, max_value=9))
            rd = draw(st.integers(min_value=2, max_value=6))
            ra = draw(st.integers(min_value=0, max_value=6))
            rb = draw(st.integers(min_value=0, max_value=6))
            if choice <= 4:
                mnemonic = draw(st.sampled_from(_MNEMONIC_POOL))
                if mnemonic.endswith("i") and mnemonic != "l.ff1":
                    imm = draw(st.integers(min_value=0, max_value=31))
                    lines.append(f"    {mnemonic} r{rd}, r{ra}, {imm}")
                elif mnemonic.startswith("l.sf"):
                    lines.append(f"    {mnemonic} r{ra}, r{rb}")
                elif mnemonic in ("l.ff1", "l.exths"):
                    lines.append(f"    {mnemonic} r{rd}, r{ra}")
                else:
                    lines.append(f"    {mnemonic} r{rd}, r{ra}, r{rb}")
            elif choice == 5:
                offset = draw(st.integers(min_value=0, max_value=3)) * 4
                lines.append(f"    l.sw   {offset}(r20), r{ra}")
            elif choice == 6:
                offset = draw(st.integers(min_value=0, max_value=3)) * 4
                lines.append(f"    l.lwz  r{rd}, {offset}(r20)")
                if draw(st.booleans()):   # load-use pressure
                    lines.append(f"    l.addi r{rd}, r{rd}, 1")
            elif choice == 7:
                lines.append(f"    l.div  r{rd}, r2, r3")
            else:
                label = f"skip_{index}"
                flag = draw(st.sampled_from(["l.sfeqi", "l.sfnei"]))
                lines.append(f"    {flag} r{ra}, 0")
                branch = draw(st.sampled_from(["l.bf", "l.bnf"]))
                lines.append(f"    {branch} {label}")
                lines.append(f"    l.addi r{rd}, r{rd}, 1")   # delay slot
                lines.append(f"    l.xori r{rb}, r{rb}, 5")   # maybe squashed
                lines.append(f"{label}:")
        lines += [
            "    l.nop  0x1",
            "    l.nop",
            "    l.nop",
            ".data",
            "scratch:",
            "    .space 32",
        ]
        div_latency = draw(st.sampled_from([1, 2, 3, 32]))
        return "\n".join(lines), div_latency

    class TestHypothesisPrograms:
        @settings(max_examples=60, deadline=None)
        @given(_programs())
        def test_random_structure_bit_identical(self, generated):
            source, div_latency = generated
            program = assemble(source, name="hyp")
            assert_equivalent(program, div_latency=div_latency)

        @settings(max_examples=15, deadline=None)
        @given(st.lists(_programs(), min_size=2, max_size=5),
               st.sampled_from([1, 3, 32]))
        def test_lockstep_batch_bit_identical(self, generated, div_latency):
            programs = [
                assemble(source, name=f"hyp-{index}")
                for index, (source, _) in enumerate(generated)
            ]
            _lockstep_vs_vector(programs, div_latency=div_latency)
