"""Feature extraction for learned clock policies (repro.ml.features)."""

import numpy as np
import pytest

from repro.dta.compiled import compile_trace, get_compiled_trace
from repro.isa.opcodes import SPECS
from repro.ml.features import (
    NUM_FEATURES,
    OPCODE_GROUPS,
    OnlineFeatureExtractor,
    class_group,
    class_vocabulary,
    extract_features,
    feature_names,
    group_ids,
    rolling_prev_count,
)
from repro.sim.pipeline import PipelineSimulator
from repro.sim.trace import Stage
from repro.timing.profiles import BUBBLE_CLASS
from repro.workloads import get_kernel


@pytest.fixture(scope="module")
def fib_compiled(design):
    return get_compiled_trace(get_kernel("fib").program(), design)


class TestVocabulary:
    def test_sorted_and_complete(self):
        vocab = class_vocabulary()
        assert list(vocab) == sorted(vocab)
        assert BUBBLE_CLASS in vocab
        for spec in SPECS.values():
            assert spec.timing_class in vocab

    def test_stable_across_calls(self):
        assert class_vocabulary() == class_vocabulary()

    def test_groups(self):
        assert class_group(BUBBLE_CLASS) == "bubble"
        assert class_group("l.mul(i)") == "muldiv"
        assert class_group("l.div") == "muldiv"
        assert class_group("l.lwz") == "mem"
        assert class_group("l.bf") == "control"
        with pytest.raises(ValueError, match="unknown timing class"):
            class_group("l.bogus")

    def test_group_ids_cover_vocabulary(self):
        vocab = class_vocabulary()
        ids = group_ids(vocab)
        assert ids.shape == (len(vocab),)
        assert ((ids >= 0) & (ids < len(OPCODE_GROUPS))).all()


class TestRollingCount:
    def test_matches_naive(self):
        rng = np.random.default_rng(1)
        flags = rng.integers(0, 2, size=200).astype(bool)
        for window in (1, 3, 8):
            fast = rolling_prev_count(flags, window)
            naive = [
                int(flags[max(0, t - window):t].sum())
                for t in range(len(flags))
            ]
            assert fast.tolist() == naive

    def test_current_cycle_never_counts(self):
        flags = np.array([1, 0, 0], dtype=bool)
        assert rolling_prev_count(flags, 4).tolist() == [0.0, 1.0, 1.0]

    @pytest.mark.parametrize("window", [0, -1])
    def test_degenerate_window_rejected(self, window, fib_compiled):
        """window < 1 would silently diverge the scalar and vector
        paths (sum over an empty slice vs the whole history) — every
        entry point rejects it instead."""
        with pytest.raises(ValueError, match="window must be >= 1"):
            rolling_prev_count(np.zeros(4, dtype=bool), window)
        with pytest.raises(ValueError, match="window must be >= 1"):
            extract_features(fib_compiled, window=window)
        with pytest.raises(ValueError, match="window must be >= 1"):
            OnlineFeatureExtractor(window=window)


class TestExtractFeatures:
    def test_shape_and_names(self, fib_compiled):
        features = extract_features(fib_compiled)
        assert features.matrix.shape == (
            fib_compiled.num_cycles, NUM_FEATURES
        )
        assert features.names == feature_names()
        assert features.matrix.dtype == np.float64

    def test_adr_column_keys_on_ex(self, fib_compiled):
        features = extract_features(fib_compiled)
        adr = features.matrix[:, int(Stage.ADR)]
        ex = features.matrix[:, int(Stage.EX)]
        assert (adr == ex).all()

    def test_class_ids_use_global_vocabulary(self, fib_compiled):
        vocab = class_vocabulary()
        features = extract_features(fib_compiled)
        ids = features.matrix[:, :len(Stage)].astype(int)
        for stage in Stage:
            for cycle in (0, fib_compiled.num_cycles - 1):
                local = fib_compiled.class_ids[cycle, stage]
                assert vocab[ids[cycle, stage]] == \
                    fib_compiled.class_names[local]

    def test_flags_match_compiled(self, fib_compiled):
        features = extract_features(fib_compiled)
        base = 2 * len(Stage)
        for stage in Stage:
            bubble = features.matrix[:, base + 2 * int(stage)]
            held = features.matrix[:, base + 2 * int(stage) + 1]
            assert (bubble == fib_compiled.bubble[:, stage]).all()
            assert (held == fib_compiled.held[:, stage]).all()
        stall = features.matrix[:, base + 2 * len(Stage)]
        redirect = features.matrix[:, base + 2 * len(Stage) + 1]
        assert (stall == fib_compiled.stall).all()
        assert (redirect == fib_compiled.redirect).all()

    def test_window_features_are_causal(self, fib_compiled):
        window = 4
        features = extract_features(fib_compiled, window=window)
        redirect = fib_compiled.redirect
        naive = [
            int(redirect[max(0, t - window):t].sum())
            for t in range(fib_compiled.num_cycles)
        ]
        assert features.matrix[:, -1].tolist() == naive

    def test_vocab_ids_unknown_class_raises(self, fib_compiled):
        with pytest.raises(ValueError, match="not in vocabulary"):
            fib_compiled.vocab_ids(("only-this",))


class TestOnlineExtractor:
    @pytest.mark.parametrize("kernel", ["fib", "crc16"])
    def test_bit_identical_to_vectorized(self, design, kernel):
        """The per-record shift-register view equals the array path —
        the reference semantics of a learned policy's monitor."""
        program = get_kernel(kernel).program()
        trace = PipelineSimulator(program).run()
        compiled = compile_trace(trace, design.excitation)
        matrix = extract_features(compiled).matrix
        online = OnlineFeatureExtractor()
        for index, record in enumerate(trace.records):
            row = online.features_for(record)
            assert (row == matrix[index]).all(), (kernel, index)

    def test_unknown_class_raises(self):
        extractor = OnlineFeatureExtractor(vocabulary=("<bubble>",))
        program = get_kernel("fib").program()
        trace = PipelineSimulator(program).run()
        with pytest.raises(ValueError, match="not in the model vocab"):
            for record in trace.records:
                extractor.features_for(record)
