"""Public-API surface contract.

``repro.api`` is the supported programmatic surface; this snapshot fails
on accidental renames, removals or signature changes.  Additions are
fine — update the snapshot deliberately in the same PR that makes them.
"""

import inspect

import repro.api as api

EXPECTED_ALL = [
    "Session",
    "ResultFrame",
    "Column",
    "EVALUATION_SCHEMA",
    "ADAPT_SCHEMA",
    "OVERSCALING_SCHEMA",
    "TRAINING_SCHEMA",
    "TELEMETRY_SCHEMA",
    "ENGINES",
    "DEFAULT_OVERSCALE_FACTORS",
    "design_point_label",
    "evaluation_row",
    "result_from_row",
    "summarize_row",
]

#: Supported Session methods/properties and their exact signatures.
EXPECTED_SESSION_SIGNATURES = {
    "__init__": (
        "(self, variant='critical_range', voltage=0.7, *, design=None, "
        "lut=None, characterization=None, store=None, engine='vector', "
        "jobs=1, max_cycles=4000000, min_occurrences=30, "
        "store_budget_bytes=None, seed=None, telemetry=None, "
        "pipeline_spec=None)"
    ),
    "for_design": "(cls, design, **kwargs)",
    "characterize": (
        "(self, programs=None, *, min_occurrences=None, "
        "sim_period_ps=None, keep_runs=False, engine=None, "
        "via_store=None)"
    ),
    "evaluate": (
        "(self, programs=None, configs=None, *, policies=None, "
        "generators=None, margins=None, check_safety=True)"
    ),
    "evaluate_results": "(self, programs, configs)",
    "sweep": (
        "(self, grid, *, resume=False, progress=None, runner=None, "
        "manifest_path=None, on_unit=None)"
    ),
    "telemetry_frame": "(self)",
    "sweep_frame": (
        "(self, grid, *, cache_name=None, resume=False, on_unit=None)"
    ),
    "training_table": (
        "(self, grid, *, resume=False, progress=None, on_unit=None)"
    ),
    "adapt": (
        "(self, programs, environment, *, schemes=None, "
        "update_interval=150, tracking_margin=0.025)"
    ),
    "adapt_results": (
        "(self, programs, environment, schemes=None, "
        "update_interval=150, tracking_margin=0.025)"
    ),
    "overscaling": "(self, programs, factors=None)",
    "overscaling_reports": "(self, program, factors=None, max_cycles=None)",
    "gc": "(self, max_bytes=None, dry_run=False)",
}

#: The evaluation row layout every consumer (runner JSON, CSV exports,
#: stored sweep documents) shares.  Changing it invalidates stored
#: artifacts — bump ``repro.lab.store.SCHEMA_VERSION`` in the same PR.
EXPECTED_EVALUATION_COLUMNS = [
    ("design_point", "str"),
    ("variant", "str"),
    ("voltage", "float"),
    ("config", "str"),
    ("policy", "str"),
    ("generator", "str"),
    ("margin_percent", "float"),
    ("program", "str"),
    ("num_cycles", "int"),
    ("num_retired", "int"),
    ("total_time_ps", "float"),
    ("static_period_ps", "float"),
    ("min_period_ps", "float"),
    ("max_period_ps", "float"),
    ("switch_rate", "float"),
    ("average_period_ps", "float"),
    ("effective_frequency_mhz", "float"),
    ("speedup_percent", "float"),
    ("num_violations", "int"),
    ("violations", "json"),
]


def test_all_contract():
    assert list(api.__all__) == EXPECTED_ALL


def test_everything_in_all_exists():
    for name in api.__all__:
        assert hasattr(api, name), name


def test_session_signatures():
    measured = {}
    for name in EXPECTED_SESSION_SIGNATURES:
        attribute = inspect.getattr_static(api.Session, name)
        if isinstance(attribute, classmethod):
            attribute = attribute.__func__
        measured[name] = str(inspect.signature(attribute))
    assert measured == EXPECTED_SESSION_SIGNATURES


def test_no_unexpected_public_session_methods():
    """New public methods must be added to the signature snapshot."""
    public = {
        name
        for name, attribute in vars(api.Session).items()
        if not name.startswith("_")
        and (callable(attribute) or isinstance(attribute, classmethod))
    }
    assert public == set(EXPECTED_SESSION_SIGNATURES) - {"__init__"}


def test_evaluation_schema_snapshot():
    assert [
        (column.name, column.kind) for column in api.EVALUATION_SCHEMA
    ] == EXPECTED_EVALUATION_COLUMNS


def test_training_schema_extends_evaluation():
    names = [column.name for column in api.TRAINING_SCHEMA]
    assert names[:len(api.EVALUATION_SCHEMA)] == [
        column.name for column in api.EVALUATION_SCHEMA
    ]
    assert names[len(api.EVALUATION_SCHEMA):] == [
        "safe", "ipc", "normalized_period",
    ]


def test_frame_public_surface():
    expected = {
        "from_rows", "from_dict", "from_json", "concat",
        "iter_rows", "to_rows", "row", "column", "distinct",
        "select", "where", "group_by", "with_column",
        "to_dict", "to_json", "to_csv", "to_structured",
        "num_rows", "column_names", "kind_of",
    }
    public = {
        name for name in vars(api.ResultFrame)
        if not name.startswith("_")
        and name not in ("schema",)
    }
    assert public == expected
