"""Tests for deterministic RNG streams and the value hash."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import RngStream, derive_seed, hash_to_unit_float


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestRngStream:
    def test_same_name_same_sequence(self):
        a = RngStream("x", root_seed=7)
        b = RngStream("x", root_seed=7)
        assert [a.uniform() for _ in range(5)] == [
            b.uniform() for _ in range(5)
        ]

    def test_different_names_differ(self):
        a = RngStream("x", root_seed=7)
        b = RngStream("y", root_seed=7)
        assert [a.uniform() for _ in range(5)] != [
            b.uniform() for _ in range(5)
        ]

    def test_child_streams_independent(self):
        parent = RngStream("p", root_seed=7)
        child = parent.child("c")
        before = parent.uniform()
        # drawing from the child must not perturb the parent
        parent2 = RngStream("p", root_seed=7)
        parent2.child("c")
        assert before == parent2.uniform()
        assert child.name == "p/c"

    def test_integers_range(self):
        stream = RngStream("ints")
        for _ in range(100):
            value = stream.integers(3, 9)
            assert 3 <= value < 9

    def test_choice_weights(self):
        stream = RngStream("choice")
        values = [stream.choice(["a", "b"], p=[1.0, 0.0]) for _ in range(20)]
        assert set(values) == {"a"}

    def test_shuffle_permutation(self):
        stream = RngStream("shuffle")
        items = list(range(20))
        shuffled = list(items)
        stream.shuffle(shuffled)
        assert sorted(shuffled) == items


class TestHashToUnitFloat:
    def test_range_and_determinism(self):
        value = hash_to_unit_float("a", 1, 2)
        assert 0.0 <= value < 1.0
        assert value == hash_to_unit_float("a", 1, 2)

    def test_sensitivity(self):
        assert hash_to_unit_float("a", 1) != hash_to_unit_float("a", 2)

    @given(st.integers(), st.integers())
    def test_always_in_unit_interval(self, a, b):
        value = hash_to_unit_float(a, b)
        assert 0.0 <= value < 1.0

    def test_rough_uniformity(self):
        samples = [hash_to_unit_float("u", i) for i in range(2000)]
        mean = sum(samples) / len(samples)
        assert 0.45 < mean < 0.55
        low = sum(1 for s in samples if s < 0.5)
        assert 900 < low < 1100
