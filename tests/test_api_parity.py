"""API-parity suite: every legacy entry point is a bit-identical shim
over ``repro.api.Session``.

Each test runs one legacy function and its Session equivalent and
compares results field-for-field with ``==`` (no tolerances): the shims
route through the very same engine the Session drives, so any
discrepancy is a real regression, not float noise.  Also covers the
``evaluate_batch`` deprecation contract and the first-party
warnings-clean guarantee.
"""

import json
import re
import warnings

import pytest

from repro.adapt.environment import EnvironmentModel
from repro.adapt.online import SCHEMES, compare_schemes, evaluate_with_drift
from repro.api import Session, result_from_row
from repro.approx.violations import evaluate_overscaling, overscaling_sweep
from repro.clocking.generator import IdealClockGenerator
from repro.clocking.policies import (
    ExOnlyLutPolicy,
    GeniePolicy,
    InstructionLutPolicy,
    StaticClockPolicy,
    TwoClassPolicy,
)
from repro.flow.characterize import characterize
from repro.flow.evaluate import (
    SweepConfig,
    evaluate_batch,
    evaluate_program,
    evaluate_suite,
)
from repro.lab import ArtifactStore, ScenarioGrid, SweepRunner
from repro.workloads import get_kernel
from repro.workloads.suite import benchmark_suite

POLICY_NAMES = ("instruction", "ex-only", "two-class", "genie", "static")


def make_policy(name, design, lut):
    return {
        "instruction": lambda: InstructionLutPolicy(lut),
        "ex-only": lambda: ExOnlyLutPolicy(lut),
        "two-class": lambda: TwoClassPolicy(lut),
        "genie": lambda: GeniePolicy(design.excitation),
        "static": lambda: StaticClockPolicy(design.static_period_ps),
    }[name]()


def assert_result_matches_row(result, row):
    """Bitwise comparison of an ``EvaluationResult`` and a frame row."""
    assert result.program_name == row["program"]
    assert result.num_cycles == row["num_cycles"]
    assert result.num_retired == row["num_retired"]
    assert result.total_time_ps == row["total_time_ps"]
    assert result.static_period_ps == row["static_period_ps"]
    assert result.min_period_ps == row["min_period_ps"]
    assert result.max_period_ps == row["max_period_ps"]
    assert result.switch_rate == row["switch_rate"]
    assert result.average_period_ps == row["average_period_ps"]
    assert result.effective_frequency_mhz == row["effective_frequency_mhz"]
    assert result.speedup_percent == row["speedup_percent"]
    assert len(result.violations) == row["num_violations"]
    assert [
        [v.cycle, v.stage.name, v.applied_period_ps, v.excited_delay_ps,
         v.driver_class]
        for v in result.violations
    ] == row["violations"]


@pytest.fixture(scope="module")
def session(design, lut):
    return Session.for_design(design, lut=lut)


class TestEvaluateParity:
    def test_full_suite_every_policy_bit_identical(self, design, lut,
                                                   session):
        """The headline parity check: full kernel suite × every policy,
        legacy ``evaluate_program`` vs. ``Session.evaluate``."""
        programs = benchmark_suite()
        frame = session.evaluate(
            programs, policies=list(POLICY_NAMES), check_safety=True,
        )
        assert len(frame) == len(programs) * len(POLICY_NAMES)
        for name in POLICY_NAMES:
            rows = frame.where(policy=name).to_rows()
            for program, row in zip(programs, rows):
                legacy = evaluate_program(
                    program, design, make_policy(name, design, lut),
                    generator=IdealClockGenerator(), check_safety=True,
                )
                assert_result_matches_row(legacy, row)

    def test_result_from_row_round_trip(self, design, lut, session):
        """Frame rows rehydrate into equal EvaluationResults."""
        program = get_kernel("crc32").program()
        frame = session.evaluate([program], margins=[0.0, 5.0])
        for row in frame.iter_rows():
            result = result_from_row(row)
            assert_result_matches_row(result, row)

    def test_evaluate_suite_parity(self, design, lut, session):
        programs = [get_kernel(n).program() for n in ("fib", "crc16")]
        legacy = evaluate_suite(
            programs, design, lambda: InstructionLutPolicy(lut),
        )
        rows = session.evaluate(
            programs, configs=[SweepConfig(
                policy=lambda: InstructionLutPolicy(lut),
                check_safety=True,
            )],
        ).to_rows()
        for result, row in zip(legacy, rows):
            assert_result_matches_row(result, row)

    def test_evaluate_batch_parity_and_warning(self, design, lut, session):
        """The return-shape footgun: the shim keeps [config][program]
        nesting, warns, and names the Session.evaluate replacement."""
        programs = [get_kernel(n).program() for n in ("fib", "memcpy")]
        configs = [
            SweepConfig(policy=lambda: InstructionLutPolicy(lut),
                        check_safety=True, label="lut"),
            SweepConfig(policy=lambda: TwoClassPolicy(lut),
                        margin_percent=5.0, check_safety=False,
                        label="two-class"),
        ]
        with pytest.warns(DeprecationWarning,
                          match=r"Session\.evaluate"):
            grid = evaluate_batch(programs, design, configs)
        assert len(grid) == len(configs)           # [config][program]
        assert len(grid[0]) == len(programs)
        frame = session.evaluate(programs, configs=configs)
        rows = frame.to_rows()
        flattened = [result for row in grid for result in row]
        for result, row in zip(flattened, rows):
            assert_result_matches_row(result, row)

    def test_scalar_engine_parity(self, design, lut):
        """engine="scalar" reproduces the vector session bit-identically
        (the reference loop behind the equivalence suite)."""
        vector = Session.for_design(design, lut=lut)
        scalar = Session.for_design(design, lut=lut, engine="scalar")
        program = get_kernel("fib").program()
        config = [SweepConfig(policy=lambda: InstructionLutPolicy(lut),
                              check_safety=True)]
        fast = vector.evaluate_results([program], config)[0][0]
        slow = scalar.evaluate_results([program], config)[0][0]
        assert fast.total_time_ps == slow.total_time_ps
        assert fast.switch_rate == slow.switch_rate
        assert len(fast.violations) == len(slow.violations)


class TestCharacterizeParity:
    def test_legacy_shim_bit_identical(self, design, characterization):
        """Legacy ``characterize(design)`` (the conftest fixture) vs. a
        fresh ``Session.characterize`` — byte-equal LUT JSON."""
        fresh = Session.for_design(design).characterize()
        assert fresh.lut.to_json() == characterization.lut.to_json()
        assert fresh.total_cycles == characterization.total_cycles

    def test_charlut_store_traffic_matches(self, design, tmp_path):
        """The shim keeps per-program charlut caching: a second
        characterisation through either path recomputes nothing."""
        store = ArtifactStore(tmp_path / "store")
        Session.for_design(design, store=store).characterize(
            via_store=False
        )
        writes = store.stats.get("charlut", "writes")
        assert writes > 0
        store.stats.reset()
        characterize(design, keep_runs=False, store=store)
        assert store.stats.get("charlut", "hits") == writes
        assert store.stats.get("charlut", "writes") == 0


GRID = ScenarioGrid(
    name="api-parity",
    policies=("instruction", "genie"),
    workloads=("fib", "crc16"),
    check_safety=True,
)


class TestSweepParity:
    def test_runner_shim_vs_session_sweep(self, tmp_path, design, lut):
        seeded = []
        for name in ("legacy", "session"):
            store = ArtifactStore(tmp_path / name)
            store.save_lut(lut, design)
            seeded.append(store)
        legacy = SweepRunner(GRID, store=seeded[0]).run()
        via_session = Session(store=seeded[1]).sweep(GRID)
        assert legacy.frame == via_session.frame
        assert legacy.rows == via_session.rows
        assert legacy.to_dict()["results"] == (
            via_session.to_dict()["results"]
        )

    def test_runner_rows_match_direct_session_evaluate(self, tmp_path,
                                                       design, lut):
        """Orchestrated sweep rows are the same frame a plain Session
        evaluation produces for the grid's axes."""
        store = ArtifactStore(tmp_path / "store")
        store.save_lut(lut, design)
        orchestrated = Session(store=store).sweep(GRID)
        direct = Session.for_design(design, lut=lut).evaluate(
            GRID.programs(), configs=GRID.config_specs(),
        )
        assert orchestrated.frame == direct

    def test_training_table(self, tmp_path, design, lut):
        """The ML-DFS-style training generator: one flat frame over
        margins × policies with learning-target columns."""
        from repro.api import TRAINING_SCHEMA

        grid = ScenarioGrid(
            name="training",
            policies=("instruction", "genie"),
            margins=(0.0, 5.0),
            workloads=("fib", "crc16"),
            check_safety=True,
        )
        store = ArtifactStore(tmp_path / "store")
        store.save_lut(lut, design)
        table = Session(store=store).training_table(grid)
        assert table.schema == TRAINING_SCHEMA
        assert len(table) == 2 * 2 * 2          # policies x margins x kernels
        for row in table.iter_rows():
            assert row["safe"] == (1 if row["num_violations"] == 0 else 0)
            assert row["ipc"] == row["num_retired"] / row["num_cycles"]
            assert row["normalized_period"] == (
                row["average_period_ps"] / row["static_period_ps"]
            )
        # flat axes are directly usable as features
        assert set(table.distinct("margin_percent")) == {0.0, 5.0}
        assert set(table.distinct("policy")) == {"instruction", "genie"}

    def test_training_table_forces_safety_replay(self, tmp_path, lut,
                                                 conventional_design):
        """A grid with check_safety=False (the ScenarioGrid default)
        must not degenerate the ``safe`` label to all-ones: the
        generator re-runs it with the ground-truth replay enabled."""
        grid = ScenarioGrid(
            name="training-unsafe",
            policies=("instruction",),
            variants=("conventional",),
            workloads=("crc32",),
        )
        assert not grid.check_safety
        store = ArtifactStore(tmp_path / "store")
        # seed the conventional operating point with the critical-range
        # LUT: its optimistic predictions violate conventional ground
        # truth, so a real safety replay must label the row unsafe
        store.save_lut(lut, conventional_design)
        session = Session(store=store)
        table = session.training_table(grid)
        row = table.row(0)
        assert row["num_violations"] > 0     # replay actually ran
        assert row["safe"] == 0


class TestEvaluateAxes:
    def test_empty_axis_lists_yield_empty_frame(self, session):
        """An explicitly empty axis means 'no configs', not 'defaults'."""
        assert len(session.evaluate(["fib"], policies=[])) == 0
        assert len(session.evaluate(["fib"], generators=[])) == 0
        assert len(session.evaluate(["fib"], margins=[])) == 0

    def test_configs_exclusive_with_axes(self, session, lut):
        with pytest.raises(ValueError, match="not both"):
            session.evaluate(
                ["fib"],
                configs=[SweepConfig(policy=InstructionLutPolicy(lut))],
                policies=["instruction"],
            )

    def test_unlabelled_configs_get_distinct_labels(self, design, lut,
                                                    session):
        """Two unlabelled SweepConfigs differing only in margin must not
        share a ``config`` cell (group-by would merge them)."""
        configs = [
            SweepConfig(policy=lambda: InstructionLutPolicy(lut),
                        check_safety=False),
            SweepConfig(policy=lambda: InstructionLutPolicy(lut),
                        margin_percent=10.0, check_safety=False),
        ]
        frame = session.evaluate(["fib"], configs=configs)
        labels = frame.distinct("config")
        assert len(labels) == 2
        assert labels[1].endswith("margin=10%")

    def test_scalar_session_refuses_to_sweep(self, design, lut):
        """The orchestrated runner is array-engine-only: a scalar session
        must not return vector results labelled as the reference."""
        scalar = Session.for_design(design, lut=lut, engine="scalar")
        with pytest.raises(ValueError, match="vector/lockstep engines"):
            scalar.sweep(GRID)
        with pytest.raises(ValueError, match="vector/lockstep engines"):
            scalar.training_table(GRID)


class TestOverscalingParity:
    def test_single_factor(self, design, lut, session):
        program = get_kernel("matmult").program()
        legacy = evaluate_overscaling(program, design, lut, 0.88)
        row = session.overscaling([program], factors=[0.88]).row(0)
        assert legacy.program_name == row["program"]
        assert legacy.overscale_factor == row["overscale_factor"]
        assert legacy.num_cycles == row["num_cycles"]
        assert legacy.total_time_ps == row["total_time_ps"]
        assert legacy.violation_cycles == row["violation_cycles"]
        assert legacy.violation_rate == row["violation_rate"]
        assert len(legacy.approx_results) == row["num_approx_results"]
        assert legacy.mean_corrupted_bits == row["mean_corrupted_bits"]
        assert legacy.mean_relative_error == row["mean_relative_error"]
        assert legacy.violations_by_stage == row["violations_by_stage"]
        assert legacy.violations_by_class == row["violations_by_class"]

    def test_sweep_shim(self, design, lut, session):
        program = get_kernel("fib").program()
        factors = [1.0, 0.9]
        legacy = overscaling_sweep(program, design, lut, factors=factors)
        reports = session.overscaling_reports(program, factors)
        for a, b in zip(legacy, reports):
            assert a.overscale_factor == b.overscale_factor
            assert a.total_time_ps == b.total_time_ps
            assert a.violation_cycles == b.violation_cycles


class TestAdaptParity:
    def test_single_scheme(self, design, lut, session):
        program = get_kernel("crc32").program()
        environment = EnvironmentModel()
        legacy = evaluate_with_drift(
            program, design, lut, environment, scheme="online",
        )
        row = session.adapt(
            [program], environment, schemes=["online"],
        ).row(0)
        assert legacy.program_name == row["program"]
        assert legacy.scheme == row["scheme"]
        assert legacy.num_cycles == row["num_cycles"]
        assert legacy.total_time_ps == row["total_time_ps"]
        assert legacy.violations == row["violations"]
        assert legacy.lut_updates == row["lut_updates"]
        assert legacy.max_drift_seen == row["max_drift_seen"]
        assert legacy.average_period_ps == row["average_period_ps"]

    def test_compare_schemes_shim(self, design, lut, session):
        program = get_kernel("fib").program()
        environment = EnvironmentModel()
        legacy = compare_schemes(program, design, lut, environment)
        frame = session.adapt([program], environment)
        assert [row["scheme"] for row in frame.iter_rows()] == list(SCHEMES)
        for row in frame.iter_rows():
            result = legacy[row["scheme"]]
            assert result.total_time_ps == row["total_time_ps"]
            assert result.violations == row["violations"]

    def test_bad_scheme_and_engine_still_raise(self, design, lut):
        program = get_kernel("fib").program()
        with pytest.raises(ValueError, match="unknown scheme"):
            evaluate_with_drift(
                program, design, lut, EnvironmentModel(), scheme="magic",
            )
        with pytest.raises(ValueError, match="unknown adapter engine"):
            evaluate_with_drift(
                program, design, lut, EnvironmentModel(), engine="warp",
            )
        with pytest.raises(ValueError, match="unknown engine"):
            Session(engine="warp")


class TestWarningsClean:
    """First-party code never calls the deprecated shims."""

    def test_session_and_cli_paths_are_warning_free(self, tmp_path, design,
                                                    lut, session, capsys):
        from repro.cli import main

        lut_path = tmp_path / "lut.json"
        lut_path.write_text(lut.to_json())
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(json.dumps({
            "name": "clean", "policies": ["instruction"],
            "workloads": ["fib"],
        }))
        store = ArtifactStore(tmp_path / "store")
        store.save_lut(lut, design)

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session.evaluate(["fib"], policies=["instruction"])
            session.adapt(["fib"], EnvironmentModel(), schemes=["online"])
            session.overscaling(["fib"], factors=[0.95])
            assert main(["evaluate", "fib", "--lut", str(lut_path)]) == 0
            assert main([
                "sweep", "fib", "--lut", str(lut_path),
                "--policy", "instruction",
            ]) == 0
            assert main([
                "sweep", "--grid", str(grid_path), "--store",
                str(store.root),
            ]) == 0
        capsys.readouterr()

    def test_source_tree_never_calls_shims(self):
        """Static check: no module under ``src/repro`` calls a legacy
        shim (each may only appear in its defining module)."""
        import pathlib

        import repro

        shims = {
            "evaluate_batch": "flow/evaluate.py",
            "evaluate_program": "flow/evaluate.py",
            "evaluate_suite": "flow/evaluate.py",
            "characterize": "flow/characterize.py",
            "evaluate_overscaling": "approx/violations.py",
            "overscaling_sweep": "approx/violations.py",
            "evaluate_with_drift": "adapt/online.py",
            "compare_schemes": "adapt/online.py",
        }
        root = pathlib.Path(repro.__file__).parent
        offenders = []
        for path in root.rglob("*.py"):
            relative = path.relative_to(root).as_posix()
            text = path.read_text()
            for name, home in shims.items():
                if relative == home:
                    continue
                # a bare call: not an attribute access, not a definition
                for match in re.finditer(
                    rf"(?<![.\w]){name}\(", text
                ):
                    if text[:match.start()].rsplit("\n", 1)[-1].lstrip() \
                            .startswith("def "):
                        continue
                    offenders.append(f"{relative}: {name}()")
        assert not offenders, offenders
