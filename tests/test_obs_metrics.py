"""Unified counter registry: mirroring, gathering, delta shipping."""

import pytest

from repro.lab.store import ArtifactStore, StoreStats
from repro.obs import metrics as obs_metrics


@pytest.fixture(autouse=True)
def _restore_registry():
    """Registry is process-global; put back what the test found."""
    saved = obs_metrics.snapshot()
    obs_metrics.reset()
    yield
    obs_metrics.reset()
    obs_metrics.merge(saved)


class TestRegistry:
    def test_inc_get_snapshot(self):
        assert obs_metrics.get("nope") == 0
        assert obs_metrics.get("nope", default=7) == 7
        obs_metrics.inc("a.b")
        obs_metrics.inc("a.b", 4)
        assert obs_metrics.get("a.b") == 5
        assert obs_metrics.snapshot()["a.b"] == 5

    def test_reset(self):
        obs_metrics.inc("x")
        obs_metrics.reset()
        assert obs_metrics.snapshot() == {}

    def test_merge_folds_deltas(self):
        obs_metrics.inc("shared", 2)
        obs_metrics.merge({"shared": 3, "fresh": 1})
        assert obs_metrics.get("shared") == 5
        assert obs_metrics.get("fresh") == 1
        obs_metrics.merge({})               # no-op, must not raise

    def test_gather_includes_registry_and_module_counters(self):
        obs_metrics.inc("custom.counter", 9)
        gathered = obs_metrics.gather()
        assert gathered["custom.counter"] == 9
        # module-owned counters appear under their namespaces (values
        # depend on what ran before; only the namespacing is pinned here)
        for name in gathered:
            assert isinstance(name, str) and name

    def test_delta_since_reports_only_changes(self):
        baseline = obs_metrics.gather()
        obs_metrics.inc("delta.test", 2)
        delta = obs_metrics.delta_since(baseline)
        assert delta["delta.test"] == 2
        # unchanged counters are dropped from the shipped payload
        assert all(value != 0 for value in delta.values())

    def test_delta_then_merge_round_trip(self):
        baseline = obs_metrics.gather()
        obs_metrics.inc("trip.count", 3)
        delta = obs_metrics.delta_since(baseline)
        obs_metrics.reset()
        obs_metrics.merge(delta)
        assert obs_metrics.get("trip.count") == 3


class TestStoreMirroring:
    def test_store_stats_record_mirrors_into_registry(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        before = obs_metrics.get("store.trace.misses")
        assert store.load_compiled_trace(_FakeProgram(), _FakeDesign(),
                                         4_000_000) is None
        assert obs_metrics.get("store.trace.misses") == before + 1
        assert store.stats.as_dict()["trace"]["misses"] == 1

    def test_store_stats_merge_does_not_double_mirror(self):
        """Worker deltas arrive via obs_metrics.merge; StoreStats.merge
        folding them into the registry again would double count."""
        stats = StoreStats()
        stats.record("trace", "hits")
        before = obs_metrics.get("store.trace.hits")
        other = StoreStats()
        other.merge(stats)
        assert other.as_dict()["trace"]["hits"] == 1
        assert obs_metrics.get("store.trace.hits") == before


class _FakeProgram:
    name = "fake"
    entry = 0
    words = {}


class _FakeVariant:
    value = "fake-variant"


class _FakeLibrary:
    voltage = 0.7


class _FakeDesign:
    variant = _FakeVariant()
    library = _FakeLibrary()
