"""Safety stress tests: random programs against the characterised LUT.

The central claim — the predictive scheme never causes timing violations —
must hold for programs the characterisation never saw, including ones that
deliberately hit every worst-case operand pattern.  Random generator
programs are the hardest adversary our model admits: they mix every
instruction class with worst-pattern idioms at random sites.
"""

import pytest

from repro.clocking.generator import (
    MultiPLLClockGenerator,
    TunableRingOscillator,
)
from repro.clocking.policies import ExOnlyLutPolicy, InstructionLutPolicy
from repro.flow.evaluate import evaluate_program
from repro.workloads.randomgen import generate_characterization_program

#: Fresh seeds, disjoint from the characterisation suite's (1, 2).
STRESS_SEEDS = (11, 12, 13, 14, 15)


@pytest.mark.parametrize("seed", STRESS_SEEDS)
def test_random_program_safety(design, lut, seed):
    program = generate_characterization_program(
        seed=seed, length=300, repeats=1
    )
    result = evaluate_program(program, design, InstructionLutPolicy(lut))
    assert result.is_safe, (
        f"seed {seed}: {len(result.violations)} violations, first: "
        f"{result.violations[0] if result.violations else None}"
    )
    assert result.speedup_percent > 0


@pytest.mark.parametrize("seed", STRESS_SEEDS[:2])
def test_random_program_safety_ex_only(design, lut, seed):
    program = generate_characterization_program(
        seed=seed, length=300, repeats=1
    )
    result = evaluate_program(program, design, ExOnlyLutPolicy(lut))
    assert result.is_safe


@pytest.mark.parametrize("generator_factory", [
    lambda: TunableRingOscillator(step_ps=25.0),
    lambda: TunableRingOscillator(step_ps=100.0),
    lambda: MultiPLLClockGenerator(),
], ids=["ring25", "ring100", "pll"])
def test_random_program_safety_quantized(design, lut, generator_factory):
    program = generate_characterization_program(
        seed=21, length=300, repeats=1
    )
    result = evaluate_program(
        program, design, InstructionLutPolicy(lut),
        generator=generator_factory(),
    )
    assert result.is_safe


def test_worst_pattern_storm(design, lut):
    """A program that is nothing but worst-case idioms back to back."""
    from repro.asm import assemble

    body = []
    for _ in range(40):
        body.extend([
            "    l.add   r5, r22, r22",
            "    l.mul   r6, r22, r22",
            "    l.xor   r7, r22, r22",
            "    l.slli  r8, r22, 31",
            "    l.lwz   r9, 0(r21)",
            "    l.sw    4(r21), r22",
            "    l.sfeq  r22, r22",
        ])
    source = "\n".join(
        [
            "start:",
            "    l.movhi r21, 0xffff",
            "    l.ori   r21, r21, 0xfff0",
            "    l.movhi r22, 0xffff",
            "    l.ori   r22, r22, 0xffff",
        ]
        + body
        + ["    l.nop 0x1", "    l.nop", "    l.nop"]
    )
    program = assemble(source, name="worst-pattern-storm")
    result = evaluate_program(program, design, InstructionLutPolicy(lut))
    assert result.is_safe
    # every EX delay is at its class maximum here, so the measured average
    # period must be close to the mix's LUT average — still well below
    # the static period
    assert result.average_period_ps < design.static_period_ps
