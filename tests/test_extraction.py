"""LUT extraction tests: convergence to ground truth, fallback, merging."""

import pytest

from repro.dta.extraction import extract_lut, merge_luts
from repro.dta.lut import DelayLUT
from repro.paperdata import TABLE2_INSTRUCTION_DELAYS
from repro.sim.trace import Stage
from repro.timing.profiles import BUBBLE_CLASS


class TestExtractionConvergence:
    """The characterised LUT must rediscover the profile's ground truth."""

    @pytest.mark.parametrize("cls,expected", sorted(
        TABLE2_INSTRUCTION_DELAYS.items()
    ))
    def test_table2_classes_converge(self, lut, design, cls, expected):
        delay, stage_name = expected
        assert lut.is_characterized(cls), cls
        assert lut.class_max(cls) == pytest.approx(delay, rel=1e-3)
        assert lut.limiting_stage(cls).name == stage_name

    def test_all_common_classes_characterized(self, lut):
        for cls in ("l.add(i)", "l.and(i)", "l.or(i)", "l.xor(i)",
                    "l.sll(i)", "l.srl(i)", "l.lwz", "l.sw", "l.sfxx(i)",
                    "l.bf", "l.bnf", "l.j", "l.mul(i)", "l.nop",
                    BUBBLE_CLASS):
            assert lut.is_characterized(cls), cls

    def test_entries_match_profile_truth(self, lut, design):
        """Every characterised entry equals the profile's true worst case
        (the directed generator guarantees worst-pattern coverage)."""
        profile = design.profile
        for cls in lut.classes():
            if cls == BUBBLE_CLASS or not lut.is_characterized(cls):
                continue
            truth = profile.true_lut_row(cls)
            for stage in Stage:
                measured = lut.entry(cls, stage)
                assert measured <= truth[stage] + 1e-6, (cls, stage)
        # and the EX entries converge exactly for the heavy hitters
        for cls in ("l.add(i)", "l.mul(i)", "l.lwz", "l.xor(i)"):
            assert lut.entry(cls, Stage.EX) == pytest.approx(
                profile.ex_spec(cls).max_ps, rel=1e-3
            )

    def test_bubble_row(self, lut, design):
        assert lut.entry(BUBBLE_CLASS, Stage.ADR) == pytest.approx(
            design.profile.adr_seq.max_ps
        )
        assert lut.entry(BUBBLE_CLASS, Stage.EX) == pytest.approx(
            design.profile.bubble_delays[Stage.EX]
        )

    def test_occurrence_counts_recorded(self, lut):
        assert lut.occurrences["l.add(i)"] > 100


class TestStaticFallback:
    def test_unknown_class_uses_static(self, lut):
        assert lut.entry("l.never-seen", Stage.EX) == lut.static_period_ps

    def test_under_threshold_uses_static(self, characterization, design):
        run = characterization.runs[0]
        strict = extract_lut(
            run.dta, run.trace, design.static_period_ps,
            min_occurrences=10 ** 9,
        )
        assert not strict.is_characterized("l.add(i)")
        assert strict.entry("l.add(i)", Stage.EX) == design.static_period_ps
        # bubbles are exempt from the threshold
        assert strict.is_characterized(BUBBLE_CLASS)

    def test_cycle_count_mismatch_rejected(self, characterization, design):
        run_a = characterization.runs[0]
        run_b = characterization.runs[-1]
        if run_a.num_cycles != run_b.num_cycles:
            with pytest.raises(ValueError, match="cycles"):
                extract_lut(run_a.dta, run_b.trace, design.static_period_ps)


class TestMerging:
    def test_merge_takes_max(self, characterization):
        merged = merge_luts([run.lut for run in characterization.runs])
        for cls in merged.classes():
            for stage in Stage:
                per_run_max = max(
                    run.lut.entries.get(cls, {}).get(stage, 0.0)
                    for run in characterization.runs
                    if run.lut.entries.get(cls, {}).get(
                        stage, run.lut.static_period_ps
                    ) < run.lut.static_period_ps
                    or cls in run.lut.entries
                )
                if per_run_max and per_run_max < merged.static_period_ps:
                    assert merged.entries[cls][stage] >= per_run_max - 1e6

    def test_merge_accumulates_occurrences(self, characterization):
        merged = merge_luts([run.lut for run in characterization.runs])
        total = sum(
            run.lut.occurrences.get("l.add(i)", 0)
            for run in characterization.runs
        )
        assert merged.occurrences["l.add(i)"] == total

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_luts([])


class TestLutContainer:
    def test_json_roundtrip(self, lut):
        clone = DelayLUT.from_json(lut.to_json())
        assert clone.static_period_ps == lut.static_period_ps
        assert clone.characterized == lut.characterized
        for cls in lut.classes():
            for stage in Stage:
                assert clone.entry(cls, stage) == lut.entry(cls, stage)

    def test_render_contains_table2_rows(self, lut):
        text = lut.render(classes=["l.mul(i)", "l.j"])
        assert "l.mul(i)" in text
        assert "1899" in text
        assert "ADR" in text

    def test_bubble_period(self, lut, design):
        assert lut.bubble_period_ps == pytest.approx(
            design.profile.adr_seq.max_ps
        )
