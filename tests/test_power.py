"""Power model, voltage scaling and energy tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.paperdata import (
    CONVENTIONAL_UW_PER_MHZ,
    DYNAMIC_SCALED_UW_PER_MHZ,
    ENERGY_EFFICIENCY_GAIN_PERCENT,
    VOLTAGE_REDUCTION_V,
)
from repro.power.energy import energy_per_instruction_pj, program_energy_pj
from repro.power.model import PowerModel
from repro.power.vfs import scale_voltage_iso_throughput
from repro.timing.library import (
    CellLibrary,
    LibraryError,
    delay_scale_factor,
)

voltages = st.floats(min_value=0.50, max_value=0.95)


class TestLibrary:
    def test_reference_scale_is_one(self):
        assert delay_scale_factor(0.70) == pytest.approx(1.0)

    @given(voltages)
    def test_monotone_decreasing_delay_with_voltage(self, voltage):
        higher = min(voltage + 0.05, 1.0)
        assert delay_scale_factor(voltage) > delay_scale_factor(higher)

    def test_below_vth_rejected(self):
        with pytest.raises(LibraryError):
            delay_scale_factor(0.45)
        with pytest.raises(LibraryError):
            delay_scale_factor(0.30)

    def test_cell_library_scales_setup(self):
        library = CellLibrary.at(0.60)
        assert library.setup_ps > CellLibrary.at(0.70).setup_ps
        assert library.scale_delay(1000.0) == pytest.approx(
            1000.0 * library.delay_scale
        )


class TestPowerModel:
    def test_paper_anchor_point(self):
        model = PowerModel()
        assert model.uw_per_mhz(0.70, 494.0) == pytest.approx(
            CONVENTIONAL_UW_PER_MHZ, abs=0.05
        )

    @given(voltages)
    def test_power_monotone_in_voltage(self, voltage):
        model = PowerModel()
        higher = voltage + 0.02
        assert (
            model.total_power_uw(higher, 500.0)
            > model.total_power_uw(voltage, 500.0)
        )

    def test_power_monotone_in_frequency(self):
        model = PowerModel()
        assert (
            model.total_power_uw(0.7, 600.0)
            > model.total_power_uw(0.7, 500.0)
        )

    def test_efficiency_gain_convention(self):
        model = PowerModel()
        # 13.7 -> 11.0 must read as ~24 % (the paper's convention)
        assert model.efficiency_gain_percent(13.7, 11.0) == pytest.approx(
            24.5, abs=0.1
        )

    def test_invalid_inputs(self):
        model = PowerModel()
        with pytest.raises(ValueError):
            model.dynamic_power_uw(0, 100)
        with pytest.raises(ValueError):
            model.leakage_power_uw(-1)


class TestVoltageScaling:
    def test_paper_operating_point(self):
        """Feeding the paper's 680 MHz reproduces Sec. IV-B."""
        result = scale_voltage_iso_throughput(680.0, 494.0)
        assert result.voltage_reduction_v == pytest.approx(
            VOLTAGE_REDUCTION_V, abs=0.012
        )
        assert result.scaled_uw_per_mhz == pytest.approx(
            DYNAMIC_SCALED_UW_PER_MHZ, abs=0.4
        )
        assert result.efficiency_gain_percent == pytest.approx(
            ENERGY_EFFICIENCY_GAIN_PERCENT, abs=3.0
        )

    def test_iso_throughput_maintained(self):
        result = scale_voltage_iso_throughput(680.0, 494.0)
        assert result.scaled_frequency_mhz >= result.baseline_frequency_mhz

    def test_more_speedup_allows_lower_voltage(self):
        small = scale_voltage_iso_throughput(600.0, 494.0)
        large = scale_voltage_iso_throughput(750.0, 494.0)
        assert large.scaled_voltage < small.scaled_voltage
        assert large.efficiency_gain_percent > small.efficiency_gain_percent

    def test_no_speedup_no_scaling(self):
        result = scale_voltage_iso_throughput(494.0, 494.0)
        assert result.scaled_voltage == pytest.approx(0.70)
        # CG overhead makes zero-speedup scaling slightly *worse*
        assert result.efficiency_gain_percent < 0

    def test_slower_than_baseline_rejected(self):
        with pytest.raises(ValueError):
            scale_voltage_iso_throughput(400.0, 494.0)

    def test_summary_text(self):
        text = scale_voltage_iso_throughput(680.0, 494.0).summary()
        assert "mV" in text and "uW/MHz" in text


class TestEnergy:
    def test_program_energy(self, design, lut):
        from repro.clocking.policies import InstructionLutPolicy
        from repro.flow.evaluate import evaluate_program
        from repro.workloads import get_kernel

        result = evaluate_program(
            get_kernel("fib").program(), design,
            InstructionLutPolicy(lut), check_safety=False,
        )
        energy = program_energy_pj(result, 0.70)
        assert energy > 0
        per_instruction = energy_per_instruction_pj(result, 0.70)
        assert per_instruction == pytest.approx(
            energy / result.num_retired
        )
        # lower voltage, same run time accounting -> less energy
        assert program_energy_pj(result, 0.60) < energy
