"""Evaluation-flow tests, including the central safety invariant."""

import pytest

from repro.clocking.generator import TunableRingOscillator
from repro.clocking.policies import (
    ExOnlyLutPolicy,
    GeniePolicy,
    InstructionLutPolicy,
    StaticClockPolicy,
    TwoClassPolicy,
)
from repro.flow.evaluate import (
    average_frequency_mhz,
    average_speedup_percent,
    evaluate_program,
    evaluate_suite,
)
from repro.flow.reporting import render_policy_comparison, render_suite_results
from repro.workloads import get_kernel

EVAL_KERNELS = ("crc32", "matmult", "statemachine", "memcpy")


class TestSafetyInvariant:
    """Frequency-over-scaling WITHOUT timing errors (the paper's core
    claim): the predictive LUT period covers every excited path."""

    @pytest.mark.parametrize("name", EVAL_KERNELS)
    def test_instruction_policy_is_safe(self, design, lut, name):
        result = evaluate_program(
            get_kernel(name).program(), design, InstructionLutPolicy(lut)
        )
        assert result.is_safe, result.violations[:3]

    @pytest.mark.parametrize("name", EVAL_KERNELS)
    def test_ex_only_policy_is_safe(self, design, lut, name):
        result = evaluate_program(
            get_kernel(name).program(), design, ExOnlyLutPolicy(lut)
        )
        assert result.is_safe

    def test_two_class_policy_is_safe(self, design, lut):
        result = evaluate_program(
            get_kernel("matmult").program(), design, TwoClassPolicy(lut)
        )
        assert result.is_safe

    def test_static_policy_is_safe(self, design):
        result = evaluate_program(
            get_kernel("crc32").program(), design,
            StaticClockPolicy(design.static_period_ps),
        )
        assert result.is_safe
        assert result.speedup_percent == pytest.approx(0.0, abs=1e-9)

    def test_quantized_generator_is_safe(self, design, lut):
        result = evaluate_program(
            get_kernel("crc32").program(), design,
            InstructionLutPolicy(lut),
            generator=TunableRingOscillator(),
        )
        assert result.is_safe

    def test_overscaled_static_is_unsafe(self, design):
        """Sanity check of the checker itself: clocking the static design
        20 % too fast must produce violations."""
        result = evaluate_program(
            get_kernel("matmult").program(), design,
            StaticClockPolicy(design.static_period_ps * 0.80),
        )
        assert not result.is_safe
        worst = max(v.overshoot_ps for v in result.violations)
        assert worst > 0


class TestPerformanceOrdering:
    def test_policy_ordering(self, design, lut):
        """genie >= instruction >= ex-only >= two-class >= static, in
        effective frequency."""
        program = get_kernel("statemachine").program()
        freq = {}
        for name, policy in [
            ("genie", GeniePolicy(design.excitation)),
            ("instruction", InstructionLutPolicy(lut)),
            ("ex-only", ExOnlyLutPolicy(lut)),
            ("two-class", TwoClassPolicy(lut)),
            ("static", StaticClockPolicy(design.static_period_ps)),
        ]:
            freq[name] = evaluate_program(
                program, design, policy, check_safety=False
            ).effective_frequency_mhz
        assert freq["genie"] >= freq["instruction"] >= freq["ex-only"]
        assert freq["ex-only"] >= freq["two-class"] >= freq["static"]

    def test_quantization_costs_speed(self, design, lut):
        program = get_kernel("crc32").program()
        ideal = evaluate_program(
            program, design, InstructionLutPolicy(lut), check_safety=False
        )
        quantized = evaluate_program(
            program, design, InstructionLutPolicy(lut),
            generator=TunableRingOscillator(step_ps=100.0),
            check_safety=False,
        )
        assert (
            quantized.effective_frequency_mhz
            <= ideal.effective_frequency_mhz
        )

    def test_margin_costs_speed(self, design, lut):
        program = get_kernel("crc32").program()
        base = evaluate_program(
            program, design, InstructionLutPolicy(lut), check_safety=False
        )
        guarded = evaluate_program(
            program, design, InstructionLutPolicy(lut),
            margin_percent=10.0, check_safety=False,
        )
        assert guarded.average_period_ps == pytest.approx(
            base.average_period_ps * 1.10, rel=1e-6
        )


class TestResultAccounting:
    def test_time_is_sum_of_periods(self, design, lut):
        result = evaluate_program(
            get_kernel("fib").program(), design, InstructionLutPolicy(lut),
            check_safety=False,
        )
        assert result.total_time_ps == pytest.approx(
            result.average_period_ps * result.num_cycles
        )
        assert result.min_period_ps <= result.average_period_ps
        assert result.average_period_ps <= result.max_period_ps

    def test_speedup_definition(self, design, lut):
        result = evaluate_program(
            get_kernel("fib").program(), design, InstructionLutPolicy(lut),
            check_safety=False,
        )
        expected = (
            design.static_period_ps / result.average_period_ps - 1.0
        ) * 100.0
        assert result.speedup_percent == pytest.approx(expected)

    def test_summary_text(self, design, lut):
        result = evaluate_program(
            get_kernel("fib").program(), design, InstructionLutPolicy(lut),
            check_safety=False,
        )
        assert "fib" in result.summary()

    def test_suite_helpers(self, design, lut):
        programs = [get_kernel(n).program() for n in ("fib", "crc16")]
        results = evaluate_suite(
            programs, design, lambda: InstructionLutPolicy(lut),
            check_safety=False,
        )
        assert len(results) == 2
        assert average_speedup_percent(results) > 0
        assert average_frequency_mhz(results) > 494.0
        with pytest.raises(ValueError):
            average_speedup_percent([])

    def test_zero_cycle_result_is_nan_not_crash(self, design):
        """A zero-cycle trace must not divide by zero or report an inf
        minimum period (satellite fix)."""
        import math

        from repro.flow.evaluate import EvaluationResult

        result = EvaluationResult(
            program_name="empty", policy_name="static",
            num_cycles=0, num_retired=0, total_time_ps=0.0,
            static_period_ps=design.static_period_ps,
            min_period_ps=float("nan"), max_period_ps=float("nan"),
            switch_rate=0.0,
        )
        assert math.isnan(result.average_period_ps)
        assert math.isnan(result.effective_frequency_mhz)
        assert math.isnan(result.speedup_percent)
        assert result.is_safe

    def test_zero_cycle_controller_stats(self):
        import math

        from repro.clocking.controller import ControllerStats

        stats = ControllerStats.from_periods([])
        assert stats.cycles == 0
        assert stats.is_empty
        assert math.isnan(stats.min_period_ps)   # not +inf
        assert math.isnan(stats.max_period_ps)
        assert stats.switch_rate == 0.0
        with pytest.raises(ValueError):
            stats.average_period_ps

    def test_controller_stats_from_periods(self):
        from repro.clocking.controller import ControllerStats

        stats = ControllerStats.from_periods([100.0, 100.0, 150.0, 120.0])
        assert stats.cycles == 4
        assert stats.total_time_ps == pytest.approx(470.0)
        assert stats.switches == 2
        assert stats.min_period_ps == 100.0
        assert stats.max_period_ps == 150.0
        assert stats.switch_rate == pytest.approx(2 / 3)

    def test_reporting_renders(self, design, lut):
        programs = [get_kernel(n).program() for n in ("fib", "crc16")]
        results = evaluate_suite(
            programs, design, lambda: InstructionLutPolicy(lut),
            check_safety=False,
        )
        table = render_suite_results(results, design.static_period_ps)
        assert "fib" in table and "Speedup" in table
        comparison = render_policy_comparison({"lut": results})
        assert "crc16" in comparison
