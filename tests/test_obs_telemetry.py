"""Telemetry integration: Session plumbing, frames, determinism, shards.

Pins the observability contract end to end:

- ``Session(telemetry=...)`` collects spans from every layer and the
  TELEMETRY frame round-trips through JSON and the artifact store;
- telemetry is pure observation — results and stored artifact bytes are
  bit-identical with tracing on and off;
- multiprocessing sweep shards ship their spans (per-worker tracks) and
  their counter deltas (the ``--jobs N`` counter-loss fix) back to the
  parent, and a warm parallel sweep re-simulates nothing.
"""

import hashlib
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session, TELEMETRY_SCHEMA, ResultFrame
from repro.api.frame import EVALUATION_SCHEMA
from repro.lab.runner import SweepRunner
from repro.lab.scenario import ScenarioGrid
from repro.lab.store import ArtifactStore
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.export import chrome_trace, validate_chrome_trace

GRID = {
    "name": "obs-grid",
    "policies": ["instruction"],
    "generators": ["ideal"],
    "margins": [0.0],
    "variants": ["critical_range"],
    "voltages": [0.70],
    "workloads": ["fib", "crc16"],
    "check_safety": True,
}


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    previous = obs_trace.set_tracer(None)
    yield
    obs_trace.set_tracer(previous)


def _seeded_store(tmp_path, design, lut, name="store"):
    """A store pre-seeded with the shared LUT (skips characterisation)."""
    root = tmp_path / name
    ArtifactStore(root).save_lut(lut, design)
    return root


def _fresh_compiled_cache():
    """Cold compiled-trace *and* decode-image caches, so the run pays
    the full decode + ISS + compile path (and records its spans)."""
    from repro.dta.compiled import clear_compiled_cache
    from repro.sim import predecode

    clear_compiled_cache()
    predecode.clear_images()


class TestSessionTelemetry:
    def test_spans_cover_the_layers(self, tmp_path, design, lut):
        _fresh_compiled_cache()
        session = Session(
            store=_seeded_store(tmp_path, design, lut), telemetry=True
        )
        frame = session.evaluate(["fib"], policies=["instruction"])
        assert len(frame) == 1
        categories = {s["category"] for s in session.telemetry.snapshot()}
        # session facade, batch engine, trace compiler, ISS, store
        assert {"session", "evaluate", "dta", "iss", "store"} <= categories

    def test_disabled_by_default(self, tmp_path, design, lut):
        session = Session(store=_seeded_store(tmp_path, design, lut))
        assert session.telemetry is None
        with pytest.raises(ValueError, match="telemetry"):
            session.telemetry_frame()

    def test_shared_tracer_across_sessions(self):
        tracer = obs_trace.Tracer(label="shared")
        assert Session(telemetry=tracer).telemetry is tracer
        assert Session(telemetry=False).telemetry is None

    def test_telemetry_frame_round_trips(self, tmp_path, design, lut):
        _fresh_compiled_cache()
        store_root = _seeded_store(tmp_path, design, lut)
        session = Session(store=store_root, telemetry=True)
        session.evaluate(["fib"], policies=["instruction"])
        frame = session.telemetry_frame()
        assert frame.schema == TELEMETRY_SCHEMA
        assert len(frame) > 0

        clone = ResultFrame.from_json(frame.to_json())
        assert clone.to_dict() == frame.to_dict()

        store = ArtifactStore(store_root)
        store.save_frame("telemetry:test", frame)
        loaded = store.load_frame("telemetry:test")
        assert loaded.to_dict() == frame.to_dict()


class TestTelemetryIsPureObservation:
    def test_results_and_stored_bytes_identical_with_and_without(
        self, tmp_path, design, lut
    ):
        grid = ScenarioGrid.from_dict(GRID)

        def run(telemetry):
            _fresh_compiled_cache()
            store_root = _seeded_store(
                tmp_path, design, lut, name=f"telemetry-{telemetry}"
            )
            session = Session(store=store_root, telemetry=telemetry)
            result = session.sweep(grid)
            return store_root, result, session

        store_off, result_off, _ = run(False)
        store_on, result_on, session_on = run(True)

        # row-for-row identical results (float bits included)
        rows_off = json.dumps(result_off.frame.to_dict(), sort_keys=True)
        rows_on = json.dumps(result_on.frame.to_dict(), sort_keys=True)
        assert rows_off == rows_on

        # stored artifact bytes never see telemetry (manifests/results
        # embed wall-clock seconds and are excluded by design)
        assert self._artifact_digests(store_off) == \
            self._artifact_digests(store_on)

        # ... and the traced run actually observed something
        assert len(session_on.telemetry.snapshot()) > 0

    @staticmethod
    def _artifact_digests(root):
        digests = {}
        for path in sorted(root.rglob("*")):
            if not path.is_file():
                continue
            kind = path.relative_to(root).parts[0]
            if kind in ("manifests", "results"):
                continue
            digests[path.relative_to(root).as_posix()] = hashlib.sha256(
                path.read_bytes()
            ).hexdigest()
        assert digests, "expected artifacts under the store"
        return digests

    def test_same_grid_twice_same_fingerprints_different_traces(
        self, tmp_path, design, lut
    ):
        grid = ScenarioGrid.from_dict(GRID)
        store_root = _seeded_store(tmp_path, design, lut)

        def run():
            _fresh_compiled_cache()
            session = Session(store=store_root, telemetry=True)
            session.sweep(grid)
            return session.telemetry.snapshot()

        first, second = run(), run()
        assert grid.fingerprint() == ScenarioGrid.from_dict(
            GRID
        ).fingerprint()
        # traces are observations of *this* run: timestamps must differ
        assert [s["span"] for s in first] and first != second


class TestParallelShards:
    def test_worker_counters_merge_and_warm_sweep_runs_no_sims(
        self, tmp_path, design, lut
    ):
        grid = ScenarioGrid.from_dict(GRID)
        store_root = _seeded_store(tmp_path, design, lut)

        _fresh_compiled_cache()
        baseline = obs_metrics.gather()
        runner = SweepRunner(grid, store=store_root, jobs=2,
                             parallel_threshold=0)
        cold = runner._execute()
        assert cold.jobs_effective == 2 and not cold.parallel_fallback
        cold_delta = obs_metrics.delta_since(baseline)
        # the historical bug: worker-side simulations/store traffic
        # vanished from the parent's counters under --jobs N
        assert cold_delta.get("sim.simulations", 0) == 2
        assert cold_delta.get("store.trace.writes", 0) == 2

        _fresh_compiled_cache()
        baseline = obs_metrics.gather()
        warm = SweepRunner(grid, store=store_root, jobs=2,
                           parallel_threshold=0)._execute()
        warm_delta = obs_metrics.delta_since(baseline)
        assert warm.simulations == 0
        assert warm_delta.get("sim.simulations", 0) == 0
        assert warm_delta.get("store.trace.hits", 0) >= 2
        assert json.dumps(warm.frame.to_dict(), sort_keys=True) == \
            json.dumps(cold.frame.to_dict(), sort_keys=True)

    def test_traced_parallel_sweep_has_per_worker_tracks(
        self, tmp_path, design, lut
    ):
        grid = ScenarioGrid.from_dict(GRID)
        store_root = _seeded_store(tmp_path, design, lut)
        _fresh_compiled_cache()
        session = Session(store=store_root, jobs=2, telemetry=True)
        runner = SweepRunner(grid, store=session.store, jobs=2,
                             parallel_threshold=0)
        session.sweep(grid, runner=runner)

        spans = session.telemetry.snapshot()
        pids = {s["pid"] for s in spans}
        workers = {s["worker"] for s in spans}
        assert len(pids) >= 3          # parent + two pool workers
        assert "session" in workers
        assert sum(w.startswith("worker-") for w in workers) >= 2

        payload = chrome_trace(spans, label="obs-test")
        categories = validate_chrome_trace(payload)
        # the acceptance bar: spans from >= 4 layers of the stack
        # ("iss" only shows when the fork-inherited predecode image
        # cache is cold, so it is not pinned here)
        assert {"session", "sweep", "evaluate", "dta",
                "store"} <= categories

    def test_on_unit_progress_hook(self, tmp_path, design, lut):
        grid = ScenarioGrid.from_dict(GRID)
        store_root = _seeded_store(tmp_path, design, lut)
        _fresh_compiled_cache()
        session = Session(store=store_root)
        calls = []
        session.sweep(grid, on_unit=lambda done, total:
                      calls.append((done, total)))
        assert calls[0] == (0, 2)      # up-front: resumed count
        assert calls[-1] == (2, 2)
        assert [done for done, _ in calls] == sorted(
            done for done, _ in calls
        )


SPAN_NAMES = st.sampled_from(
    ["iss.collect", "dta.compile", "sweep.unit_batch", "store.trace.load",
     "session.sweep", "evaluate.batch"]
)


@st.composite
def span_records(draw):
    name = draw(SPAN_NAMES)
    return {
        "span": name,
        "category": name.split(".", 1)[0],
        "worker": draw(st.sampled_from(["session", "worker-7",
                                        "worker-8"])),
        "pid": draw(st.integers(min_value=1, max_value=1 << 22)),
        "depth": draw(st.integers(min_value=0, max_value=6)),
        "start_us": draw(st.floats(min_value=0, max_value=1e15,
                                   allow_nan=False)),
        "duration_us": draw(st.floats(min_value=0, max_value=1e9,
                                      allow_nan=False)),
        "cpu_us": draw(st.floats(min_value=0, max_value=1e9,
                                 allow_nan=False)),
        "attrs": draw(st.dictionaries(
            st.text(alphabet="abcdef", min_size=1, max_size=4),
            st.one_of(st.integers(-1000, 1000),
                      st.text(alphabet="xyz", max_size=4)),
            max_size=3,
        )),
    }


class TestSpanProperties:
    @settings(deadline=None, max_examples=50)
    @given(st.lists(span_records(), max_size=24))
    def test_exports_accept_any_span_stream(self, records):
        from repro.obs.export import summary_rows, telemetry_frame

        payload = chrome_trace(records)
        categories = validate_chrome_trace(payload)
        assert categories == {r["category"] for r in records}
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(records)

        frame = telemetry_frame(records)
        clone = ResultFrame.from_json(frame.to_json())
        assert clone.to_dict() == frame.to_dict()

        rows = summary_rows(records)
        assert sum(r["count"] for r in rows) == len(records)
        assert sorted((r["wall_ms"] for r in rows), reverse=True) == [
            r["wall_ms"] for r in rows
        ]


def test_telemetry_schema_is_not_an_evaluation_schema():
    """Telemetry rides the frame machinery but stays its own table."""
    assert TELEMETRY_SCHEMA != EVALUATION_SCHEMA
    names = [column.name for column in TELEMETRY_SCHEMA]
    assert names == ["span", "category", "worker", "pid", "depth",
                     "start_us", "duration_us", "cpu_us", "attrs"]
