"""Parameterized microarchitectures: the PipelineSpec layer.

Three contracts are enforced here:

- **The default spec is the identity.**  Simulating, compiling and
  keying with :data:`~repro.sim.spec.DEFAULT_SPEC` is bit-identical to
  never mentioning specs at all — operating points, store keys and grid
  fingerprints do not change.
- **Every fast-path preset is cross-engine equivalent.**  The scalar
  engine is the reference for *all* specs; the vector and lockstep
  engines must reproduce it bit-for-bit on every preset they accept
  (``shallow5``, ``deep7``, ``slowmul6``) and must defer (return
  ``None``) on the presets they cannot represent (``nofwd6``,
  ``slowmem6``).
- **Specs key artifacts.**  Two specs over the same program produce two
  distinct store artifacts; corrupting one never touches the other.
"""

import numpy as np
import pytest

from repro.asm import assemble
from repro.dta.compiled import compile_trace, compile_vector_run
from repro.sim import lockstep, predecode, vector
from repro.sim.pipeline import PipelineSimulator
from repro.sim.spec import (
    DEFAULT_SPEC,
    PIPELINE_VARIANTS,
    PipelineSpec,
    StageDef,
    get_pipeline_spec,
    register_pipeline_spec,
)
from repro.sim.trace import Stage
from repro.timing.design import build_design
from repro.workloads.kernels import all_kernels, get_kernel
from repro.workloads.randomgen import generate_characterization_program

#: Non-default presets the vectorized engines implement.
FAST_PRESETS = ("shallow5", "deep7", "slowmul6")

#: Non-default presets that always run on the scalar reference.
SCALAR_PRESETS = ("nofwd6", "slowmem6")


# -- spec construction, registry, identity ------------------------------------


class TestSpecValidation:
    def test_default_reproduces_todays_machine(self):
        assert DEFAULT_SPEC.num_stages == len(Stage)
        assert DEFAULT_SPEC.ex_index == int(Stage.EX)
        assert DEFAULT_SPEC.squash_count == 1
        assert DEFAULT_SPEC.stage_names == tuple(s.name for s in Stage)
        assert DEFAULT_SPEC.fast_path
        assert DEFAULT_SPEC.is_default

    @pytest.mark.parametrize("name", sorted(PIPELINE_VARIANTS))
    def test_presets_round_trip_and_digest(self, name):
        spec = get_pipeline_spec(name)
        clone = PipelineSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.digest == spec.digest

    def test_digest_excludes_display_name(self):
        renamed = PipelineSpec(name="whatever")
        assert renamed.digest == DEFAULT_SPEC.digest
        assert renamed.is_default

    def test_digests_distinct_across_presets(self):
        digests = {spec.digest for spec in PIPELINE_VARIANTS.values()}
        assert len(digests) == len(PIPELINE_VARIANTS)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown pipeline spec"):
            get_pipeline_spec("warp9")

    def test_unresolvable_type_rejected(self):
        with pytest.raises(TypeError):
            get_pipeline_spec(7)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_pipeline_spec(PipelineSpec(name="baseline6"))

    @pytest.mark.parametrize("stages, message", [
        # no EX stage at all
        ((("ADR", Stage.ADR), ("FE", Stage.FE), ("CTRL", Stage.CTRL),
          ("WB", Stage.WB)), "exactly one EX"),
        # EX too early: no delay-slot stage
        ((("ADR", Stage.ADR), ("EX", Stage.EX), ("CTRL", Stage.CTRL),
          ("WB", Stage.WB)), "two front stages"),
        # missing write-back behind the response stage
        ((("ADR", Stage.ADR), ("FE", Stage.FE), ("EX", Stage.EX),
          ("CTRL", Stage.CTRL)), "two back stages"),
        # first stage must be the address generator
        ((("FE", Stage.FE), ("ADR", Stage.ADR), ("EX", Stage.EX),
          ("CTRL", Stage.CTRL), ("WB", Stage.WB)), "must be ADR"),
        # the stage after EX must answer the data memory
        ((("ADR", Stage.ADR), ("FE", Stage.FE), ("EX", Stage.EX),
          ("WB", Stage.WB), ("CTRL", Stage.CTRL)), "CTRL path group"),
        # back stage on a front path group
        ((("ADR", Stage.ADR), ("FE", Stage.FE), ("EX", Stage.EX),
          ("CTRL", Stage.CTRL), ("XX", Stage.DC)), "CTRL/WB"),
    ])
    def test_structural_constraints(self, stages, message):
        with pytest.raises(ValueError, match=message):
            PipelineSpec(name="bad", stages=stages)

    @pytest.mark.parametrize("field, value", [
        ("load_use_penalty", 0), ("mul_latency", 0), ("div_latency", 0),
    ])
    def test_latency_floors(self, field, value):
        with pytest.raises(ValueError):
            PipelineSpec(name="bad", **{field: value})

    def test_unknown_policies_rejected(self):
        with pytest.raises(ValueError, match="hazard policy"):
            PipelineSpec(name="bad", hazard_policy="scoreboard")
        with pytest.raises(ValueError, match="branch policy"):
            PipelineSpec(name="bad", branch_policy="predict-taken")

    def test_stage_names_unique(self):
        with pytest.raises(ValueError, match="unique"):
            PipelineSpec(name="bad", stages=(
                StageDef("ADR", Stage.ADR), StageDef("X", Stage.FE),
                StageDef("X", Stage.DC), StageDef("EX", Stage.EX),
                StageDef("CTRL", Stage.CTRL), StageDef("WB", Stage.WB),
            ))

    def test_canonical_columns(self):
        deep = get_pipeline_spec("deep7")
        # two DC-group columns resolve to the one feeding EX
        assert deep.canonical_column(Stage.DC) == 3
        assert deep.canonical_column(Stage.EX) == 4
        shallow = get_pipeline_spec("shallow5")
        assert shallow.canonical_column(Stage.FE) is None
        assert shallow.canonical_column(Stage.WB) == 4
        assert DEFAULT_SPEC.canonical_column(Stage.DC) == int(Stage.DC)

    def test_stage_labels_stay_canonical(self):
        deep = get_pipeline_spec("deep7")
        assert [deep.stage_label(c) for c in range(deep.num_stages)] == [
            Stage.ADR, Stage.FE, Stage.DC, Stage.DC, Stage.EX,
            Stage.CTRL, Stage.WB,
        ]

    def test_fast_path_classification(self):
        for name in FAST_PRESETS:
            assert get_pipeline_spec(name).fast_path, name
        for name in SCALAR_PRESETS:
            assert not get_pipeline_spec(name).fast_path, name


# -- default-spec identity ----------------------------------------------------


class TestDefaultIdentity:
    """Passing the default spec explicitly changes nothing, anywhere."""

    def test_scalar_trace_bit_identical(self):
        program = get_kernel("fib").program()
        implicit = PipelineSimulator(program).run()
        explicit = PipelineSimulator(program, spec=DEFAULT_SPEC).run()
        assert explicit.num_cycles == implicit.num_cycles
        assert explicit.records == implicit.records

    def test_operating_point_unchanged(self):
        design = build_design(pipeline_spec=DEFAULT_SPEC)
        assert design.operating_point == (
            design.variant.value, design.library.voltage
        )

    def test_compiled_trace_unchanged(self, design):
        program = get_kernel("crc16").program()
        trace = PipelineSimulator(program).run()
        implicit = compile_trace(trace, design.excitation)
        explicit = compile_trace(trace, design.excitation,
                                 spec=DEFAULT_SPEC)
        assert implicit.spec is None
        assert explicit.spec is None     # normalised away: keys stay stable
        np.testing.assert_array_equal(explicit.class_ids,
                                      implicit.class_ids)
        assert (explicit.delays == implicit.delays).all()


# -- cross-engine equivalence per preset --------------------------------------


def assert_spec_equivalent(program, spec, design, check_delays=False):
    """The vector engine must reproduce the scalar reference exactly
    under ``spec`` (records, architectural state, compiled matrices)."""
    scalar = PipelineSimulator(program, spec=spec)
    scalar.run()
    run = vector.simulate(program, spec=spec)
    assert run is not None, (
        f"unexpected fallback for {program.name} on {spec.name}: "
        f"{vector.last_fallback_reason()}"
    )
    reference = scalar.trace
    assert run.trace.num_cycles == reference.num_cycles
    assert run.trace.retired == reference.retired
    for expected, actual in zip(reference.records, run.trace.records):
        assert actual == expected, (
            f"{program.name} on {spec.name}: cycle {expected.cycle}\n"
            f"  scalar: {expected}\n  vector: {actual}"
        )
    assert list(run.state.regs) == list(scalar.state.regs)
    assert run.state.flag == scalar.state.flag
    assert run.state.instret == scalar.state.instret

    reference_compiled = compile_trace(reference, design.excitation,
                                       spec=spec)
    fast_compiled = compile_vector_run(run, design.excitation)
    assert fast_compiled.class_names == reference_compiled.class_names
    for field in ("class_ids", "bubble", "held", "stall", "redirect"):
        assert np.array_equal(
            getattr(fast_compiled, field),
            getattr(reference_compiled, field),
        ), f"{program.name} on {spec.name}: compiled {field} differs"
    if check_delays:
        assert np.array_equal(
            fast_compiled.delays, reference_compiled.delays
        ), f"{program.name} on {spec.name}: delay matrices differ"
    return run


def _directed_programs():
    """Hazard/branch corners every spec geometry must nail."""
    corner = "\n".join([
        "start:",
        "    l.movhi r20, hi(scratch)",
        "    l.ori   r20, r20, lo(scratch)",
        "    l.addi  r3, r0, 7",
        "    l.sw    0(r20), r3",
        "    l.lwz   r4, 0(r20)",
        "    l.addi  r5, r4, 1",      # load-use interlock
        "    l.mul   r6, r5, r3",     # multi-cycle EX under slowmul6
        "    l.sfeqi r3, 7",
        "    l.bf    target",
        "    l.addi  r7, r0, 2",      # delay slot
        "    l.addi  r8, r0, 3",      # squashed wrong-path word
        "    l.addi  r8, r0, 4",      # second victim under deep7
        "target:",
        "    l.div   r9, r6, r3",     # divider drains into the halt
        "    l.nop   0x1",
        "    l.nop",
        "    l.nop",
        ".data",
        "scratch:",
        "    .space 32",
    ])
    return [
        assemble(corner, name="spec-corners"),
        get_kernel("fib").program(),
        get_kernel("gcd").program(),       # div-heavy
        get_kernel("crc16").program(),     # branch-heavy
    ]


@pytest.fixture(scope="module", params=FAST_PRESETS)
def preset_context(request):
    spec = get_pipeline_spec(request.param)
    return spec, build_design(pipeline_spec=spec)


class TestFastPresetEquivalence:
    def test_directed_and_kernels(self, preset_context):
        spec, design = preset_context
        for program in _directed_programs():
            assert_spec_equivalent(program, spec, design,
                                   check_delays=True)

    def test_random_programs(self, preset_context):
        spec, design = preset_context
        for seed in range(40):
            program = generate_characterization_program(
                seed=seed, length=40, repeats=1
            )
            assert_spec_equivalent(program, spec, design,
                                   check_delays=(seed % 10 == 0))

    def test_lockstep_matches_vector(self, preset_context):
        spec, design = preset_context
        programs = _directed_programs()
        predecode.clear_images()
        references = [
            vector.simulate(program, spec=spec) for program in programs
        ]
        predecode.clear_images()
        runs = lockstep.simulate_batch(programs, spec=spec)
        for program, reference, candidate in zip(
            programs, references, runs
        ):
            name = f"{program.name} on {spec.name}"
            assert candidate is not None, name
            assert candidate.num_cycles == reference.num_cycles, name
            assert candidate.retired == reference.retired, name
            for field in (
                "slot_pc", "slot_class", "slot_taken", "slot_is_instr",
                "slot_squashed", "stall", "redirect", "ex_occ", "ex_held",
            ):
                assert np.array_equal(
                    getattr(candidate, field), getattr(reference, field)
                ), f"{name}: lockstep {field} differs"
            expected = compile_vector_run(reference, design.excitation)
            actual = compile_vector_run(candidate, design.excitation)
            for field in ("class_ids", "bubble", "held"):
                assert np.array_equal(
                    getattr(actual, field), getattr(expected, field)
                ), f"{name}: compiled {field} differs"

    def test_geometry_visible_in_trace(self, preset_context):
        spec, design = preset_context
        program = get_kernel("fib").program()
        run = vector.simulate(program, spec=spec)
        compiled = compile_vector_run(run, design.excitation)
        assert compiled.class_ids.shape[1] == spec.num_stages
        assert compiled.ex_column == spec.ex_index
        assert compiled.pipeline_spec.digest == spec.digest


class TestScalarOnlyPresets:
    """Presets outside the cumsum fast path: the vector engine defers,
    the scalar engine carries them with unchanged architectural
    semantics."""

    @pytest.mark.parametrize("name", SCALAR_PRESETS)
    def test_vector_defers(self, name):
        spec = get_pipeline_spec(name)
        run = vector.simulate(get_kernel("fib").program(), spec=spec)
        assert run is None
        assert "spec" in vector.last_fallback_reason()

    @pytest.mark.parametrize("name", SCALAR_PRESETS)
    def test_architectural_state_spec_invariant(self, name):
        spec = get_pipeline_spec(name)
        program = get_kernel("crc16").program()
        baseline = PipelineSimulator(program)
        baseline.run()
        candidate = PipelineSimulator(program, spec=spec)
        candidate.run()
        assert list(candidate.state.regs) == list(baseline.state.regs)
        assert candidate.state.instret == baseline.state.instret
        # timing must differ: more interlocks can only add cycles
        assert candidate.trace.num_cycles > baseline.trace.num_cycles

    def test_nofwd_interlocks_raw_dependences(self):
        program = assemble("\n".join([
            "start:",
            "    l.addi r3, r0, 1",
            "    l.addi r4, r3, 1",   # RAW: stalls until r3 write-back
            "    l.addi r5, r4, 1",
            "    l.nop  0x1",
            "    l.nop",
        ]), name="raw-chain")
        fwd = PipelineSimulator(program).run()
        nofwd = PipelineSimulator(
            program, spec=get_pipeline_spec("nofwd6")
        ).run()
        assert nofwd.num_cycles > fwd.num_cycles

    def test_slowmem_doubles_load_use_bubbles(self):
        program = assemble("\n".join([
            "start:",
            "    l.movhi r20, hi(scratch)",
            "    l.ori   r20, r20, lo(scratch)",
            "    l.lwz   r4, 0(r20)",
            "    l.addi  r5, r4, 1",   # load-use: 1 vs 2 bubbles
            "    l.nop   0x1",
            "    l.nop",
            ".data",
            "scratch:",
            "    .space 16",
        ]), name="load-use")
        fast = PipelineSimulator(program).run()
        slow = PipelineSimulator(
            program, spec=get_pipeline_spec("slowmem6")
        ).run()
        assert slow.num_cycles == fast.num_cycles + 1


# -- spec-keyed artifacts (store invalidation) --------------------------------


MAX_CYCLES = 4_000_000


class TestSpecKeyedStore:
    """Same program, two specs → two artifacts; damage stays contained."""

    @pytest.fixture
    def store(self, tmp_path):
        from repro.lab.store import ArtifactStore

        return ArtifactStore(tmp_path / "store")

    def _compiled(self, program, spec):
        design = build_design(pipeline_spec=spec)
        run = vector.simulate(program, spec=spec)
        compiled = compile_vector_run(run, design.excitation)
        compiled.delays    # materialise before freezing
        return design, compiled

    def test_two_specs_two_artifacts(self, store):
        program = get_kernel("fib").program()
        default_design, default_compiled = self._compiled(program, None)
        deep_design, deep_compiled = self._compiled(
            program, get_pipeline_spec("deep7")
        )
        default_path = store.trace_path(program, default_design,
                                        MAX_CYCLES)
        deep_path = store.trace_path(program, deep_design, MAX_CYCLES)
        assert default_path != deep_path

        store.save_compiled_trace(default_compiled, program,
                                  default_design, MAX_CYCLES)
        store.save_compiled_trace(deep_compiled, program, deep_design,
                                  MAX_CYCLES)
        assert default_path.exists() and deep_path.exists()

        loaded_default = store.load_compiled_trace(
            program, default_design, MAX_CYCLES
        )
        loaded_deep = store.load_compiled_trace(
            program, deep_design, MAX_CYCLES
        )
        assert loaded_default.class_ids.shape[1] == len(Stage)
        assert loaded_deep.class_ids.shape[1] == 7
        assert loaded_deep.pipeline_spec.digest == \
            get_pipeline_spec("deep7").digest
        assert loaded_deep.operating_point == deep_design.operating_point

    def test_corrupting_one_spec_leaves_the_other(self, store):
        program = get_kernel("fib").program()
        default_design, default_compiled = self._compiled(program, None)
        deep_design, deep_compiled = self._compiled(
            program, get_pipeline_spec("deep7")
        )
        store.save_compiled_trace(default_compiled, program,
                                  default_design, MAX_CYCLES)
        store.save_compiled_trace(deep_compiled, program, deep_design,
                                  MAX_CYCLES)

        deep_path = store.trace_path(program, deep_design, MAX_CYCLES)
        deep_path.write_bytes(b"not a zip file")
        assert store.load_compiled_trace(
            program, deep_design, MAX_CYCLES
        ) is None
        assert store.stats.get("trace", "corrupt") == 1
        assert not deep_path.exists()    # discarded for recompute

        survivor = store.load_compiled_trace(
            program, default_design, MAX_CYCLES
        )
        assert survivor is not None
        assert (survivor.delays == default_compiled.delays).all()

    def test_fingerprints_distinct_per_spec(self):
        from repro.lab.store import design_fingerprint

        prints = {
            design_fingerprint(build_design(pipeline_spec=name))
            for name in PIPELINE_VARIANTS
        }
        assert len(prints) == len(PIPELINE_VARIANTS)

    def test_lut_keys_distinct_per_spec(self, store):
        default_design = build_design()
        deep_design = build_design(pipeline_spec="deep7")
        assert store.lut_path(default_design, 10) != \
            store.lut_path(deep_design, 10)


# -- grid, session and deploy surfaces ----------------------------------------


class TestScenarioGridSpecs:
    def _grid(self, **overrides):
        from repro.lab.scenario import ScenarioGrid

        payload = {
            "name": "spec-grid",
            "workloads": ["fib"],
            "variants": ["critical_range"],
            "voltages": [0.70],
            "policies": ["static"],
        }
        payload.update(overrides)
        return ScenarioGrid.from_dict(payload)

    def test_default_axis_keeps_fingerprint(self):
        implicit = self._grid()
        explicit = self._grid(pipeline_specs=[DEFAULT_SPEC.name])
        assert implicit.fingerprint() == explicit.fingerprint()
        assert "pipeline_specs" not in explicit.to_dict()

    def test_spec_axis_crosses_design_points(self):
        grid = self._grid(voltages=[0.70, 0.80],
                          pipeline_specs=["baseline6", "deep7"])
        points = grid.design_points()
        assert len(points) == 4
        assert sorted(
            (p.voltage, p.pipeline_spec) for p in points
        ) == [(0.70, "baseline6"), (0.70, "deep7"),
              (0.80, "baseline6"), (0.80, "deep7")]
        assert grid.to_dict()["pipeline_specs"] == ["baseline6", "deep7"]
        assert grid.fingerprint() != self._grid().fingerprint()

    def test_point_labels_mention_non_default_specs_only(self):
        grid = self._grid(pipeline_specs=["baseline6", "shallow5"])
        labels = [point.label for point in grid.design_points()]
        assert any(label.endswith("/shallow5") for label in labels)
        assert any("baseline6" not in label for label in labels)

    def test_unknown_spec_rejected(self):
        from repro.lab.scenario import ScenarioError

        with pytest.raises(ScenarioError, match="pipeline"):
            self._grid(pipeline_specs=["warp9"]).validate()

    def test_point_builds_spec_design(self):
        grid = self._grid(pipeline_specs=["shallow5"])
        design = grid.design_points()[0].build()
        assert design.pipeline_spec.name == "shallow5"


class TestSessionSpecGate:
    def test_scalar_engine_rejects_non_default_spec(self):
        from repro.api import Session

        with pytest.raises(ValueError, match="scalar engine"):
            Session(engine="scalar", pipeline_spec="deep7")

    def test_scalar_engine_accepts_default(self):
        from repro.api import Session

        session = Session(engine="scalar")
        assert session.pipeline_spec.is_default

    def test_design_point_carries_spec(self):
        from repro.api import Session

        session = Session(pipeline_spec="shallow5")
        assert session.design_point.endswith("/shallow5")
        assert session.design.pipeline_spec.name == "shallow5"


class TestModelSpecValidation:
    def _model(self, metadata):
        from repro.ml.model import LearnedModel

        return LearnedModel(
            kind="logistic", vocabulary=("NOP",), window=8,
            feature_names=("bias",),
            weights=np.zeros(2), x_mean=np.zeros(1), x_scale=np.ones(1),
            levels=np.ones(2), metadata=metadata,
        )

    def test_pre_spec_model_deploys_on_default_only(self):
        from repro.ml.model import ModelError, validate_model_spec

        model = self._model({})
        validate_model_spec(model, build_design())
        with pytest.raises(ModelError, match="pre-spec"):
            validate_model_spec(
                model, build_design(pipeline_spec="deep7")
            )

    def test_spec_trained_model_deploys_on_its_specs(self):
        from repro.ml.model import ModelError, validate_model_spec

        deep = get_pipeline_spec("deep7")
        model = self._model({
            "pipeline_specs": ["deep7"],
            "pipeline_spec_digests": [deep.digest],
        })
        validate_model_spec(model, build_design(pipeline_spec=deep))
        with pytest.raises(ModelError, match="trained on"):
            validate_model_spec(model, build_design())
