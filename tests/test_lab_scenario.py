"""Scenario grids: expansion order, validation, JSON/TOML loading."""

import pytest

from repro.lab.scenario import (
    ConfigSpec,
    DesignPoint,
    ScenarioError,
    ScenarioGrid,
)


class TestExpansion:
    def test_defaults(self):
        grid = ScenarioGrid()
        assert grid.design_points() == [
            DesignPoint(variant="critical_range", voltage=0.70)
        ]
        assert grid.config_specs() == [
            ConfigSpec(policy="instruction", generator="ideal",
                       margin_percent=0.0, check_safety=False)
        ]
        # empty workloads means the full Fig. 8 suite
        from repro.workloads.suite import suite_names

        assert grid.workload_specs() == suite_names()
        assert grid.num_units == len(suite_names())

    def test_cross_product_order(self):
        grid = ScenarioGrid(
            policies=("instruction", "genie"),
            generators=("ideal", "ring"),
            margins=(0.0, 5.0),
            variants=("critical_range", "conventional"),
            voltages=(0.70, 0.90),
            workloads=("fib", "crc16"),
        )
        points = grid.design_points()
        assert len(points) == 4
        assert points[0] == DesignPoint("critical_range", 0.70)
        assert points[1] == DesignPoint("critical_range", 0.90)
        assert points[2] == DesignPoint("conventional", 0.70)

        specs = grid.config_specs()
        assert len(specs) == 8
        assert specs[0].label == "instruction/ideal"
        assert specs[1].label == "instruction/ideal/margin=5%"
        assert specs[2].label == "instruction/ring"
        assert specs[4].policy == "genie"

        assert grid.num_units == 4 * 2
        assert grid.num_evaluations == 4 * 2 * 8

    def test_design_point_label_and_build(self):
        point = DesignPoint("critical_range", 0.8)
        assert point.label == "critical_range@0.80V"
        design = point.build()
        assert design.variant.value == "critical_range"
        assert design.library.voltage == 0.8

    def test_config_spec_make(self, design, lut):
        from repro.clocking.generator import TunableRingOscillator
        from repro.clocking.policies import InstructionLutPolicy
        from repro.core import DcaConfig, DynamicClockAdjustment
        from repro.flow.characterize import CharacterizationResult

        dca = DynamicClockAdjustment(
            config=DcaConfig(variant=design.variant),
            characterization=CharacterizationResult(
                design=design, lut=lut
            ),
        )
        spec = ConfigSpec(policy="instruction", generator="ring",
                          margin_percent=7.5, check_safety=True)
        config = spec.make(dca)
        assert isinstance(config.make_policy(), InstructionLutPolicy)
        assert isinstance(config.generator, TunableRingOscillator)
        assert config.margin_percent == 7.5
        assert config.check_safety
        assert config.label == "instruction/ring/margin=7.5%"


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("policies", ("warp-speed",)),
        ("generators", ("crystal",)),
        ("variants", ("quantum",)),
        ("policies", ()),
        ("margins", (-1.0,)),
        ("voltages", (0.0,)),
    ])
    def test_bad_axis_rejected(self, field, value):
        with pytest.raises(ScenarioError):
            ScenarioGrid(**{field: value})

    def test_unknown_field_rejected(self):
        with pytest.raises(ScenarioError, match="unknown grid fields"):
            ScenarioGrid.from_dict({"polcies": ["instruction"]})

    def test_non_mapping_rejected(self):
        with pytest.raises(ScenarioError, match="must be a mapping"):
            ScenarioGrid.from_json("[1, 2, 3]")

    def test_learned_policy_spec_accepted(self):
        """``learned:<model.npz>`` rides the policy axis next to the
        registry names (the file itself is validated separately)."""
        grid = ScenarioGrid(
            policies=("instruction", "learned:model.npz")
        )
        assert grid.policies == ("instruction", "learned:model.npz")
        labels = [spec.label for spec in grid.config_specs()]
        assert "learned:model.npz/ideal" in labels

    def test_learned_policy_spec_needs_path(self):
        with pytest.raises(ScenarioError, match="needs a model path"):
            ScenarioGrid(policies=("learned:",))

    def test_bare_learned_rejected_with_hint(self):
        with pytest.raises(ScenarioError,
                           match=r"learned:<model\.npz>"):
            ScenarioGrid(policies=("learned",))

    def test_fingerprint_tracks_learned_model_content(self, tmp_path):
        """Retraining a model at the same path must change the grid
        fingerprint — otherwise ``--resume`` would merge checkpoints
        evaluated under the old model with fresh units under the new
        one."""
        path = tmp_path / "model.npz"
        grid = ScenarioGrid(policies=(f"learned:{path}",))
        missing = grid.fingerprint()
        path.write_bytes(b"model v1")
        first = grid.fingerprint()
        path.write_bytes(b"model v2")
        second = grid.fingerprint()
        assert len({missing, first, second}) == 3
        path.write_bytes(b"model v1")
        assert grid.fingerprint() == first      # content, not mtime

    def test_fingerprint_unchanged_without_learned_policies(self):
        """Plain grids keep their historical fingerprints (stored
        manifests and cached sweep results stay valid)."""
        grid = ScenarioGrid(policies=("instruction",))
        import hashlib
        import json as jsonlib

        text = jsonlib.dumps(grid.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        assert grid.fingerprint() == \
            hashlib.sha256(text.encode()).hexdigest()


class TestSerialisation:
    def test_round_trip_and_fingerprint(self):
        grid = ScenarioGrid(
            name="roundtrip",
            policies=("instruction",),
            margins=(0.0, 10.0),
            workloads=("fib",),
        )
        clone = ScenarioGrid.from_dict(grid.to_dict())
        assert clone == grid
        assert clone.fingerprint() == grid.fingerprint()
        # any change to any axis changes the identity
        other = ScenarioGrid.from_dict(
            {**grid.to_dict(), "margins": [0.0]}
        )
        assert other.fingerprint() != grid.fingerprint()

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(
            '{"name": "json-grid", "policies": ["genie"],'
            ' "workloads": ["fib"], "check_safety": true}'
        )
        grid = ScenarioGrid.from_file(path)
        assert grid.name == "json-grid"
        assert grid.policies == ("genie",)
        assert grid.check_safety

    def test_from_toml_file(self, tmp_path):
        pytest.importorskip("tomllib")   # Python >= 3.11
        path = tmp_path / "grid.toml"
        path.write_text(
            'name = "toml-grid"\n'
            'policies = ["instruction", "two-class"]\n'
            'margins = [0.0, 5.0]\n'
            'voltages = [0.7, 0.8]\n'
            'workloads = ["crc16"]\n'
        )
        grid = ScenarioGrid.from_file(path)
        assert grid.name == "toml-grid"
        assert grid.policies == ("instruction", "two-class")
        assert grid.voltages == (0.7, 0.8)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="not found"):
            ScenarioGrid.from_file(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{ nope")
        with pytest.raises(ScenarioError, match="invalid JSON"):
            ScenarioGrid.from_file(path)

    def test_invalid_toml(self, tmp_path):
        pytest.importorskip("tomllib")   # Python >= 3.11
        path = tmp_path / "broken.toml"
        path.write_text("= nope")
        with pytest.raises(ScenarioError, match="invalid TOML"):
            ScenarioGrid.from_file(path)
