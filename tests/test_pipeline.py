"""Cycle-accurate pipeline tests: co-simulation, hazards, stage occupancy."""

import pytest

from repro.asm import assemble
from repro.sim.iss import FunctionalSimulator, SimulationError
from repro.sim.pipeline import PipelineSimulator
from repro.sim.trace import Stage
from repro.workloads import all_kernels
from repro.workloads.randomgen import generate_characterization_program


def cosim(source, **pipe_kwargs):
    program = assemble(source)
    iss = FunctionalSimulator(program)
    iss.run()
    pipe = PipelineSimulator(program, **pipe_kwargs)
    pipe.run()
    assert iss.state.regs == pipe.state.regs
    assert iss.state.flag == pipe.state.flag
    assert [pc for pc, _ in iss.retired] == [pc for pc, _ in pipe.trace.retired]
    return iss, pipe


class TestCosimulation:
    @pytest.mark.parametrize(
        "kernel", all_kernels(), ids=lambda k: k.name
    )
    def test_kernels_match_iss(self, kernel):
        program = kernel.program()
        iss = FunctionalSimulator(program)
        iss.run()
        pipe = PipelineSimulator(program)
        pipe.run()
        kernel.verify_state(iss.state)
        kernel.verify_state(pipe.state)
        assert iss.state.regs == pipe.state.regs
        assert [pc for pc, _ in iss.retired] == [
            pc for pc, _ in pipe.trace.retired
        ]

    @pytest.mark.parametrize("seed", [1, 2, 5])
    def test_random_programs_match_iss(self, seed):
        program = generate_characterization_program(
            seed=seed, length=250, repeats=2
        )
        iss = FunctionalSimulator(program)
        iss.run()
        pipe = PipelineSimulator(program)
        pipe.run()
        assert iss.state.regs == pipe.state.regs
        assert iss.state.instret == pipe.state.instret

    def test_memory_state_matches(self):
        source = (
            "    l.addi r1, r0, 0x200\n"
            "    l.addi r2, r0, 77\n"
            "    l.sw   0(r1), r2\n"
            "    l.sh   8(r1), r2\n"
            "    l.sb   12(r1), r2\n"
            "    l.nop  0x1\n"
        )
        iss, pipe = cosim(source)
        assert dict(iss.memory.words()) == dict(pipe.memory.words())


class TestTiming:
    def test_straight_line_latency(self):
        """First retirement after the pipeline depth, then 1 IPC."""
        _, pipe = cosim(
            "l.addi r1, r0, 1\n" * 10 + "l.nop 0x1\n"
        )
        # 11 instructions, 6-stage pipeline: cycles = depth + instructions - 1
        assert pipe.trace.num_cycles == 6 + 11 - 1

    def test_load_use_stalls_one_cycle(self):
        base = (
            "l.addi r1, r0, 0x100\n"
            "l.lwz  r2, 0(r1)\n"
            "{gap}"
            "l.add  r3, r2, r2\n"
            "l.nop 0x1\n"
        )
        _, pipe_dep = cosim(base.format(gap=""))
        _, pipe_gap = cosim(base.format(gap="l.addi r4, r0, 1\n"))
        # inserting an independent instruction hides the load-use bubble
        assert pipe_gap.trace.num_cycles == pipe_dep.trace.num_cycles

    def test_taken_branch_costs_one_bubble(self):
        taken = (
            "    l.sfeq r0, r0\n"
            "    l.bf t\n"
            "    l.nop\n"
            "t:  l.nop 0x1\n"
        )
        not_taken = (
            "    l.sfne r0, r0\n"
            "    l.bf t\n"
            "    l.nop\n"
            "t:  l.nop 0x1\n"
        )
        _, pipe_taken = cosim(taken)
        _, pipe_not = cosim(not_taken)
        assert pipe_taken.trace.num_cycles == pipe_not.trace.num_cycles + 1

    def test_div_occupies_ex(self):
        source = (
            "l.addi r1, r0, 100\n"
            "l.addi r2, r0, 7\n"
            "l.div  r3, r1, r2\n"
            "l.nop 0x1\n"
        )
        _, quick = cosim(source, div_latency=1)
        _, slow = cosim(source, div_latency=8)
        assert slow.trace.num_cycles == quick.trace.num_cycles + 7
        assert slow.state.regs[3] == 100 // 7

    def test_back_to_back_alu_no_stall(self):
        _, pipe = cosim(
            "l.addi r1, r0, 1\n"
            "l.add  r2, r1, r1\n"
            "l.add  r3, r2, r2\n"
            "l.add  r4, r3, r3\n"
            "l.nop 0x1\n"
        )
        assert pipe.state.regs[4] == 8
        assert pipe.trace.num_cycles == 6 + 5 - 1   # no stalls


class TestStageOccupancy:
    def test_instruction_flows_through_all_stages(self):
        program = assemble("l.addi r1, r0, 1\nl.nop 0x1\n")
        pipe = PipelineSimulator(program)
        pipe.run()
        # the addi (seq 0) must appear in every stage exactly once
        for stage in Stage:
            cycles = [
                r.cycle for r in pipe.trace.records
                if r.slots[stage].seq == 0 and not r.slots[stage].held
            ]
            assert len(cycles) == 1, stage
        # and in pipeline order
        order = [
            next(r.cycle for r in pipe.trace.records
                 if r.slots[stage].seq == 0)
            for stage in Stage
        ]
        assert order == sorted(order)

    def test_program_order_within_cycle(self):
        """Older instructions occupy later stages in every cycle."""
        program = generate_characterization_program(
            seed=3, length=120, repeats=1
        )
        pipe = PipelineSimulator(program)
        pipe.run()
        for record in pipe.trace.records:
            seqs = [
                record.slots[stage].seq
                for stage in reversed(Stage)   # WB .. ADR
                if record.slots[stage].seq is not None
            ]
            assert seqs == sorted(seqs)

    def test_redirect_flag_only_on_control(self):
        program = assemble(
            "    l.sfeq r0, r0\n"
            "    l.bf t\n"
            "    l.nop\n"
            "t:  l.nop 0x1\n"
        )
        pipe = PipelineSimulator(program)
        pipe.run()
        redirect_records = [r for r in pipe.trace.records if r.redirect]
        assert len(redirect_records) == 1
        assert redirect_records[0].mnemonic(Stage.EX) == "l.bf"

    def test_ex_operands_recorded(self):
        program = assemble(
            "l.addi r1, r0, 9\nl.add r2, r1, r1\nl.nop 0x1\n"
        )
        pipe = PipelineSimulator(program)
        pipe.run()
        add_record = next(
            r for r in pipe.trace.records
            if r.mnemonic(Stage.EX) == "l.add"
        )
        assert add_record.ex_operands == (9, 9)

    def test_effective_b_operand_is_immediate(self):
        program = assemble("l.addi r1, r0, -5\nl.nop 0x1\n")
        pipe = PipelineSimulator(program)
        pipe.run()
        record = next(
            r for r in pipe.trace.records
            if r.mnemonic(Stage.EX) == "l.addi"
        )
        assert record.ex_operands[1] == (-5) & 0xFFFFFFFF

    def test_cpi_reasonable_for_kernels(self):
        for kernel in all_kernels():
            pipe = PipelineSimulator(kernel.program())
            pipe.run()
            if kernel.name == "gcd":
                # the serial divider holds EX for 32 cycles per divide
                assert 2.0 < pipe.trace.cpi < 6.0
            else:
                assert 1.0 <= pipe.trace.cpi < 1.6, kernel.name


class TestPipelineErrors:
    def test_invalid_div_latency(self):
        program = assemble("l.nop 0x1\n")
        with pytest.raises(ValueError):
            PipelineSimulator(program, div_latency=0)

    def test_runaway_guard(self):
        program = assemble("spin:\n l.j spin\n l.nop\n")
        pipe = PipelineSimulator(program)
        with pytest.raises(SimulationError, match="exceeded"):
            pipe.run(max_cycles=64)

    def test_step_after_halt_rejected(self):
        program = assemble("l.nop 0x1\n")
        pipe = PipelineSimulator(program)
        pipe.run()
        with pytest.raises(SimulationError):
            pipe.step()
