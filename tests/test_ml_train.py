"""The ML-DFS training pipeline (repro.ml.train) and LearnedPolicy.

Covers the acceptance properties of a trained policy: determinism
(same seed + grid → byte-identical artifact, independent of sweep
sharding), safety (violation-free on the full kernel suite under genie
replay) and frequency (beats the static baseline), plus the
content-addressed model store round trip with corruption → retrain.
"""

import numpy as np
import pytest

from repro.clocking.policies import LearnedPolicy
from repro.lab.scenario import ScenarioGrid
from repro.lab.store import ArtifactStore
from repro.ml.features import extract_features
from repro.ml.train import (
    TrainerConfig,
    get_or_train_model,
    train_policy,
)

#: Small but representative training grid: two kernels, one design point.
GRID = ScenarioGrid(
    name="ml-test",
    policies=("instruction", "static"),
    margins=(0.0,),
    voltages=(0.7,),
    workloads=("fib", "crc16"),
    check_safety=True,
)

#: Cheap configuration for tests that only need *a* model: calibration
#: restricted to the training kernels instead of the full suite.
CHEAP = TrainerConfig(calibration_workloads=("fib", "crc16"))


@pytest.fixture(scope="module")
def outcome():
    """One full training run (tree, full-suite calibration)."""
    return train_policy(GRID, TrainerConfig(seed=1))


class TestTraining:
    def test_report_contents(self, outcome):
        report = outcome.report
        assert report["grid"] == "ml-test"
        assert report["fingerprint"] == GRID.fingerprint()
        assert report["train_workloads"] == ["fib", "crc16"]
        # calibration covers training workloads plus the full suite
        assert set(report["train_workloads"]) \
            <= set(report["calibration_workloads"])
        assert report["train_rows"] > 0
        assert report["calibration_rows"] > report["train_rows"]
        assert report["num_leaves"] > 1
        assert report["safe_on_calibration"] is True
        # training_table consumption: grid policies become baselines
        assert set(report["baselines"]) == {"instruction", "static"}
        for row in report["baselines"].values():
            assert set(row) == {"mhz", "speedup_p50", "speedup_p95",
                                "violations", "mean_normalized_period"}

    def test_envelope_covers_calibration_targets(self, outcome):
        """Every calibration cycle's genie target is covered by its
        leaf — the by-construction safety property."""
        assert outcome.report["safe_on_calibration"] is True
        assert outcome.report["max_normalized_period"] <= 1.0 + 1e-9

    def test_mean_normalized_below_static(self, outcome):
        assert outcome.report["mean_normalized_period"] < 1.0

    def test_unknown_model_kind(self):
        with pytest.raises(ValueError, match="unknown trainer model"):
            TrainerConfig(model="forest")

    @pytest.mark.parametrize("field,value,match", [
        ("window", 0, "window must be >= 1"),
        ("max_depth", 0, "max_depth must be >= 1"),
        ("min_samples_leaf", 0, "min_samples_leaf must be >= 1"),
        ("calibration_margin_percent", -1.0, "cannot be negative"),
    ])
    def test_bad_hyperparameters_rejected(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            TrainerConfig(**{field: value})


class TestDeterminism:
    def test_same_seed_same_bytes(self, outcome):
        again = train_policy(GRID, TrainerConfig(seed=1))
        assert again.model.to_bytes() == outcome.model.to_bytes()

    def test_jobs_do_not_change_bytes(self, tmp_path, outcome):
        """jobs=1 vs jobs=2 training-table generation (sharded sweep +
        store) produces byte-identical artifacts."""
        store = ArtifactStore(tmp_path / "store")
        serial = train_policy(GRID, TrainerConfig(seed=1),
                              store=store, jobs=1)
        parallel = train_policy(GRID, TrainerConfig(seed=1),
                                store=store, jobs=2)
        assert serial.model.to_bytes() == parallel.model.to_bytes()
        assert serial.model.to_bytes() == outcome.model.to_bytes()


class TestDeployment:
    def test_safe_and_faster_than_static_on_full_suite(self, outcome,
                                                       design, lut,
                                                       tmp_path):
        """The headline acceptance: zero violations under genie safety
        replay across the full kernel suite, at a higher mean effective
        frequency than static clocking."""
        from repro.api import Session

        path = tmp_path / "model.npz"
        outcome.model.save(path)
        session = Session.for_design(design, lut=lut)
        frame = session.evaluate(
            None, policies=[f"learned:{path}", "static"],
            check_safety=True,
        )
        learned = frame.where(policy=f"learned:{path}")
        static = frame.where(policy="static")
        assert int(learned["num_violations"].sum()) == 0
        assert learned["effective_frequency_mhz"].mean() \
            > static["effective_frequency_mhz"].mean()

    def test_scalar_and_vector_paths_bit_identical(self, design, lut,
                                                   tmp_path):
        from repro.api import Session

        outcome = train_policy(GRID, CHEAP)
        path = tmp_path / "model.npz"
        outcome.model.save(path)
        policies = [f"learned:{path}"]
        scalar = Session.for_design(design, lut=lut, engine="scalar")
        vector = Session.for_design(design, lut=lut, engine="vector")
        frame_scalar = scalar.evaluate(["fib", "crc16"],
                                       policies=policies,
                                       check_safety=True)
        frame_vector = vector.evaluate(["fib", "crc16"],
                                       policies=policies,
                                       check_safety=True)
        assert frame_scalar == frame_vector

    def test_policy_prediction_matches_model(self, design, outcome):
        from repro.dta.compiled import get_compiled_trace
        from repro.workloads import get_kernel

        policy = LearnedPolicy(outcome.model, design.static_period_ps)
        compiled = get_compiled_trace(get_kernel("fib").program(), design)
        periods = policy.periods_for(compiled)
        features = extract_features(
            compiled, vocabulary=outcome.model.vocabulary,
            window=outcome.model.window,
        )
        expected = outcome.model.predict_normalized(features.matrix) \
            * design.static_period_ps
        assert np.array_equal(periods, expected)

    def test_invalid_static_period(self, outcome):
        with pytest.raises(ValueError, match="invalid static period"):
            LearnedPolicy(outcome.model, 0.0)


class TestLogisticBaseline:
    def test_trains_safe_two_level_policy(self, design, lut, tmp_path):
        from repro.api import Session

        outcome = train_policy(GRID, TrainerConfig(model="logistic"))
        assert outcome.model.kind == "logistic"
        assert outcome.report["num_leaves"] == 2
        assert outcome.report["safe_on_calibration"] is True
        path = tmp_path / "logistic.npz"
        outcome.model.save(path)
        session = Session.for_design(design, lut=lut)
        frame = session.evaluate(
            None, policies=[f"learned:{path}"], check_safety=True
        )
        assert int(frame["num_violations"].sum()) == 0

    def test_deterministic(self):
        first = train_policy(GRID, replace_config(CHEAP, "logistic"))
        second = train_policy(GRID, replace_config(CHEAP, "logistic"))
        assert first.model.to_bytes() == second.model.to_bytes()


def replace_config(config, model):
    from dataclasses import replace

    return replace(config, model=model)


class TestCalibrationMargin:
    def test_margin_scales_predictions(self):
        plain = train_policy(GRID, CHEAP)
        padded = train_policy(
            GRID, TrainerConfig(calibration_workloads=("fib", "crc16"),
                                calibration_margin_percent=5.0),
        )
        ratio = padded.model.tree_value / plain.model.tree_value
        leaves = plain.model.tree_feature < 0
        assert np.allclose(ratio[leaves], 1.05)


class TestModelStore:
    def test_get_or_train_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = get_or_train_model(store, "m", GRID, CHEAP)
        assert store.stats.get("model", "writes") == 1
        second = get_or_train_model(store, "m", GRID, CHEAP)
        assert second == first
        assert store.stats.get("model", "hits") == 1

    def test_corruption_retrains(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = get_or_train_model(store, "m", GRID, CHEAP)
        path = store.model_path("m")
        path.write_bytes(b"torn artifact")
        # a torn artifact is counted, discarded and served as a miss ...
        assert store.load_model("m") is None
        assert store.stats.get("model", "corrupt") == 1
        assert not path.exists()
        # ... and the next lookup simply retrains, deterministically
        again = get_or_train_model(store, "m", GRID, CHEAP)
        assert again == first
        assert store.load_model("m") == first
