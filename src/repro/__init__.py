"""repro — instruction-based dynamic clock adjustment (DATE 2015).

A complete Python reproduction of:

    J. Constantin, L. Wang, G. Karakonstantis, A. Chattopadhyay, A. Burg,
    "Exploiting Dynamic Timing Margins in Microprocessors for
    Frequency-Over-Scaling with Instruction-Based Clock Adjustment",
    DATE 2015, pp. 381-386.

The public API is re-exported here; see README.md for a quickstart and
DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

from repro.asm import Program, ProgramBuilder, assemble, disassemble
from repro.isa import Instruction, decode, encode
from repro.sim import FunctionalSimulator, PipelineSimulator

__all__ = [
    "__version__",
    "assemble",
    "disassemble",
    "Program",
    "ProgramBuilder",
    "Instruction",
    "encode",
    "decode",
    "FunctionalSimulator",
    "PipelineSimulator",
]
