"""Directed semi-random characterisation program generator (paper Fig. 2).

The characterisation flow needs programs that (a) exercise every
instruction timing class often enough to clear the extraction's occurrence
threshold, and (b) *provably excite each class's worst-case paths* so the
extracted LUT converges to the true dynamic worst case.  Purely random
programs do neither reliably — hence "directed semi-random": a random
instruction mix is interleaved with per-class worst-pattern idioms (e.g.
all-ones multiplier operands, carry-propagating adds, high-address memory
accesses) and guaranteed-taken control transfers of every kind.

The generated program is plain OR1K assembly and runs on both simulators.
"""

from functools import lru_cache

from repro.asm import assemble
from repro.utils.rng import RngStream

#: Registers reserved by the generator (never used as destinations).
_REG_SCRATCH_BASE = 20     # scratch memory base
_REG_HIGH_BASE = 21        # 0xFFFFFFF0 — worst-case address pattern
_REG_ALL_ONES = 22         # 0xFFFFFFFF
_REG_ONE = 23              # constant 1 (worst-case divisor)
_REG_REPEAT = 31           # outer repeat counter

_GP_REGS = list(range(2, 16))    # general destinations/sources

#: Random-mix weights (loosely after embedded instruction mixes).
_MIX = [
    ("l.add", 10), ("l.addi", 14), ("l.sub", 3),
    ("l.and", 3), ("l.andi", 3), ("l.or", 3), ("l.ori", 3),
    ("l.xor", 3), ("l.xori", 2),
    ("l.sll", 2), ("l.slli", 3), ("l.srl", 2), ("l.srli", 2),
    ("l.sra", 1), ("l.srai", 1), ("l.ror", 1), ("l.rori", 1),
    ("l.mul", 3), ("l.muli", 1), ("l.mulu", 1),
    ("l.lwz", 8), ("l.lbz", 2), ("l.lbs", 1), ("l.lhz", 2), ("l.lhs", 1),
    ("l.sw", 5), ("l.sb", 1), ("l.sh", 1),
    ("l.movhi", 2), ("l.cmov", 1),
    ("l.exths", 1), ("l.extbs", 1), ("l.exthz", 1), ("l.extbz", 1),
    ("l.ff1", 1),
    ("l.sfeq", 1), ("l.sfne", 1), ("l.sfgts", 1), ("l.sfltu", 1),
    ("l.sfgtsi", 1), ("l.sfltui", 1),
    ("l.nop", 3),
]

_SCRATCH_WORDS = 64


class _Emitter:
    def __init__(self):
        self.lines = []
        self._label_index = 0

    def emit(self, text):
        self.lines.append(f"    {text}")

    def label(self, prefix="gl"):
        name = f"{prefix}_{self._label_index}"
        self._label_index += 1
        return name

    def place(self, name):
        self.lines.append(f"{name}:")

    def source(self):
        return "\n".join(self.lines)


def _emit_prologue(out, repeats):
    out.place("start")
    out.emit(f"l.movhi r{_REG_SCRATCH_BASE}, hi(scratch)")
    out.emit(f"l.ori   r{_REG_SCRATCH_BASE}, r{_REG_SCRATCH_BASE}, lo(scratch)")
    out.emit(f"l.movhi r{_REG_HIGH_BASE}, 0xffff")
    out.emit(f"l.ori   r{_REG_HIGH_BASE}, r{_REG_HIGH_BASE}, 0xfff0")
    out.emit(f"l.movhi r{_REG_ALL_ONES}, 0xffff")
    out.emit(f"l.ori   r{_REG_ALL_ONES}, r{_REG_ALL_ONES}, 0xffff")
    out.emit(f"l.addi  r{_REG_ONE}, r0, 1")
    out.emit(f"l.addi  r{_REG_REPEAT}, r0, {repeats}")
    for index, reg in enumerate(_GP_REGS):
        out.emit(f"l.addi  r{reg}, r0, {(index * 1237 + 11) % 4000}")
    out.place("outer_loop")


def _emit_epilogue(out):
    out.emit(f"l.addi  r{_REG_REPEAT}, r{_REG_REPEAT}, -1")
    out.emit(f"l.sfgtsi r{_REG_REPEAT}, 0")
    out.emit("l.bf    outer_loop")
    out.emit("l.nop")
    out.emit("l.nop   0x1")
    out.emit("l.nop")
    out.emit("l.nop")
    out.lines.append(".data")
    out.place("scratch")
    out.emit(f".space {_SCRATCH_WORDS * 4}")


def _worst_pattern_idioms(out):
    """Emit one worst-case excitation per timing class (directed part).

    These idioms make the extracted LUT converge to the profile's true
    per-class worst cases (see repro.timing.excitation.is_worst_pattern).
    """
    ones = f"r{_REG_ALL_ONES}"
    high = f"r{_REG_HIGH_BASE}"
    out.emit(f"l.add   r5, {ones}, {ones}")      # full carry chain
    out.emit(f"l.addi  r6, {ones}, -1")
    out.emit(f"l.sub   r7, {ones}, {ones}")
    out.emit(f"l.and   r5, {ones}, {ones}")
    out.emit(f"l.andi  r6, {ones}, 0xffff")
    out.emit(f"l.or    r7, {ones}, {ones}")
    out.emit(f"l.xor   r5, {ones}, {ones}")
    out.emit(f"l.xori  r6, {ones}, -1")
    out.emit(f"l.sll   r7, {ones}, r{_REG_ONE}")
    out.emit(f"l.slli  r5, {ones}, 31")
    out.emit(f"l.srl   r6, {ones}, r{_REG_ONE}")
    out.emit(f"l.srli  r7, {ones}, 31")
    out.emit(f"l.sra   r5, {ones}, r{_REG_ONE}")
    out.emit(f"l.srai  r6, {ones}, 31")
    out.emit(f"l.ror   r7, {ones}, r{_REG_ONE}")
    out.emit(f"l.rori  r5, {ones}, 13")
    out.emit(f"l.mul   r6, {ones}, {ones}")      # worst multiplier operands
    out.emit(f"l.muli  r7, {ones}, -1")
    out.emit(f"l.mulu  r5, {ones}, {ones}")
    out.emit(f"l.div   r6, {ones}, r{_REG_ONE}") # longest divider sequence
    out.emit(f"l.divu  r7, {ones}, r{_REG_ONE}")
    out.emit(f"l.lwz   r5, 0({high})")           # worst-case address lines
    out.emit(f"l.lbz   r6, 1({high})")
    out.emit(f"l.lhz   r7, 2({high})")
    out.emit(f"l.sw    4({high}), {ones}")
    out.emit(f"l.sb    8({high}), {ones}")
    out.emit(f"l.sh    10({high}), {ones}")
    out.emit(f"l.sfeq  {ones}, {ones}")
    out.emit(f"l.sfgtu {ones}, {ones}")
    out.emit("l.movhi r5, 0xffff")
    out.emit(f"l.cmov  r6, {ones}, {ones}")
    out.emit(f"l.exths r7, {ones}")
    out.emit(f"l.extbz r5, {ones}")
    out.emit(f"l.ff1   r6, {ones}")
    # guaranteed-taken control transfers of every kind
    taken_bf = out.label("bf")
    out.emit("l.sfeq  r0, r0")                   # flag := 1
    out.emit(f"l.bf    {taken_bf}")
    out.emit("l.nop")
    out.place(taken_bf)
    taken_bnf = out.label("bnf")
    out.emit("l.sfne  r0, r0")                   # flag := 0
    out.emit(f"l.bnf   {taken_bnf}")
    out.emit("l.nop")
    out.place(taken_bnf)
    target_j = out.label("j")
    out.emit(f"l.j     {target_j}")
    out.emit("l.nop")
    out.place(target_j)
    target_jal = out.label("jal")
    out.emit(f"l.jal   {target_jal}")
    out.emit("l.nop")
    out.place(target_jal)
    target_jr = out.label("jr")
    out.emit(f"l.movhi r7, hi({target_jr})")
    out.emit(f"l.ori   r7, r7, lo({target_jr})")
    out.emit("l.jr    r7")
    out.emit("l.nop")
    out.place(target_jr)
    target_jalr = out.label("jalr")
    out.emit(f"l.movhi r7, hi({target_jalr})")
    out.emit(f"l.ori   r7, r7, lo({target_jalr})")
    out.emit("l.jalr  r7")
    out.emit("l.nop")
    out.place(target_jalr)


def _random_instruction(out, rng):
    weights = [w for _, w in _MIX]
    total = sum(weights)
    probabilities = [w / total for w in weights]
    mnemonic = rng.choice([m for m, _ in _MIX], p=probabilities)
    rd = rng.choice(_GP_REGS)
    ra = rng.choice(_GP_REGS + [_REG_ALL_ONES])
    rb = rng.choice(_GP_REGS + [_REG_ALL_ONES])

    if mnemonic in ("l.lwz", "l.sw"):
        offset = 4 * rng.integers(0, _SCRATCH_WORDS)
        if mnemonic == "l.lwz":
            out.emit(f"l.lwz   r{rd}, {offset}(r{_REG_SCRATCH_BASE})")
        else:
            out.emit(f"l.sw    {offset}(r{_REG_SCRATCH_BASE}), r{rb}")
    elif mnemonic in ("l.lhz", "l.lhs", "l.sh"):
        offset = 2 * rng.integers(0, 2 * _SCRATCH_WORDS)
        if mnemonic == "l.sh":
            out.emit(f"l.sh    {offset}(r{_REG_SCRATCH_BASE}), r{rb}")
        else:
            out.emit(f"{mnemonic} r{rd}, {offset}(r{_REG_SCRATCH_BASE})")
    elif mnemonic in ("l.lbz", "l.lbs", "l.sb"):
        offset = rng.integers(0, 4 * _SCRATCH_WORDS)
        if mnemonic == "l.sb":
            out.emit(f"l.sb    {offset}(r{_REG_SCRATCH_BASE}), r{rb}")
        else:
            out.emit(f"{mnemonic} r{rd}, {offset}(r{_REG_SCRATCH_BASE})")
    elif mnemonic in ("l.slli", "l.srli", "l.srai", "l.rori"):
        out.emit(f"{mnemonic} r{rd}, r{ra}, {rng.integers(0, 32)}")
    elif mnemonic in ("l.addi", "l.muli", "l.xori"):
        out.emit(f"{mnemonic} r{rd}, r{ra}, {rng.integers(-2048, 2048)}")
    elif mnemonic in ("l.andi", "l.ori"):
        out.emit(f"{mnemonic} r{rd}, r{ra}, {rng.integers(0, 65536)}")
    elif mnemonic == "l.movhi":
        out.emit(f"l.movhi r{rd}, {rng.integers(0, 65536)}")
    elif mnemonic in ("l.exths", "l.extbs", "l.exthz", "l.extbz", "l.ff1"):
        out.emit(f"{mnemonic} r{rd}, r{ra}")
    elif mnemonic in ("l.sfgtsi", "l.sfltui"):
        imm = rng.integers(0, 2048)
        out.emit(f"{mnemonic} r{ra}, {imm}")
    elif mnemonic in ("l.sfeq", "l.sfne", "l.sfgts", "l.sfltu"):
        out.emit(f"{mnemonic} r{ra}, r{rb}")
    elif mnemonic == "l.nop":
        out.emit("l.nop")
    else:   # three-register ALU forms
        out.emit(f"{mnemonic} r{rd}, r{ra}, r{rb}")


def _random_skip_branch(out, rng):
    """A data-dependent conditional branch over a couple of instructions."""
    label = out.label("skip")
    ra = rng.choice(_GP_REGS)
    out.emit(f"l.sfgtsi r{ra}, {rng.integers(0, 4000)}")
    out.emit(f"{'l.bf' if rng.uniform() < 0.5 else 'l.bnf'}    {label}")
    out.emit("l.nop")
    for _ in range(rng.integers(1, 4)):
        _random_instruction(out, rng)
    out.place(label)


def generate_characterization_source(seed=1, length=1200, repeats=3):
    """Generate the assembly text of a characterisation program.

    Parameters
    ----------
    seed:
        Generator seed (deterministic output).
    length:
        Approximate number of random-mix instructions per repeat block.
    repeats:
        Outer-loop count: the same static code runs ``repeats`` times with
        evolving register contents, multiplying dynamic coverage.
    """
    rng = RngStream(f"chargen/{seed}", root_seed=0xC0FFEE ^ seed)
    out = _Emitter()
    _emit_prologue(out, repeats)
    emitted = 0
    while emitted < length:
        # a directed idiom burst roughly every 120 random instructions
        if emitted % 120 == 0:
            _worst_pattern_idioms(out)
        if rng.uniform() < 0.08:
            _random_skip_branch(out, rng)
            emitted += 3
        else:
            _random_instruction(out, rng)
            emitted += 1
    _emit_epilogue(out)
    return out.source()


@lru_cache(maxsize=64)
def generate_characterization_program(seed=1, length=1200, repeats=3):
    """Generate and assemble a characterisation program.

    Generation is deterministic in its arguments, so the assembled
    ``Program`` is memoised per process — the same sharing contract as
    ``Kernel.program()`` (callers must not mutate the image).
    """
    source = generate_characterization_source(
        seed=seed, length=length, repeats=repeats
    )
    return assemble(source, name=f"chargen-{seed}")


def stream_seed(seed, index):
    """Per-segment seed for :func:`program_stream` (deterministic, stable).

    A splitmix-style integer mix so consecutive stream indices land on
    well-separated generator seeds instead of ``seed + index`` (which would
    alias neighbouring streams).
    """
    z = (int(seed) * 0x9E3779B97F4A7C15 + int(index) + 1) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return (z ^ (z >> 31)) & 0x7FFFFFFF


def program_stream(seed=1, *, length=1200, repeats=3, unique=None, count=None):
    """Seeded stream of assembled characterisation programs.

    Yields ``generate_characterization_program`` outputs whose segment
    seeds are derived deterministically from ``(seed, index)`` — the same
    ``seed`` always produces the same program sequence, so streaming runs
    are replayable and a finite prefix can be re-materialised for
    offline-equivalence checks.

    Parameters
    ----------
    seed:
        Stream seed; every segment seed derives from it via
        :func:`stream_seed`.
    length / repeats:
        Forwarded to :func:`generate_characterization_program`.
    unique:
        When set, only ``unique`` distinct programs are generated and the
        stream loops over them (``index % unique``) — multi-million-cycle
        workloads without unbounded assembly work, and all segments stay
        inside the memoisation caches.  ``None`` draws a fresh program
        per segment, bypassing the ``lru_cache`` entirely: an unbounded
        stream of unique programs must not accumulate cache entries.
    count:
        Total number of programs to yield; ``None`` streams forever.
    """
    if unique is not None and unique < 1:
        raise ValueError("unique must be >= 1")
    if count is not None and count < 0:
        raise ValueError("count must be >= 0")
    index = 0
    generate = (generate_characterization_program if unique is not None
                else generate_characterization_program.__wrapped__)
    while count is None or index < count:
        position = index if unique is None else index % unique
        yield generate(
            seed=stream_seed(seed, position), length=length, repeats=repeats
        )
        index += 1
