"""Kernel registry.

Every kernel is a :class:`Kernel`: OR1K assembly source, a pure-Python
golden reference producing the expected architectural results, and mix
metadata.  The test suite assembles each kernel, co-simulates the
functional ISS against the cycle-accurate pipeline, and checks both against
the golden reference.
"""

from dataclasses import dataclass, field

from repro.asm import assemble

#: Register that kernels leave their primary result in (OR1K ABI rv).
RESULT_REGISTER = 11


@dataclass
class Kernel:
    """One benchmark kernel.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"crc32"``.
    source:
        OR1K assembly text (must halt with ``l.nop 0x1``).
    expected_regs:
        Register index -> expected value at halt.
    description:
        One-line description for reports.
    category:
        Mix category: ``"alu"``, ``"mul"``, ``"memory"``, ``"control"``,
        ``"mixed"``.
    """

    name: str
    source: str
    expected_regs: dict
    description: str = ""
    category: str = "mixed"
    _program: object = field(default=None, repr=False)

    def program(self):
        """Assemble (cached) into a Program."""
        if self._program is None:
            self._program = assemble(self.source, name=self.name)
        return self._program

    def verify_state(self, state):
        """Raise AssertionError if the architectural state mismatches."""
        for reg, expected in self.expected_regs.items():
            actual = state.regs[reg]
            if actual != expected & 0xFFFFFFFF:
                raise AssertionError(
                    f"kernel {self.name}: r{reg} = {actual:#010x}, "
                    f"expected {expected & 0xFFFFFFFF:#010x}"
                )
        return True


_REGISTRY = {}


def register(kernel):
    if kernel.name in _REGISTRY:
        raise ValueError(f"kernel {kernel.name!r} already registered")
    _REGISTRY[kernel.name] = kernel
    return kernel


def get_kernel(name):
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_kernels():
    """All registered kernels, sorted by name."""
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


_LOADED = False


def _ensure_loaded():
    """Import all kernel modules (they register themselves)."""
    global _LOADED
    if _LOADED:
        return
    from repro.workloads.kernels import (  # noqa: F401
        bits,
        crc,
        fib,
        gcd,
        histogram,
        matmult,
        memops,
        primes,
        search,
        signal,
        sort,
        statemachine,
    )
    from repro.workloads import coremark  # noqa: F401
    _LOADED = True
