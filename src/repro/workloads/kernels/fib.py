"""Fibonacci kernel (BEEBS ``fibcall`` flavour): adder-dominated.

The loop-closing branch carries the second move in its delay slot, so the
steady-state loop has no wasted issue slots.
"""

from repro.workloads.kernels import Kernel, register

_N = 40


def fib_reference(n):
    if n % 2:
        raise ValueError("kernel unrolls two steps per iteration; n must be even")
    a, b = 0, 1
    for _ in range(n):
        a, b = b, (a + b) & 0xFFFFFFFF
    return a


_SOURCE = f"""
# fib: iterative Fibonacci({_N}) (mod 2^32)
start:
    l.addi  r3, r0, 0          # a
    l.addi  r4, r0, 1          # b
    l.addi  r5, r0, {_N}       # iterations
loop:
    l.add   r3, r3, r4         # two reference steps per iteration:
    l.addi  r5, r5, -2         #   a += b ; b += a
    l.sfgtsi r5, 0
    l.bf    loop
    l.add   r4, r4, r3         # delay slot: b += a
    l.or    r11, r3, r3
    l.nop   0x1
    l.nop
    l.nop
"""

register(Kernel(
    name="fib",
    source=_SOURCE,
    expected_regs={11: fib_reference(_N)},
    description=f"Iterative Fibonacci({_N})",
    category="alu",
))
