"""Bit-manipulation kernels: SWAR population count and bit reversal.

``countbits`` uses the classic branchless SWAR reduction (as any optimised
popcount does); ``bitrev`` keeps a 4x-unrolled shift loop.  Both are
dominated by the fast shift/logic classes.
"""

from repro.workloads._asmutil import words_directive
from repro.workloads.kernels import Kernel, register

_WORDS = [((0x9E3779B9 * (i + 1)) ^ (i << 13)) & 0xFFFFFFFF for i in range(16)]


def popcount_reference(words):
    return sum(bin(w & 0xFFFFFFFF).count("1") for w in words)


def bitrev_checksum_reference(words):
    total = 0
    for w in words:
        rev = int(f"{w & 0xFFFFFFFF:032b}"[::-1], 2)
        total = (total + rev) & 0xFFFFFFFF
    return total


_POPCOUNT_SOURCE = f"""
# countbits: SWAR population count of {len(_WORDS)} words
start:
    l.movhi r2, hi(data)
    l.ori   r2, r2, lo(data)
    l.addi  r3, r0, {len(_WORDS)}
    l.addi  r11, r0, 0
    # SWAR constants
    l.movhi r13, 0x5555
    l.ori   r13, r13, 0x5555
    l.movhi r14, 0x3333
    l.ori   r14, r14, 0x3333
    l.movhi r15, 0x0f0f
    l.ori   r15, r15, 0x0f0f
    l.movhi r12, 0x0101
    l.ori   r12, r12, 0x0101
word_loop:
    l.lwz   r4, 0(r2)
    # v -= (v >> 1) & 0x55555555
    l.srli  r5, r4, 1
    l.and   r5, r5, r13
    l.sub   r4, r4, r5
    # v = (v & 0x33333333) + ((v >> 2) & 0x33333333)
    l.and   r7, r4, r14
    l.srli  r4, r4, 2
    l.and   r4, r4, r14
    l.add   r4, r7, r4
    # v = (v + (v >> 4)) & 0x0f0f0f0f
    l.srli  r5, r4, 4
    l.add   r4, r4, r5
    l.and   r4, r4, r15
    # count = (v * 0x01010101) >> 24
    l.mul   r4, r4, r12
    l.srli  r4, r4, 24
    l.add   r11, r11, r4
    l.addi  r3, r3, -1
    l.sfgtsi r3, 0
    l.bf    word_loop
    l.addi  r2, r2, 4          # delay slot: next word
    l.nop   0x1
    l.nop
    l.nop
.data
data:
{words_directive(_WORDS)}
"""

_BITREV_STEP = """\
    l.slli  r5, r5, 1
    l.andi  r7, r4, 1
    l.or    r5, r5, r7
    l.srli  r4, r4, 1
"""

_BITREV_SOURCE = f"""
# bitrev: reverse the bits of each word (4x unrolled), sum the results
start:
    l.movhi r2, hi(data)
    l.ori   r2, r2, lo(data)
    l.addi  r3, r0, {len(_WORDS)}
    l.addi  r11, r0, 0
word_loop:
    l.lwz   r4, 0(r2)
    l.addi  r5, r0, 0          # reversed accumulator
    l.addi  r6, r0, 8          # groups of 4 bits
bit_loop:
{_BITREV_STEP * 3}\
    l.slli  r5, r5, 1
    l.andi  r7, r4, 1
    l.or    r5, r5, r7
    l.addi  r6, r6, -1
    l.sfgtsi r6, 0
    l.bf    bit_loop
    l.srli  r4, r4, 1          # delay slot: final shift of the group
    l.add   r11, r11, r5
    l.addi  r3, r3, -1
    l.sfgtsi r3, 0
    l.bf    word_loop
    l.addi  r2, r2, 4          # delay slot
    l.nop   0x1
    l.nop
    l.nop
.data
data:
{words_directive(_WORDS)}
"""

register(Kernel(
    name="countbits",
    source=_POPCOUNT_SOURCE,
    expected_regs={11: popcount_reference(_WORDS)},
    description="Branchless SWAR popcount over 16 words",
    category="alu",
))

register(Kernel(
    name="bitrev",
    source=_BITREV_SOURCE,
    expected_regs={11: bitrev_checksum_reference(_WORDS)},
    description="Bit reversal checksum over 16 words (4x unrolled)",
    category="alu",
))
