"""GCD kernel: exercises the serial divider (multi-cycle EX occupancy).

Euclid's algorithm with explicit division/remainder
(``r = a - (a / b) * b``) so the 32-cycle serial divider — and the
pipeline stalls it causes — appear in a benchmark, not only in the
characterisation programs.
"""

from repro.workloads._asmutil import words_directive
from repro.workloads.kernels import Kernel, register

_PAIRS = [
    (2 * 3 * 5 * 7 * 11, 3 * 5 * 13),
    (987654, 123456),
    (1071, 462),
    (270, 192),
    (1 << 20, 48),
    (99991, 7),          # coprime
    (240, 46),
    (600851, 6857),
]


def gcd_reference(pairs):
    total = 0
    for a, b in pairs:
        while b:
            a, b = b, a % b
        total = (total + a) & 0xFFFFFFFF
    return total


_SOURCE = f"""
# gcd: Euclid with explicit divide/multiply/subtract remainder
start:
    l.movhi r2, hi(pairs)
    l.ori   r2, r2, lo(pairs)
    l.addi  r3, r0, {len(_PAIRS)}
    l.addi  r11, r0, 0
pair_loop:
    l.lwz   r4, 0(r2)              # a
    l.lwz   r5, 4(r2)              # b
gcd_loop:
    l.sfeqi r5, 0
    l.bf    pair_done
    l.nop
    l.divu  r6, r4, r5             # q = a / b  (serial divider)
    l.mul   r7, r6, r5             # q * b
    l.sub   r7, r4, r7             # r = a - q*b
    l.or    r4, r5, r5             # a = b
    l.j     gcd_loop
    l.or    r5, r7, r7             # delay slot: b = r
pair_done:
    l.add   r11, r11, r4
    l.addi  r2, r2, 8
    l.addi  r3, r3, -1
    l.sfgtsi r3, 0
    l.bf    pair_loop
    l.nop
    l.nop   0x1
    l.nop
    l.nop
.data
pairs:
{words_directive([v for pair in _PAIRS for v in pair])}
"""

register(Kernel(
    name="gcd",
    source=_SOURCE,
    expected_regs={11: gcd_reference(_PAIRS)},
    description=f"Euclid's GCD over {len(_PAIRS)} pairs (serial divider)",
    category="mul",
))
