"""Search kernels: binary search and naive substring search.

Delay slots carry the next comparison or the next pointer update, the way
the OpenRISC GCC port schedules them.
"""

from repro.workloads._asmutil import pack_words_be, words_directive
from repro.workloads.kernels import Kernel, register

_TABLE = sorted({(i * i * 7 + 3 * i) % 4096 for i in range(80)})[:32]
_KEYS = [_TABLE[3], 5, _TABLE[17], _TABLE[0], 4095, _TABLE[31],
         _TABLE[8], 1, _TABLE[25], 2047, _TABLE[12], _TABLE[29],
         9, _TABLE[20], _TABLE[5], 4000]


def binarysearch_reference(table, keys):
    """Replicates the kernel's loop exactly: sum of (mid+1) for hits."""
    total = 0
    for key in keys:
        lo, hi = 0, len(table)
        while lo < hi:
            mid = (lo + hi) >> 1
            if table[mid] == key:
                total = (total + mid + 1) & 0xFFFFFFFF
                break
            if table[mid] < key:
                lo = mid + 1
            else:
                hi = mid
    return total


_PATTERN = b"ORK"
_TEXT = (
    b"THE ORK WORKS IN AN ORKISH WAY; FORKS AND ORKS NETWORK, "
    b"BUT NO ORC."
)


def strsearch_reference(text, pattern):
    count = 0
    for i in range(len(text) - len(pattern) + 1):
        if text[i:i + len(pattern)] == pattern:
            count += 1
    return count


_BINSEARCH_SOURCE = f"""
# binarysearch: {len(_KEYS)} probes into a {len(_TABLE)}-entry sorted table
start:
    l.movhi r2, hi(table)
    l.ori   r2, r2, lo(table)
    l.movhi r3, hi(keys)
    l.ori   r3, r3, lo(keys)
    l.addi  r4, r0, {len(_KEYS)}
    l.addi  r11, r0, 0
key_loop:
    l.lwz   r5, 0(r3)
    l.addi  r6, r0, 0                 # lo
    l.addi  r7, r0, {len(_TABLE)}     # hi (exclusive)
search_loop:
    l.sfltu r6, r7
    l.bnf   not_found
    l.add   r8, r6, r7                # delay slot: lo + hi (stale on exit)
    l.srli  r8, r8, 1                 # mid
    l.slli  r9, r8, 2
    l.add   r9, r9, r2
    l.lwz   r10, 0(r9)
    l.sfeq  r10, r5
    l.bf    found
    l.sfltu r10, r5                   # delay slot: prepare direction test
    l.bnf   go_left
    l.nop
    l.j     search_loop
    l.addi  r6, r8, 1                 # delay slot: lo = mid + 1
go_left:
    l.j     search_loop
    l.or    r7, r8, r8                # delay slot: hi = mid
found:
    l.addi  r8, r8, 1
    l.add   r11, r11, r8
not_found:
    l.addi  r4, r4, -1
    l.sfgtsi r4, 0
    l.bf    key_loop
    l.addi  r3, r3, 4                 # delay slot: next key
    l.nop   0x1
    l.nop
    l.nop
.data
table:
{words_directive(_TABLE)}
keys:
{words_directive(_KEYS)}
"""

_STRSEARCH_SOURCE = f"""
# strsearch: count occurrences of a {len(_PATTERN)}-byte pattern
start:
    l.movhi r2, hi(text)
    l.ori   r2, r2, lo(text)
    l.addi  r4, r0, 0                  # position i
    l.addi  r11, r0, 0                 # match count
    l.or    r5, r2, r2                 # &text[0]
pos_loop:
    l.lbz   r6, 0(r5)
    l.sfeqi r6, {_PATTERN[0]}
    l.bnf   next
    l.lbz   r7, 1(r5)                  # delay slot: speculative load
    l.sfeqi r7, {_PATTERN[1]}
    l.bnf   next
    l.lbz   r8, 2(r5)                  # delay slot: speculative load
    l.sfeqi r8, {_PATTERN[2]}
    l.bnf   next
    l.nop
    l.addi  r11, r11, 1
next:
    l.addi  r4, r4, 1
    l.sflesi r4, {len(_TEXT) - len(_PATTERN)}
    l.bf    pos_loop
    l.add   r5, r2, r4                 # delay slot: next position pointer
    l.nop   0x1
    l.nop
    l.nop
.data
text:
{words_directive(pack_words_be(_TEXT))}
"""

register(Kernel(
    name="binarysearch",
    source=_BINSEARCH_SOURCE,
    expected_regs={11: binarysearch_reference(_TABLE, _KEYS)},
    description="Binary search probes into a sorted table",
    category="control",
))

register(Kernel(
    name="strsearch",
    source=_STRSEARCH_SOURCE,
    expected_regs={11: strsearch_reference(_TEXT, _PATTERN)},
    description="Naive substring search over a text buffer",
    category="control",
))
