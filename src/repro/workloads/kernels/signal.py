"""Signal-processing kernels: dot product and FIR filter (multiplier mix)."""

from repro.workloads._asmutil import words_directive
from repro.workloads.kernels import Kernel, register

_VEC_LEN = 32
_VEC_A = [((3 * i + 7) * 97) % 8191 for i in range(_VEC_LEN)]
_VEC_B = [((5 * i + 1) * 131) % 8191 for i in range(_VEC_LEN)]

_FIR_TAPS = [3, -5, 12, 27, 27, 12, -5, 3]
_FIR_SAMPLES = [((11 * i) % 257) - 128 for i in range(40)]


def dotprod_reference(a, b):
    total = 0
    for x, y in zip(a, b):
        total = (total + x * y) & 0xFFFFFFFF
    return total


def fir_reference(samples, taps):
    """Checksum of the filtered output for n in [len(taps)-1, len(samples))."""
    checksum = 0
    for n in range(len(taps) - 1, len(samples)):
        acc = 0
        for k, tap in enumerate(taps):
            acc = (acc + tap * samples[n - k]) & 0xFFFFFFFF
        checksum = (checksum + acc) & 0xFFFFFFFF
    return checksum


_DOTPROD_SOURCE = f"""
# dotprod: {_VEC_LEN}-element integer dot product
start:
    l.movhi r2, hi(vec_a)
    l.ori   r2, r2, lo(vec_a)
    l.movhi r3, hi(vec_b)
    l.ori   r3, r3, lo(vec_b)
    l.addi  r4, r0, {_VEC_LEN}
    l.addi  r11, r0, 0
loop:
    l.lwz   r5, 0(r2)            # 2x unrolled, loads scheduled early
    l.lwz   r6, 0(r3)
    l.lwz   r8, 4(r2)
    l.mul   r7, r5, r6
    l.lwz   r9, 4(r3)
    l.add   r11, r11, r7
    l.mul   r7, r8, r9
    l.add   r11, r11, r7
    l.addi  r2, r2, 8
    l.addi  r4, r4, -2
    l.sfgtsi r4, 0
    l.bf    loop
    l.addi  r3, r3, 8            # delay slot: advance second vector
    l.nop   0x1
    l.nop
    l.nop
.data
vec_a:
{words_directive(_VEC_A)}
vec_b:
{words_directive(_VEC_B)}
"""

_FIR_SOURCE = f"""
# fir: {len(_FIR_TAPS)}-tap FIR over {len(_FIR_SAMPLES)} samples
start:
    l.movhi r2, hi(samples)
    l.ori   r2, r2, lo(samples)
    l.movhi r3, hi(taps)
    l.ori   r3, r3, lo(taps)
    l.addi  r4, r0, {len(_FIR_TAPS) - 1}   # n
    l.addi  r11, r0, 0
n_loop:
    l.addi  r6, r0, 0                      # acc
    l.slli  r7, r4, 2
    l.add   r7, r7, r2                     # x cursor: &x[n], walks down
    l.or    r9, r3, r3                     # h cursor: &h[0], walks up
    l.addi  r5, r0, {len(_FIR_TAPS)}       # taps remaining
k_loop:
    l.lwz   r8, 0(r7)                      # 2x unrolled tap pairs,
    l.lwz   r10, 0(r9)                     # loads scheduled early
    l.lwz   r13, -4(r7)
    l.mul   r12, r8, r10
    l.lwz   r14, 4(r9)
    l.add   r6, r6, r12
    l.mul   r12, r13, r14
    l.add   r6, r6, r12
    l.addi  r7, r7, -8
    l.addi  r5, r5, -2
    l.sfgtsi r5, 0
    l.bf    k_loop
    l.addi  r9, r9, 8                      # delay slot: next tap pair
    l.add   r11, r11, r6
    l.addi  r4, r4, 1
    l.sfltsi r4, {len(_FIR_SAMPLES)}
    l.bf    n_loop
    l.nop
    l.nop   0x1
    l.nop
    l.nop
.data
samples:
{words_directive([s & 0xFFFFFFFF for s in _FIR_SAMPLES])}
taps:
{words_directive([t & 0xFFFFFFFF for t in _FIR_TAPS])}
"""

register(Kernel(
    name="dotprod",
    source=_DOTPROD_SOURCE,
    expected_regs={11: dotprod_reference(_VEC_A, _VEC_B)},
    description=f"{_VEC_LEN}-element integer dot product",
    category="mul",
))

register(Kernel(
    name="fir",
    source=_FIR_SOURCE,
    expected_regs={11: fir_reference(_FIR_SAMPLES, _FIR_TAPS)},
    description=f"{len(_FIR_TAPS)}-tap FIR filter",
    category="mul",
))
