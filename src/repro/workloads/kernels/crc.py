"""CRC kernels (BEEBS ``crc32`` flavour): shift/xor/logic heavy.

The eight bit-steps per byte are fully unrolled with the branchless mask
idiom a compiler emits at -O3 (``mask = -(crc & 1); crc = (crc >> 1) ^
(poly & mask)``), so the steady state is almost pure logic/shift work —
the lightest multiplier usage of the suite.
"""

from repro.workloads._asmutil import pack_words_be, words_directive
from repro.workloads.kernels import Kernel, register

_CRC32_POLY = 0xEDB88320
_CRC16_POLY = 0xA001

#: Input message (64 bytes of text-like data).
_MESSAGE = bytes(
    (37 * i + 11) & 0xFF for i in range(64)
)


def crc32_reference(data):
    """Bitwise CRC-32 (reflected, poly 0xEDB88320)."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _CRC32_POLY
            else:
                crc >>= 1
    return crc ^ 0xFFFFFFFF


def crc16_reference(data):
    """Bitwise CRC-16/ARC (poly 0xA001)."""
    crc = 0
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _CRC16_POLY
            else:
                crc >>= 1
    return crc


_BIT_STEP = """\
    l.andi  r8, r4, 1
    l.sub   r9, r0, r8                  # mask = -(crc & 1)
    l.and   r10, r5, r9                 # poly & mask
    l.srli  r4, r4, 1
    l.xor   r4, r4, r10
"""


def _crc_body(poly, init_lines, final_lines):
    return f"""
start:
    l.movhi r2, hi(data)
    l.ori   r2, r2, lo(data)
    l.addi  r3, r0, {len(_MESSAGE)}     # remaining bytes
{init_lines}
    l.movhi r5, hi({poly:#x})
    l.ori   r5, r5, lo({poly:#x})
byte_loop:
    l.lbz   r6, 0(r2)
    l.xor   r4, r4, r6
{_BIT_STEP * 8}
    l.addi  r3, r3, -1
    l.sfgtsi r3, 0
    l.bf    byte_loop
    l.addi  r2, r2, 1                   # delay slot: advance byte pointer
{final_lines}
    l.nop   0x1
    l.nop
    l.nop
.data
data:
{words_directive(pack_words_be(_MESSAGE))}
"""


_CRC32_SOURCE = "# crc32: unrolled branchless CRC-32" + _crc_body(
    _CRC32_POLY,
    "    l.movhi r4, 0xffff\n    l.ori   r4, r4, 0xffff",
    "    l.xori  r11, r4, -1                 # final inversion",
)

_CRC16_SOURCE = "# crc16: unrolled branchless CRC-16/ARC" + _crc_body(
    _CRC16_POLY,
    "    l.addi  r4, r0, 0",
    "    l.andi  r11, r4, 0xffff",
)

register(Kernel(
    name="crc32",
    source=_CRC32_SOURCE,
    expected_regs={11: crc32_reference(_MESSAGE)},
    description="Unrolled branchless CRC-32 over a 64-byte message",
    category="alu",
))

register(Kernel(
    name="crc16",
    source=_CRC16_SOURCE,
    expected_regs={11: crc16_reference(_MESSAGE)},
    description="Unrolled branchless CRC-16/ARC over a 64-byte message",
    category="alu",
))
