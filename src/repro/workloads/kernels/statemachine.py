"""State machine kernel (CoreMark's core_state flavour): compare/branch mix.

The branch delay slots pre-compute the next range test (flag writes in
delay slots are architecturally clean: the branch decision was made on the
previous flag), which is exactly how a delay-slot-aware compiler chains
comparison ladders.
"""

from repro.workloads._asmutil import pack_words_be, words_directive
from repro.workloads.kernels import Kernel, register

_INPUT = bytes((53 * i * i + 19 * i + 7) & 0xFF for i in range(64))


def statemachine_reference(data):
    """Replicates the kernel's transition rules exactly."""
    state = 0
    total = 0
    for byte in data:
        if byte < 64:
            state += 1
        elif byte < 128:
            state += 2
        elif byte < 192:
            state ^= 1
        else:
            state = 0
        state &= 3
        total = (total + state) & 0xFFFFFFFF
    return total


_SOURCE = f"""
# statemachine: 4-state FSM over {len(_INPUT)} input bytes
start:
    l.movhi r2, hi(input)
    l.ori   r2, r2, lo(input)
    l.addi  r3, r0, {len(_INPUT)}
    l.addi  r4, r0, 0            # state
    l.addi  r11, r0, 0
    l.lbz   r5, 0(r2)            # software-pipelined first byte
loop:
    l.sfltui r5, 64
    l.bnf   c2
    l.sfltui r5, 128             # delay slot: pre-compute next range test
    l.j     apply
    l.addi  r4, r4, 1            # delay slot: state += 1
c2:
    l.bnf   c3
    l.sfltui r5, 192             # delay slot: pre-compute next range test
    l.j     apply
    l.addi  r4, r4, 2            # delay slot: state += 2
c3:
    l.bnf   c4
    l.nop
    l.j     apply
    l.xori  r4, r4, 1            # delay slot: state ^= 1
c4:
    l.addi  r4, r0, 0            # reset state
apply:
    l.andi  r4, r4, 3
    l.add   r11, r11, r4
    l.addi  r2, r2, 1
    l.addi  r3, r3, -1
    l.sfgtsi r3, 0
    l.bf    loop
    l.lbz   r5, 0(r2)            # delay slot: fetch next byte
    l.nop   0x1
    l.nop
    l.nop
.data
input:
{words_directive(pack_words_be(_INPUT))}
"""

register(Kernel(
    name="statemachine",
    source=_SOURCE,
    expected_regs={11: statemachine_reference(_INPUT)},
    description="4-state FSM over a 64-byte input",
    category="control",
))
