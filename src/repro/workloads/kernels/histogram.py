"""Histogram kernel: byte loads with data-dependent indexed word updates.

A read-modify-write pattern (load byte -> compute bin address -> load
counter -> increment -> store) that stresses the load-use interlock and
the data-memory paths in both directions.
"""

from repro.workloads._asmutil import pack_words_be, words_directive
from repro.workloads.kernels import Kernel, register

_DATA = bytes((i * i * 31 + 7 * i + 3) & 0xFF for i in range(96))
_NUM_BINS = 16


def histogram_reference(data, num_bins):
    """Weighted checksum of the bin counts: sum(count[i] * (i+1))."""
    bins = [0] * num_bins
    for byte in data:
        bins[byte % num_bins] += 1
    checksum = 0
    for index, count in enumerate(bins):
        checksum = (checksum + count * (index + 1)) & 0xFFFFFFFF
    return checksum


_SOURCE = f"""
# histogram: bin {len(_DATA)} bytes into {_NUM_BINS} word counters
start:
    l.movhi r2, hi(data)
    l.ori   r2, r2, lo(data)
    l.movhi r3, hi(bins)
    l.ori   r3, r3, lo(bins)
    l.addi  r4, r0, {len(_DATA)}
bin_loop:
    l.lbz   r5, 0(r2)
    l.andi  r5, r5, {_NUM_BINS - 1}    # bin index (power-of-two bins)
    l.slli  r5, r5, 2
    l.add   r5, r5, r3                 # &bins[index]
    l.lwz   r6, 0(r5)
    l.addi  r4, r4, -1                 # scheduled between load and use
    l.addi  r6, r6, 1
    l.sw    0(r5), r6
    l.sfgtsi r4, 0
    l.bf    bin_loop
    l.addi  r2, r2, 1                  # delay slot: next byte
    # weighted checksum of the bins
    l.addi  r4, r0, {_NUM_BINS}
    l.addi  r7, r0, 1                  # weight
    l.addi  r11, r0, 0
sum_loop:
    l.lwz   r6, 0(r3)
    l.mul   r8, r6, r7
    l.add   r11, r11, r8
    l.addi  r7, r7, 1
    l.addi  r4, r4, -1
    l.sfgtsi r4, 0
    l.bf    sum_loop
    l.addi  r3, r3, 4                  # delay slot
    l.nop   0x1
    l.nop
    l.nop
.data
data:
{words_directive(pack_words_be(_DATA))}
bins:
    .space {_NUM_BINS * 4}
"""

register(Kernel(
    name="histogram",
    source=_SOURCE,
    expected_regs={11: histogram_reference(_DATA, _NUM_BINS)},
    description=f"Byte histogram into {_NUM_BINS} bins",
    category="memory",
))
