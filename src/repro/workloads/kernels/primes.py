"""Sieve of Eratosthenes (BEEBS ``prime`` flavour): byte stores + branches."""

from repro.workloads.kernels import Kernel, register

_LIMIT = 127            # sieve range [2, _LIMIT]
_SQRT_LIMIT = 11        # largest p with p*p <= _LIMIT


def primes_reference(limit):
    flags = [False] * (limit + 1)
    count = 0
    for p in range(2, limit + 1):
        if not flags[p]:
            count += 1
            for multiple in range(p * p, limit + 1, p):
                flags[multiple] = True
    return count


_SOURCE = f"""
# primes: sieve of Eratosthenes over [2, {_LIMIT}]
start:
    l.movhi r2, hi(flags)
    l.ori   r2, r2, lo(flags)
    l.addi  r3, r0, 2              # p
    l.add   r4, r2, r3             # &flags[p], software pipelined
outer:
    l.lbz   r5, 0(r4)
    l.sfnei r5, 0
    l.bf    next_p                 # already marked composite
    l.mul   r6, r3, r3             # delay slot: first multiple p*p
mark_loop:
    l.sfgtsi r6, {_LIMIT}
    l.bf    next_p
    l.add   r7, r2, r6             # delay slot: &flags[multiple]
    l.addi  r8, r0, 1
    l.sb    0(r7), r8
    l.j     mark_loop
    l.add   r6, r6, r3             # delay slot: next multiple
next_p:
    l.addi  r3, r3, 1
    l.sflesi r3, {_SQRT_LIMIT}
    l.bf    outer
    l.add   r4, r2, r3             # delay slot: next flags address
    # count unmarked entries in [2, {_LIMIT}]
    l.addi  r3, r0, 2
    l.addi  r11, r0, 0
    l.add   r4, r2, r3
count_loop:
    l.lbz   r5, 0(r4)
    l.sfnei r5, 0
    l.bf    not_prime
    l.addi  r3, r3, 1              # delay slot: advance on both paths
    l.addi  r11, r11, 1
not_prime:
    l.sflesi r3, {_LIMIT}
    l.bf    count_loop
    l.add   r4, r2, r3             # delay slot: next flags address
    l.nop   0x1
    l.nop
    l.nop
.data
flags:
    .space {_LIMIT + 1}
"""

register(Kernel(
    name="primes",
    source=_SOURCE,
    expected_regs={11: primes_reference(_LIMIT)},
    description=f"Prime sieve over [2, {_LIMIT}]",
    category="control",
))
