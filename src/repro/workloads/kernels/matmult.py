"""Integer matrix multiply (BEEBS ``matmult-int`` flavour): multiplier heavy.

The inner product loop keeps ``l.mul`` in the execute stage for a large
fraction of cycles, so this kernel sees the *smallest* speedup from
instruction-based clock adjustment — the multiplier's 1899 ps worst case is
close to the static limit.
"""

from repro.workloads._asmutil import words_directive
from repro.workloads.kernels import Kernel, register

_N = 6


def _matrix(seed):
    values = []
    state = seed
    for _ in range(_N * _N):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        values.append(state % 2000)
    return values


_MAT_A = _matrix(7)
_MAT_B = _matrix(23)


def matmult_reference(a, b, n):
    """C = A x B (row major, mod 2^32); returns the checksum of C."""
    checksum = 0
    for i in range(n):
        for j in range(n):
            acc = 0
            for k in range(n):
                acc = (acc + a[i * n + k] * b[k * n + j]) & 0xFFFFFFFF
            checksum = (checksum + acc) & 0xFFFFFFFF
    return checksum


_SOURCE = f"""
# matmult: {_N}x{_N} integer matrix multiply with result checksum
start:
    l.movhi r2, hi(mat_a)
    l.ori   r2, r2, lo(mat_a)
    l.movhi r3, hi(mat_b)
    l.ori   r3, r3, lo(mat_b)
    l.movhi r4, hi(mat_c)
    l.ori   r4, r4, lo(mat_c)
    l.addi  r11, r0, 0
    l.addi  r5, r0, 0            # i
i_loop:
    l.addi  r6, r0, 0            # j
j_loop:
    l.addi  r8, r0, 0            # acc
    l.addi  r7, r0, 0            # k
    l.slli  r9, r5, 4            # i*16
    l.slli  r10, r5, 3           # i*8
    l.add   r9, r9, r10          # i*24 = i * {_N} * 4
    l.add   r9, r9, r2           # &A[i][0]
    l.slli  r10, r6, 2
    l.add   r10, r10, r3         # &B[0][j]
k_loop:
    l.lwz   r12, 0(r9)           # 2x unrolled inner product,
    l.lwz   r13, 0(r10)          # loads scheduled ahead of multiplies
    l.lwz   r15, 4(r9)
    l.mul   r14, r12, r13
    l.lwz   r16, {_N * 4}(r10)
    l.add   r8, r8, r14
    l.mul   r14, r15, r16
    l.add   r8, r8, r14
    l.addi  r10, r10, {_N * 8}
    l.addi  r7, r7, 2
    l.sfltsi r7, {_N}
    l.bf    k_loop
    l.addi  r9, r9, 8            # delay slot: next A pair
    l.sw    0(r4), r8
    l.add   r11, r11, r8
    l.addi  r6, r6, 1
    l.sfltsi r6, {_N}
    l.bf    j_loop
    l.addi  r4, r4, 4            # delay slot: next C element
    l.addi  r5, r5, 1
    l.sfltsi r5, {_N}
    l.bf    i_loop
    l.nop
    l.nop   0x1
    l.nop
    l.nop
.data
mat_a:
{words_directive(_MAT_A)}
mat_b:
{words_directive(_MAT_B)}
mat_c:
    .space {_N * _N * 4}
"""

register(Kernel(
    name="matmult",
    source=_SOURCE,
    expected_regs={11: matmult_reference(_MAT_A, _MAT_B, _N)},
    description=f"{_N}x{_N} integer matrix multiply",
    category="mul",
))
