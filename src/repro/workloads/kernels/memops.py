"""Memory-streaming kernels: word copy and halfword swap."""

from repro.workloads._asmutil import words_directive
from repro.workloads.kernels import Kernel, register

_COPY_LEN = 48
_COPY_DATA = [((0xDEAD0000 ^ (i * 2654435761)) & 0xFFFFFFFF)
              for i in range(_COPY_LEN)]

_SWAP_LEN = 24
_SWAP_DATA = [((i * 40503 + 1) * 65537) & 0xFFFFFFFF for i in range(_SWAP_LEN)]


def memcpy_checksum_reference(data):
    total = 0
    for value in data:
        total = (total + value) & 0xFFFFFFFF
    return total


def halfswap_checksum_reference(data):
    total = 0
    for value in data:
        swapped = ((value & 0xFFFF) << 16) | (value >> 16)
        total = (total ^ swapped) & 0xFFFFFFFF
    return total


_MEMCPY_SOURCE = f"""
# memcpy: copy {_COPY_LEN} words, then checksum the destination
start:
    l.movhi r2, hi(src)
    l.ori   r2, r2, lo(src)
    l.movhi r3, hi(dst)
    l.ori   r3, r3, lo(dst)
    l.addi  r4, r0, {_COPY_LEN}
copy_loop:
    l.lwz   r5, 0(r2)            # 4x unrolled copy, loads scheduled
    l.lwz   r6, 4(r2)            # ahead of their stores (no load-use)
    l.lwz   r7, 8(r2)
    l.lwz   r8, 12(r2)
    l.sw    0(r3), r5
    l.sw    4(r3), r6
    l.sw    8(r3), r7
    l.sw    12(r3), r8
    l.addi  r2, r2, 16
    l.addi  r4, r4, -4
    l.sfgtsi r4, 0
    l.bf    copy_loop
    l.addi  r3, r3, 16           # delay slot: advance destination
    # checksum the copy
    l.movhi r3, hi(dst)
    l.ori   r3, r3, lo(dst)
    l.addi  r4, r0, {_COPY_LEN}
    l.addi  r11, r0, 0
sum_loop:
    l.lwz   r5, 0(r3)            # 4x unrolled reduction, loads paired
    l.lwz   r6, 4(r3)
    l.add   r11, r11, r5
    l.add   r11, r11, r6
    l.lwz   r7, 8(r3)
    l.lwz   r8, 12(r3)
    l.add   r11, r11, r7
    l.add   r11, r11, r8
    l.addi  r4, r4, -4
    l.sfgtsi r4, 0
    l.bf    sum_loop
    l.addi  r3, r3, 16           # delay slot
    l.nop   0x1
    l.nop
    l.nop
.data
src:
{words_directive(_COPY_DATA)}
dst:
    .space {_COPY_LEN * 4}
"""

_HALFSWAP_SOURCE = f"""
# halfswap: swap half-words of {_SWAP_LEN} words in place, xor checksum
start:
    l.movhi r2, hi(data)
    l.ori   r2, r2, lo(data)
    l.addi  r4, r0, {_SWAP_LEN}
    l.addi  r11, r0, 0
loop:
    l.lwz   r5, 0(r2)            # 2x unrolled, loads hoisted
    l.lwz   r8, 4(r2)
    l.slli  r6, r5, 16
    l.srli  r7, r5, 16
    l.or    r6, r6, r7
    l.sw    0(r2), r6
    l.xor   r11, r11, r6
    l.slli  r9, r8, 16
    l.srli  r10, r8, 16
    l.or    r9, r9, r10
    l.sw    4(r2), r9
    l.xor   r11, r11, r9
    l.addi  r4, r4, -2
    l.sfgtsi r4, 0
    l.bf    loop
    l.addi  r2, r2, 8            # delay slot
    l.nop   0x1
    l.nop
    l.nop
.data
data:
{words_directive(_SWAP_DATA)}
"""

register(Kernel(
    name="memcpy",
    source=_MEMCPY_SOURCE,
    expected_regs={11: memcpy_checksum_reference(_COPY_DATA)},
    description=f"Copy and checksum {_COPY_LEN} words",
    category="memory",
))

register(Kernel(
    name="halfswap",
    source=_HALFSWAP_SOURCE,
    expected_regs={11: halfswap_checksum_reference(_SWAP_DATA)},
    description=f"In-place half-word swap of {_SWAP_LEN} words",
    category="memory",
))
