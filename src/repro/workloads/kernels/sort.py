"""Sorting kernels (BEEBS ``bubblesort``/``insertsort``): memory + branches.

The bubble sort uses the branchless compare-and-swap a compiler emits with
conditional moves (``l.cmov``); the insertion sort keeps its data-dependent
inner branch (shift loop) with filled delay slots.
"""

from repro.workloads._asmutil import words_directive
from repro.workloads.kernels import Kernel, register

_N_BUBBLE = 24
_N_INSERT = 20


def _unsorted(count, seed):
    values = []
    state = seed
    for _ in range(count):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        values.append(state % 100_000)
    return values


_BUBBLE_DATA = _unsorted(_N_BUBBLE, 3)
_INSERT_DATA = _unsorted(_N_INSERT, 17)


def bubblesort_checksum_reference(values):
    """Weighted checksum sum(sorted[i] * (i+1)) mod 2^32."""
    ordered = sorted(values)
    checksum = 0
    for index, value in enumerate(ordered):
        checksum = (checksum + value * (index + 1)) & 0xFFFFFFFF
    return checksum


def insertsort_checksum_reference(values):
    """Order-sensitive checksum acc = acc*2 + sorted[i] mod 2^32."""
    checksum = 0
    for value in sorted(values):
        checksum = ((checksum << 1) + value) & 0xFFFFFFFF
    return checksum


_BUBBLE_SOURCE = f"""
# bubblesort: {_N_BUBBLE} words, cmov-based compare-and-swap passes
start:
    l.addi  r3, r0, {_N_BUBBLE - 1}     # passes
pass_loop:
    l.movhi r2, hi(data)
    l.ori   r2, r2, lo(data)
    l.addi  r5, r0, {_N_BUBBLE - 1}     # comparisons per pass
cmp_loop:
    l.lwz   r6, 0(r2)
    l.lwz   r7, 4(r2)
    l.addi  r5, r5, -1                  # scheduled between load and use
    l.sfgts r6, r7
    l.cmov  r8, r7, r6                  # min(a, b)
    l.cmov  r9, r6, r7                  # max(a, b)
    l.sw    0(r2), r8
    l.sw    4(r2), r9
    l.sfgtsi r5, 0
    l.bf    cmp_loop
    l.addi  r2, r2, 4                   # delay slot: next pair
    l.addi  r3, r3, -1
    l.sfgtsi r3, 0
    l.bf    pass_loop
    l.nop
    # weighted checksum of the sorted array
    l.movhi r2, hi(data)
    l.ori   r2, r2, lo(data)
    l.addi  r5, r0, {_N_BUBBLE}
    l.addi  r8, r0, 1
    l.addi  r11, r0, 0
sum_loop:
    l.lwz   r6, 0(r2)
    l.mul   r7, r6, r8
    l.add   r11, r11, r7
    l.addi  r8, r8, 1
    l.addi  r5, r5, -1
    l.sfgtsi r5, 0
    l.bf    sum_loop
    l.addi  r2, r2, 4                   # delay slot
    l.nop   0x1
    l.nop
    l.nop
.data
data:
{words_directive(_BUBBLE_DATA)}
"""

_INSERT_SOURCE = f"""
# insertsort: {_N_INSERT} words, shift-based insertion, rolling checksum
start:
    l.movhi r2, hi(data)
    l.ori   r2, r2, lo(data)
    l.addi  r3, r0, 1                   # i
    l.slli  r4, r3, 2                   # software-pipelined &data[i] offset
outer:
    l.add   r4, r4, r2                  # &data[i]
    l.lwz   r5, 0(r4)                   # key
    l.or    r6, r4, r4                  # insertion cursor
inner:
    l.sfeq  r6, r2                      # reached the base?
    l.bf    place
    l.lwz   r7, -4(r6)                  # delay slot: stale read is harmless
    l.sfgts r7, r5
    l.bnf   place
    l.nop
    l.sw    0(r6), r7                   # shift element right
    l.j     inner
    l.addi  r6, r6, -4                  # delay slot: move cursor left
place:
    l.sw    0(r6), r5
    l.addi  r3, r3, 1
    l.sfltsi r3, {_N_INSERT}
    l.bf    outer
    l.slli  r4, r3, 2                   # delay slot: next offset
    # rolling checksum acc = acc*2 + data[i]
    l.movhi r2, hi(data)
    l.ori   r2, r2, lo(data)
    l.addi  r5, r0, {_N_INSERT}
    l.addi  r11, r0, 0
sum_loop:
    l.lwz   r6, 0(r2)
    l.slli  r11, r11, 1
    l.add   r11, r11, r6
    l.addi  r5, r5, -1
    l.sfgtsi r5, 0
    l.bf    sum_loop
    l.addi  r2, r2, 4                   # delay slot
    l.nop   0x1
    l.nop
    l.nop
.data
data:
{words_directive(_INSERT_DATA)}
"""

register(Kernel(
    name="bubblesort",
    source=_BUBBLE_SOURCE,
    expected_regs={11: bubblesort_checksum_reference(_BUBBLE_DATA)},
    description=f"Bubble sort of {_N_BUBBLE} words (cmov swaps)",
    category="memory",
))

register(Kernel(
    name="insertsort",
    source=_INSERT_SOURCE,
    expected_regs={11: insertsort_checksum_reference(_INSERT_DATA)},
    description=f"Insertion sort of {_N_INSERT} words",
    category="memory",
))
