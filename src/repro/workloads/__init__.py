"""Benchmark and characterisation workloads.

The paper evaluates with CoreMark and BEEBS compiled by the OpenRISC GCC
toolchain.  Without that toolchain we provide hand-written OR1K assembly
kernels with the same instruction-mix characteristics (see DESIGN.md):

- :mod:`repro.workloads.kernels` — BEEBS-style single kernels (CRC, matrix
  multiply, sorts, searches, FIR, sieve, state machine, ...), each with a
  pure-Python golden reference checked by the test suite;
- :mod:`repro.workloads.coremark` — a CoreMark-style composite combining
  list processing, matrix work, a state machine and CRC;
- :mod:`repro.workloads.randomgen` — the directed semi-random program
  generator used for characterisation (paper Fig. 2), which guarantees
  worst-case operand patterns for every timing class;
- :mod:`repro.workloads.suite` — named suites used by the benches.
"""

import pathlib

from repro.workloads.kernels import Kernel, all_kernels, get_kernel
from repro.workloads.randomgen import (
    generate_characterization_program,
    program_stream,
)
from repro.workloads.suite import (
    benchmark_suite,
    characterization_suite,
    suite_names,
)


class WorkloadError(Exception):
    """A program spec (kernel name or assembly path) cannot be resolved."""


def resolve_program(spec):
    """Resolve a program spec into an assembled :class:`Program`.

    A spec is either the name of a bundled kernel or a path to a
    ``.s``/``.asm`` assembly file.  Unknown kernels and missing files
    raise :class:`WorkloadError` with the list of bundled kernels, so
    front ends (CLI, scenario grids) can report a friendly error instead
    of a raw traceback.
    """
    from repro.asm import assemble

    path = pathlib.Path(spec)
    if path.suffix in (".s", ".asm") or path.exists():
        if not path.is_file():
            raise WorkloadError(
                f"assembly file not found: {spec!r}\n"
                f"(bundled kernels: {', '.join(_kernel_names())})"
            )
        return assemble(path.read_text(), name=path.stem)
    try:
        return get_kernel(spec).program()
    except KeyError:
        raise WorkloadError(
            f"unknown kernel {spec!r}\n"
            f"(bundled kernels: {', '.join(_kernel_names())}; "
            f"or pass a path to a .s/.asm file)"
        ) from None


def _kernel_names():
    return sorted(kernel.name for kernel in all_kernels())


__all__ = [
    "Kernel",
    "WorkloadError",
    "all_kernels",
    "get_kernel",
    "resolve_program",
    "generate_characterization_program",
    "program_stream",
    "benchmark_suite",
    "characterization_suite",
    "suite_names",
]
