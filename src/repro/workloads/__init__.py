"""Benchmark and characterisation workloads.

The paper evaluates with CoreMark and BEEBS compiled by the OpenRISC GCC
toolchain.  Without that toolchain we provide hand-written OR1K assembly
kernels with the same instruction-mix characteristics (see DESIGN.md):

- :mod:`repro.workloads.kernels` — BEEBS-style single kernels (CRC, matrix
  multiply, sorts, searches, FIR, sieve, state machine, ...), each with a
  pure-Python golden reference checked by the test suite;
- :mod:`repro.workloads.coremark` — a CoreMark-style composite combining
  list processing, matrix work, a state machine and CRC;
- :mod:`repro.workloads.randomgen` — the directed semi-random program
  generator used for characterisation (paper Fig. 2), which guarantees
  worst-case operand patterns for every timing class;
- :mod:`repro.workloads.suite` — named suites used by the benches.
"""

from repro.workloads.kernels import Kernel, all_kernels, get_kernel
from repro.workloads.randomgen import generate_characterization_program
from repro.workloads.suite import (
    benchmark_suite,
    characterization_suite,
    suite_names,
)

__all__ = [
    "Kernel",
    "all_kernels",
    "get_kernel",
    "generate_characterization_program",
    "benchmark_suite",
    "characterization_suite",
    "suite_names",
]
