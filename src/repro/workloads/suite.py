"""Named workload suites used by the flows and benches.

``gcd`` is deliberately not in the Fig. 8 suite: its 32-cycle serial
divides stall the pipeline so heavily that a genie oracle can overclock
the held stages absurdly, which says nothing about instruction-based
adjustment.  It remains available as a kernel (divider coverage in tests
and the CLI).
"""

from repro.workloads.kernels import all_kernels, get_kernel
from repro.workloads.randomgen import generate_characterization_program

#: Kernels shown on the Fig. 8 x-axis (our CoreMark + BEEBS equivalent).
BENCHMARK_NAMES = (
    "coremark",
    "binarysearch",
    "bitrev",
    "bubblesort",
    "countbits",
    "crc16",
    "crc32",
    "dotprod",
    "fib",
    "fir",
    "halfswap",
    "histogram",
    "insertsort",
    "matmult",
    "memcpy",
    "primes",
    "statemachine",
    "strsearch",
)


def suite_names():
    return list(BENCHMARK_NAMES)


def benchmark_suite():
    """Programs of the evaluation suite (paper Fig. 8)."""
    return [get_kernel(name).program() for name in BENCHMARK_NAMES]


def benchmark_kernels():
    return [get_kernel(name) for name in BENCHMARK_NAMES]


#: Hand-written kernels included in the characterisation set (paper: "small
#: hand-written kernels as well as semi-random test-cases").
CHARACTERIZATION_KERNELS = (
    "crc32",
    "matmult",
    "bubblesort",
    "statemachine",
    "memcpy",
)


def characterization_suite(seed=1, random_programs=2, length=1200,
                           repeats=3):
    """Programs for the characterisation flow (paper Sec. II-B.2).

    A mix of hand kernels and directed semi-random programs; the random
    programs guarantee worst-case pattern coverage for every class.
    """
    programs = [
        generate_characterization_program(
            seed=seed + index, length=length, repeats=repeats
        )
        for index in range(random_programs)
    ]
    programs.extend(
        get_kernel(name).program() for name in CHARACTERIZATION_KERNELS
    )
    return programs


def kernel_table():
    """(name, category, description) rows for reports."""
    return [
        (kernel.name, kernel.category, kernel.description)
        for kernel in all_kernels()
    ]
