"""CoreMark-style composite workload.

CoreMark combines linked-list processing, matrix operations, a state
machine and CRC validation in one binary.  This module provides an
equivalent single-program composite: four phases chained in one address
space, each updating a running CRC-16 of its result, exactly as CoreMark
folds each phase's output into its final checksum.
"""

from repro.asm import assemble
from repro.workloads._asmutil import pack_words_be, words_directive
from repro.workloads.kernels import Kernel, register
from repro.workloads.kernels.crc import crc16_reference
from repro.workloads.kernels.statemachine import statemachine_reference

_LIST_LEN = 16
#: Linked list nodes: (value, next-index) with a scrambled permutation.
_LIST_ORDER = [(5 * i + 3) % _LIST_LEN for i in range(_LIST_LEN)]
_LIST_VALUES = [((i * 2749) % 1000) + 1 for i in range(_LIST_LEN)]

_MAT_N = 4
_MAT = [((i * 31 + 17) % 91) + 1 for i in range(_MAT_N * _MAT_N)]

_FSM_INPUT = bytes((149 * i + 31) & 0xFF for i in range(48))


def _list_walk_reference():
    """Sum of value * position while walking the scrambled list."""
    total = 0
    index = 0
    for position in range(_LIST_LEN):
        total = (total + _LIST_VALUES[index] * (position + 1)) & 0xFFFFFFFF
        index = _LIST_ORDER[index]
    return total


def _matrix_reference():
    """Sum of A*A (matrix product) entries, mod 2^32."""
    total = 0
    for i in range(_MAT_N):
        for j in range(_MAT_N):
            acc = 0
            for k in range(_MAT_N):
                acc = (acc + _MAT[i * _MAT_N + k] * _MAT[k * _MAT_N + j]) \
                    & 0xFFFFFFFF
            total = (total + acc) & 0xFFFFFFFF
    return total


def coremark_reference():
    """Final checksum: CRC-16 folded over the three phase results."""
    phase_results = [
        _list_walk_reference(),
        _matrix_reference(),
        statemachine_reference(_FSM_INPUT),
    ]
    payload = b"".join(value.to_bytes(4, "big") for value in phase_results)
    return crc16_reference(payload)


_SOURCE = f"""
# coremark-like composite: list walk + matrix multiply + FSM + CRC-16 fold
start:
    # ---- phase 1: scrambled linked-list walk -------------------------
    l.movhi r2, hi(list_values)
    l.ori   r2, r2, lo(list_values)
    l.movhi r3, hi(list_next)
    l.ori   r3, r3, lo(list_next)
    l.addi  r4, r0, 0              # current index
    l.addi  r5, r0, 1              # position weight
    l.addi  r11, r0, 0             # phase checksum
list_loop:
    l.slli  r6, r4, 2
    l.add   r7, r6, r2
    l.lwz   r8, 0(r7)              # value
    l.mul   r9, r8, r5
    l.add   r11, r11, r9
    l.add   r7, r6, r3
    l.addi  r5, r5, 1
    l.sflesi r5, {_LIST_LEN}
    l.bf    list_loop
    l.lwz   r4, 0(r7)              # delay slot: fetch next index
    l.movhi r13, hi(results)
    l.ori   r13, r13, lo(results)
    l.sw    0(r13), r11
    # ---- phase 2: {_MAT_N}x{_MAT_N} matrix product A*A ----------------
    l.movhi r2, hi(matrix)
    l.ori   r2, r2, lo(matrix)
    l.addi  r11, r0, 0
    l.addi  r5, r0, 0              # i
mat_i:
    l.addi  r6, r0, 0              # j
mat_j:
    l.addi  r8, r0, 0              # acc
    l.addi  r7, r0, 0              # k
    l.slli  r9, r5, {4 if _MAT_N == 4 else 2}          # i * N * 4
    l.add   r9, r9, r2             # &A[i][0]
    l.slli  r10, r6, 2
    l.add   r10, r10, r2           # &A[0][j]
mat_k:
    l.lwz   r12, 0(r9)             # loads scheduled ahead of the multiply
    l.lwz   r14, 0(r10)
    l.addi  r7, r7, 1
    l.mul   r15, r12, r14
    l.addi  r10, r10, {_MAT_N * 4}
    l.add   r8, r8, r15
    l.sfltsi r7, {_MAT_N}
    l.bf    mat_k
    l.addi  r9, r9, 4              # delay slot: next A element
    l.add   r11, r11, r8
    l.addi  r6, r6, 1
    l.sfltsi r6, {_MAT_N}
    l.bf    mat_j
    l.nop
    l.addi  r5, r5, 1
    l.sfltsi r5, {_MAT_N}
    l.bf    mat_i
    l.nop
    l.sw    4(r13), r11
    # ---- phase 3: state machine --------------------------------------
    l.movhi r2, hi(fsm_input)
    l.ori   r2, r2, lo(fsm_input)
    l.addi  r3, r0, {len(_FSM_INPUT)}
    l.addi  r4, r0, 0              # state
    l.addi  r11, r0, 0
    l.lbz   r5, 0(r2)              # software-pipelined first byte
fsm_loop:
    l.sfltui r5, 64
    l.bnf   fsm_c2
    l.sfltui r5, 128               # delay slot: pre-compute next test
    l.j     fsm_apply
    l.addi  r4, r4, 1
fsm_c2:
    l.bnf   fsm_c3
    l.sfltui r5, 192               # delay slot: pre-compute next test
    l.j     fsm_apply
    l.addi  r4, r4, 2
fsm_c3:
    l.bnf   fsm_c4
    l.nop
    l.j     fsm_apply
    l.xori  r4, r4, 1
fsm_c4:
    l.addi  r4, r0, 0
fsm_apply:
    l.andi  r4, r4, 3
    l.add   r11, r11, r4
    l.addi  r2, r2, 1
    l.addi  r3, r3, -1
    l.sfgtsi r3, 0
    l.bf    fsm_loop
    l.lbz   r5, 0(r2)              # delay slot: fetch next byte
    l.sw    8(r13), r11
    # ---- phase 4: CRC-16 fold over the three phase results -----------
    l.or    r2, r13, r13           # byte pointer over results[0..11]
    l.addi  r3, r0, 12
    l.addi  r4, r0, 0              # crc
    l.movhi r5, hi(0xa001)
    l.ori   r5, r5, lo(0xa001)
crc_byte:
    l.lbz   r6, 0(r2)
    l.xor   r4, r4, r6
    l.addi  r7, r0, 8
crc_bit:
    l.andi  r8, r4, 1
    l.sub   r9, r0, r8             # mask = -(crc & 1)
    l.and   r10, r5, r9            # poly & mask
    l.srli  r4, r4, 1
    l.xor   r4, r4, r10
    l.addi  r7, r7, -1
    l.sfgtsi r7, 0
    l.bf    crc_bit
    l.nop
    l.addi  r3, r3, -1
    l.sfgtsi r3, 0
    l.bf    crc_byte
    l.addi  r2, r2, 1              # delay slot: next byte
    l.andi  r11, r4, 0xffff
    l.nop   0x1
    l.nop
    l.nop
.data
list_values:
{words_directive(_LIST_VALUES)}
list_next:
{words_directive(_LIST_ORDER)}
matrix:
{words_directive(_MAT)}
fsm_input:
{words_directive(pack_words_be(_FSM_INPUT))}
results:
    .space 16
"""


def coremark_kernel():
    """The composite as a Kernel (registered as ``coremark``)."""
    return _COREMARK


_COREMARK = register(Kernel(
    name="coremark",
    source=_SOURCE,
    expected_regs={11: coremark_reference()},
    description="CoreMark-like composite (list + matrix + FSM + CRC)",
    category="mixed",
))


def coremark_program():
    return assemble(_SOURCE, name="coremark")
