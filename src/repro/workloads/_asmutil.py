"""Shared helpers for authoring kernels."""


def pack_words_be(data):
    """Pack a byte sequence into big-endian 32-bit words (zero padded)."""
    padded = bytes(data) + b"\x00" * (-len(data) % 4)
    return [
        int.from_bytes(padded[i:i + 4], "big")
        for i in range(0, len(padded), 4)
    ]


def words_directive(values, per_line=8):
    """Render a list of integers as ``.word`` directives."""
    lines = []
    for start in range(0, len(values), per_line):
        chunk = values[start:start + per_line]
        rendered = ", ".join(f"{v & 0xFFFFFFFF:#x}" for v in chunk)
        lines.append(f"    .word {rendered}")
    return "\n".join(lines)
