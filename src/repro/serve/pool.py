"""Per-job worker processes for the sweep service.

Each admitted job runs in its own *process* (spawn start method — safe
to launch from a threaded asyncio server, no forked locks), streaming
typed events back to the server over a ``multiprocessing.Pipe``::

    ("progress", done, total)
    ("done", frame_dict, meta)        # meta: simulations, spans, ...
    ("error", "ValueError: ...")

Inside the worker the job is exactly one :class:`repro.api.Session`
call — ``serve`` really is a thin layer over the Session facade:

- ``sweep``    → :meth:`Session.sweep_frame` (orchestrated runner, the
  store frame cache double-checked worker-side so two *servers* on one
  store root dedup too);
- ``evaluate`` → :meth:`Session.evaluate` per design point;
- ``train``    → :meth:`Session.training_table`;
- ``stream``   → :meth:`repro.stream.StreamingSession.evaluate` per
  design point, relaying per-window ``("window", info)`` events so the
  server can stream rolling results over ``/events``.

Every worker attaches the one shared :class:`ArtifactStore`, so
compiled traces and LUTs are computed at most once across the whole
fleet — the concurrency-hardened store (atomic writes, gc that skips
in-flight temp files and tolerates vanishing entries) is what makes
this safe.

The pool itself (:class:`JobWorkerPool`) bounds concurrent worker
processes with a semaphore; one daemon watcher thread per job relays
pipe events to the server via its callback.
"""

import multiprocessing
import threading

__all__ = ["JobWorkerPool", "execute_job", "job_payload"]

#: Spawned workers re-import the stack instead of forking the threaded
#: server process (fork + threads risks inheriting held locks).
_MP = multiprocessing.get_context("spawn")


def job_payload(job, config):
    """The picklable work order shipped to a worker process."""
    return {
        "kind": job.kind,
        "grid": job.grid,
        "result_name": job.result_name,
        "store_root": str(config.store_root),
        "jobs": config.sweep_jobs,
        "engine": config.engine,
        "telemetry": bool(config.telemetry),
        "options": job.options,
    }


def execute_job(payload, on_progress, on_window=None):
    """Run one job (inside the worker process).

    Returns ``(frame, meta)`` where ``meta`` carries the dedup proof
    (``simulations``), whether the worker itself hit the frame cache,
    and — when the server traces — the worker's spans and counter
    deltas for the parent timeline.
    """
    from repro.api import Session
    from repro.dta.compiled import simulation_count
    from repro.lab.scenario import ScenarioGrid
    from repro.obs import metrics as obs_metrics

    grid = ScenarioGrid.from_dict(payload["grid"])
    session = Session(
        store=payload["store_root"], jobs=payload["jobs"],
        engine=payload["engine"],
    )
    kind = payload["kind"]
    baseline = simulation_count()
    obs_baseline = obs_metrics.gather()
    cached = False
    if kind == "sweep":
        frame, cached = session.sweep_frame(
            grid, cache_name=payload["result_name"], on_unit=on_progress,
        )
    elif kind == "train":
        frame = session.training_table(grid, on_unit=on_progress)
    elif kind == "evaluate":
        frame = _evaluate_grid(grid, payload, on_progress)
    elif kind == "stream":
        frame = _stream_grid(grid, payload, on_progress, on_window)
    else:
        raise ValueError(f"unknown job kind {kind!r}")
    meta = {
        "simulations": simulation_count() - baseline,
        "cached": cached,
        "counters": obs_metrics.delta_since(obs_baseline),
    }
    return frame, meta


def _evaluate_grid(grid, payload, on_progress):
    """``evaluate`` kind: the in-process evaluation path, one Session
    per design point, concatenated into one EVALUATION frame."""
    from repro.api import Session
    from repro.api.frame import EVALUATION_SCHEMA, ResultFrame

    points = grid.design_points()
    specs = grid.config_specs()
    rows = []
    on_progress(0, len(points))
    for index, point in enumerate(points):
        session = Session(
            variant=point.variant, voltage=point.voltage,
            store=payload["store_root"], jobs=payload["jobs"],
            engine=payload["engine"], max_cycles=grid.max_cycles,
        )
        frame = session.evaluate(
            list(grid.workload_specs()), configs=specs,
        )
        rows.extend(frame.to_rows())
        on_progress(index + 1, len(points))
    return ResultFrame.from_rows(rows, EVALUATION_SCHEMA)


def _window_event(update, point):
    """Compact JSON-ready summary of one rolling window (full rows stay
    in the final cached frame; events must stay small)."""
    return {
        "design_point": point.label,
        "program": update.program,
        "window": update.index,
        "global_window": update.global_index,
        "start_cycle": update.start_cycle,
        "cycles": update.num_cycles,
        "stream_cycles": update.stream_cycles,
        "rows": [
            {
                "config": row["config"],
                "effective_frequency_mhz": row["effective_frequency_mhz"],
                "num_violations": row["num_violations"],
            }
            for row in update.frame.to_rows()
        ],
    }


def _stream_grid(grid, payload, on_progress, on_window):
    """``stream`` kind: windowed streaming evaluation per design point,
    relaying each rolling window to the server as it lands."""
    from repro.api import Session
    from repro.api.frame import EVALUATION_SCHEMA, ResultFrame
    from repro.stream import (
        StreamingSession,
        stream_source_for,
        validate_stream_options,
    )

    options = validate_stream_options(payload.get("options"))
    points = grid.design_points()
    specs = grid.config_specs()
    rows = []
    on_progress(0, len(points))
    for index, point in enumerate(points):
        session = Session(
            variant=point.variant, voltage=point.voltage,
            store=payload["store_root"], jobs=payload["jobs"],
            engine=payload["engine"], max_cycles=grid.max_cycles,
        )
        streaming = StreamingSession(
            session, window_cycles=options["window_cycles"],
            max_windows=options["max_windows"],
        )
        emit = None
        if on_window is not None:
            emit = (lambda update, _point=point:
                    on_window(_window_event(update, _point)))
        frame = streaming.evaluate(
            stream_source_for(grid, options), configs=specs,
            on_window=emit,
        )
        rows.extend(frame.to_rows())
        on_progress(index + 1, len(points))
    return ResultFrame.from_rows(rows, EVALUATION_SCHEMA)


def _job_main(conn, payload):
    """Worker-process entry point: execute, stream events, never leak
    an exception past the pipe."""
    from repro.obs import trace as obs_trace

    if payload.get("telemetry"):
        import os

        obs_trace.set_tracer(
            obs_trace.Tracer(label=f"serve-worker-{os.getpid()}")
        )
    try:
        frame, meta = execute_job(
            payload,
            on_progress=lambda done, total: conn.send(
                ("progress", done, total)
            ),
            on_window=lambda info: conn.send(("window", info)),
        )
        tracer = obs_trace.get_tracer()
        if tracer is not None:
            meta["spans"] = tracer.drain()
        conn.send(("done", frame.to_dict(), meta))
    except BaseException as error:  # noqa: BLE001 — ships to the server
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except OSError:
            pass
    finally:
        conn.close()


class JobWorkerPool:
    """Run jobs in bounded worker processes, relaying their events.

    Parameters
    ----------
    workers:
        Maximum concurrently running job processes; further jobs wait
        on the semaphore in submission order.
    on_event:
        ``on_event(job, message)`` called from the job's watcher thread
        for every pipe message, then once with ``("exit", exitcode)``
        after the process ends.
    """

    def __init__(self, workers, on_event):
        self.workers = max(1, int(workers))
        self.on_event = on_event
        self._slots = threading.Semaphore(self.workers)
        self._lock = threading.Lock()
        self._running = {}                    # job id -> Process
        self._closed = False

    def submit(self, job, payload):
        """Queue ``job`` for execution; returns immediately.  Events
        arrive on the ``on_event`` callback from a watcher thread."""
        thread = threading.Thread(
            target=self._drive, args=(job, payload),
            name=f"serve-{job.id}", daemon=True,
        )
        thread.start()

    def _drive(self, job, payload):
        with self._slots:
            if self._closed:
                self.on_event(job, ("error", "server shutting down"))
                self.on_event(job, ("exit", -1))
                return
            parent_conn, child_conn = _MP.Pipe(duplex=False)
            process = _MP.Process(
                target=_job_main, args=(child_conn, payload),
                name=f"serve-{job.id}",
            )
            process.start()
            child_conn.close()
            with self._lock:
                self._running[job.id] = process
            try:
                while True:
                    try:
                        message = parent_conn.recv()
                    except EOFError:
                        break
                    self.on_event(job, message)
            finally:
                parent_conn.close()
                process.join()
                with self._lock:
                    self._running.pop(job.id, None)
                self.on_event(job, ("exit", process.exitcode))

    def shutdown(self, timeout=5.0):
        """Stop accepting work and terminate any running job process."""
        self._closed = True
        with self._lock:
            running = list(self._running.values())
        for process in running:
            process.terminate()
        for process in running:
            process.join(timeout=timeout)
