"""Stdlib client for the sweep service (``repro submit``).

:class:`ServeClient` speaks the server's small HTTP/JSON surface over
:mod:`http.client` — no third-party dependencies, mirroring the
server's zero-dependency contract.  Typical round trip::

    client = ServeClient("http://127.0.0.1:8787")
    job = client.submit("examples/grids/quick.json", tenant="alice")
    frame = client.wait_result(job["id"])      # a ResultFrame

Errors surface as :class:`ServeError` carrying the HTTP status and the
server's ``{"error": ...}`` message, so callers can branch on
``error.status`` (429 → back off and retry, 410 → resubmit the grid).
"""

import json
import time
import urllib.parse
from http.client import HTTPConnection

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """An HTTP-level failure from the sweep service."""

    def __init__(self, status, message):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """Talk to one sweep server.

    Parameters
    ----------
    url:
        Server base URL, e.g. ``http://127.0.0.1:8787``.
    timeout:
        Per-request socket timeout in seconds (event streams use it
        per read, so slow jobs keep streaming as long as progress
        events keep arriving).
    """

    def __init__(self, url, timeout=60.0):
        parsed = urllib.parse.urlsplit(url if "//" in url else f"//{url}")
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {parsed.scheme!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8787
        self.timeout = timeout

    # -- raw transport -------------------------------------------------------

    def _request(self, method, path, payload=None):
        """One request/response; returns ``(status, body_bytes)``."""
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def _json(self, method, path, payload=None, ok=(200,)):
        status, body = self._request(method, path, payload)
        try:
            data = json.loads(body.decode() or "null")
        except ValueError:
            data = None
        if status not in ok:
            message = (data or {}).get("error") if isinstance(data, dict) \
                else body.decode(errors="replace")
            raise ServeError(status, message or "unexpected response")
        return data

    # -- surface -------------------------------------------------------------

    def submit(self, grid, *, kind="sweep", tenant="anonymous",
               stream=None):
        """Submit a job; returns the job snapshot dict.

        ``grid`` may be a :class:`~repro.lab.scenario.ScenarioGrid`, a
        grid dict, or a path to a grid JSON file.  ``stream`` carries
        the stream-options dict for ``kind="stream"`` jobs (see
        :func:`repro.stream.validate_stream_options`).  The snapshot's
        ``cached`` / ``deduped`` fields say whether the service
        answered from the frame cache or attached this submission to an
        already-active identical job.
        """
        from repro.lab.scenario import ScenarioGrid

        if isinstance(grid, ScenarioGrid):
            grid_dict = grid.to_dict()
        elif isinstance(grid, dict):
            grid_dict = grid
        else:
            with open(grid, encoding="utf-8") as handle:
                grid_dict = json.load(handle)
        payload = {"grid": grid_dict, "kind": kind, "tenant": tenant}
        if stream is not None:
            payload["stream"] = stream
        return self._json("POST", "/v1/jobs", payload, ok=(200, 202))

    def status(self, job_id):
        """Current snapshot of one job."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self):
        """Snapshots of every job the server knows about."""
        return self._json("GET", "/v1/jobs")["jobs"]

    def result_bytes(self, job_id):
        """The finished job's ResultFrame JSON, verbatim bytes.

        Cached results are byte-identical across requests (the frame's
        deterministic ``to_json``) — the smoke test's equality check.
        """
        status, body = self._request("GET", f"/v1/jobs/{job_id}/result")
        if status != 200:
            try:
                message = json.loads(body.decode()).get("error")
            except ValueError:
                message = body.decode(errors="replace")
            raise ServeError(status, message or "unexpected response")
        return body

    def result(self, job_id):
        """The finished job's result as a ResultFrame."""
        from repro.api.frame import ResultFrame

        return ResultFrame.from_json(self.result_bytes(job_id).decode())

    def events(self, job_id):
        """Yield the job's ndjson progress events until it finishes."""
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                body = response.read()
                try:
                    message = json.loads(body.decode()).get("error")
                except ValueError:
                    message = body.decode(errors="replace")
                raise ServeError(response.status, message)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            conn.close()

    def wait(self, job_id, timeout=300.0, poll=0.2):
        """Block until the job is terminal; returns its snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.status(job_id)
            if snapshot["state"] in ("done", "failed"):
                return snapshot
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['state']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll)

    def wait_result(self, job_id, timeout=300.0):
        """Wait for the job, then fetch its ResultFrame (raises
        :class:`ServeError` with the server's message if it failed)."""
        self.wait(job_id, timeout=timeout)
        return self.result(job_id)

    def server_status(self):
        """``GET /v1/status`` — queue depth, job counts, tenant usage,
        ``serve.*`` / ``store.*`` counters."""
        return self._json("GET", "/v1/status")

    def shutdown(self):
        """Ask the server to stop cleanly."""
        return self._json("POST", "/v1/shutdown")
