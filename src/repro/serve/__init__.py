"""repro.serve — the multi-tenant sweep service.

A thin asyncio HTTP/JSON layer (stdlib-only) over
:meth:`repro.api.Session.sweep`: clients submit sweep / evaluate /
train jobs as scenario-grid JSON, the server dedups them by
:meth:`~repro.lab.scenario.ScenarioGrid.fingerprint` (two tenants
submitting the same grid share one computation), runs each job in a
worker *process* from a bounded pool sharing one
:class:`~repro.lab.store.ArtifactStore`, streams per-unit progress, and
serves cached :class:`~repro.api.frame.ResultFrame`\\ s instantly on
fingerprint hit.

- :mod:`repro.serve.jobs` — job records, the registry, frame-cache
  naming and per-tenant budget accounting;
- :mod:`repro.serve.pool` — the per-job worker processes (event
  streaming over a pipe; spawn-based, safe in a threaded server);
- :mod:`repro.serve.server` — the asyncio HTTP server
  (``repro serve``);
- :mod:`repro.serve.client` — the stdlib client (``repro submit``).

Entry points::

    python -m repro serve --store .repro-store --port 8787
    python -m repro submit --grid grid.json --wait

or programmatically::

    from repro.serve import ServeClient
    client = ServeClient("http://127.0.0.1:8787")
    job = client.submit("grid.json", tenant="alice")
    frame = client.wait_result(job["id"])
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import JOB_KINDS, Job, JobRegistry, frame_cache_name
from repro.serve.server import ServeConfig, SweepServer

__all__ = [
    "JOB_KINDS",
    "Job",
    "JobRegistry",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "SweepServer",
    "frame_cache_name",
]
