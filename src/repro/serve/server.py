"""The asyncio HTTP/JSON sweep server (stdlib-only).

One :class:`SweepServer` owns a shared
:class:`~repro.lab.store.ArtifactStore`, a :class:`JobRegistry`
(dedup + bounded admission + tenant budgets) and a
:class:`JobWorkerPool` (per-job worker processes).  The HTTP surface::

    POST /v1/jobs                  submit {"grid": {...}, "kind": "sweep",
                                   "tenant": "alice"} -> 202 job snapshot
                                   (200 + "cached": true on a frame-cache
                                   hit; 429 when the queue is full;
                                   400 on a malformed grid)
    GET  /v1/jobs                  all job snapshots
    GET  /v1/jobs/<id>             one job snapshot (404 unknown)
    GET  /v1/jobs/<id>/result      the ResultFrame as JSON (409 while
                                   pending, 410 if evicted, 500 failed)
    GET  /v1/jobs/<id>/events      ndjson progress stream until the job
                                   reaches a terminal state
    GET  /v1/status                queue/worker/tenant/counter overview
    POST /v1/shutdown              acknowledge, then stop cleanly

Responses are ``Connection: close`` (one request per connection — the
service optimises for correctness and testability, not keep-alive
throughput; a fronting proxy owns connection pooling at real scale).

Run it via ``python -m repro serve`` or embed it::

    config = ServeConfig(store_root=".repro-store", port=0)
    server = SweepServer(config)
    with server.running() as port:
        ...

Every admission decision increments a ``serve.*`` counter in
:mod:`repro.obs.metrics` (submitted / deduped / cache.hits / rejected /
completed / failed / simulations / tenant.evictions), so the service
shows up in telemetry frames and ``GET /v1/status`` alike; with
``telemetry=True`` each job also lands as a ``serve.job`` span (worker
spans merged onto the server tracer's timeline).
"""

import asyncio
import contextlib
import json
import threading
import time

from repro.lab.jobqueue import QueueFull
from repro.lab.scenario import ScenarioError, ScenarioGrid
from repro.lab.store import ArtifactStore
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.serve.jobs import JOB_KINDS, JobRegistry
from repro.serve.pool import JobWorkerPool, job_payload

__all__ = ["ServeConfig", "SweepServer"]

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 410: "Gone",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Submission bodies past this size are rejected (413) before parsing.
MAX_BODY_BYTES = 4 << 20


class _HttpError(Exception):
    def __init__(self, status, message):
        super().__init__(message)
        self.status = status
        self.message = message


class ServeConfig:
    """Server configuration (one object, CLI-mappable).

    Parameters
    ----------
    store_root:
        Directory of the shared artifact store (created on demand) —
        required: the store *is* the service's cache and dedup fabric.
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`SweepServer.port` after start).
    workers:
        Concurrent job worker processes.
    sweep_jobs:
        Shard workers *inside* each job's sweep (``Session(jobs=...)``).
    queue_limit:
        Active-job bound; submissions past it get HTTP 429.
    tenant_budget_bytes:
        Per-tenant cached-frame budget (LRU-evicted after each job).
    store_budget_bytes:
        Whole-store size budget, LRU-``gc``-ed after every completed
        job (``None`` disables).
    engine:
        Evaluation engine for job sessions (``vector`` / ``lockstep``).
    telemetry:
        Trace server + worker spans onto one timeline.
    """

    def __init__(self, store_root, host="127.0.0.1", port=8787,
                 workers=2, sweep_jobs=1, queue_limit=16,
                 tenant_budget_bytes=None, store_budget_bytes=None,
                 engine="vector", telemetry=False):
        self.store_root = store_root
        self.host = host
        self.port = int(port)
        self.workers = max(1, int(workers))
        self.sweep_jobs = max(1, int(sweep_jobs))
        self.queue_limit = int(queue_limit)
        self.tenant_budget_bytes = tenant_budget_bytes
        self.store_budget_bytes = store_budget_bytes
        self.engine = engine
        self.telemetry = telemetry


class SweepServer:
    """The multi-tenant sweep service over one shared artifact store."""

    def __init__(self, config):
        self.config = config
        self.store = ArtifactStore(config.store_root)
        self.registry = JobRegistry(
            self.store,
            queue_limit=config.queue_limit,
            tenant_budget_bytes=config.tenant_budget_bytes,
            on_change=self._job_changed,
        )
        self.pool = JobWorkerPool(config.workers, self._pool_event)
        self.tracer = (
            obs_trace.Tracer(label="serve") if config.telemetry else None
        )
        self.port = None
        self.started = time.time()
        self._server = None
        self._loop = None
        self._stopping = None
        self._waiters = {}                  # job id -> set of asyncio.Event
        self._job_starts = {}               # job id -> perf start (spans)

    # -- lifecycle -----------------------------------------------------------

    async def start(self):
        """Bind and start serving; resolves the actual port."""
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        if self.tracer is not None:
            obs_trace.set_tracer(self.tracer)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_stopped(self):
        """Serve until :meth:`stop` (or ``POST /v1/shutdown``)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._stopping.wait()
        self.pool.shutdown()

    async def stop(self):
        """Initiate a clean shutdown."""
        self._stopping.set()
        if self._server is not None:
            self._server.close()
        # wake every event stream so handlers finish promptly
        for events in list(self._waiters.values()):
            for event in list(events):
                event.set()

    def run(self):
        """Blocking entry point (the ``repro serve`` command body)."""
        async def main():
            import signal

            await self.start()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError):
                    loop.add_signal_handler(
                        signum,
                        lambda: asyncio.ensure_future(self.stop()),
                    )
            print(f"repro.serve listening on "
                  f"http://{self.config.host}:{self.port} "
                  f"(store={self.store.root}, "
                  f"workers={self.config.workers}, "
                  f"queue={self.config.queue_limit})", flush=True)
            await self.serve_until_stopped()

        asyncio.run(main())
        return 0

    @contextlib.contextmanager
    def running(self):
        """Run the server on a background thread (tests, embedding);
        yields the bound port and shuts down cleanly on exit."""
        ready = threading.Event()

        async def main():
            await self.start()
            ready.set()
            await self.serve_until_stopped()

        thread = threading.Thread(
            target=lambda: asyncio.run(main()),
            name="serve-loop", daemon=True,
        )
        thread.start()
        if not ready.wait(timeout=10):
            raise RuntimeError("server failed to start")
        try:
            yield self.port
        finally:
            loop = self._loop
            if loop is not None and not loop.is_closed():
                asyncio.run_coroutine_threadsafe(self.stop(), loop)
            thread.join(timeout=10)

    # -- job plumbing --------------------------------------------------------

    def _dispatch(self):
        """Hand every claimable job to the worker pool."""
        while True:
            job = self.registry.claim()
            if job is None:
                return
            if self.tracer is not None:
                self._job_starts[job.id] = time.perf_counter()
            self.pool.submit(job, job_payload(job, self.config))

    def _pool_event(self, job, message):
        """Pipe/exit events from a watcher thread."""
        kind = message[0]
        if kind == "progress":
            self.registry.progress(job, message[1], message[2])
        elif kind == "window":
            self.registry.window_event(job, message[1])
        elif kind == "done":
            self._job_done(job, frame_dict=message[1], meta=message[2])
        elif kind == "error":
            self.registry.fail(job, message[1])
        elif kind == "exit":
            if not job.terminal:
                self.registry.fail(
                    job, f"worker process died (exit code {message[1]})"
                )
            self._record_job_span(job)

    def _job_done(self, job, frame_dict, meta):
        from repro.api.frame import ResultFrame

        frame = ResultFrame.from_dict(frame_dict)
        cached = bool(meta.get("cached"))
        if not cached:
            self.store.save_frame(job.result_name, frame)
        frame_bytes = 0
        try:
            frame_bytes = (
                self.store.frame_path(job.result_name).stat().st_size
            )
        except OSError:
            pass
        obs_metrics.merge(meta.get("counters"))
        obs_trace.merge_worker_spans(meta.get("spans"))
        self.registry.complete(
            job,
            simulations=meta.get("simulations", 0),
            frame_bytes=frame_bytes,
            cached=cached,
        )
        if self.config.store_budget_bytes is not None:
            self.store.gc(max_bytes=self.config.store_budget_bytes)

    def _record_job_span(self, job):
        """Synthesize one ``serve.job`` span covering the job's run."""
        start = self._job_starts.pop(job.id, None)
        if self.tracer is None or start is None:
            return
        duration_us = (time.perf_counter() - start) * 1e6
        obs_trace.merge_worker_spans([{
            "span": "serve.job",
            "category": "serve",
            "worker": self.tracer.label,
            "pid": self.tracer.pid,
            "depth": 0,
            "start_us": (
                self.tracer._epoch_unix_us
                + (start - self.tracer._epoch_perf) * 1e6
            ),
            "duration_us": duration_us,
            "cpu_us": 0.0,
            "attrs": {"job": job.id, "kind": job.kind,
                      "state": job.state, "grid": job.grid_name},
        }])

    def _job_changed(self, job):
        """Register/pool callback (any thread): wake event streams."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._wake_waiters, job.id)

    def _wake_waiters(self, job_id):
        for event in self._waiters.get(job_id, ()):
            event.set()

    # -- HTTP ----------------------------------------------------------------

    async def _handle_connection(self, reader, writer):
        try:
            try:
                method, path, body = await self._read_request(reader)
            except (asyncio.IncompleteReadError, ConnectionError,
                    asyncio.LimitOverrunError):
                return
            except _HttpError as error:
                await self._respond_json(
                    writer, error.status, {"error": error.message}
                )
                return
            try:
                await self._route(method, path, body, writer)
            except _HttpError as error:
                await self._respond_json(
                    writer, error.status, {"error": error.message}
                )
            except ConnectionError:
                pass
            except Exception as error:   # noqa: BLE001 — keep serving
                with contextlib.suppress(ConnectionError):
                    await self._respond_json(
                        writer, 500,
                        {"error": f"{type(error).__name__}: {error}"},
                    )
        finally:
            with contextlib.suppress(ConnectionError, OSError):
                writer.close()
                await writer.wait_closed()

    async def _read_request(self, reader):
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", 0))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], body

    async def _route(self, method, path, body, writer):
        segments = [s for s in path.split("/") if s]
        if segments[:1] != ["v1"]:
            raise _HttpError(404, f"unknown path {path}")
        tail = segments[1:]
        if tail == ["jobs"]:
            if method == "POST":
                return await self._post_job(body, writer)
            if method == "GET":
                return await self._respond_json(writer, 200, {
                    "jobs": [job.as_dict()
                             for job in self.registry.jobs()],
                })
            raise _HttpError(405, f"{method} not allowed")
        if len(tail) >= 2 and tail[0] == "jobs":
            job = self.registry.get(tail[1])
            if job is None:
                raise _HttpError(404, f"unknown job {tail[1]!r}")
            if len(tail) == 2 and method == "GET":
                return await self._respond_json(writer, 200, job.as_dict())
            if tail[2:] == ["result"] and method == "GET":
                return await self._get_result(job, writer)
            if tail[2:] == ["events"] and method == "GET":
                return await self._stream_events(job, writer)
            raise _HttpError(404, f"unknown path {path}")
        if tail == ["status"] and method == "GET":
            return await self._respond_json(writer, 200, self._status())
        if tail == ["shutdown"] and method == "POST":
            await self._respond_json(writer, 200, {"stopping": True})
            asyncio.ensure_future(self.stop())
            return
        raise _HttpError(404, f"unknown path {path}")

    async def _post_job(self, body, writer):
        try:
            payload = json.loads(body.decode() or "{}")
        except ValueError:
            raise _HttpError(400, "body is not valid JSON") from None
        if not isinstance(payload, dict) or "grid" not in payload:
            raise _HttpError(400, 'body must be {"grid": {...}, ...}')
        kind = payload.get("kind", "sweep")
        if kind not in JOB_KINDS:
            raise _HttpError(
                400, f"unknown kind {kind!r}; choose from {JOB_KINDS}"
            )
        tenant = str(payload.get("tenant") or "anonymous")
        try:
            grid = ScenarioGrid.from_dict(payload["grid"])
        except ScenarioError as error:
            raise _HttpError(400, f"invalid grid: {error}") from None
        options = None
        if kind == "stream":
            from repro.stream import stream_fingerprint, validate_stream_options

            try:
                options = validate_stream_options(
                    payload.get("stream"), require_finite=True
                )
            except ValueError as error:
                raise _HttpError(
                    400, f"invalid stream options: {error}"
                ) from None
            fingerprint = stream_fingerprint(grid, options)
        else:
            fingerprint = grid.fingerprint()
        try:
            job, deduped, cached = await asyncio.to_thread(
                self.registry.submit, kind, fingerprint, grid.to_dict(),
                tenant, options,
            )
        except QueueFull as error:
            raise _HttpError(429, str(error)) from None
        self._dispatch()
        snapshot = job.as_dict()
        snapshot["deduped"] = deduped
        status = 200 if job.terminal else 202
        await self._respond_json(writer, status, snapshot)

    async def _get_result(self, job, writer):
        if job.state == "failed":
            raise _HttpError(500, f"job failed: {job.error}")
        if not job.terminal:
            raise _HttpError(
                409, f"job {job.id} is {job.state}; poll /events or retry"
            )
        frame = await asyncio.to_thread(
            self.store.load_frame, job.result_name
        )
        if frame is None:
            raise _HttpError(
                410, f"result of {job.id} was evicted from the cache; "
                     f"resubmit the grid to recompute"
            )
        await self._respond(
            writer, 200, frame.to_json().encode(),
            content_type="application/json",
        )

    async def _stream_events(self, job, writer):
        """ndjson event stream: replay recorded events, then follow
        live updates until the job is terminal."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        event = asyncio.Event()
        self._waiters.setdefault(job.id, set()).add(event)
        cursor = 0
        try:
            while True:
                events = list(job.events)
                for record in events[cursor:]:
                    writer.write(
                        (json.dumps(record, sort_keys=True) + "\n")
                        .encode()
                    )
                cursor = len(events)
                await writer.drain()
                if job.terminal or self._stopping.is_set():
                    return
                event.clear()
                await event.wait()
        finally:
            waiters = self._waiters.get(job.id)
            if waiters is not None:
                waiters.discard(event)
                if not waiters:
                    self._waiters.pop(job.id, None)

    def _status(self):
        counters = {
            name: value
            for name, value in sorted(obs_metrics.gather().items())
            if name.startswith(("serve.", "store."))
        }
        return {
            "uptime_seconds": time.time() - self.started,
            "store": str(self.store.root),
            "workers": self.config.workers,
            "queue_limit": self.config.queue_limit,
            "queued": self.registry.queue.queued,
            "active": len(self.registry.queue),
            "jobs": self.registry.counts(),
            "tenants": self.registry.tenant_usage(),
            "counters": counters,
        }

    async def _respond_json(self, writer, status, payload):
        body = json.dumps(payload, sort_keys=True).encode()
        await self._respond(writer, status, body,
                            content_type="application/json")

    async def _respond(self, writer, status, body, content_type):
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
