"""Job records, the registry, and tenant budget accounting.

A :class:`Job` is one submitted unit of service work — a scenario grid
plus a kind (``sweep``, ``evaluate`` or ``train``).  Its identity for
*deduplication* is ``kind:fingerprint``: the grid fingerprint digests
every axis (and any ``learned:`` model bytes), so two tenants
submitting the same experiment share one computation and one cached
result, while any difference in axes yields a distinct job.

The :class:`JobRegistry` owns the jobs and the dedup window (via
:class:`~repro.lab.jobqueue.BoundedJobQueue`), tracks per-job progress
events for the streaming endpoint, and enforces per-tenant frame-cache
budgets by running the store's LRU :meth:`~repro.lab.store.ArtifactStore.gc`
restricted to that tenant's frame paths.

Thread-safety: the registry is mutated from the server's event loop
*and* from job-watcher threads (pool event callbacks), so every
mutation takes the registry lock; read endpoints see consistent
snapshots via :meth:`Job.as_dict`.
"""

import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.lab.jobqueue import BoundedJobQueue, QueueFull
from repro.obs import metrics as obs_metrics

__all__ = [
    "JOB_KINDS",
    "Job",
    "JobRegistry",
    "QueueFull",
    "frame_cache_name",
]

#: Service job kinds: ``sweep`` runs the orchestrated grid runner,
#: ``evaluate`` the in-process evaluation per design point, ``train``
#: the training-table generator (:meth:`Session.training_table`), and
#: ``stream`` the windowed streaming evaluation
#: (:class:`repro.stream.StreamingSession`) with per-window events.
JOB_KINDS = ("sweep", "evaluate", "train", "stream")

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


def frame_cache_name(kind, fingerprint):
    """Store name of a job's cached result frame.

    One name per (kind, grid fingerprint) — shared by every tenant, so
    the cache is deduplicated across the whole service (and across
    servers pointing at the same store root).
    """
    return f"serve:{kind}:{fingerprint}"


@dataclass
class Job:
    """One submitted service job and its observable state."""

    id: str
    kind: str
    key: str                    # dedup key: kind + grid fingerprint
    fingerprint: str
    grid: dict
    grid_name: str
    tenant: str                 # owning (first-submitting) tenant
    created: float = field(default_factory=time.time)
    state: str = QUEUED
    tenants: list = None
    started: float = None
    finished: float = None
    progress_done: int = 0
    progress_total: int = 0
    cached: bool = False        # served straight from the frame cache
    submissions: int = 1        # 1 + dedup hits while active
    simulations: int = 0        # pipeline simulations the job ran
    frame_bytes: int = 0
    result_name: str = None
    error: str = None
    #: Canonical stream options (``stream`` kind only; part of the
    #: fingerprint, shipped to the worker in the job payload).
    options: dict = None
    #: Progress/terminal events for the streaming endpoint.
    events: list = field(default_factory=list)

    def __post_init__(self):
        if self.tenants is None:
            self.tenants = [self.tenant]
        self.result_name = frame_cache_name(self.kind, self.fingerprint)

    @property
    def terminal(self):
        return self.state in (DONE, FAILED)

    def as_dict(self):
        """JSON-ready snapshot (the ``GET /v1/jobs/<id>`` payload)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "grid": self.grid_name,
            "tenant": self.tenant,
            "tenants": list(self.tenants),
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "progress": {
                "done": self.progress_done,
                "total": self.progress_total,
            },
            "cached": self.cached,
            "submissions": self.submissions,
            "simulations": self.simulations,
            "frame_bytes": self.frame_bytes,
            "error": self.error,
        }


class JobRegistry:
    """All jobs the server knows about, plus dedup and tenant budgets.

    Parameters
    ----------
    store:
        The shared :class:`~repro.lab.store.ArtifactStore`; cached
        result frames live in it and per-tenant budgets evict from it.
    queue_limit:
        Maximum simultaneously active (queued + running) jobs; past it
        :meth:`submit` raises :class:`QueueFull` (HTTP 429).
    tenant_budget_bytes:
        Optional per-tenant frame-cache budget; after every completed
        job the owning tenant's cached frames are LRU-evicted down to
        it (``None`` disables).
    on_change:
        Optional callback ``on_change(job)`` fired (under no lock)
        after every job mutation — the server uses it to wake event
        streams; may be called from watcher threads.
    """

    def __init__(self, store, queue_limit=16, tenant_budget_bytes=None,
                 on_change=None):
        self.store = store
        self.queue = BoundedJobQueue(queue_limit)
        self.tenant_budget_bytes = tenant_budget_bytes
        self.on_change = on_change
        self._lock = threading.Lock()
        self._jobs = {}                     # id -> Job
        self._by_key = {}                   # active key -> job id
        self._tenant_frames = {}            # tenant -> [frame name, ...]
        self._ids = itertools.count(1)

    # -- submission ----------------------------------------------------------

    def _new_job(self, kind, key, fingerprint, grid_dict, tenant,
                 options=None):
        job = Job(
            id=f"job-{next(self._ids)}",
            kind=kind,
            key=key,
            fingerprint=fingerprint,
            grid=grid_dict,
            grid_name=grid_dict.get("name", "sweep"),
            tenant=tenant,
            options=options,
        )
        return job

    def submit(self, kind, fingerprint, grid_dict, tenant, options=None):
        """Admit one submission; returns ``(job, deduped, cached)``.

        Order of precedence: an *active* job with the same key dedups
        (even if the frame cache also holds a result — the active job
        is fresher); otherwise a frame-cache hit answers instantly with
        a ``DONE`` job; otherwise a new job is queued (or
        :class:`QueueFull` is raised).
        """
        key = f"{kind}:{fingerprint}"
        with self._lock:
            active_id = self._by_key.get(key)
            if active_id is not None:
                job = self._jobs[active_id]
                job.submissions += 1
                if tenant not in job.tenants:
                    job.tenants.append(tenant)
                obs_metrics.inc("serve.deduped")
                self._changed(job)
                return job, True, False
        # cache probe outside the registry lock: store reads hit disk
        frame = self.store.load_frame(frame_cache_name(kind, fingerprint))
        with self._lock:
            # re-check: another thread may have admitted the key while
            # we probed the cache
            active_id = self._by_key.get(key)
            if active_id is not None:
                job = self._jobs[active_id]
                job.submissions += 1
                if tenant not in job.tenants:
                    job.tenants.append(tenant)
                obs_metrics.inc("serve.deduped")
                self._changed(job)
                return job, True, False
            if frame is not None:
                job = self._new_job(kind, key, fingerprint, grid_dict,
                                    tenant, options)
                job.state = DONE
                job.cached = True
                job.finished = time.time()
                job.events.append({"event": "done", "cached": True})
                self._jobs[job.id] = job
                obs_metrics.inc("serve.cache.hits")
                self._changed(job)
                return job, False, True
            # fresh work: consumes queue capacity (429 past the bound)
            def make():
                return self._new_job(kind, key, fingerprint, grid_dict,
                                     tenant, options)

            try:
                job, deduped = self.queue.submit(key, make)
            except QueueFull:
                obs_metrics.inc("serve.rejected")
                raise
            if not deduped:
                self._jobs[job.id] = job
                self._by_key[key] = job.id
                obs_metrics.inc("serve.submitted")
            self._changed(job)
            return job, deduped, False

    def claim(self):
        """Next queued job to execute (``None`` when idle)."""
        job = self.queue.claim()
        if job is not None:
            with self._lock:
                job.state = RUNNING
                job.started = time.time()
            self._changed(job)
        return job

    # -- lifecycle events (posted from watcher threads) ----------------------

    def progress(self, job, done, total):
        with self._lock:
            job.progress_done = int(done)
            job.progress_total = int(total)
            job.events.append(
                {"event": "progress", "done": int(done),
                 "total": int(total)}
            )
        self._changed(job)

    def window_event(self, job, info):
        """Append one rolling-window event (``stream`` jobs) for the
        streaming endpoint."""
        with self._lock:
            job.events.append({"event": "window", **dict(info)})
        self._changed(job)

    def complete(self, job, *, simulations=0, frame_bytes=0, cached=False):
        """Mark ``job`` done; retires its dedup window, accounts the
        frame bytes to the owning tenant and enforces that tenant's
        budget."""
        with self._lock:
            job.state = DONE
            job.cached = job.cached or cached
            job.finished = time.time()
            job.simulations = int(simulations)
            job.frame_bytes = int(frame_bytes)
            job.events.append({"event": "done", "cached": job.cached})
            frames = self._tenant_frames.setdefault(job.tenant, [])
            if job.result_name not in frames:
                frames.append(job.result_name)
            self._by_key.pop(job.key, None)
            # retire the dedup window atomically with the key removal
            # (lock order registry -> queue, same as submit)
            self.queue.finish(job.key)
        obs_metrics.inc("serve.completed")
        if simulations:
            obs_metrics.inc("serve.simulations", int(simulations))
        self._enforce_tenant_budget(job.tenant)
        self._changed(job)

    def fail(self, job, error):
        with self._lock:
            job.state = FAILED
            job.finished = time.time()
            job.error = str(error)
            job.events.append({"event": "failed", "error": str(error)})
            self._by_key.pop(job.key, None)
            self.queue.finish(job.key)
        obs_metrics.inc("serve.failed")
        self._changed(job)

    def _changed(self, job):
        if self.on_change is not None:
            self.on_change(job)

    # -- tenant budgets ------------------------------------------------------

    def _enforce_tenant_budget(self, tenant):
        """LRU-evict the tenant's cached frames down to the budget —
        the store's own :meth:`~repro.lab.store.ArtifactStore.gc`
        restricted to the tenant's frame paths (loads refresh mtimes,
        so recently served frames survive)."""
        if self.tenant_budget_bytes is None:
            return None
        with self._lock:
            names = list(self._tenant_frames.get(tenant, ()))
        if not names:
            return None
        paths = [self.store.frame_path(name) for name in names]
        result = self.store.gc(
            max_bytes=self.tenant_budget_bytes, paths=paths
        )
        if result.removed_files:
            obs_metrics.inc("serve.tenant.evictions", result.removed_files)
        return result

    def tenant_usage(self):
        """Per-tenant cached-frame footprint (bytes on disk now)."""
        with self._lock:
            frames = {
                tenant: list(names)
                for tenant, names in self._tenant_frames.items()
            }
        usage = {}
        for tenant, names in frames.items():
            total = 0
            for name in names:
                try:
                    total += self.store.frame_path(name).stat().st_size
                except OSError:
                    pass                      # evicted — costs nothing
            usage[tenant] = total
        return usage

    # -- queries -------------------------------------------------------------

    def get(self, job_id):
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self):
        with self._lock:
            return list(self._jobs.values())

    def counts(self):
        with self._lock:
            counts = dict.fromkeys((QUEUED, RUNNING, DONE, FAILED), 0)
            for job in self._jobs.values():
                counts[job.state] += 1
        return counts
