"""Synthetic post-layout timing model of the customised OpenRISC core.

The paper extracts dynamic timing from a placed-and-routed 28 nm FDSOI
netlist with SDF back-annotation.  Without a PDK, this package provides a
*calibrated synthetic substitute* with the same interfaces and statistics
(see DESIGN.md, substitution table):

- :mod:`repro.timing.profiles` — per (instruction class, pipeline stage)
  dynamic delay caps and data-dependent spreads for the two design variants
  (*conventional* vs. *critical-range optimised*), calibrated against the
  paper's Table I / Table II / Fig. 5 numbers;
- :mod:`repro.timing.excitation` — the value-dependent path excitation
  model: which delay is actually exercised in a given cycle;
- :mod:`repro.timing.netlist` — synthetic path populations per stage and
  class, used for static timing analysis and the Fig. 3 timing profile;
- :mod:`repro.timing.library` — voltage-dependent delay scaling
  (alpha-power law) and the characterised operating points;
- :mod:`repro.timing.design` — ties everything together in a
  :class:`~repro.timing.design.ProcessorDesign`.
"""

from repro.timing.design import DesignVariant, ProcessorDesign, build_design
from repro.timing.excitation import ExcitationModel
from repro.timing.library import CellLibrary, delay_scale_factor
from repro.timing.netlist import SyntheticNetlist
from repro.timing.profiles import DelayProfile, load_profile
from repro.timing.sta import StaticTimingReport, run_sta

__all__ = [
    "DesignVariant",
    "ProcessorDesign",
    "build_design",
    "ExcitationModel",
    "CellLibrary",
    "delay_scale_factor",
    "SyntheticNetlist",
    "DelayProfile",
    "load_profile",
    "StaticTimingReport",
    "run_sta",
]
