"""Processor design bundle: profile + netlist + library + excitation.

A :class:`ProcessorDesign` is what the downstream flows consume: the
characterisation flow runs gate-level simulation against its excitation
model, the evaluation flow checks safety against the same model, and the
benches query its STA period and overheads.
"""

from dataclasses import dataclass, field

from repro.sim.spec import DEFAULT_SPEC, PipelineSpec, get_pipeline_spec
from repro.timing.excitation import ExcitationModel
from repro.timing.library import CellLibrary, REFERENCE_VOLTAGE
from repro.timing.netlist import SyntheticNetlist
from repro.timing.profiles import DelayProfile, DesignVariant, load_profile
from repro.timing.sta import minimum_period


@dataclass
class ProcessorDesign:
    """One implemented variant of the core at one operating point."""

    variant: DesignVariant
    profile: DelayProfile
    netlist: SyntheticNetlist
    library: CellLibrary
    excitation: ExcitationModel
    #: Microarchitecture the design is implemented as.  Part of the
    #: operating point: artifacts (traces, LUTs, models) are keyed per
    #: spec, and the default spec keeps the historical two-tuple keys.
    pipeline_spec: PipelineSpec = field(default_factory=lambda: DEFAULT_SPEC)

    @property
    def name(self):
        base = f"or1k-{self.variant.value}@{self.library.voltage:.2f}V"
        if self.pipeline_spec.is_default:
            return base
        return f"{base}/{self.pipeline_spec.name}"

    @property
    def operating_point(self):
        """Hashable operating-point key: ``(variant, voltage)`` for the
        default microarchitecture, extended with the spec digest for any
        other — so pre-spec artifacts keep their keys byte for byte."""
        base = (self.variant.value, self.library.voltage)
        if self.pipeline_spec.is_default:
            return base
        return base + (self.pipeline_spec.digest,)

    @property
    def static_period_ps(self):
        """STA clock-period bound at this operating point (T_static)."""
        return self.library.scale_delay(self.profile.static_period_ps)

    @property
    def sta_period_from_netlist_ps(self):
        """The same bound, derived from the path population (must agree)."""
        return self.library.scale_delay(minimum_period(self.netlist))

    def at_voltage(self, voltage):
        """The same design characterised at another supply voltage."""
        return build_design(self.variant, voltage=voltage,
                            pipeline_spec=self.pipeline_spec)


def build_design(variant=DesignVariant.CRITICAL_RANGE,
                 voltage=REFERENCE_VOLTAGE, seed=None, pipeline_spec=None):
    """Construct a :class:`ProcessorDesign`.

    Parameters
    ----------
    variant:
        ``DesignVariant.CRITICAL_RANGE`` (the paper's optimised core) or
        ``DesignVariant.CONVENTIONAL``.
    voltage:
        Supply voltage; delays scale by the alpha-power law.
    seed:
        Root seed for the synthetic path population.
    pipeline_spec:
        Microarchitecture: a :class:`~repro.sim.spec.PipelineSpec`, a
        preset name from :data:`~repro.sim.spec.PIPELINE_VARIANTS`, or
        ``None`` for the default machine.
    """
    if isinstance(variant, str):
        variant = DesignVariant(variant)
    spec = get_pipeline_spec(pipeline_spec)
    key = (variant, voltage, seed, spec.digest)
    design = _designs.get(key)
    if design is not None:
        return design
    profile = load_profile(variant)
    library = CellLibrary.at(voltage)
    design = ProcessorDesign(
        variant=variant,
        profile=profile,
        netlist=SyntheticNetlist(profile, seed=seed),
        library=library,
        excitation=ExcitationModel(profile, library=library),
        pipeline_spec=spec,
    )
    if len(_designs) >= _DESIGN_CAPACITY:
        _designs.clear()
    _designs[key] = design
    return design


#: Built designs are deterministic in ``(variant, voltage, seed)`` and
#: immutable once constructed, so the synthetic path population (the
#: expensive part) is shared per process.
_designs = {}
_DESIGN_CAPACITY = 64
