"""Processor design bundle: profile + netlist + library + excitation.

A :class:`ProcessorDesign` is what the downstream flows consume: the
characterisation flow runs gate-level simulation against its excitation
model, the evaluation flow checks safety against the same model, and the
benches query its STA period and overheads.
"""

from dataclasses import dataclass

from repro.timing.excitation import ExcitationModel
from repro.timing.library import CellLibrary, REFERENCE_VOLTAGE
from repro.timing.netlist import SyntheticNetlist
from repro.timing.profiles import DelayProfile, DesignVariant, load_profile
from repro.timing.sta import minimum_period


@dataclass
class ProcessorDesign:
    """One implemented variant of the core at one operating point."""

    variant: DesignVariant
    profile: DelayProfile
    netlist: SyntheticNetlist
    library: CellLibrary
    excitation: ExcitationModel

    @property
    def name(self):
        return f"or1k-{self.variant.value}@{self.library.voltage:.2f}V"

    @property
    def static_period_ps(self):
        """STA clock-period bound at this operating point (T_static)."""
        return self.library.scale_delay(self.profile.static_period_ps)

    @property
    def sta_period_from_netlist_ps(self):
        """The same bound, derived from the path population (must agree)."""
        return self.library.scale_delay(minimum_period(self.netlist))

    def at_voltage(self, voltage):
        """The same design characterised at another supply voltage."""
        return build_design(self.variant, voltage=voltage)


def build_design(variant=DesignVariant.CRITICAL_RANGE,
                 voltage=REFERENCE_VOLTAGE, seed=None):
    """Construct a :class:`ProcessorDesign`.

    Parameters
    ----------
    variant:
        ``DesignVariant.CRITICAL_RANGE`` (the paper's optimised core) or
        ``DesignVariant.CONVENTIONAL``.
    voltage:
        Supply voltage; delays scale by the alpha-power law.
    seed:
        Root seed for the synthetic path population.
    """
    if isinstance(variant, str):
        variant = DesignVariant(variant)
    key = (variant, voltage, seed)
    design = _designs.get(key)
    if design is not None:
        return design
    profile = load_profile(variant)
    library = CellLibrary.at(voltage)
    design = ProcessorDesign(
        variant=variant,
        profile=profile,
        netlist=SyntheticNetlist(profile, seed=seed),
        library=library,
        excitation=ExcitationModel(profile, library=library),
    )
    if len(_designs) >= _DESIGN_CAPACITY:
        _designs.clear()
    _designs[key] = design
    return design


#: Built designs are deterministic in ``(variant, voltage, seed)`` and
#: immutable once constructed, so the synthetic path population (the
#: expensive part) is shared per process.
_designs = {}
_DESIGN_CAPACITY = 64
