"""SDF-lite serialisation of the synthetic netlist.

The paper's flow carries post-layout delays in Standard Delay Format files
between Encounter, Modelsim and the DTA scripts (Fig. 2).  This module
provides a small, self-contained subset of SDF adequate for the synthetic
netlist: one ``IOPATH`` entry per path and one ``SETUPHOLD``/``SKEW``
record per endpoint.  Writing and re-reading a netlist is lossless for the
fields the DTA consumes (round-trip tested).
"""

import re

from repro.sim.trace import Stage
from repro.timing.netlist import EndpointInfo, TimingPath


class SdfError(ValueError):
    """Raised on malformed SDF-lite input."""


_HEADER = "(DELAYFILE (SDFVERSION \"3.0-lite\") (DESIGN \"{design}\")"
_PATH_RE = re.compile(
    r"\(IOPATH\s+(?P<name>\S+)\s+(?P<stage>\w+)\s+(?P<cls>\S+)\s+"
    r"(?P<endpoint>\S+)\s+\((?P<delay>[0-9.]+)\)\)"
)
_ENDPOINT_RE = re.compile(
    r"\(ENDPOINT\s+(?P<name>\S+)\s+(?P<stage>\w+)\s+"
    r"\(SETUP\s+(?P<setup>[0-9.]+)\)\s+\(SKEW\s+(?P<skew>-?[0-9.]+)\)\)"
)


def write_sdf(netlist, design_name="or1k_core"):
    """Serialise paths and endpoints to SDF-lite text."""
    lines = [_HEADER.format(design=design_name)]
    lines.append("  (TIMESCALE 1ps)")
    for endpoint in netlist.endpoints:
        lines.append(
            f"  (ENDPOINT {endpoint.name} {endpoint.stage.name} "
            f"(SETUP {endpoint.setup_ps:.2f}) (SKEW {endpoint.skew_ps:.2f}))"
        )
    for path in netlist.paths:
        lines.append(
            f"  (IOPATH {path.name} {path.stage.name} {path.timing_class} "
            f"{path.endpoint} ({path.delay_ps:.2f}))"
        )
    lines.append(")")
    return "\n".join(lines)


def parse_sdf(text):
    """Parse SDF-lite text; returns ``(paths, endpoints)`` lists."""
    if "DELAYFILE" not in text:
        raise SdfError("not an SDF-lite file (missing DELAYFILE)")
    paths = []
    endpoints = []
    for line in text.splitlines():
        line = line.strip()
        path_match = _PATH_RE.match(line)
        if path_match:
            paths.append(
                TimingPath(
                    name=path_match.group("name"),
                    stage=Stage[path_match.group("stage")],
                    timing_class=path_match.group("cls"),
                    delay_ps=float(path_match.group("delay")),
                    endpoint=path_match.group("endpoint"),
                )
            )
            continue
        endpoint_match = _ENDPOINT_RE.match(line)
        if endpoint_match:
            endpoints.append(
                EndpointInfo(
                    name=endpoint_match.group("name"),
                    stage=Stage[endpoint_match.group("stage")],
                    setup_ps=float(endpoint_match.group("setup")),
                    skew_ps=float(endpoint_match.group("skew")),
                )
            )
    if not paths:
        raise SdfError("SDF-lite file contains no IOPATH entries")
    return paths, endpoints
