"""Voltage-dependent cell library model (28 nm FDSOI flavoured).

The paper evaluates at 0.70 V using fully characterised libraries for
multiple operating points (0.6 V, 0.7 V, ...).  We model delay-vs-voltage
with the alpha-power law

    t_d(V)  ∝  V / (V - V_th)^alpha

normalised to the reference voltage 0.70 V, with ``V_th`` and ``alpha``
calibrated so that the iso-throughput voltage-scaling experiment lands at
the paper's ~70 mV reduction (Sec. IV-B).  All delays elsewhere in the
package are stored at the reference voltage and multiplied by
:func:`delay_scale_factor` when another operating point is requested.
"""

from dataclasses import dataclass

#: Reference (characterisation) supply voltage.
REFERENCE_VOLTAGE = 0.70

#: Alpha-power-law parameters, calibrated (see module docstring).
VTH_VOLTS = 0.45
ALPHA = 1.25

#: Library characterisation grid available "on disk" (paper Fig. 2 mentions
#: 0.6 V, 0.7 V, ... libraries including SRAM macros).
CHARACTERIZED_VOLTAGES = (0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.90)

#: Flip-flop setup time used by the DTA slack accounting, in ps.
SETUP_TIME_PS = 25.0

#: Maximum magnitude of per-endpoint clock skew (useful skew), in ps.
MAX_CLOCK_SKEW_PS = 30.0


class LibraryError(ValueError):
    """Raised for unsupported operating points."""


def _alpha_power(voltage):
    if voltage <= VTH_VOLTS:
        raise LibraryError(
            f"supply voltage {voltage:.3f} V is at or below Vth "
            f"({VTH_VOLTS:.2f} V); no characterised library exists there"
        )
    return voltage / (voltage - VTH_VOLTS) ** ALPHA


def delay_scale_factor(voltage):
    """Delay multiplier at ``voltage`` relative to the 0.70 V reference.

    >>> round(delay_scale_factor(0.70), 3)
    1.0
    """
    return _alpha_power(voltage) / _alpha_power(REFERENCE_VOLTAGE)


@dataclass(frozen=True)
class CellLibrary:
    """One characterised operating point.

    Attributes
    ----------
    voltage:
        Supply voltage in volts.
    delay_scale:
        Delay multiplier relative to the reference library.
    setup_ps / max_skew_ps:
        Endpoint setup time and useful-skew bound at this corner (scaled
        with delay).
    """

    voltage: float
    delay_scale: float
    setup_ps: float
    max_skew_ps: float

    @classmethod
    def at(cls, voltage):
        scale = delay_scale_factor(voltage)
        return cls(
            voltage=voltage,
            delay_scale=scale,
            setup_ps=SETUP_TIME_PS * scale,
            max_skew_ps=MAX_CLOCK_SKEW_PS * scale,
        )

    def scale_delay(self, delay_ps_at_reference):
        """Scale a reference-voltage delay to this operating point."""
        return delay_ps_at_reference * self.delay_scale


def reference_library():
    """The 0.70 V library the paper's evaluation uses."""
    return CellLibrary.at(REFERENCE_VOLTAGE)
