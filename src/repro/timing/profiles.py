"""Calibrated dynamic-delay profiles of the two design variants.

A :class:`DelayProfile` is the ground truth of the synthetic timing model:
for every (instruction timing class, pipeline stage group) it stores the
*dynamic worst-case delay* (the largest delay any operand/state combination
can excite) and the *data-dependent spread* below it.  The dynamic timing
analysis never reads these tables directly — it re-measures them through
gate-level simulation events, exactly like the paper's flow; the tables are
what the measurement should converge to.

Two variants exist (paper Sec. III-A):

- ``critical_range`` — the design synthesised with Design Compiler's
  critical-range optimisation and path over-constraining.  Its EX-stage
  class delays are calibrated to the paper's Table II; its STA period is
  2026 ps.
- ``conventional`` — the same RTL with a standard implementation flow.  It
  exhibits the *timing wall*: per-class dynamic worst cases bunch close to
  its (9 % faster) STA period of ~1859 ps.  The per-class ratios reproduce
  Table I.

All delays are at the 0.70 V reference library.
"""

import enum
from dataclasses import dataclass, field

from repro.isa.classes import all_timing_classes
from repro.isa.opcodes import SPECS, InstructionKind
from repro.sim.trace import Stage


class DesignVariant(enum.Enum):
    """Implementation flavour (paper Sec. III-A)."""

    CONVENTIONAL = "conventional"
    CRITICAL_RANGE = "critical_range"


#: Pseudo timing class used for pipeline bubbles in LUTs and attribution.
BUBBLE_CLASS = "<bubble>"


@dataclass(frozen=True)
class DelaySpec:
    """Dynamic worst-case delay and data-dependent spread, in ps."""

    max_ps: float
    spread_ps: float

    def scaled(self, factor, cap=None):
        max_ps = self.max_ps * factor
        if cap is not None:
            max_ps = min(max_ps, cap)
        return DelaySpec(round(max_ps, 1), round(self.spread_ps * factor, 1))


# ---------------------------------------------------------------------------
# Critical-range (optimised) variant: EX-stage worst cases per class.
# Entries marked [T2] are taken directly from the paper's Table II.
# ---------------------------------------------------------------------------

_EX_OPTIMIZED = {
    "l.add(i)": DelaySpec(1467.0, 270.0),   # [T2]
    "l.and(i)": DelaySpec(1482.0, 240.0),   # [T2]
    "l.or(i)": DelaySpec(1490.0, 240.0),
    "l.xor(i)": DelaySpec(1514.0, 240.0),   # [T2]
    "l.sub": DelaySpec(1496.0, 270.0),      # subtract: carry-in inversion
    "l.sll(i)": DelaySpec(1270.0, 250.0),   # [T2]
    "l.srl(i)": DelaySpec(1265.0, 250.0),
    "l.sra(i)": DelaySpec(1276.0, 250.0),
    "l.ror(i)": DelaySpec(1262.0, 250.0),
    "l.mul(i)": DelaySpec(1899.0, 300.0),   # [T2]; ~300 ps spread (Fig. 7)
    "l.div": DelaySpec(1310.0, 200.0),      # per-cycle serial-divider step
    "l.lwz": DelaySpec(1391.0, 240.0),      # [T2]
    # sub-word accesses add byte-enable decode to the request path
    "l.lbz": DelaySpec(1452.0, 240.0),
    "l.lhz": DelaySpec(1448.0, 240.0),
    # stores drive both address and data into the SRAM write pins
    "l.sw": DelaySpec(1502.0, 240.0),
    "l.sb": DelaySpec(1512.0, 240.0),
    # compare: subtract plus the flag reduction tree into the SR
    "l.sfxx(i)": DelaySpec(1492.0, 260.0),
    "l.bf": DelaySpec(1470.0, 230.0),       # [T2]
    "l.bnf": DelaySpec(1468.0, 230.0),
    "l.j": DelaySpec(905.0, 120.0),         # EX is trivial; ADR dominates
    "l.jr": DelaySpec(1150.0, 140.0),
    "l.movhi": DelaySpec(890.0, 90.0),
    "l.cmov": DelaySpec(1465.0, 220.0),  # ALU result muxed on the SR flag
    "l.extx": DelaySpec(955.0, 100.0),
    "l.nop": DelaySpec(790.0, 60.0),
}

#: Sequential next-pc / instruction-memory address path (ADR group).  The
#: tightly-coupled instruction SRAM's address pins sit behind the pc mux;
#: this path is the limiter whenever the EX instruction is cheap, which is
#: what puts the ADR stage at ~7 % of limiting cycles (Fig. 6).
_ADR_SEQ_OPTIMIZED = DelaySpec(1168.0, 90.0)
#: Redirect path from EX into the instruction-memory address register,
#: excited by taken control transfers.  1172 ps is the paper's l.j entry.
_ADR_REDIRECT_OPTIMIZED = DelaySpec(1172.0, 60.0)   # [T2]
#: Instruction SRAM read (FE group); essentially class-independent.
_FE_OPTIMIZED = DelaySpec(900.0, 70.0)
#: Decode + register-file read (DC group); kept just below the sequential
#: ADR path so weak-EX cycles are attributed to the instruction memory.
_DC_OPTIMIZED = DelaySpec(1140.0, 120.0)
_DC_OPTIMIZED_NOP = DelaySpec(1060.0, 60.0)
#: Mem/control stage: data SRAM response for loads, commit for stores.
_CTRL_OPTIMIZED = {
    "load": DelaySpec(1142.0, 130.0),
    "store": DelaySpec(1120.0, 120.0),
    "other": DelaySpec(1060.0, 110.0),
    "nop": DelaySpec(860.0, 60.0),
}
#: Writeback mux into the register file.
_WB_OPTIMIZED = {
    "write": DelaySpec(880.0, 90.0),
    "nowrite": DelaySpec(760.0, 80.0),
}

#: Per-stage delay when the stage holds a bubble (no instruction).
_BUBBLE_DELAYS_OPTIMIZED = {
    Stage.ADR: 0.0,      # unused: the ADR group is driven by EX (see grouping)
    Stage.FE: 320.0,
    Stage.DC: 310.0,
    Stage.EX: 350.0,
    Stage.CTRL: 330.0,
    Stage.WB: 300.0,
}

#: Endpoint activity when a stage is held by a stall (inputs stable).
_HOLD_DELAY_PS = 150.0

#: STA clock periods (paper: 2026 ps optimised; +9 % over conventional).
_STATIC_OPTIMIZED_PS = 2026.0
_STATIC_CONVENTIONAL_PS = 1859.0

# ---------------------------------------------------------------------------
# Conventional variant: derived from the optimised profile by the inverse of
# the paper's Table I factors (factor = optimised / conventional), with a
# default factor for classes the paper does not list, capped just below the
# conventional STA period (a dynamic delay cannot exceed the static bound).
# ---------------------------------------------------------------------------

#: Table I factors (optimised / conventional), EX-stage classes.
_TABLE1_EX_FACTORS = {
    "l.add(i)": 0.92,
    "l.bf": 0.78,
    "l.bnf": 0.78,
    "l.lwz": 0.85,
    "l.lbz": 0.85,
    "l.lhz": 0.85,
    "l.mul(i)": 1.10,
    "l.sw": 0.85,
    "l.sb": 0.85,
}
_DEFAULT_EX_FACTOR = 0.86
#: l.j factor 0.74 applies to its row maximum, the ADR redirect path.
_ADR_REDIRECT_FACTOR = 0.74
#: l.nop factor 0.78 applies to its row maximum, the sequential ADR path.
_ADR_SEQ_FACTOR = 0.78
_NONEX_FACTOR = 0.88
_CONV_CAP_PS = _STATIC_CONVENTIONAL_PS * 0.995


def _kind_of_class(cls):
    """Representative :class:`InstructionKind` of a timing class."""
    for spec in SPECS.values():
        if spec.timing_class == cls:
            return spec.kind
    raise KeyError(f"unknown timing class {cls!r}")


def _class_writes_rd(cls):
    return any(
        spec.writes_rd for spec in SPECS.values() if spec.timing_class == cls
    )


def _ctrl_category(cls):
    kind = _kind_of_class(cls)
    if kind == InstructionKind.LOAD:
        return "load"
    if kind == InstructionKind.STORE:
        return "store"
    if kind == InstructionKind.NOP:
        return "nop"
    return "other"


@dataclass
class DelayProfile:
    """Ground-truth dynamic delay tables of one design variant."""

    variant: DesignVariant
    static_period_ps: float
    ex: dict
    adr_seq: DelaySpec
    adr_redirect: DelaySpec
    fe: DelaySpec
    dc: dict                     # class -> DelaySpec (with "default")
    ctrl: dict                   # category -> DelaySpec
    wb: dict                     # "write"/"nowrite" -> DelaySpec
    bubble_delays: dict = field(default_factory=dict)
    hold_delay_ps: float = _HOLD_DELAY_PS
    #: Critical-range optimisation cost (paper: 5-13 % area/power).
    area_overhead_percent: float = 0.0
    power_overhead_percent: float = 0.0

    # -- lookup helpers -----------------------------------------------------

    def classes(self):
        return sorted(self.ex)

    def ex_spec(self, cls):
        return self.ex[cls]

    def dc_spec(self, cls):
        return self.dc.get(cls, self.dc["default"])

    def ctrl_spec(self, cls):
        return self.ctrl[_ctrl_category(cls)]

    def wb_spec(self, cls):
        return self.wb["write" if _class_writes_rd(cls) else "nowrite"]

    def adr_spec(self, cls, redirect):
        """ADR-group spec for driver class ``cls`` (see grouping module)."""
        if redirect and _kind_of_class(cls) in (
            InstructionKind.BRANCH,
            InstructionKind.JUMP,
            InstructionKind.JUMP_REG,
        ):
            return self.adr_redirect
        return self.adr_seq

    def stage_spec(self, cls, stage, redirect=False):
        """DelaySpec of (class, stage group); the single lookup used by the
        excitation model and by the ground-truth LUT of the tests."""
        if stage == Stage.ADR:
            return self.adr_spec(cls, redirect)
        if stage == Stage.FE:
            return self.fe
        if stage == Stage.DC:
            return self.dc_spec(cls)
        if stage == Stage.EX:
            return self.ex_spec(cls)
        if stage == Stage.CTRL:
            return self.ctrl_spec(cls)
        if stage == Stage.WB:
            return self.wb_spec(cls)
        raise KeyError(f"unknown stage {stage!r}")

    # -- reference LUT (what a perfect characterisation would extract) ------

    def true_lut_row(self, cls):
        """Worst-case delay per stage group for one class.

        The ADR entry uses the redirect path for control classes, because a
        sufficiently long characterisation observes taken transfers.
        """
        control = _kind_of_class(cls) in (
            InstructionKind.BRANCH,
            InstructionKind.JUMP,
            InstructionKind.JUMP_REG,
        )
        return {
            Stage.ADR: (self.adr_redirect if control else self.adr_seq).max_ps,
            Stage.FE: self.fe.max_ps,
            Stage.DC: self.dc_spec(cls).max_ps,
            Stage.EX: self.ex_spec(cls).max_ps,
            Stage.CTRL: self.ctrl_spec(cls).max_ps,
            Stage.WB: self.wb_spec(cls).max_ps,
        }

    def class_row_max(self, cls):
        """Worst-case delay of a class across all stages (Table I/II view)."""
        row = self.true_lut_row(cls)
        return max(row.values())

    def class_limiting_stage(self, cls):
        """Stage holding the class's worst-case delay (Table II 'Stage')."""
        row = self.true_lut_row(cls)
        return max(row, key=lambda stage: row[stage])


def load_profile(variant):
    """Build the :class:`DelayProfile` for a design variant."""
    if variant == DesignVariant.CRITICAL_RANGE:
        return DelayProfile(
            variant=variant,
            static_period_ps=_STATIC_OPTIMIZED_PS,
            ex=dict(_EX_OPTIMIZED),
            adr_seq=_ADR_SEQ_OPTIMIZED,
            adr_redirect=_ADR_REDIRECT_OPTIMIZED,
            fe=_FE_OPTIMIZED,
            dc={"default": _DC_OPTIMIZED, "l.nop": _DC_OPTIMIZED_NOP},
            ctrl=dict(_CTRL_OPTIMIZED),
            wb=dict(_WB_OPTIMIZED),
            bubble_delays=dict(_BUBBLE_DELAYS_OPTIMIZED),
            area_overhead_percent=9.0,
            power_overhead_percent=8.0,
        )
    if variant == DesignVariant.CONVENTIONAL:
        ex = {}
        for cls, spec in _EX_OPTIMIZED.items():
            factor = _TABLE1_EX_FACTORS.get(cls, _DEFAULT_EX_FACTOR)
            ex[cls] = spec.scaled(1.0 / factor, cap=_CONV_CAP_PS)
        return DelayProfile(
            variant=variant,
            static_period_ps=_STATIC_CONVENTIONAL_PS,
            ex=ex,
            adr_seq=_ADR_SEQ_OPTIMIZED.scaled(1.0 / _ADR_SEQ_FACTOR),
            adr_redirect=_ADR_REDIRECT_OPTIMIZED.scaled(
                1.0 / _ADR_REDIRECT_FACTOR
            ),
            fe=_FE_OPTIMIZED.scaled(1.0 / _NONEX_FACTOR),
            dc={
                "default": _DC_OPTIMIZED.scaled(1.0 / _NONEX_FACTOR),
                "l.nop": _DC_OPTIMIZED_NOP.scaled(1.0 / _NONEX_FACTOR),
            },
            ctrl={
                key: spec.scaled(1.0 / _NONEX_FACTOR)
                for key, spec in _CTRL_OPTIMIZED.items()
            },
            wb={
                key: spec.scaled(1.0 / _NONEX_FACTOR)
                for key, spec in _WB_OPTIMIZED.items()
            },
            bubble_delays={
                stage: delay / _NONEX_FACTOR
                for stage, delay in _BUBBLE_DELAYS_OPTIMIZED.items()
            },
            area_overhead_percent=0.0,
            power_overhead_percent=0.0,
        )
    raise ValueError(f"unknown design variant {variant!r}")


def all_profile_classes():
    """Every timing class a profile must cover (sanity-checked in tests)."""
    return all_timing_classes()
