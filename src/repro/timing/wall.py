"""Timing-wall metrics (paper Fig. 3 and Sec. II-B.1).

A conventionally implemented, well-balanced pipeline concentrates path
delays just below the clock constraint ("timing wall"): the design meets
STA but leaves no dynamic slack for instruction-dependent clock
adjustment.  Critical-range optimisation pulls sub-critical paths down.
These metrics quantify the difference between the two variants.
"""

from dataclasses import dataclass

import numpy as np


@dataclass
class WallProfile:
    """Shape statistics of a path-delay population."""

    variant: str
    num_paths: int
    max_delay_ps: float
    mean_delay_ps: float
    median_delay_ps: float
    #: Fraction of paths within 10 % of the critical path ("the wall").
    near_critical_fraction: float
    #: Fraction of paths below 70 % of the critical path ("short paths").
    short_fraction: float

    def summary(self):
        return (
            f"{self.variant:>14}: {self.num_paths} paths, "
            f"max {self.max_delay_ps:.0f} ps, "
            f"median {self.median_delay_ps:.0f} ps, "
            f"near-critical {100 * self.near_critical_fraction:.1f} %, "
            f"short {100 * self.short_fraction:.1f} %"
        )


def wall_profile(netlist):
    """Compute :class:`WallProfile` statistics for a netlist."""
    delays = np.asarray(netlist.delays(), dtype=float)
    if delays.size == 0:
        raise ValueError("netlist has no paths")
    critical = float(delays.max())
    return WallProfile(
        variant=netlist.variant.value,
        num_paths=int(delays.size),
        max_delay_ps=critical,
        mean_delay_ps=float(delays.mean()),
        median_delay_ps=float(np.median(delays)),
        near_critical_fraction=float(
            (delays >= 0.9 * critical).sum() / delays.size
        ),
        short_fraction=float((delays < 0.7 * critical).sum() / delays.size),
    )


def compare_walls(conventional_netlist, optimized_netlist):
    """Fig. 3 comparison: the optimised variant must have a weaker wall and
    more short paths than the conventional one.  Returns both profiles."""
    conventional = wall_profile(conventional_netlist)
    optimized = wall_profile(optimized_netlist)
    return conventional, optimized
