"""Value-dependent path excitation model.

This module answers the question the paper answers with SDF-annotated
gate-level simulation: *given what is in flight in each pipeline stage in
this cycle, what is the worst data-arrival delay in each endpoint group?*

Model (documented simplifications, cf. DESIGN.md):

- **EX group** delays are strongly instruction- and operand-dependent:
  ``delay = max - spread * (1 - criticality)`` where ``criticality`` is 1.0
  for the class's worst-case operand pattern (e.g. all-ones multiplier
  inputs exercising the full carry tree) and otherwise a deterministic
  value hash in ``[0, 0.97]``.  The same operands at the same program
  location always excite the same paths, as in real hardware.
- **ADR group** (next-pc logic into the instruction-memory address
  register) has two fixed path depths: the sequential increment and the
  redirect path from EX, excited by taken control transfers.  The group is
  *driven* by the EX-stage instruction (see :func:`driver_view`).
- **FE/DC/CTRL/WB groups** are modelled with fixed per-class worst-case
  delays: their logic cones are shallow and data dependence is second
  order.  (This collapses the paper's Fig. 7 non-EX histograms to spikes;
  the EX distributions — where the paper's analysis lives — are preserved.)
- Stages holding **bubbles** have a fixed small delay; **held** stages
  (stall, inputs stable) see no input events and get the hold delay.

The model guarantees ``excited delay <= profile.stage_spec(...).max_ps``
for every cycle, which is the physical invariant the predictive clocking
scheme relies on.
"""

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.isa.opcodes import KIND_CODE, SPECS, InstructionKind
from repro.sim.trace import Stage
from repro.timing.library import reference_library
from repro.timing.profiles import BUBBLE_CLASS
from repro.utils.bitops import WORD_MASK
from repro.utils.rng import hash_to_unit_float

#: Criticality ceiling of non-worst-pattern operands: worst-case patterns
#: are strictly the maximum, so a characterisation that covers them bounds
#: every delay the evaluation can encounter.
HASH_CRITICALITY_CEILING = 0.97


@dataclass(frozen=True)
class ExcitedDelay:
    """Sampled worst data arrival of one endpoint group in one cycle."""

    delay_ps: float
    driver_class: str          # timing class, or BUBBLE_CLASS
    stage: Stage
    redirect: bool = False
    held: bool = False


def driver_view(record, stage):
    """The stage view whose instruction *drives* the endpoint group.

    All groups are driven by their own occupant except ``ADR``: the next-pc
    logic (sequential increment or branch-target redirect) is controlled by
    the EX-stage instruction, so the ADR group's delay — and its LUT
    attribution — keys on the EX occupant.  This mapping is shared by the
    DTA extraction and the clock controller, which makes the prediction
    consistent with the measurement (see DESIGN.md).
    """
    if stage == Stage.ADR:
        return record.view(Stage.EX)
    return record.view(stage)


def _kind_of_mnemonic(mnemonic):
    return SPECS[mnemonic].kind


def is_worst_pattern(mnemonic, a, b, taken=False):
    """True when the operands excite the class's longest path.

    The directed characterisation generator emits these patterns for every
    class so that the extracted LUT converges to the true worst case
    (paper Sec. II-B: "directed semi-random test generation").
    """
    kind = _kind_of_mnemonic(mnemonic)
    if kind == InstructionKind.NOP:
        return True   # constant datapath activity
    if kind in (InstructionKind.JUMP, InstructionKind.JUMP_REG):
        return True   # always-taken transfers exercise the full target path
    if kind == InstructionKind.BRANCH:
        return taken
    if kind in (InstructionKind.ALU, InstructionKind.SETFLAG,
                InstructionKind.MUL):
        return a == WORD_MASK and b == WORD_MASK
    if kind == InstructionKind.DIV:
        return a == WORD_MASK and b == 1
    if kind == InstructionKind.SHIFT:
        return a == WORD_MASK
    if kind in (InstructionKind.LOAD, InstructionKind.STORE):
        return (a & 0xFFFF_FFF0) == 0xFFFF_FFF0
    if kind == InstructionKind.MOVE:
        if mnemonic == "l.movhi":
            return b == 0xFFFF       # effective b operand is the immediate
        return a == WORD_MASK
    raise AssertionError(f"unhandled kind {kind}")


def ex_criticality(mnemonic, a, b, pc, taken=False):
    """Criticality in [0, 1] of the EX-stage excitation for these operands."""
    if a is None or b is None:
        a, b = 0, 0
    if is_worst_pattern(mnemonic, a, b, taken=taken):
        return 1.0
    return HASH_CRITICALITY_CEILING * hash_to_unit_float(
        "ex", mnemonic, a, b, pc
    )


#: Kind-code groups for the vectorized worst-pattern test (one entry per
#: branch of :func:`is_worst_pattern`).
_ALWAYS_WORST_CODES = (
    KIND_CODE[InstructionKind.NOP],
    KIND_CODE[InstructionKind.JUMP],
    KIND_CODE[InstructionKind.JUMP_REG],
)
_ALU_LIKE_CODES = (
    KIND_CODE[InstructionKind.ALU],
    KIND_CODE[InstructionKind.SETFLAG],
    KIND_CODE[InstructionKind.MUL],
)
_MEM_CODES = (
    KIND_CODE[InstructionKind.LOAD],
    KIND_CODE[InstructionKind.STORE],
)
_WORD = np.uint64(0xFFFFFFFF)

#: Divisor of :func:`~repro.utils.rng.hash_to_unit_float`, replicated for
#: the inlined vector loop below.
_TWO_64 = float(1 << 64)

#: Cross-call memo of non-worst-pattern criticalities (key string →
#: value); cleared wholesale when it outgrows the cap.
_EX_HASH_MEMO = {}
_EX_HASH_MEMO_CAP = 1 << 18


def ex_criticality_array(mnemonics, kinds, a, b, pcs, taken):
    """Vectorized :func:`ex_criticality` over per-occurrence arrays.

    ``mnemonics`` is a sequence of mnemonic strings, ``kinds`` the
    matching :data:`~repro.isa.opcodes.KIND_CODE` integers; ``a``/``b``
    are the recorded EX operand values with ``None`` already replaced by
    zero (the scalar path's convention for draining slots).  The worst-
    pattern test is pure array comparisons; only the non-worst occurrences
    hash, deduplicated on ``(mnemonic, a, b, pc)`` — the same dynamic
    operand pattern always excites the same paths, so loops collapse.
    """
    kinds = np.asarray(kinds)
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    taken = np.asarray(taken, dtype=bool)

    worst = np.isin(kinds, _ALWAYS_WORST_CODES)
    worst |= (kinds == KIND_CODE[InstructionKind.BRANCH]) & taken
    worst |= np.isin(kinds, _ALU_LIKE_CODES) & (a == _WORD) & (b == _WORD)
    worst |= (
        (kinds == KIND_CODE[InstructionKind.DIV])
        & (a == _WORD) & (b == np.uint64(1))
    )
    worst |= (kinds == KIND_CODE[InstructionKind.SHIFT]) & (a == _WORD)
    worst |= (
        np.isin(kinds, _MEM_CODES)
        & ((a & np.uint64(0xFFFF_FFF0)) == np.uint64(0xFFFF_FFF0))
    )
    move = kinds == KIND_CODE[InstructionKind.MOVE]
    if move.any():
        movhi = np.fromiter(
            (m == "l.movhi" for m in mnemonics), dtype=bool,
            count=len(mnemonics),
        )
        worst |= move & np.where(
            movhi, b == np.uint64(0xFFFF), a == _WORD
        )

    crit = np.ones(len(kinds), dtype=float)
    nonworst = np.nonzero(~worst)[0]
    if len(nonworst):
        # Inlined, memoised hash_to_unit_float("ex", m, a, b, pc): the
        # blake2b digest of the exact same key string, so values are
        # bit-identical to the scalar path.  The memo is module-global —
        # the same dynamic operand pattern recurs across characterisation
        # and every sweep config of the same program.
        memo = _EX_HASH_MEMO
        if len(memo) > _EX_HASH_MEMO_CAP:
            memo.clear()
        blake = hashlib.blake2b
        from_bytes = int.from_bytes
        a_int = a.tolist()
        b_int = b.tolist()
        pc_int = np.asarray(pcs).tolist()
        values = np.empty(len(nonworst), dtype=float)
        for out, index in enumerate(nonworst.tolist()):
            text = (
                f"ex|{mnemonics[index]}|{a_int[index]}|{b_int[index]}"
                f"|{pc_int[index]}"
            )
            value = memo.get(text)
            if value is None:
                digest = blake(text.encode("utf-8"), digest_size=8).digest()
                value = HASH_CRITICALITY_CEILING * (
                    from_bytes(digest, "little") / _TWO_64
                )
                memo[text] = value
            values[out] = value
        crit[nonworst] = values
    return crit


class ExcitationModel:
    """Samples excited endpoint-group delays for pipeline cycle records.

    Parameters
    ----------
    profile:
        Ground-truth :class:`~repro.timing.profiles.DelayProfile`.
    library:
        Operating point; delays are scaled from the 0.70 V reference.
    """

    def __init__(self, profile, library=None):
        self.profile = profile
        self.library = library if library is not None else reference_library()

    def _scale(self, delay_ps):
        return round(self.library.scale_delay(delay_ps), 3)

    def group_delay(self, record, stage, view=None):
        """Excited delay of one endpoint group in one cycle.

        ``view`` overrides the default-layout :func:`driver_view` slot
        lookup — the spec-aware :meth:`column_delay` passes the column's
        occupant explicitly for machines whose stage indices differ from
        the canonical six-column layout.
        """
        if view is None:
            view = driver_view(record, stage)

        if stage == Stage.ADR:
            return self._adr_delay(record, view)
        if view.is_bubble:
            return ExcitedDelay(
                delay_ps=self._scale(self.profile.bubble_delays[stage]),
                driver_class=BUBBLE_CLASS,
                stage=stage,
            )
        if view.held:
            return ExcitedDelay(
                delay_ps=self._scale(self.profile.hold_delay_ps),
                driver_class=view.timing_class,
                stage=stage,
                held=True,
            )
        if stage == Stage.EX:
            return self._ex_delay(record, view)

        spec = self.profile.stage_spec(view.timing_class, stage)
        return ExcitedDelay(
            delay_ps=self._scale(spec.max_ps),
            driver_class=view.timing_class,
            stage=stage,
        )

    def _adr_delay(self, record, ex_view):
        """ADR group: driven by the EX occupant (redirect) or the sequential
        increment.  A held front end re-presents a stable address."""
        if record.stall:
            driver = (
                ex_view.timing_class
                if not ex_view.is_bubble else BUBBLE_CLASS
            )
            return ExcitedDelay(
                delay_ps=self._scale(self.profile.hold_delay_ps),
                driver_class=driver,
                stage=Stage.ADR,
                held=True,
            )
        if ex_view.is_bubble:
            return ExcitedDelay(
                delay_ps=self._scale(self.profile.adr_seq.max_ps),
                driver_class=BUBBLE_CLASS,
                stage=Stage.ADR,
            )
        spec = self.profile.adr_spec(ex_view.timing_class, record.redirect)
        return ExcitedDelay(
            delay_ps=self._scale(spec.max_ps),
            driver_class=ex_view.timing_class,
            stage=Stage.ADR,
            redirect=record.redirect,
        )

    def _ex_delay(self, record, view):
        spec = self.profile.ex_spec(view.timing_class)
        a, b = record.ex_operands if record.ex_operands else (0, 0)
        crit = ex_criticality(
            view.mnemonic, a, b, view.pc, taken=record.redirect
        )
        delay = spec.max_ps - spec.spread_ps * (1.0 - crit)
        return ExcitedDelay(
            delay_ps=self._scale(delay),
            driver_class=view.timing_class,
            stage=Stage.EX,
        )

    def group_tables(self, class_names):
        """Scaled per-class worst-case delay tables for compiled traces.

        Returns the ingredients of the vectorized ground-truth delay
        matrix (:attr:`repro.dta.compiled.CompiledTrace.delays`): per-class
        columns for the fixed-delay groups, the two ADR paths, and the
        bubble/hold scalars.  Every value goes through the same
        :meth:`_scale` rounding as :meth:`group_delay`, so gathering from
        these tables is bit-identical to the per-record path.  Only the
        data-dependent EX group has no table — its delay depends on the
        operands, not just the class.
        """
        import numpy as np

        fixed_stages = (Stage.FE, Stage.DC, Stage.CTRL, Stage.WB)
        stage_tables = {}
        for stage in fixed_stages:
            column = np.zeros(len(class_names))
            for index, cls in enumerate(class_names):
                if cls == BUBBLE_CLASS:
                    continue   # masked out by the bubble flag
                column[index] = self._scale(
                    self.profile.stage_spec(cls, stage).max_ps
                )
            stage_tables[stage] = column
        adr_redirect = np.empty(len(class_names))
        for index, cls in enumerate(class_names):
            if cls == BUBBLE_CLASS:
                adr_redirect[index] = self._scale(self.profile.adr_seq.max_ps)
                continue
            adr_redirect[index] = self._scale(
                self.profile.adr_spec(cls, True).max_ps
            )
        return {
            "stage": stage_tables,
            "adr_seq": self._scale(self.profile.adr_seq.max_ps),
            "adr_redirect": adr_redirect,
            "hold": self._scale(self.profile.hold_delay_ps),
            "bubble": {
                stage: self._scale(self.profile.bubble_delays[stage])
                for stage in Stage
            },
        }

    def column_delay(self, record, column, spec):
        """Excited delay of one pipeline-spec column in one cycle.

        The spec-aware :meth:`group_delay`: the column's endpoint group is
        ``spec.group_of[column]`` and its driver view is the column's own
        occupant — except the ADR group, which keys on the spec's EX
        column exactly like the canonical layout.  For the default spec
        this is bit-identical to ``group_delay(record, Stage(column))``.
        """
        stage = Stage(spec.group_of[column])
        if stage == Stage.ADR:
            view = record.slots[spec.ex_index]
        else:
            view = record.slots[column]
        return self.group_delay(record, stage, view=view)

    def cycle_delays(self, record):
        """Excited delay of every endpoint group in this cycle."""
        return {stage: self.group_delay(record, stage) for stage in Stage}

    def cycle_max(self, record):
        """The genie-aided minimum safe period for this cycle (Eq. 2 with
        perfect knowledge): the max excited delay across all groups."""
        return max(
            self.group_delay(record, stage).delay_ps for stage in Stage
        )
