"""Static timing analysis over the synthetic netlist.

Conventional STA establishes the clock period from the worst topological
path under worst-case assumptions (paper Eq. 1).  This module reproduces
that step: given a netlist and a candidate period it reports worst
negative slack, the critical path, and per-stage worst paths.
"""

from dataclasses import dataclass, field

from repro.sim.trace import Stage


@dataclass
class PathSlack:
    path_name: str
    stage: Stage
    delay_ps: float
    slack_ps: float


@dataclass
class StaticTimingReport:
    """Result of one STA run."""

    period_ps: float
    critical_path: str
    critical_delay_ps: float
    worst_slack_ps: float
    stage_worst: dict = field(default_factory=dict)   # Stage -> PathSlack
    num_violations: int = 0

    @property
    def meets_timing(self):
        return self.worst_slack_ps >= 0.0

    def summary(self):
        lines = [
            f"STA @ period {self.period_ps:.0f} ps: "
            f"WNS {self.worst_slack_ps:+.1f} ps, "
            f"{self.num_violations} violating path(s)",
            f"critical path: {self.critical_path} "
            f"({self.critical_delay_ps:.0f} ps)",
        ]
        for stage in Stage:
            worst = self.stage_worst.get(stage)
            if worst is not None:
                lines.append(
                    f"  {stage.name:>4}: {worst.delay_ps:7.1f} ps  "
                    f"slack {worst.slack_ps:+7.1f} ps  ({worst.path_name})"
                )
        return "\n".join(lines)


def run_sta(netlist, period_ps=None):
    """Run STA; with ``period_ps=None`` the minimum feasible period is used.

    Returns a :class:`StaticTimingReport`.  ``report.critical_delay_ps`` is
    the design's STA clock-period bound (T_static in the paper).
    """
    critical = max(netlist.paths, key=lambda p: p.delay_ps)
    if period_ps is None:
        period_ps = critical.delay_ps

    stage_worst = {}
    num_violations = 0
    worst_slack = float("inf")
    for path in netlist.paths:
        slack = period_ps - path.delay_ps
        if slack < 0:
            num_violations += 1
        worst_slack = min(worst_slack, slack)
        current = stage_worst.get(path.stage)
        if current is None or path.delay_ps > current.delay_ps:
            stage_worst[path.stage] = PathSlack(
                path_name=path.name,
                stage=path.stage,
                delay_ps=path.delay_ps,
                slack_ps=slack,
            )
    return StaticTimingReport(
        period_ps=period_ps,
        critical_path=critical.name,
        critical_delay_ps=critical.delay_ps,
        worst_slack_ps=worst_slack,
        stage_worst=stage_worst,
        num_violations=num_violations,
    )


def minimum_period(netlist):
    """The STA lower bound on the clock period (Eq. 1)."""
    return max(p.delay_ps for p in netlist.paths)
