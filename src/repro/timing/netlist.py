"""Synthetic post-layout path population.

The dynamic behaviour of the core is modelled by
:mod:`repro.timing.excitation`; this module models the *static* view the
EDA flow sees: a population of combinational paths per pipeline stage and
instruction class, with endpoint setup times and useful clock skew.  It is
what static timing analysis (:mod:`repro.timing.sta`), the timing-wall
profile of Fig. 3 (:mod:`repro.timing.wall`) and the SDF-lite serialisation
(:mod:`repro.timing.sdf`) operate on.

Construction invariants (checked by tests):

- for every (class, stage) group, the longest generated path is slightly
  *above* the dynamic worst case of the profile (static analysis is
  pessimistic: it cannot know that the topological worst case is not
  dynamically excitable — the core premise of the paper);
- the overall longest path equals the profile's STA period exactly (it
  belongs to the multiplier's EX cone);
- conventional-variant path delays bunch near the critical path (the
  "timing wall"), critical-range paths are pulled down.
"""

from dataclasses import dataclass

import numpy as np

from repro.sim.trace import Stage
from repro.timing.library import MAX_CLOCK_SKEW_PS, SETUP_TIME_PS
from repro.timing.profiles import DesignVariant
from repro.utils.rng import RngStream
from repro.utils.stats import Histogram

#: Topological margin of the longest path of a group above the dynamic
#: worst case (STA pessimism for non-critical cones).
TOPOLOGICAL_MARGIN = 1.03

#: Number of generated paths per (stage, class) group.
PATHS_PER_GROUP = 40
#: Paths in class-independent groups (fetch, writeback...).
PATHS_PER_SHARED_GROUP = 160

#: Endpoints per stage group used for event-log generation.
ENDPOINTS_PER_GROUP = 3


@dataclass(frozen=True)
class TimingPath:
    """One combinational path (startpoint cone collapsed)."""

    name: str
    stage: Stage
    timing_class: str        # class whose activity can excite the path
    delay_ps: float          # topological delay incl. endpoint setup
    endpoint: str


@dataclass(frozen=True)
class EndpointInfo:
    """A sequential element (flip-flop or SRAM pin) closing paths."""

    name: str
    stage: Stage
    setup_ps: float
    skew_ps: float           # useful clock skew at the endpoint


class SyntheticNetlist:
    """Path population generated from a :class:`DelayProfile`."""

    def __init__(self, profile, seed=None):
        self.profile = profile
        self.variant = profile.variant
        rng = RngStream(
            f"netlist/{profile.variant.value}",
            root_seed=seed if seed is not None else 0x0DA7E2015,
        )
        self.paths = []
        self.endpoints = []
        self._generate_endpoints(rng)
        self._generate_paths(rng)

    # -- construction -------------------------------------------------------

    def _generate_endpoints(self, rng):
        for stage in Stage:
            for index in range(ENDPOINTS_PER_GROUP):
                name = f"{stage.name.lower()}_reg_{index}"
                skew = rng.uniform(-MAX_CLOCK_SKEW_PS, MAX_CLOCK_SKEW_PS)
                self.endpoints.append(
                    EndpointInfo(
                        name=name,
                        stage=stage,
                        setup_ps=SETUP_TIME_PS,
                        skew_ps=round(skew, 2),
                    )
                )

    def _population_shape(self):
        """Beta-distribution parameters of path-delay spread below the max.

        A conventional flow lets sub-critical paths drift up toward the
        clock constraint (delay recovered into area/power), producing a
        wall: mass near 1.0.  Critical-range optimisation pushes paths
        down: mass well below 1.0.  (Paper Fig. 3.)
        """
        if self.variant == DesignVariant.CONVENTIONAL:
            return 6.0, 1.6
        return 2.0, 4.5

    def _generate_paths(self, rng):
        alpha, beta = self._population_shape()
        endpoint_names = {
            stage: [e.name for e in self.endpoints if e.stage == stage]
            for stage in Stage
        }

        def emit(stage, cls, group_max, count, stream):
            fractions = stream.sample_array("beta", count, a=alpha, b=beta)
            # topological pessimism above the dynamic worst case, but no
            # group may exceed the design's STA period
            top = min(
                group_max * TOPOLOGICAL_MARGIN,
                self.profile.static_period_ps * 0.999,
            )
            for index, fraction in enumerate(fractions):
                delay = max(top * float(fraction), 40.0)
                endpoint = endpoint_names[stage][index % len(
                    endpoint_names[stage])]
                self.paths.append(
                    TimingPath(
                        name=f"{stage.name.lower()}/{cls}/p{index}",
                        stage=stage,
                        timing_class=cls,
                        delay_ps=round(delay, 2),
                        endpoint=endpoint,
                    )
                )
            # the topological worst path of the group
            self.paths.append(
                TimingPath(
                    name=f"{stage.name.lower()}/{cls}/worst",
                    stage=stage,
                    timing_class=cls,
                    delay_ps=round(top, 2),
                    endpoint=endpoint_names[stage][0],
                )
            )

        profile = self.profile
        for cls in profile.classes():
            stream = rng.child(f"ex/{cls}")
            emit(Stage.EX, cls, profile.ex_spec(cls).max_ps,
                 PATHS_PER_GROUP, stream)
            emit(Stage.DC, cls, profile.dc_spec(cls).max_ps,
                 PATHS_PER_GROUP // 4, rng.child(f"dc/{cls}"))
            emit(Stage.CTRL, cls, profile.ctrl_spec(cls).max_ps,
                 PATHS_PER_GROUP // 4, rng.child(f"ctrl/{cls}"))
            emit(Stage.WB, cls, profile.wb_spec(cls).max_ps,
                 PATHS_PER_GROUP // 8, rng.child(f"wb/{cls}"))
        emit(Stage.FE, "shared", profile.fe.max_ps,
             PATHS_PER_SHARED_GROUP, rng.child("fe"))
        emit(Stage.ADR, "shared", profile.adr_seq.max_ps,
             PATHS_PER_SHARED_GROUP // 2, rng.child("adr_seq"))
        emit(Stage.ADR, "redirect", profile.adr_redirect.max_ps,
             PATHS_PER_SHARED_GROUP // 2, rng.child("adr_redirect"))

        # The design's true critical path: the multiplier cone in EX.  Its
        # topological delay IS the STA period; dynamically it is capped at
        # the profile's l.mul worst case (operand conditions assumed by STA
        # never materialise at runtime — the paper's premise).
        self.paths.append(
            TimingPath(
                name="ex/l.mul(i)/critical",
                stage=Stage.EX,
                timing_class="l.mul(i)",
                delay_ps=profile.static_period_ps,
                endpoint=endpoint_names[Stage.EX][0],
            )
        )

    # -- queries ---------------------------------------------------------------

    @property
    def num_paths(self):
        return len(self.paths)

    def delays(self, stage=None):
        """All path delays, optionally restricted to one stage group."""
        return [
            p.delay_ps for p in self.paths
            if stage is None or p.stage == stage
        ]

    def max_delay(self, stage=None):
        return max(self.delays(stage))

    def group_max(self, stage, timing_class):
        delays = [
            p.delay_ps for p in self.paths
            if p.stage == stage and p.timing_class == timing_class
        ]
        if not delays:
            raise KeyError(
                f"no paths for class {timing_class!r} in stage {stage.name}"
            )
        return max(delays)

    def endpoints_for(self, stage):
        return [e for e in self.endpoints if e.stage == stage]

    def delay_histogram(self, num_bins=40, low=0.0, high=None):
        """Path-count histogram over delay (paper Fig. 3)."""
        if high is None:
            high = float(np.ceil(self.max_delay() / 100.0)) * 100.0
        histogram = Histogram(low=low, high=high, num_bins=num_bins)
        histogram.extend(self.delays())
        return histogram
