"""Two-pass assembler, disassembler and program image container.

Benchmarks and characterisation kernels are written in OR1K assembly text
(the paper compiles C with the OpenRISC GCC toolchain; we substitute
hand-written assembly with equivalent instruction mixes, see DESIGN.md).
The assembler produces a :class:`~repro.asm.program.Program` image that the
simulator loads; the disassembler regenerates text from encoded words, and
is used to build the program traces of the characterisation flow.
"""

from repro.asm.assembler import AssemblerError, assemble
from repro.asm.builder import ProgramBuilder
from repro.asm.disassembler import disassemble, disassemble_program
from repro.asm.program import Program

__all__ = [
    "assemble",
    "AssemblerError",
    "disassemble",
    "disassemble_program",
    "Program",
    "ProgramBuilder",
]
