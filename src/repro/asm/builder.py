"""Programmatic assembly builder.

The directed semi-random test generator (paper Fig. 2, "directed semi-random
test generation (Python)") emits instructions programmatically; building
text and re-parsing it would be wasteful there.  ``ProgramBuilder`` provides
a thin, explicit API over the assembler's internals with label support.
"""

from repro.asm.program import Program, TEXT_BASE
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, spec_for
from repro.isa.registers import parse_register


class ProgramBuilder:
    """Accumulates instructions and data words, then emits a Program.

    Label references in control transfers may be forward; they are resolved
    at :meth:`build` time.
    """

    def __init__(self, name="generated", base=TEXT_BASE):
        self.name = name
        self._address = base
        self._entry = base
        self._items = []     # (address, mnemonic, operands-dict, label-ref)
        self._labels = {}

    @property
    def address(self):
        """Address of the next emitted word."""
        return self._address

    def label(self, name):
        """Define a label at the current address."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = self._address
        return self

    def op(self, mnemonic, rd=0, ra=0, rb=0, imm=0, target=None):
        """Emit one instruction.

        ``target`` names a label for pc-relative transfers; the immediate is
        patched during :meth:`build`.  Registers may be given as indices or
        names (``"r3"``).
        """
        spec_for(mnemonic)  # validate early
        self._items.append((
            self._address,
            mnemonic,
            {
                "rd": _reg(rd),
                "ra": _reg(ra),
                "rb": _reg(rb),
                "imm": imm,
            },
            target,
        ))
        self._address += 4
        return self

    def word(self, value):
        """Emit a literal data word at the current address."""
        self._items.append((self._address, ".word", {"imm": value}, None))
        self._address += 4
        return self

    def org(self, address):
        """Move the emission address (no fill)."""
        if address % 4:
            raise ValueError(f"unaligned .org address {address:#x}")
        self._address = address
        return self

    def entry(self, address=None):
        """Set the entry point (defaults to the current address)."""
        self._entry = self._address if address is None else address
        return self

    def nop_halt(self):
        """Emit the simulator halt convention (``l.nop 0x1``)."""
        return self.op("l.nop", imm=1)

    def build(self):
        """Resolve labels and produce the :class:`Program`."""
        program = Program(name=self.name, entry=self._entry)
        for address, mnemonic, fields, target in self._items:
            if mnemonic == ".word":
                program.add_word(address, fields["imm"] & 0xFFFFFFFF)
                continue
            imm = fields["imm"]
            if target is not None:
                if target not in self._labels:
                    raise ValueError(f"undefined label {target!r}")
                spec = spec_for(mnemonic)
                if spec.fmt not in (Format.J, Format.BRANCH):
                    raise ValueError(
                        f"{mnemonic} cannot take a label target"
                    )
                imm = (self._labels[target] - address) // 4
            instruction = Instruction(
                mnemonic, rd=fields["rd"], ra=fields["ra"],
                rb=fields["rb"], imm=imm,
            )
            program.add_word(address, encode(instruction), instruction)
        program.symbols = dict(self._labels)
        return program


def _reg(value):
    if isinstance(value, str):
        return parse_register(value)
    return value
