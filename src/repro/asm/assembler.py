"""Two-pass assembler for the implemented ORBIS32 subset.

Supported syntax (one statement per line)::

    # comment            ; comment styles: '#' and ';'
    label:               ; labels, optionally followed by a statement
    .org 0x100           ; set the current assembly address
    .text / .data        ; switch section (text at 0x0, data at 0x10000)
    .align 4             ; align to a power-of-two byte boundary
    .word 1, 2, sym+4    ; emit literal words (expressions allowed)
    .space 64            ; reserve zero-filled bytes
    .equ NAME, expr      ; define an absolute symbol
    l.addi  r3,r3,-1     ; instructions, operands comma-separated
    l.lwz   r4,8(r2)     ; load/store displacement syntax
    l.movhi r5,hi(table) ; hi()/lo() relocation operators
    l.bf    loop         ; branch/jump targets as labels or expressions

Expressions support ``+ - * ( )``, decimal/hex/binary literals, ``'c'``
character literals, symbols, and ``hi()/lo()``.
"""

import re

from repro.asm.program import DATA_BASE, Program, TEXT_BASE
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, spec_for
from repro.isa.registers import parse_register


class AssemblerError(ValueError):
    """Assembly failure, annotated with the source line number."""

    def __init__(self, message, line_number=None, line_text=None):
        location = f" (line {line_number}: {line_text!r})" if line_number else ""
        super().__init__(f"{message}{location}")
        self.line_number = line_number


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_MEM_OPERAND_RE = re.compile(r"^(.*)\(\s*([A-Za-z]\w*)\s*\)$")
_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)"
    r"|(?P<char>'(?:\\.|[^'\\])')"
    r"|(?P<name>[A-Za-z_.$][\w.$]*)"
    r"|(?P<op>[-+*()]))"
)


class _ExpressionEvaluator:
    """Tiny recursive-descent evaluator for operand expressions."""

    def __init__(self, text, symbols):
        self.tokens = self._tokenize(text)
        self.pos = 0
        self.symbols = symbols

    @staticmethod
    def _tokenize(text):
        tokens = []
        index = 0
        while index < len(text):
            match = _TOKEN_RE.match(text, index)
            if not match:
                remainder = text[index:].strip()
                if not remainder:
                    break
                raise AssemblerError(f"cannot tokenize expression at {remainder!r}")
            index = match.end()
            if match.lastgroup == "num":
                tokens.append(("num", int(match.group("num"), 0)))
            elif match.lastgroup == "char":
                literal = match.group("char")[1:-1]
                value = ord(literal[-1]) if literal.startswith("\\") else ord(literal)
                tokens.append(("num", value))
            elif match.lastgroup == "name":
                tokens.append(("name", match.group("name")))
            else:
                tokens.append(("op", match.group("op")))
        return tokens

    def _peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else (None, None)

    def _next(self):
        token = self._peek()
        self.pos += 1
        return token

    def evaluate(self):
        value = self._expr()
        if self.pos != len(self.tokens):
            raise AssemblerError(f"trailing tokens in expression: {self.tokens[self.pos:]}")
        return value

    def _expr(self):
        value = self._term()
        while self._peek() == ("op", "+") or self._peek() == ("op", "-"):
            _, op = self._next()
            rhs = self._term()
            value = value + rhs if op == "+" else value - rhs
        return value

    def _term(self):
        value = self._unary()
        while self._peek() == ("op", "*"):
            self._next()
            value = value * self._unary()
        return value

    def _unary(self):
        kind, token = self._peek()
        if (kind, token) == ("op", "-"):
            self._next()
            return -self._unary()
        if (kind, token) == ("op", "+"):
            self._next()
            return self._unary()
        return self._atom()

    def _atom(self):
        kind, token = self._next()
        if kind == "num":
            return token
        if kind == "op" and token == "(":
            value = self._expr()
            if self._next() != ("op", ")"):
                raise AssemblerError("unbalanced parentheses in expression")
            return value
        if kind == "name":
            lowered = token.lower()
            if lowered in ("hi", "lo") and self._peek() == ("op", "("):
                self._next()
                inner = self._expr()
                if self._next() != ("op", ")"):
                    raise AssemblerError(f"unbalanced parentheses after {token}()")
                # hi()/lo() pair with the l.movhi + l.ori idiom (l.ori
                # zero-extends), so hi() is the plain upper half-word.
                if lowered == "hi":
                    return (inner >> 16) & 0xFFFF
                return inner & 0xFFFF
            if token not in self.symbols:
                raise AssemblerError(f"undefined symbol {token!r}")
            return self.symbols[token]
        raise AssemblerError(f"unexpected token in expression: {token!r}")


def _evaluate(text, symbols):
    return _ExpressionEvaluator(text, symbols).evaluate()


def _split_operands(text):
    """Split an operand string on top-level commas."""
    operands = []
    depth = 0
    current = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


class _Statement:
    """One parsed source statement, retained between the two passes."""

    def __init__(self, line_number, text, labels, mnemonic, operands):
        self.line_number = line_number
        self.text = text
        self.labels = labels
        self.mnemonic = mnemonic
        self.operands = operands
        self.address = None


def _parse_lines(source):
    statements = []
    pending_labels = []
    for line_number, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#")[0].split(";")[0].strip()
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            pending_labels.append(match.group(1))
            line = line[match.end():].strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0]
        operand_text = parts[1] if len(parts) > 1 else ""
        statements.append(
            _Statement(
                line_number, raw.strip(), pending_labels,
                mnemonic, _split_operands(operand_text),
            )
        )
        pending_labels = []
    if pending_labels:
        # trailing labels refer to the end of the program
        statements.append(_Statement(0, "", pending_labels, None, []))
    return statements


def _statement_size(statement, symbols):
    """Size in bytes occupied by a statement (pass 1)."""
    mnemonic = statement.mnemonic
    if mnemonic is None:
        return 0
    if mnemonic == ".word":
        return 4 * max(len(statement.operands), 1)
    if mnemonic == ".space":
        return _evaluate(statement.operands[0], symbols)
    if mnemonic.startswith("."):
        return 0
    return 4


def assemble(source, name="program", entry_symbol=None):
    """Assemble OR1K source text into a :class:`Program`.

    Parameters
    ----------
    source:
        Assembly text.
    name:
        Program name carried into reports.
    entry_symbol:
        Optional symbol to use as the entry point (default: start of text).
    """
    statements = _parse_lines(source)
    symbols = {}

    # -- pass 1: assign addresses -----------------------------------------
    address = TEXT_BASE
    section_addresses = {".text": TEXT_BASE, ".data": DATA_BASE}
    current_section = ".text"
    for statement in statements:
        mnemonic = statement.mnemonic
        try:
            if mnemonic == ".org":
                address = _evaluate(statement.operands[0], symbols)
            elif mnemonic in (".text", ".data"):
                section_addresses[current_section] = address
                current_section = mnemonic
                address = section_addresses[current_section]
            elif mnemonic == ".align":
                alignment = _evaluate(statement.operands[0], symbols)
                if alignment <= 0 or alignment & (alignment - 1):
                    raise AssemblerError(f".align needs a power of two, got {alignment}")
                address = (address + alignment - 1) & ~(alignment - 1)
            elif mnemonic == ".equ":
                if len(statement.operands) != 2:
                    raise AssemblerError(".equ needs NAME, VALUE")
                symbols[statement.operands[0]] = _evaluate(
                    statement.operands[1], symbols
                )
            for label in statement.labels:
                if label in symbols:
                    raise AssemblerError(f"duplicate label {label!r}")
                symbols[label] = address
            statement.address = address
            address += _statement_size(statement, symbols)
        except AssemblerError as err:
            raise AssemblerError(
                str(err), statement.line_number, statement.text
            ) from None

    # -- pass 2: encode -----------------------------------------------------
    program = Program(name=name)
    for statement in statements:
        mnemonic = statement.mnemonic
        if mnemonic is None or mnemonic in (".org", ".text", ".data",
                                            ".align", ".equ", ".global"):
            continue
        try:
            if mnemonic == ".word":
                for offset, operand in enumerate(statement.operands):
                    value = _evaluate(operand, symbols) & 0xFFFFFFFF
                    program.add_word(statement.address + 4 * offset, value)
            elif mnemonic == ".space":
                size = _evaluate(statement.operands[0], symbols)
                for offset in range(0, size, 4):
                    program.add_word(statement.address + offset, 0)
            elif mnemonic.startswith("."):
                raise AssemblerError(f"unknown directive {mnemonic!r}")
            else:
                instruction = _parse_instruction(
                    mnemonic, statement.operands, statement.address, symbols
                )
                program.add_word(
                    statement.address, encode(instruction), instruction
                )
        except AssemblerError as err:
            raise AssemblerError(
                str(err), statement.line_number, statement.text
            ) from None

    program.symbols = symbols
    if entry_symbol is not None:
        program.entry = program.symbol(entry_symbol)
    elif "start" in symbols:
        program.entry = symbols["start"]
    elif "_start" in symbols:
        program.entry = symbols["_start"]
    return program


def _parse_instruction(mnemonic, operands, address, symbols):
    try:
        spec = spec_for(mnemonic)
    except KeyError as err:
        raise AssemblerError(str(err)) from None
    fmt = spec.fmt

    def expect(count):
        if len(operands) != count:
            raise AssemblerError(
                f"{mnemonic} expects {count} operand(s), got {len(operands)}"
            )

    def reg(text):
        try:
            return parse_register(text)
        except ValueError as err:
            raise AssemblerError(str(err)) from None

    def value(text):
        return _evaluate(text, symbols)

    def pc_relative(text):
        target = value(text)
        delta = target - address
        if delta % 4 != 0:
            raise AssemblerError(f"branch target not word aligned: {text}")
        return delta // 4

    if fmt in (Format.J, Format.BRANCH):
        expect(1)
        return Instruction(mnemonic, imm=pc_relative(operands[0]))
    if fmt == Format.JR:
        expect(1)
        return Instruction(mnemonic, rb=reg(operands[0]))
    if fmt == Format.NOP:
        if len(operands) not in (0, 1):
            raise AssemblerError("l.nop takes at most one operand")
        imm = value(operands[0]) if operands else 0
        return Instruction(mnemonic, imm=imm)
    if fmt == Format.MOVHI:
        expect(2)
        return Instruction(mnemonic, rd=reg(operands[0]), imm=value(operands[1]))
    if fmt == Format.LOAD:
        expect(2)
        imm, base = _parse_displacement(operands[1], symbols)
        return Instruction(mnemonic, rd=reg(operands[0]), ra=base, imm=imm)
    if fmt == Format.STORE:
        expect(2)
        imm, base = _parse_displacement(operands[0], symbols)
        return Instruction(mnemonic, ra=base, rb=reg(operands[1]), imm=imm)
    if fmt in (Format.ALU_IMM, Format.SHIFT_IMM):
        expect(3)
        return Instruction(
            mnemonic, rd=reg(operands[0]), ra=reg(operands[1]),
            imm=value(operands[2]),
        )
    if fmt == Format.SETFLAG_IMM:
        expect(2)
        return Instruction(mnemonic, ra=reg(operands[0]), imm=value(operands[1]))
    if fmt == Format.SETFLAG_REG:
        expect(2)
        return Instruction(mnemonic, ra=reg(operands[0]), rb=reg(operands[1]))
    if fmt == Format.ALU_REG:
        if spec.reads_rb:
            expect(3)
            return Instruction(
                mnemonic, rd=reg(operands[0]), ra=reg(operands[1]),
                rb=reg(operands[2]),
            )
        expect(2)
        return Instruction(mnemonic, rd=reg(operands[0]), ra=reg(operands[1]))
    raise AssertionError(f"unhandled format {fmt}")


def _parse_displacement(text, symbols):
    """Parse a ``disp(rN)`` memory operand into (immediate, base register)."""
    match = _MEM_OPERAND_RE.match(text.strip())
    if not match:
        raise AssemblerError(f"expected displacement operand disp(reg), got {text!r}")
    disp_text = match.group(1).strip() or "0"
    try:
        base = parse_register(match.group(2))
    except ValueError as err:
        raise AssemblerError(str(err)) from None
    return _evaluate(disp_text, symbols), base
