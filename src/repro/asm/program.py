"""Program image produced by the assembler and consumed by the simulator.

A :class:`Program` is a flat 32-bit address space image: a mapping from word-
aligned addresses to 32-bit words, a symbol table, an entry point, and — for
text words — the decoded :class:`~repro.isa.instruction.Instruction` so the
simulator does not need to re-decode on every fetch.
"""

from dataclasses import dataclass, field

from repro.isa.encoding import decode

#: Default base address of the text section.
TEXT_BASE = 0x0000_0000
#: Default base address of the data section (above typical text sizes).
DATA_BASE = 0x0001_0000


@dataclass
class Program:
    """An assembled program image."""

    name: str = "program"
    words: dict = field(default_factory=dict)          # addr -> 32-bit word
    instructions: dict = field(default_factory=dict)   # addr -> Instruction
    symbols: dict = field(default_factory=dict)        # name -> address
    entry: int = TEXT_BASE

    def add_word(self, address, word, instruction=None):
        """Place a 32-bit word at a word-aligned address."""
        if address % 4 != 0:
            raise ValueError(f"word address not aligned: {address:#x}")
        if not 0 <= word < (1 << 32):
            raise ValueError(f"not a 32-bit word: {word:#x}")
        if address in self.words:
            raise ValueError(f"address {address:#x} assembled twice")
        self.words[address] = word
        if instruction is not None:
            self.instructions[address] = instruction

    def instruction_at(self, address):
        """Decoded instruction at ``address`` (decoding lazily if needed)."""
        if address in self.instructions:
            return self.instructions[address]
        if address in self.words:
            instruction = decode(self.words[address])
            self.instructions[address] = instruction
            return instruction
        raise KeyError(f"no instruction at {address:#010x}")

    @property
    def text_addresses(self):
        """Sorted addresses holding decoded instructions."""
        return sorted(self.instructions)

    @property
    def size_words(self):
        return len(self.words)

    def symbol(self, name):
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"undefined symbol {name!r} in {self.name}") from None

    def load_into(self, memory):
        """Copy the image into a simulator memory model."""
        for address, word in self.words.items():
            memory.store(address, word, 4)

    def dump(self, limit=None):
        """Human-readable listing (address, word, disassembly)."""
        lines = []
        for index, address in enumerate(sorted(self.words)):
            if limit is not None and index >= limit:
                lines.append(f"... ({len(self.words) - limit} more words)")
                break
            word = self.words[address]
            if address in self.instructions:
                text = self.instructions[address].to_assembly()
            else:
                text = f".word {word:#010x}"
            lines.append(f"{address:08x}: {word:08x}  {text}")
        return "\n".join(lines)
