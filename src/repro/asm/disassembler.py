"""Disassembler: 32-bit words back to canonical assembly text.

Used by the characterisation flow to produce the disassembled program trace
(the ``.das`` file of the paper's flow, Fig. 2) and by debugging listings.
``disassemble_program`` output is round-trippable: reassembling it yields
the identical word image (branch targets are emitted as absolute addresses
and address gaps as ``.org`` directives).
"""

from repro.isa.encoding import EncodingError, decode
from repro.isa.opcodes import Format


def disassemble(word, address=None):
    """Disassemble one word; returns text like ``l.addi r3,r4,-12``.

    For pc-relative control transfers, if ``address`` is given the operand
    is rendered as the absolute target (which is also what the assembler
    accepts), otherwise as the raw word offset.
    """
    instruction = decode(word)
    if address is not None and instruction.spec.fmt in (
        Format.J, Format.BRANCH
    ):
        target = (address + (instruction.imm << 2)) & 0xFFFFFFFF
        return f"{instruction.mnemonic} {target:#010x}"
    return instruction.to_assembly()


def disassemble_program(program, with_addresses=True):
    """Disassemble every word of a program into a listing string.

    With ``with_addresses=False`` the listing is valid assembler input that
    reassembles to the same image.
    """
    lines = []
    previous = None
    for address in sorted(program.words):
        word = program.words[address]
        if not with_addresses and (previous is None or address != previous + 4):
            lines.append(f".org {address:#x}")
        previous = address
        try:
            text = disassemble(word, address)
        except EncodingError:
            text = f".word {word:#010x}"
        if with_addresses:
            lines.append(f"{address:08x}:  {text}")
        else:
            lines.append(text)
    return "\n".join(lines)
