"""Extension E2: online LUT adaptation under PVT drift (paper Sec. V).

The paper closes with: the approach "could be effective in accounting for
other static and dynamic timing variations, for example due to process,
temperature and voltage fluctuations, by (online-)updating of the used
delay prediction table".  This package implements that outlook:

- :mod:`repro.adapt.environment` — a slow delay-drift model (temperature
  swing + supply droop + aging) multiplying all path delays over time;
- :mod:`repro.adapt.online` — an adaptive controller that tracks the drift
  with a monitor (canary) path and rescales the LUT periodically, compared
  against the two static alternatives: a fixed guard band (safe but slow)
  or no guard band (fast but unsafe once the environment drifts).
"""

from repro.adapt.environment import EnvironmentModel
from repro.adapt.online import AdaptiveEvaluationResult, evaluate_with_drift

__all__ = [
    "EnvironmentModel",
    "evaluate_with_drift",
    "AdaptiveEvaluationResult",
]
