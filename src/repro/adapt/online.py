"""Online LUT adaptation: tracking PVT drift with a monitor path.

Three controller configurations are compared under environmental drift:

- ``fixed-none``  — the paper's nominal scheme, no guard band: fastest,
  but unsafe as soon as delays drift above the characterised corner;
- ``fixed-guard`` — a static guard band sized for the worst-case drift
  (the conventional answer): always safe, always slow;
- ``online``      — the paper's conclusion: a replica/monitor path tracks
  the current drift, and the controller rescales the LUT every
  ``update_interval`` cycles (plus a small tracking margin covering the
  drift slope between updates).

The monitor is modelled as measuring the true drift factor with a small
quantisation error, which is how hardware delay monitors behave.
"""

from dataclasses import dataclass, field

from repro.clocking.policies import InstructionLutPolicy
from repro.sim.pipeline import PipelineSimulator
from repro.sim.trace import Stage
from repro.utils.units import ps_to_mhz

#: Resolution of the hardware delay monitor (relative).
MONITOR_RESOLUTION = 0.005


@dataclass
class AdaptiveEvaluationResult:
    """Outcome of one drift-aware evaluation."""

    program_name: str
    scheme: str
    num_cycles: int
    total_time_ps: float
    violations: int = 0
    lut_updates: int = 0
    max_drift_seen: float = 1.0
    periods: list = field(default_factory=list, repr=False)

    @property
    def average_period_ps(self):
        return self.total_time_ps / self.num_cycles

    @property
    def effective_frequency_mhz(self):
        return ps_to_mhz(self.average_period_ps)

    @property
    def is_safe(self):
        return self.violations == 0

    def summary(self):
        return (
            f"{self.program_name} [{self.scheme}]: "
            f"{self.effective_frequency_mhz:.1f} MHz, "
            f"{self.violations} violations, "
            f"{self.lut_updates} LUT updates, "
            f"max drift {self.max_drift_seen:.3f}"
        )


def _monitor_measurement(true_drift):
    """Quantised drift estimate from the replica path monitor."""
    steps = round(true_drift / MONITOR_RESOLUTION)
    return steps * MONITOR_RESOLUTION


def evaluate_with_drift(program, design, lut, environment,
                        scheme="online", update_interval=150,
                        tracking_margin=0.025, max_cycles=2_000_000):
    """Evaluate a program while the environment drifts.

    Parameters
    ----------
    scheme:
        ``"fixed-none"``, ``"fixed-guard"`` or ``"online"`` (see module
        docstring).
    update_interval:
        Cycles between monitor readings / LUT rescales (online scheme).
    tracking_margin:
        Relative margin covering drift between two updates (online scheme).
    """
    if scheme not in ("fixed-none", "fixed-guard", "online"):
        raise ValueError(f"unknown scheme {scheme!r}")

    simulator = PipelineSimulator(program)
    trace = simulator.run(max_cycles=max_cycles)
    policy = InstructionLutPolicy(lut)
    excitation = design.excitation

    if scheme == "fixed-guard":
        static_scale = environment.max_drift(trace.num_cycles)
    else:
        static_scale = 1.0

    result = AdaptiveEvaluationResult(
        program_name=program.name,
        scheme=scheme,
        num_cycles=trace.num_cycles,
        total_time_ps=0.0,
    )

    online_scale = 1.0 + tracking_margin
    for record in trace.records:
        drift = environment.drift(record.cycle)
        result.max_drift_seen = max(result.max_drift_seen, drift)

        if scheme == "online" and record.cycle % update_interval == 0:
            measured = _monitor_measurement(drift)
            online_scale = measured + tracking_margin
            result.lut_updates += 1

        predicted = policy.period_for(record)
        if scheme == "online":
            period = predicted * online_scale
        else:
            period = predicted * static_scale
        result.total_time_ps += period
        result.periods.append(period)

        # ground truth: every excited delay is stretched by the drift
        for stage in Stage:
            excited = excitation.group_delay(record, stage)
            if excited.delay_ps * drift > period + 1e-6:
                result.violations += 1
    return result


def compare_schemes(program, design, lut, environment,
                    update_interval=150, tracking_margin=0.025):
    """Run all three schemes; returns {scheme: result}."""
    return {
        scheme: evaluate_with_drift(
            program, design, lut, environment, scheme=scheme,
            update_interval=update_interval,
            tracking_margin=tracking_margin,
        )
        for scheme in ("fixed-none", "fixed-guard", "online")
    }
