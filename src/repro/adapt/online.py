"""Online LUT adaptation: tracking PVT drift with a monitor path.

Three controller configurations are compared under environmental drift:

- ``fixed-none``  — the paper's nominal scheme, no guard band: fastest,
  but unsafe as soon as delays drift above the characterised corner;
- ``fixed-guard`` — a static guard band sized for the worst-case drift
  (the conventional answer): always safe, always slow;
- ``online``      — the paper's conclusion: a replica/monitor path tracks
  the current drift, and the controller rescales the LUT every
  ``update_interval`` cycles (plus a small tracking margin covering the
  drift slope between updates).

The monitor is modelled as measuring the true drift factor with a small
quantisation error, which is how hardware delay monitors behave.

Two engines produce bit-identical results (held together by
``tests/test_batch_equivalence.py``):

- ``engine="array"`` (default) consumes the compiled-trace arrays: the
  policy prediction is one ``periods_for`` gather, the monitor rescale
  schedule is a ``repeat`` over the update points, and the ground-truth
  safety check is a single comparison against the drift-scaled delay
  matrix;
- ``engine="record"`` is the retained scalar reference: one pipeline
  record at a time, one excitation replay per stage.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.clocking.policies import InstructionLutPolicy
from repro.dta.compiled import get_compiled_trace
from repro.sim.pipeline import PipelineSimulator
from repro.sim.trace import Stage
from repro.utils.units import ps_to_mhz

#: Resolution of the hardware delay monitor (relative).
MONITOR_RESOLUTION = 0.005

#: Pipeline-simulation cycle budget — matches the main evaluation
#: engine's default so the drift adapter shares compiled-trace cache and
#: store entries with sweeps instead of keying a second simulation.
DEFAULT_MAX_CYCLES = 4_000_000

#: Safety tolerance, as in the main evaluation engine.
VIOLATION_TOLERANCE_PS = 1e-6

#: Valid adapter engines.
ENGINES = ("array", "record")

#: Valid schemes.
SCHEMES = ("fixed-none", "fixed-guard", "online")


@dataclass
class AdaptiveEvaluationResult:
    """Outcome of one drift-aware evaluation."""

    program_name: str
    scheme: str
    num_cycles: int
    total_time_ps: float
    violations: int = 0
    lut_updates: int = 0
    max_drift_seen: float = 1.0
    periods: list = field(default_factory=list, repr=False)

    @property
    def average_period_ps(self):
        return self.total_time_ps / self.num_cycles

    @property
    def effective_frequency_mhz(self):
        return ps_to_mhz(self.average_period_ps)

    @property
    def is_safe(self):
        return self.violations == 0

    def summary(self):
        return (
            f"{self.program_name} [{self.scheme}]: "
            f"{self.effective_frequency_mhz:.1f} MHz, "
            f"{self.violations} violations, "
            f"{self.lut_updates} LUT updates, "
            f"max drift {self.max_drift_seen:.3f}"
        )


def _monitor_measurement(true_drift):
    """Quantised drift estimate from the replica path monitor."""
    steps = round(true_drift / MONITOR_RESOLUTION)
    return steps * MONITOR_RESOLUTION


def _check_arguments(scheme, engine):
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}")
    if engine not in ENGINES:
        raise ValueError(f"unknown adapter engine {engine!r}")


def _finish(result, periods):
    """Shared aggregation: both engines reduce the same period sequence
    with the same array operations, so their aggregates are bit-equal."""
    periods = np.asarray(periods, dtype=float)
    result.total_time_ps = float(periods.sum())
    result.periods = periods.tolist()
    return result


def _evaluate_with_drift_impl(program, design, lut, environment,
                              scheme="online", update_interval=150,
                              tracking_margin=0.025,
                              max_cycles=DEFAULT_MAX_CYCLES,
                              engine="array"):
    """The drift-adaptation engine (see :func:`evaluate_with_drift`).

    :class:`repro.api.Session.adapt` runs on this directly; the public
    function below is the legacy shim over the Session.
    """
    _check_arguments(scheme, engine)
    if engine == "record":
        return _evaluate_with_drift_records(
            program, design, lut, environment, scheme, update_interval,
            tracking_margin, max_cycles,
        )
    return _evaluate_with_drift_arrays(
        program, design, lut, environment, scheme, update_interval,
        tracking_margin, max_cycles,
    )


def evaluate_with_drift(program, design, lut, environment,
                        scheme="online", update_interval=150,
                        tracking_margin=0.025, max_cycles=DEFAULT_MAX_CYCLES,
                        engine="array"):
    """Evaluate a program while the environment drifts.

    .. deprecated::
        Legacy shim over :class:`repro.api.Session` (bit-identical); new
        code should use ``Session.adapt``, which returns a columnar
        ``ResultFrame`` over (program, scheme).

    Parameters
    ----------
    scheme:
        ``"fixed-none"``, ``"fixed-guard"`` or ``"online"`` (see module
        docstring).
    update_interval:
        Cycles between monitor readings / LUT rescales (online scheme).
    tracking_margin:
        Relative margin covering drift between two updates (online scheme).
    engine:
        ``"array"`` (compiled-trace, default) or ``"record"`` (scalar
        reference); bit-identical results.
    """
    _check_arguments(scheme, engine)
    from repro.api import Session

    session = Session.for_design(
        design, lut=lut, max_cycles=max_cycles,
        engine="vector" if engine == "array" else "scalar",
    )
    return session.adapt_results(
        [program], environment, [scheme], update_interval, tracking_margin,
    )[0]


def _evaluate_with_drift_arrays(program, design, lut, environment, scheme,
                                update_interval, tracking_margin,
                                max_cycles):
    """Array engine: one compiled trace, a handful of vector operations."""
    compiled = get_compiled_trace(program, design, max_cycles=max_cycles)
    num_cycles = compiled.num_cycles
    drift = environment.drift_array(num_cycles)
    predicted = np.asarray(
        InstructionLutPolicy(lut).periods_for(compiled), dtype=float
    )

    result = AdaptiveEvaluationResult(
        program_name=program.name,
        scheme=scheme,
        num_cycles=num_cycles,
        total_time_ps=0.0,
        max_drift_seen=max(1.0, float(drift.max())) if num_cycles else 1.0,
    )

    if scheme == "online":
        update_cycles = np.arange(0, num_cycles, update_interval)
        scales = np.array([
            _monitor_measurement(float(drift[cycle])) + tracking_margin
            for cycle in update_cycles
        ], dtype=float)
        segment_lengths = np.diff(
            np.append(update_cycles, num_cycles)
        )
        scale = np.repeat(scales, segment_lengths)
        result.lut_updates = len(update_cycles)
        periods = predicted * scale
    else:
        if scheme == "fixed-guard":
            static_scale = environment.max_drift(num_cycles)
        else:
            static_scale = 1.0
        periods = predicted * static_scale

    # ground truth: every excited delay is stretched by the drift
    violating = (
        compiled.delays * drift[:, None]
        > periods[:, None] + VIOLATION_TOLERANCE_PS
    )
    result.violations = int(np.count_nonzero(violating))
    return _finish(result, periods)


def _evaluate_with_drift_records(program, design, lut, environment, scheme,
                                 update_interval, tracking_margin,
                                 max_cycles):
    """Scalar reference: the original per-record walk."""
    simulator = PipelineSimulator(program)
    trace = simulator.run(max_cycles=max_cycles)
    policy = InstructionLutPolicy(lut)
    excitation = design.excitation

    if scheme == "fixed-guard":
        static_scale = environment.max_drift(trace.num_cycles)
    else:
        static_scale = 1.0

    result = AdaptiveEvaluationResult(
        program_name=program.name,
        scheme=scheme,
        num_cycles=trace.num_cycles,
        total_time_ps=0.0,
    )

    periods = []
    online_scale = 1.0 + tracking_margin
    for record in trace.records:
        drift = environment.drift(record.cycle)
        result.max_drift_seen = max(result.max_drift_seen, drift)

        if scheme == "online" and record.cycle % update_interval == 0:
            measured = _monitor_measurement(drift)
            online_scale = measured + tracking_margin
            result.lut_updates += 1

        predicted = policy.period_for(record)
        if scheme == "online":
            period = predicted * online_scale
        else:
            period = predicted * static_scale
        periods.append(period)

        # ground truth: every excited delay is stretched by the drift
        for stage in Stage:
            excited = excitation.group_delay(record, stage)
            if excited.delay_ps * drift > period + VIOLATION_TOLERANCE_PS:
                result.violations += 1
    return _finish(result, periods)


def compare_schemes(program, design, lut, environment,
                    update_interval=150, tracking_margin=0.025,
                    engine="array"):
    """Run all three schemes; returns {scheme: result}.

    .. deprecated::
        Legacy shim over :class:`repro.api.Session` (bit-identical); new
        code should use ``Session.adapt``.

    With the array engine the program is simulated and compiled once (via
    the shared compiled-trace cache) and each scheme costs only its own
    rescale/compare pass.
    """
    _check_arguments(SCHEMES[0], engine)
    from repro.api import Session

    session = Session.for_design(
        design, lut=lut,
        engine="vector" if engine == "array" else "scalar",
    )
    results = session.adapt_results(
        [program], environment, SCHEMES, update_interval, tracking_margin,
    )
    return dict(zip(SCHEMES, results))
