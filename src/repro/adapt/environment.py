"""Slow delay-drift model: temperature, supply droop and aging.

All combinational delays of the core are multiplied by a common
time-varying factor (to first order, PVT variations scale the whole
design's delays together — the same assumption that underlies the paper's
voltage-scaling argument):

    drift(t) = 1 + A_temp * sin(2*pi*t/P_temp + phase)
                 + A_droop * droop(t)          (occasional supply droops)
                 + A_age * t / t_total         (monotonic aging)

The characterisation is taken at drift = 1.0 (nominal conditions); at run
time the excited delays are ``drift(t)`` times larger or smaller, which is
exactly the situation the paper's conclusion targets.
"""

import math
from dataclasses import dataclass

from repro.utils.rng import hash_to_unit_float


@dataclass(frozen=True)
class EnvironmentModel:
    """Deterministic delay-drift profile over a run.

    Attributes
    ----------
    temperature_amplitude:
        Peak relative delay swing from temperature (e.g. 0.04 = ±4 %).
    temperature_period_cycles:
        Thermal time constant, in clock cycles (slow: tens of thousands).
    droop_amplitude:
        Additional delay during a supply droop event.
    droop_every_cycles / droop_length_cycles:
        Droop cadence and duration.
    aging_total:
        Total monotonic delay increase accumulated by ``horizon_cycles``.
    horizon_cycles:
        Reference horizon for the aging ramp.
    seed:
        Phase seed (deterministic).
    """

    temperature_amplitude: float = 0.04
    temperature_period_cycles: int = 6_000
    droop_amplitude: float = 0.03
    droop_every_cycles: int = 5_000
    droop_length_cycles: int = 1_200
    aging_total: float = 0.02
    horizon_cycles: int = 20_000
    seed: int = 1

    def drift(self, cycle):
        """Delay multiplier at a given cycle (1.0 = characterised corner)."""
        phase = 2.0 * math.pi * hash_to_unit_float("env-phase", self.seed)
        temperature = self.temperature_amplitude * math.sin(
            2.0 * math.pi * cycle / self.temperature_period_cycles + phase
        )
        droop = 0.0
        if self.droop_amplitude > 0 and self.droop_every_cycles > 0:
            position = cycle % self.droop_every_cycles
            if position < self.droop_length_cycles:
                # raised-cosine droop pulse
                droop = self.droop_amplitude * 0.5 * (
                    1.0 - math.cos(
                        2.0 * math.pi * position / self.droop_length_cycles
                    )
                )
        aging = self.aging_total * min(cycle / self.horizon_cycles, 1.0)
        return 1.0 + temperature + droop + aging

    def drift_array(self, num_cycles, start=0):
        """Per-cycle drift factors ``[drift(start) .. drift(start+num_cycles-1)]``.

        Bit-identical to calling :meth:`drift` per cycle — the same
        ``math`` operations run per element; only the loop-invariant phase
        hash is hoisted (it dominates the per-call cost).  The ``start``
        offset lets windowed/streaming evaluation reproduce a slice of the
        offline profile exactly: ``drift_array(n)[a:b]`` equals
        ``drift_array(b - a, start=a)``.
        """
        import numpy as np

        phase = 2.0 * math.pi * hash_to_unit_float("env-phase", self.seed)
        two_pi = 2.0 * math.pi
        amplitude = self.temperature_amplitude
        period = self.temperature_period_cycles
        droop_on = self.droop_amplitude > 0 and self.droop_every_cycles > 0
        values = np.empty(num_cycles, dtype=float)
        for cycle in range(start, start + num_cycles):
            temperature = amplitude * math.sin(
                two_pi * cycle / period + phase
            )
            droop = 0.0
            if droop_on:
                position = cycle % self.droop_every_cycles
                if position < self.droop_length_cycles:
                    droop = self.droop_amplitude * 0.5 * (
                        1.0 - math.cos(
                            two_pi * position / self.droop_length_cycles
                        )
                    )
            aging = self.aging_total * min(cycle / self.horizon_cycles, 1.0)
            values[cycle - start] = 1.0 + temperature + droop + aging
        return values

    def max_drift(self, num_cycles):
        """Upper bound on drift over a run (for static guard-band sizing)."""
        return (
            1.0
            + self.temperature_amplitude
            + self.droop_amplitude
            + self.aging_total * min(num_cycles / self.horizon_cycles, 1.0)
        )

    @classmethod
    def nominal(cls):
        """No drift: reproduces the paper's fixed-corner evaluation."""
        return cls(temperature_amplitude=0.0, droop_amplitude=0.0,
                   aging_total=0.0)
