"""Configuration of a DynamicClockAdjustment instance."""

from dataclasses import dataclass

from repro.timing.profiles import DesignVariant


@dataclass
class DcaConfig:
    """Knobs of the end-to-end technique.

    Attributes
    ----------
    variant:
        Design implementation flavour; the paper's technique requires the
        ``CRITICAL_RANGE`` variant for good gains (Sec. II-B.1).
    voltage:
        Supply voltage of the evaluation (paper: 0.70 V).
    policy:
        ``"instruction"`` (the paper's technique), ``"ex-only"``
        (simplified monitor, Sec. IV-A), ``"two-class"`` (guard-banding
        baseline [8]), ``"genie"`` (oracle bound) or ``"static"``.
    generator:
        ``"ideal"``, ``"ring"`` or ``"pll"`` clock-generator model.
    margin_percent:
        Extra guard band on predicted periods.
    min_occurrences:
        Characterisation occurrence threshold for the static fallback.
    check_safety:
        Replay ground-truth delays during evaluation and record violations.
    seed:
        Root seed of the synthetic netlist.
    """

    variant: DesignVariant = DesignVariant.CRITICAL_RANGE
    voltage: float = 0.70
    policy: str = "instruction"
    generator: str = "ideal"
    margin_percent: float = 0.0
    min_occurrences: int = 30
    check_safety: bool = True
    seed: int = None

    POLICIES = ("instruction", "ex-only", "two-class", "genie", "static")
    GENERATORS = ("ideal", "ring", "pll")

    def validate(self):
        if self.policy not in self.POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; choose from {self.POLICIES}"
            )
        if self.generator not in self.GENERATORS:
            raise ValueError(
                f"unknown generator {self.generator!r}; "
                f"choose from {self.GENERATORS}"
            )
        if self.margin_percent < 0:
            raise ValueError("margin_percent cannot be negative")
        return self
