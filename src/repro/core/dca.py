"""Top-level API: instruction-based dynamic clock adjustment.

Typical use::

    from repro.core import DynamicClockAdjustment
    from repro.workloads import get_kernel

    dca = DynamicClockAdjustment()          # build + characterise @ 0.70 V
    result = dca.evaluate(get_kernel("crc32").program())
    print(result.summary())                 # speedup over static clocking

The instance owns the design (timing model + netlist), the characterised
delay LUT and the policy/generator configuration.
"""

from repro.clocking.generator import (
    IdealClockGenerator,
    MultiPLLClockGenerator,
    TunableRingOscillator,
)
from repro.clocking.policies import (
    ExOnlyLutPolicy,
    GeniePolicy,
    InstructionLutPolicy,
    LearnedPolicy,
    StaticClockPolicy,
    TwoClassPolicy,
)
from repro.core.config import DcaConfig
from repro.flow.characterize import _characterize_impl
from repro.flow.evaluate import SweepConfig
from repro.timing.design import build_design
from repro.utils.units import ps_to_mhz


class DynamicClockAdjustment:
    """Characterised core with instruction-based clock adjustment.

    Parameters
    ----------
    config:
        :class:`~repro.core.config.DcaConfig`; defaults reproduce the
        paper's setup (critical-range design, 0.70 V, per-instruction LUT,
        ideal clock generator).
    characterization:
        Optional pre-computed
        :class:`~repro.flow.characterize.CharacterizationResult` to reuse
        (characterisation is the expensive step).
    """

    def __init__(self, config=None, characterization=None, programs=None):
        self.config = (config or DcaConfig()).validate()
        if characterization is not None and characterization.design is not None:
            # the characterised design IS the design under evaluation;
            # reusing it keeps one excitation model (and one compiled-trace
            # cache key) across characterisation and evaluation
            self.design = characterization.design
        else:
            self.design = build_design(
                self.config.variant, voltage=self.config.voltage,
                seed=self.config.seed,
            )
        if characterization is None:
            characterization = _characterize_impl(
                self.design, programs=programs,
                min_occurrences=self.config.min_occurrences,
            )
        self.characterization = characterization
        self.lut = characterization.lut
        self._session = None

    # -- component factories -----------------------------------------------

    def make_policy(self, name=None):
        name = name or self.config.policy
        if name == "instruction":
            return InstructionLutPolicy(self.lut)
        if name == "ex-only":
            return ExOnlyLutPolicy(self.lut)
        if name == "two-class":
            return TwoClassPolicy(self.lut)
        if name == "genie":
            return GeniePolicy(self.design.excitation)
        if name == "static":
            return StaticClockPolicy(self.design.static_period_ps)
        from repro.ml.model import is_learned_spec

        if is_learned_spec(name):
            # trained ML-DFS predictor: "learned:<model.npz>" deploys a
            # serialized model (see repro.ml); loading is cached, and a
            # missing/corrupt file raises ModelError (friendly CLI exit)
            from repro.ml.model import load_policy_model, validate_model_spec

            model = load_policy_model(name)
            validate_model_spec(model, self.design)
            return LearnedPolicy(model, self.design.static_period_ps)
        raise ValueError(f"unknown policy {name!r}")

    def make_generator(self, name=None):
        name = name or self.config.generator
        if name == "ideal":
            return IdealClockGenerator()
        if name == "ring":
            return TunableRingOscillator()
        if name == "pll":
            return MultiPLLClockGenerator()
        raise ValueError(f"unknown generator {name!r}")

    # -- evaluation ----------------------------------------------------------

    @property
    def session(self):
        """The :class:`repro.api.Session` this instance evaluates
        through (characterisation shared, ambient trace store)."""
        if self._session is None:
            from repro.api import Session

            self._session = Session.for_design(
                self.design, characterization=self.characterization,
                min_occurrences=self.config.min_occurrences,
            )
        return self._session

    @property
    def static_frequency_mhz(self):
        """Conventional (STA-limited) clock frequency."""
        return ps_to_mhz(self.design.static_period_ps)

    def evaluate(self, program, policy=None, generator=None,
                 margin_percent=None, check_safety=None):
        """Evaluate one program; returns an EvaluationResult."""
        config = SweepConfig(
            policy=self.make_policy(policy),
            generator=self.make_generator(generator),
            margin_percent=(
                self.config.margin_percent
                if margin_percent is None else margin_percent
            ),
            check_safety=(
                self.config.check_safety
                if check_safety is None else check_safety
            ),
        )
        return self.session.evaluate_results([program], [config])[0][0]

    def evaluate_suite(self, programs, policy=None, generator=None,
                       check_safety=None):
        """Evaluate a list of programs under one policy."""
        config = SweepConfig(
            policy=lambda: self.make_policy(policy),
            generator=self.make_generator(generator),
            margin_percent=self.config.margin_percent,
            check_safety=(
                self.config.check_safety
                if check_safety is None else check_safety
            ),
        )
        return self.session.evaluate_results(list(programs), [config])[0]

    def evaluate_sweep(self, programs, policies=None, generators=None,
                       margins=None, check_safety=None):
        """Sweep programs × policies × generators × margins through the
        batch engine (traces are simulated and compiled once per program).

        Returns ``(configs, results)`` where ``results[i][j]`` is the
        :class:`~repro.flow.evaluate.EvaluationResult` of ``configs[i]``
        on ``programs[j]``.
        """
        policies = list(policies or [self.config.policy])
        generators = list(generators or [self.config.generator])
        margins = list(margins if margins is not None
                       else [self.config.margin_percent])
        check_safety = (
            self.config.check_safety if check_safety is None else check_safety
        )
        configs = [
            SweepConfig(
                policy=(lambda name=policy: self.make_policy(name)),
                generator=self.make_generator(generator),
                margin_percent=margin,
                check_safety=check_safety,
                label=(
                    f"{policy}/{generator}"
                    + (f"/margin={margin:g}%" if margin else "")
                ),
            )
            for policy in policies
            for generator in generators
            for margin in margins
        ]
        results = self.session.evaluate_results(list(programs), configs)
        return configs, results

    def lut_table(self, classes=None):
        """Table II-style rendering of the characterised LUT."""
        return self.lut.render(classes=classes)
