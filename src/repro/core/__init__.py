"""The paper's primary contribution, packaged as one top-level API.

:class:`~repro.core.dca.DynamicClockAdjustment` ties the whole stack
together: build/characterise a design, then evaluate programs under
instruction-based dynamic clock adjustment (or any of the baseline
policies) and derive speed and energy numbers.
"""

from repro.core.dca import DynamicClockAdjustment
from repro.core.config import DcaConfig

__all__ = ["DynamicClockAdjustment", "DcaConfig"]
