"""Instruction specifications for the implemented ORBIS32 subset.

Each :class:`InstructionSpec` describes one mnemonic: its binary format
(major opcode plus any secondary fields, following the OpenRISC 1000
architecture manual), which operands it takes, what kind of operation it
performs, and its *timing class* — the granularity at which the paper's
delay-prediction LUT is indexed (``l.add`` and ``l.addi`` excite the same
adder paths, hence share the class ``l.add(i)``).
"""

import enum
from dataclasses import dataclass, field


class Format(enum.Enum):
    """Binary encoding formats of the implemented subset."""

    J = "j"                    # l.j / l.jal:   opcode | imm26 (pc-relative)
    BRANCH = "branch"          # l.bf / l.bnf:  opcode | imm26 (pc-relative)
    JR = "jr"                  # l.jr / l.jalr: opcode | rB
    NOP = "nop"                # l.nop:         opcode | 0x01 << 24 | imm16
    MOVHI = "movhi"            # l.movhi:       opcode | rD | imm16
    LOAD = "load"              # l.lwz etc.:    opcode | rD | rA | imm16
    STORE = "store"            # l.sw etc.:     opcode | imm split | rA | rB
    ALU_IMM = "alu_imm"        # l.addi etc.:   opcode | rD | rA | imm16
    SHIFT_IMM = "shift_imm"    # l.slli etc.:   0x2E | rD | rA | op2 | L
    SETFLAG_IMM = "sf_imm"     # l.sfeqi etc.:  0x2F | cond | rA | imm16
    ALU_REG = "alu_reg"        # l.add etc.:    0x38 | rD | rA | rB | sub-op
    SETFLAG_REG = "sf_reg"     # l.sfeq etc.:   0x39 | cond | rA | rB


class InstructionKind(enum.Enum):
    """Functional unit / behavioural category of an instruction."""

    ALU = "alu"              # adder / logic ops
    SHIFT = "shift"          # barrel shifter
    MUL = "mul"              # single-cycle 32x32 multiplier
    DIV = "div"              # serial divider (multi-cycle)
    LOAD = "load"            # data-memory read
    STORE = "store"          # data-memory write
    BRANCH = "branch"        # conditional pc-relative branch (on flag)
    JUMP = "jump"            # unconditional pc-relative jump
    JUMP_REG = "jump_reg"    # register-indirect jump
    SETFLAG = "setflag"      # comparison writing the SR flag
    MOVE = "move"            # movhi / cmov / sign-zero extensions
    NOP = "nop"


#: Comparison condition codes shared by l.sfxx and l.sfxxi (bits 25-21).
SF_CONDITIONS = {
    "eq": 0x0,
    "ne": 0x1,
    "gtu": 0x2,
    "geu": 0x3,
    "ltu": 0x4,
    "leu": 0x5,
    "gts": 0xA,
    "ges": 0xB,
    "lts": 0xC,
    "les": 0xD,
}


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one mnemonic.

    Attributes
    ----------
    mnemonic:
        Assembly mnemonic including the ``l.`` prefix.
    fmt:
        Binary :class:`Format`.
    major:
        6-bit major opcode (bits 31-26).
    kind:
        Behavioural :class:`InstructionKind`.
    timing_class:
        Name of the delay-LUT class this mnemonic belongs to.
    secondary:
        Format-specific sub-opcode fields (see ``encoding.py``).
    writes_rd / reads_ra / reads_rb:
        Register-port usage, used by hazard detection and the assembler.
    signed_imm:
        Whether the 16-bit immediate is sign-extended (vs. zero-extended).
    has_delay_slot:
        True for control transfers (OR1K executes one delay-slot
        instruction after every taken or not-taken jump/branch).
    """

    mnemonic: str
    fmt: Format
    major: int
    kind: InstructionKind
    timing_class: str
    secondary: dict = field(default_factory=dict)
    writes_rd: bool = False
    reads_ra: bool = False
    reads_rb: bool = False
    signed_imm: bool = True
    has_delay_slot: bool = False

    @property
    def is_control(self):
        return self.kind in (
            InstructionKind.BRANCH,
            InstructionKind.JUMP,
            InstructionKind.JUMP_REG,
        )

    @property
    def reads_flag(self):
        return self.kind == InstructionKind.BRANCH or self.mnemonic == "l.cmov"

    @property
    def writes_flag(self):
        return self.kind == InstructionKind.SETFLAG


def _alu_reg(mnemonic, op4, timing_class, kind=InstructionKind.ALU,
             sec=0x0, shift_type=None, reads_rb=True):
    secondary = {"op4": op4, "sec": sec}
    if shift_type is not None:
        secondary["shift_type"] = shift_type
    return InstructionSpec(
        mnemonic=mnemonic, fmt=Format.ALU_REG, major=0x38, kind=kind,
        timing_class=timing_class, secondary=secondary,
        writes_rd=True, reads_ra=True, reads_rb=reads_rb,
    )


def _alu_imm(mnemonic, major, timing_class, kind=InstructionKind.ALU,
             signed_imm=True):
    return InstructionSpec(
        mnemonic=mnemonic, fmt=Format.ALU_IMM, major=major, kind=kind,
        timing_class=timing_class, writes_rd=True, reads_ra=True,
        signed_imm=signed_imm,
    )


def _shift_imm(mnemonic, shift_type, timing_class):
    return InstructionSpec(
        mnemonic=mnemonic, fmt=Format.SHIFT_IMM, major=0x2E,
        kind=InstructionKind.SHIFT, timing_class=timing_class,
        secondary={"shift_type": shift_type},
        writes_rd=True, reads_ra=True, signed_imm=False,
    )


def _load(mnemonic, major, timing_class):
    return InstructionSpec(
        mnemonic=mnemonic, fmt=Format.LOAD, major=major,
        kind=InstructionKind.LOAD, timing_class=timing_class,
        writes_rd=True, reads_ra=True,
    )


def _store(mnemonic, major, timing_class):
    return InstructionSpec(
        mnemonic=mnemonic, fmt=Format.STORE, major=major,
        kind=InstructionKind.STORE, timing_class=timing_class,
        reads_ra=True, reads_rb=True,
    )


def _setflag(mnemonic, cond_name, immediate):
    cond = SF_CONDITIONS[cond_name]
    signed = cond_name[-1] == "s" or cond_name in ("eq", "ne")
    if immediate:
        return InstructionSpec(
            mnemonic=mnemonic, fmt=Format.SETFLAG_IMM, major=0x2F,
            kind=InstructionKind.SETFLAG, timing_class="l.sfxx(i)",
            secondary={"cond": cond}, reads_ra=True, signed_imm=signed,
        )
    return InstructionSpec(
        mnemonic=mnemonic, fmt=Format.SETFLAG_REG, major=0x39,
        kind=InstructionKind.SETFLAG, timing_class="l.sfxx(i)",
        secondary={"cond": cond}, reads_ra=True, reads_rb=True,
    )


_SPEC_LIST = [
    # -- control transfers ------------------------------------------------
    InstructionSpec("l.j", Format.J, 0x00, InstructionKind.JUMP, "l.j",
                    has_delay_slot=True),
    InstructionSpec("l.jal", Format.J, 0x01, InstructionKind.JUMP, "l.j",
                    has_delay_slot=True),
    InstructionSpec("l.bnf", Format.BRANCH, 0x03, InstructionKind.BRANCH,
                    "l.bnf", has_delay_slot=True),
    InstructionSpec("l.bf", Format.BRANCH, 0x04, InstructionKind.BRANCH,
                    "l.bf", has_delay_slot=True),
    InstructionSpec("l.jr", Format.JR, 0x11, InstructionKind.JUMP_REG,
                    "l.jr", reads_rb=True, has_delay_slot=True),
    InstructionSpec("l.jalr", Format.JR, 0x12, InstructionKind.JUMP_REG,
                    "l.jr", reads_rb=True, has_delay_slot=True),
    # -- nop / movhi -------------------------------------------------------
    InstructionSpec("l.nop", Format.NOP, 0x05, InstructionKind.NOP, "l.nop",
                    signed_imm=False),
    InstructionSpec("l.movhi", Format.MOVHI, 0x06, InstructionKind.MOVE,
                    "l.movhi", writes_rd=True, signed_imm=False),
    # -- loads --------------------------------------------------------------
    _load("l.lwz", 0x21, "l.lwz"),
    _load("l.lbz", 0x23, "l.lbz"),
    _load("l.lbs", 0x24, "l.lbz"),
    _load("l.lhz", 0x25, "l.lhz"),
    _load("l.lhs", 0x26, "l.lhz"),
    # -- stores -------------------------------------------------------------
    _store("l.sw", 0x35, "l.sw"),
    _store("l.sb", 0x36, "l.sb"),
    _store("l.sh", 0x37, "l.sb"),
    # -- immediate ALU ------------------------------------------------------
    _alu_imm("l.addi", 0x27, "l.add(i)"),
    _alu_imm("l.andi", 0x29, "l.and(i)", signed_imm=False),
    _alu_imm("l.ori", 0x2A, "l.or(i)", signed_imm=False),
    _alu_imm("l.xori", 0x2B, "l.xor(i)"),
    _alu_imm("l.muli", 0x2C, "l.mul(i)", kind=InstructionKind.MUL),
    # -- immediate shifts ---------------------------------------------------
    _shift_imm("l.slli", 0x0, "l.sll(i)"),
    _shift_imm("l.srli", 0x1, "l.srl(i)"),
    _shift_imm("l.srai", 0x2, "l.sra(i)"),
    _shift_imm("l.rori", 0x3, "l.ror(i)"),
    # -- register-register ALU ----------------------------------------------
    _alu_reg("l.add", 0x0, "l.add(i)"),
    _alu_reg("l.addc", 0x1, "l.add(i)"),
    _alu_reg("l.sub", 0x2, "l.sub"),
    _alu_reg("l.and", 0x3, "l.and(i)"),
    _alu_reg("l.or", 0x4, "l.or(i)"),
    _alu_reg("l.xor", 0x5, "l.xor(i)"),
    _alu_reg("l.mul", 0x6, "l.mul(i)", kind=InstructionKind.MUL, sec=0x3),
    _alu_reg("l.div", 0x9, "l.div", kind=InstructionKind.DIV, sec=0x3),
    _alu_reg("l.divu", 0xA, "l.div", kind=InstructionKind.DIV, sec=0x3),
    _alu_reg("l.mulu", 0xB, "l.mul(i)", kind=InstructionKind.MUL, sec=0x3),
    _alu_reg("l.sll", 0x8, "l.sll(i)", kind=InstructionKind.SHIFT,
             shift_type=0x0),
    _alu_reg("l.srl", 0x8, "l.srl(i)", kind=InstructionKind.SHIFT,
             shift_type=0x1),
    _alu_reg("l.sra", 0x8, "l.sra(i)", kind=InstructionKind.SHIFT,
             shift_type=0x2),
    _alu_reg("l.ror", 0x8, "l.ror(i)", kind=InstructionKind.SHIFT,
             shift_type=0x3),
    _alu_reg("l.cmov", 0xE, "l.cmov"),
    _alu_reg("l.exths", 0xC, "l.extx", kind=InstructionKind.MOVE,
             shift_type=0x0, reads_rb=False),
    _alu_reg("l.extbs", 0xC, "l.extx", kind=InstructionKind.MOVE,
             shift_type=0x1, reads_rb=False),
    _alu_reg("l.exthz", 0xC, "l.extx", kind=InstructionKind.MOVE,
             shift_type=0x2, reads_rb=False),
    _alu_reg("l.extbz", 0xC, "l.extx", kind=InstructionKind.MOVE,
             shift_type=0x3, reads_rb=False),
    _alu_reg("l.ff1", 0xF, "l.extx", kind=InstructionKind.MOVE,
             reads_rb=False),
    # -- set-flag comparisons ------------------------------------------------
    _setflag("l.sfeq", "eq", immediate=False),
    _setflag("l.sfne", "ne", immediate=False),
    _setflag("l.sfgtu", "gtu", immediate=False),
    _setflag("l.sfgeu", "geu", immediate=False),
    _setflag("l.sfltu", "ltu", immediate=False),
    _setflag("l.sfleu", "leu", immediate=False),
    _setflag("l.sfgts", "gts", immediate=False),
    _setflag("l.sfges", "ges", immediate=False),
    _setflag("l.sflts", "lts", immediate=False),
    _setflag("l.sfles", "les", immediate=False),
    _setflag("l.sfeqi", "eq", immediate=True),
    _setflag("l.sfnei", "ne", immediate=True),
    _setflag("l.sfgtui", "gtu", immediate=True),
    _setflag("l.sfgeui", "geu", immediate=True),
    _setflag("l.sfltui", "ltu", immediate=True),
    _setflag("l.sfleui", "leu", immediate=True),
    _setflag("l.sfgtsi", "gts", immediate=True),
    _setflag("l.sfgesi", "ges", immediate=True),
    _setflag("l.sfltsi", "lts", immediate=True),
    _setflag("l.sflesi", "les", immediate=True),
]

#: Mapping from mnemonic to its specification.
SPECS = {spec.mnemonic: spec for spec in _SPEC_LIST}

#: Stable small-integer code per :class:`InstructionKind`, used by the
#: vectorized simulation/excitation paths to put kinds into NumPy arrays.
KIND_CODE = {kind: index for index, kind in enumerate(InstructionKind)}

if len(SPECS) != len(_SPEC_LIST):
    raise AssertionError("duplicate mnemonic in instruction spec table")


def spec_for(mnemonic):
    """Look up the :class:`InstructionSpec` for a mnemonic.

    Raises ``KeyError`` with a helpful message for unknown mnemonics.
    """
    try:
        return SPECS[mnemonic]
    except KeyError:
        raise KeyError(
            f"unknown or unimplemented OR1K mnemonic: {mnemonic!r}"
        ) from None
