"""OpenRISC 1000 (ORBIS32 subset) instruction set.

This package provides the ISA substrate for the reproduction: register
definitions, instruction specifications with their real 32-bit encodings,
an encoder/decoder pair, executable semantics, and the mapping from
mnemonics to the *timing classes* used by the delay-prediction LUT of the
paper (e.g. ``l.add`` and ``l.addi`` share the class ``l.add(i)``).
"""

from repro.isa.classes import timing_class, all_timing_classes
from repro.isa.encoding import decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    Format,
    InstructionKind,
    InstructionSpec,
    SPECS,
    spec_for,
)
from repro.isa.registers import (
    REG_COUNT,
    REG_LINK,
    REG_SP,
    REG_ZERO,
    parse_register,
    register_name,
)

__all__ = [
    "Instruction",
    "Format",
    "InstructionKind",
    "InstructionSpec",
    "SPECS",
    "spec_for",
    "encode",
    "decode",
    "timing_class",
    "all_timing_classes",
    "REG_COUNT",
    "REG_ZERO",
    "REG_SP",
    "REG_LINK",
    "parse_register",
    "register_name",
]
