"""The :class:`Instruction` container used throughout the stack.

An ``Instruction`` is a decoded, operand-carrying instance of a mnemonic.
The assembler produces them, the encoder serialises them to 32-bit words,
the pipeline executes them, and the DTA/clocking layers key their delay
lookups on ``instruction.timing_class``.
"""

from dataclasses import dataclass

from repro.isa.classes import timing_class as _timing_class
from repro.isa.opcodes import Format, InstructionKind, spec_for
from repro.isa.registers import register_name


@dataclass(frozen=True)
class Instruction:
    """One decoded OR1K instruction.

    Operand fields that a format does not use stay at their defaults and are
    ignored by the encoder.  ``imm`` is stored as a signed Python integer for
    sign-extended immediates and as an unsigned value for zero-extended ones
    (matching the assembler's view).
    """

    mnemonic: str
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0

    @property
    def spec(self):
        return spec_for(self.mnemonic)

    @property
    def kind(self):
        return self.spec.kind

    @property
    def timing_class(self):
        return _timing_class(self.mnemonic)

    @property
    def is_control(self):
        return self.spec.is_control

    @property
    def has_delay_slot(self):
        return self.spec.has_delay_slot

    def source_registers(self):
        """Registers read by this instruction (for hazard detection)."""
        spec = self.spec
        sources = []
        if spec.reads_ra:
            sources.append(self.ra)
        if spec.reads_rb:
            sources.append(self.rb)
        # l.cmov additionally reads rD's old value only in real HW when the
        # flag selects it; conservatively treat both operands as sources
        # (they are already in the list via ra/rb).
        return sources

    def destination_register(self):
        """Register written by this instruction, or ``None``."""
        if self.spec.writes_rd:
            return self.rd
        return None

    # -- printing -----------------------------------------------------------

    def __str__(self):
        return self.to_assembly()

    def to_assembly(self):
        """Render canonical assembly text, e.g. ``l.addi r3,r4,-12``."""
        spec = self.spec
        fmt = spec.fmt
        if fmt in (Format.J, Format.BRANCH):
            return f"{self.mnemonic} {self.imm}"
        if fmt == Format.JR:
            return f"{self.mnemonic} {register_name(self.rb)}"
        if fmt == Format.NOP:
            if self.imm:
                return f"{self.mnemonic} {self.imm:#x}"
            return self.mnemonic
        if fmt == Format.MOVHI:
            return f"{self.mnemonic} {register_name(self.rd)},{self.imm:#x}"
        if fmt == Format.LOAD:
            return (
                f"{self.mnemonic} {register_name(self.rd)},"
                f"{self.imm}({register_name(self.ra)})"
            )
        if fmt == Format.STORE:
            return (
                f"{self.mnemonic} {self.imm}({register_name(self.ra)}),"
                f"{register_name(self.rb)}"
            )
        if fmt in (Format.ALU_IMM, Format.SHIFT_IMM):
            return (
                f"{self.mnemonic} {register_name(self.rd)},"
                f"{register_name(self.ra)},{self.imm}"
            )
        if fmt == Format.SETFLAG_IMM:
            return f"{self.mnemonic} {register_name(self.ra)},{self.imm}"
        if fmt == Format.SETFLAG_REG:
            return (
                f"{self.mnemonic} {register_name(self.ra)},"
                f"{register_name(self.rb)}"
            )
        if fmt == Format.ALU_REG:
            if not self.spec.reads_rb:
                return (
                    f"{self.mnemonic} {register_name(self.rd)},"
                    f"{register_name(self.ra)}"
                )
            return (
                f"{self.mnemonic} {register_name(self.rd)},"
                f"{register_name(self.ra)},{register_name(self.rb)}"
            )
        raise AssertionError(f"unhandled format {fmt}")


#: Canonical no-operation instruction, used for pipeline bubbles.
NOP = Instruction("l.nop")


def is_memory_kind(instruction):
    """True if the instruction accesses data memory."""
    return instruction.kind in (InstructionKind.LOAD, InstructionKind.STORE)
