"""Executable semantics of the implemented ORBIS32 subset.

The semantics are written as pure functions over operand values so that the
functional ISS and the cycle-accurate pipeline share one implementation:

- :func:`compute` evaluates everything that happens in the execute stage
  (ALU result, effective address, comparison flag, branch decision);
- :func:`load_extract` applies the width/extension rules of the load family
  to data returned by the memory;
- store data/width selection is part of :func:`compute`'s result.

All register values are stored as unsigned 32-bit Python ints.
"""

from dataclasses import dataclass

from repro.isa.opcodes import InstructionKind
from repro.utils.bitops import (
    mask,
    rotate_right32,
    sign_extend,
    to_signed32,
    to_unsigned32,
)


class SemanticsError(ValueError):
    """Raised for semantically invalid execution (e.g. misaligned access)."""


@dataclass
class ComputeResult:
    """Outcome of the execute-stage computation of one instruction.

    Attributes
    ----------
    value:
        Result to write back to ``rd`` (``None`` if no register result or if
        it comes from memory).
    flag:
        New SR flag value (``None`` if unchanged).
    carry:
        New SR carry value (``None`` if unchanged).
    mem_addr / mem_size:
        Effective address and access width in bytes for loads/stores.
    store_value:
        Value (already truncated to width) for stores.
    branch_taken / branch_target:
        Control-transfer decision; ``branch_taken`` is ``None`` for
        non-control instructions.
    link_value:
        Return address written to the link register by ``l.jal``/``l.jalr``.
    """

    value: int = None
    flag: bool = None
    carry: bool = None
    mem_addr: int = None
    mem_size: int = 0
    store_value: int = None
    branch_taken: bool = None
    branch_target: int = None
    link_value: int = None


_LOAD_SIZES = {
    "l.lwz": 4, "l.lbz": 1, "l.lbs": 1, "l.lhz": 2, "l.lhs": 2,
}
_STORE_SIZES = {"l.sw": 4, "l.sb": 1, "l.sh": 2}

#: Size of one instruction and of the branch-delay-slot offset, in bytes.
INSTRUCTION_BYTES = 4


def compute(instruction, a, b, flag, carry, pc):
    """Evaluate ``instruction`` with operand values ``a`` (rA) and ``b`` (rB).

    ``flag`` and ``carry`` are the current SR bits; ``pc`` is the address of
    the instruction itself (used for pc-relative control transfers and link
    values).  Immediates are taken from the instruction; for immediate forms
    the ``b`` argument is ignored.
    """
    mnemonic = instruction.mnemonic
    spec = instruction.spec
    kind = spec.kind
    imm = instruction.imm

    if kind == InstructionKind.NOP:
        return ComputeResult()

    if kind == InstructionKind.ALU:
        return _compute_alu(mnemonic, a, b, imm, flag, carry)
    if kind == InstructionKind.SHIFT:
        return _compute_shift(mnemonic, a, b, imm)
    if kind == InstructionKind.MUL:
        return _compute_mul(mnemonic, a, b, imm)
    if kind == InstructionKind.DIV:
        return _compute_div(mnemonic, a, b)
    if kind == InstructionKind.MOVE:
        return _compute_move(mnemonic, a, imm, flag, b)
    if kind == InstructionKind.SETFLAG:
        rhs = b if instruction.spec.fmt.name == "SETFLAG_REG" else imm
        return ComputeResult(flag=_compare(mnemonic, a, rhs))
    if kind == InstructionKind.LOAD:
        addr = to_unsigned32(a + imm)
        size = _LOAD_SIZES[mnemonic]
        _check_alignment(addr, size)
        return ComputeResult(mem_addr=addr, mem_size=size)
    if kind == InstructionKind.STORE:
        addr = to_unsigned32(a + imm)
        size = _STORE_SIZES[mnemonic]
        _check_alignment(addr, size)
        return ComputeResult(
            mem_addr=addr, mem_size=size, store_value=b & mask(8 * size)
        )
    if kind == InstructionKind.JUMP:
        target = to_unsigned32(pc + (imm << 2))
        link = None
        if mnemonic == "l.jal":
            link = to_unsigned32(pc + 2 * INSTRUCTION_BYTES)
        return ComputeResult(
            branch_taken=True, branch_target=target, link_value=link
        )
    if kind == InstructionKind.JUMP_REG:
        _check_alignment(b, 4)
        link = None
        if mnemonic == "l.jalr":
            link = to_unsigned32(pc + 2 * INSTRUCTION_BYTES)
        return ComputeResult(
            branch_taken=True, branch_target=to_unsigned32(b), link_value=link
        )
    if kind == InstructionKind.BRANCH:
        taken = flag if mnemonic == "l.bf" else not flag
        target = to_unsigned32(pc + (imm << 2))
        return ComputeResult(branch_taken=taken, branch_target=target)
    raise AssertionError(f"unhandled kind {kind}")


def _compute_alu(mnemonic, a, b, imm, flag, carry):
    if mnemonic == "l.addi":
        b = imm
    elif mnemonic == "l.andi":
        b = imm & 0xFFFF
    elif mnemonic == "l.ori":
        b = imm & 0xFFFF
    elif mnemonic == "l.xori":
        b = sign_extend(imm, 16)

    if mnemonic in ("l.add", "l.addi"):
        total = to_unsigned32(a) + to_unsigned32(b)
        return ComputeResult(
            value=to_unsigned32(total), carry=total > mask(32)
        )
    if mnemonic == "l.addc":
        total = to_unsigned32(a) + to_unsigned32(b) + (1 if carry else 0)
        return ComputeResult(
            value=to_unsigned32(total), carry=total > mask(32)
        )
    if mnemonic == "l.sub":
        total = to_unsigned32(a) - to_unsigned32(b)
        return ComputeResult(value=to_unsigned32(total), carry=total < 0)
    if mnemonic in ("l.and", "l.andi"):
        return ComputeResult(value=to_unsigned32(a & b))
    if mnemonic in ("l.or", "l.ori"):
        return ComputeResult(value=to_unsigned32(a | b))
    if mnemonic in ("l.xor", "l.xori"):
        return ComputeResult(value=to_unsigned32(a ^ b))
    if mnemonic == "l.cmov":
        return ComputeResult(value=to_unsigned32(a if flag else b))
    raise AssertionError(f"unhandled ALU mnemonic {mnemonic}")


def _compute_shift(mnemonic, a, b, imm):
    amount = (imm if mnemonic.endswith("i") else b) & 0x1F
    a = to_unsigned32(a)
    if mnemonic in ("l.sll", "l.slli"):
        return ComputeResult(value=to_unsigned32(a << amount))
    if mnemonic in ("l.srl", "l.srli"):
        return ComputeResult(value=a >> amount)
    if mnemonic in ("l.sra", "l.srai"):
        return ComputeResult(value=to_unsigned32(to_signed32(a) >> amount))
    if mnemonic in ("l.ror", "l.rori"):
        return ComputeResult(value=rotate_right32(a, amount))
    raise AssertionError(f"unhandled shift mnemonic {mnemonic}")


def _compute_mul(mnemonic, a, b, imm):
    if mnemonic == "l.muli":
        b = imm
    if mnemonic == "l.mulu":
        product = to_unsigned32(a) * to_unsigned32(b)
    else:
        product = to_signed32(a) * to_signed32(b)
    return ComputeResult(value=to_unsigned32(product))


def _compute_div(mnemonic, a, b):
    # Division by zero does not trap in our configuration (no exception
    # unit); the quotient is architecturally undefined and we define it as
    # all-ones, which is what the mor1kx serial divider produces.
    if to_unsigned32(b) == 0:
        return ComputeResult(value=mask(32))
    if mnemonic == "l.divu":
        return ComputeResult(value=to_unsigned32(a) // to_unsigned32(b))
    quotient = abs(to_signed32(a)) // abs(to_signed32(b))
    if (to_signed32(a) < 0) != (to_signed32(b) < 0):
        quotient = -quotient
    return ComputeResult(value=to_unsigned32(quotient))


def _compute_move(mnemonic, a, imm, flag, b):
    if mnemonic == "l.movhi":
        return ComputeResult(value=to_unsigned32((imm & 0xFFFF) << 16))
    if mnemonic == "l.exths":
        return ComputeResult(value=to_unsigned32(sign_extend(a, 16)))
    if mnemonic == "l.extbs":
        return ComputeResult(value=to_unsigned32(sign_extend(a, 8)))
    if mnemonic == "l.exthz":
        return ComputeResult(value=a & 0xFFFF)
    if mnemonic == "l.extbz":
        return ComputeResult(value=a & 0xFF)
    if mnemonic == "l.ff1":
        a = to_unsigned32(a)
        if a == 0:
            return ComputeResult(value=0)
        return ComputeResult(value=(a & -a).bit_length())
    raise AssertionError(f"unhandled move mnemonic {mnemonic}")


def _compare(mnemonic, a, rhs):
    # mnemonic is e.g. "l.sfgts" / "l.sfgtsi" -> base "gts"
    base = mnemonic.replace("l.sf", "")
    if base.endswith("i"):
        base = base[:-1]
    signed = base.endswith("s") or base in ("eq", "ne")
    if signed:
        lhs, val = to_signed32(a), to_signed32(rhs)
    else:
        lhs, val = to_unsigned32(a), to_unsigned32(rhs)
    if base == "eq":
        return lhs == val
    if base == "ne":
        return lhs != val
    if base in ("gtu", "gts"):
        return lhs > val
    if base in ("geu", "ges"):
        return lhs >= val
    if base in ("ltu", "lts"):
        return lhs < val
    if base in ("leu", "les"):
        return lhs <= val
    raise AssertionError(f"unhandled comparison {mnemonic}")


def load_extract(mnemonic, raw):
    """Apply width/extension rules to raw little-pattern memory data.

    ``raw`` is the unsigned value of the loaded bytes (1, 2 or 4 bytes wide,
    already assembled by the memory model).
    """
    if mnemonic == "l.lwz":
        return to_unsigned32(raw)
    if mnemonic == "l.lbz":
        return raw & 0xFF
    if mnemonic == "l.lbs":
        return to_unsigned32(sign_extend(raw, 8))
    if mnemonic == "l.lhz":
        return raw & 0xFFFF
    if mnemonic == "l.lhs":
        return to_unsigned32(sign_extend(raw, 16))
    raise AssertionError(f"not a load mnemonic: {mnemonic}")


def _check_alignment(addr, size):
    if size > 1 and addr % size != 0:
        raise SemanticsError(
            f"misaligned {size}-byte access at {addr:#010x}"
        )
