"""OR1K general-purpose register file definitions.

The OR1K architecture has 32 GPRs.  ``r0`` is hard-wired to zero by software
convention (the mor1kx core treats writes to ``r0`` as no-ops when the
``rf_wb`` guard is enabled; our simulator does the same).  A handful of ABI
aliases from the OpenRISC ELF psABI are accepted by the assembler.
"""

REG_COUNT = 32

#: Hard-wired zero register (by convention; enforced by the simulator).
REG_ZERO = 0
#: Stack pointer.
REG_SP = 1
#: Frame pointer.
REG_FP = 2
#: Return-value register.
REG_RV = 11
#: Link register written by ``l.jal`` / ``l.jalr``.
REG_LINK = 9

ABI_ALIASES = {
    "zero": REG_ZERO,
    "sp": REG_SP,
    "fp": REG_FP,
    "lr": REG_LINK,
    "rv": REG_RV,
}


def register_name(index):
    """Canonical name (``r0`` .. ``r31``) for a register index."""
    if not 0 <= index < REG_COUNT:
        raise ValueError(f"register index out of range: {index}")
    return f"r{index}"


def parse_register(text):
    """Parse a register name (``r5``, ``R5`` or an ABI alias) to its index."""
    name = text.strip().lower()
    if name in ABI_ALIASES:
        return ABI_ALIASES[name]
    if name.startswith("r") and name[1:].isdigit():
        index = int(name[1:])
        if 0 <= index < REG_COUNT:
            return index
    raise ValueError(f"not a valid register name: {text!r}")
