"""Timing classes: the granularity of the delay-prediction LUT.

The paper characterises worst-case dynamic delay per *instruction type* and
pipeline stage (Table II lists entries such as ``l.add(i)`` covering both the
register and the immediate form, because both excite the same adder paths).
This module owns the mnemonic → class mapping and the canonical ordering used
in reports.
"""

from repro.isa.opcodes import SPECS


def timing_class(mnemonic):
    """Timing class of a mnemonic, e.g. ``timing_class('l.addi') == 'l.add(i)'``."""
    return SPECS[mnemonic].timing_class


def all_timing_classes():
    """Sorted list of every timing class in the implemented subset."""
    return sorted({spec.timing_class for spec in SPECS.values()})


def mnemonics_in_class(cls):
    """All mnemonics that share the timing class ``cls``."""
    members = sorted(
        spec.mnemonic for spec in SPECS.values() if spec.timing_class == cls
    )
    if not members:
        raise KeyError(f"unknown timing class: {cls!r}")
    return members


#: Classes reported in the paper's Table I / Table II, in paper order.
PAPER_TABLE_CLASSES = [
    "l.add(i)",
    "l.and(i)",
    "l.bf",
    "l.j",
    "l.lwz",
    "l.mul(i)",
    "l.nop",
    "l.sll(i)",
    "l.sw",
    "l.xor(i)",
]
