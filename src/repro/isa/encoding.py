"""Binary encoder/decoder for the implemented ORBIS32 subset.

The bit layouts follow the OpenRISC 1000 architecture manual.  ``encode`` and
``decode`` are exact inverses for every representable instruction, which the
test suite verifies exhaustively (per mnemonic) and with property-based
random operands.
"""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import SPECS, Format
from repro.utils.bitops import bits, mask, sign_extend


class EncodingError(ValueError):
    """Raised for out-of-range operands or undecodable words."""


def _check_reg(name, value):
    if not 0 <= value < 32:
        raise EncodingError(f"{name} out of range: {value}")
    return value


def _encode_imm(value, width, signed):
    limit = 1 << (width - 1)
    if signed:
        if not -limit <= value < limit:
            raise EncodingError(
                f"signed immediate {value} does not fit in {width} bits"
            )
    else:
        if not 0 <= value < (1 << width):
            raise EncodingError(
                f"unsigned immediate {value} does not fit in {width} bits"
            )
    return value & mask(width)


def encode(instruction):
    """Encode an :class:`Instruction` into its 32-bit word."""
    spec = instruction.spec
    fmt = spec.fmt
    major = spec.major << 26
    rd = instruction.rd
    ra = instruction.ra
    rb = instruction.rb
    imm = instruction.imm

    if fmt in (Format.J, Format.BRANCH):
        return major | _encode_imm(imm, 26, signed=True)
    if fmt == Format.JR:
        _check_reg("rb", rb)
        return major | (rb << 11)
    if fmt == Format.NOP:
        return major | (0x01 << 24) | _encode_imm(imm, 16, signed=False)
    if fmt == Format.MOVHI:
        _check_reg("rd", rd)
        return major | (rd << 21) | _encode_imm(imm, 16, signed=False)
    if fmt == Format.LOAD or fmt == Format.ALU_IMM:
        _check_reg("rd", rd)
        _check_reg("ra", ra)
        word = major | (rd << 21) | (ra << 16)
        return word | _encode_imm(imm, 16, signed=spec.signed_imm)
    if fmt == Format.STORE:
        _check_reg("ra", ra)
        _check_reg("rb", rb)
        imm16 = _encode_imm(imm, 16, signed=True)
        return (
            major
            | (bits(imm16, 15, 11) << 21)
            | (ra << 16)
            | (rb << 11)
            | bits(imm16, 10, 0)
        )
    if fmt == Format.SHIFT_IMM:
        _check_reg("rd", rd)
        _check_reg("ra", ra)
        shift_type = spec.secondary["shift_type"]
        amount = _encode_imm(imm, 6, signed=False)
        return major | (rd << 21) | (ra << 16) | (shift_type << 6) | amount
    if fmt == Format.SETFLAG_IMM:
        _check_reg("ra", ra)
        cond = spec.secondary["cond"]
        word = major | (cond << 21) | (ra << 16)
        return word | _encode_imm(imm, 16, signed=spec.signed_imm)
    if fmt == Format.SETFLAG_REG:
        _check_reg("ra", ra)
        _check_reg("rb", rb)
        cond = spec.secondary["cond"]
        return major | (cond << 21) | (ra << 16) | (rb << 11)
    if fmt == Format.ALU_REG:
        _check_reg("rd", rd)
        _check_reg("ra", ra)
        if spec.reads_rb:
            _check_reg("rb", rb)
        else:
            rb = 0
        op4 = spec.secondary["op4"]
        sec = spec.secondary.get("sec", 0)
        shift_type = spec.secondary.get("shift_type", 0)
        return (
            major
            | (rd << 21)
            | (ra << 16)
            | (rb << 11)
            | (sec << 8)
            | (shift_type << 6)
            | op4
        )
    raise AssertionError(f"unhandled format {fmt}")


# -- decoding ----------------------------------------------------------------

#: major opcode -> mnemonic, for formats fully determined by the major.
_SIMPLE_MAJORS = {}
#: (op4, sec) -> mnemonic, for 0x38 sub-ops without a shift_type field.
_ALU_REG_OPS = {}
#: (op4, shift_type) -> mnemonic, for 0x38 sub-ops keyed on shift_type.
_ALU_REG_SHIFT_OPS = {}
#: cond -> mnemonic, for 0x2F / 0x39.
_SF_IMM_CONDS = {}
_SF_REG_CONDS = {}
#: shift_type -> mnemonic, for 0x2E.
_SHIFT_IMM_OPS = {}

for _spec in SPECS.values():
    if _spec.fmt == Format.ALU_REG:
        op4 = _spec.secondary["op4"]
        if op4 in (0x8, 0xC):
            _ALU_REG_SHIFT_OPS[(op4, _spec.secondary["shift_type"])] = (
                _spec.mnemonic
            )
        else:
            _ALU_REG_OPS[(op4, _spec.secondary.get("sec", 0))] = _spec.mnemonic
    elif _spec.fmt == Format.SETFLAG_IMM:
        _SF_IMM_CONDS[_spec.secondary["cond"]] = _spec.mnemonic
    elif _spec.fmt == Format.SETFLAG_REG:
        _SF_REG_CONDS[_spec.secondary["cond"]] = _spec.mnemonic
    elif _spec.fmt == Format.SHIFT_IMM:
        _SHIFT_IMM_OPS[_spec.secondary["shift_type"]] = _spec.mnemonic
    else:
        if _spec.major in _SIMPLE_MAJORS:
            raise AssertionError(
                f"major opcode collision: {_spec.major:#x} already used by "
                f"{_SIMPLE_MAJORS[_spec.major]}"
            )
        _SIMPLE_MAJORS[_spec.major] = _spec.mnemonic


def decode(word):
    """Decode a 32-bit word into an :class:`Instruction`.

    Raises :class:`EncodingError` for words outside the implemented subset.
    """
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"not a 32-bit word: {word:#x}")
    major = bits(word, 31, 26)

    if major == 0x38:
        return _decode_alu_reg(word)
    if major == 0x2F:
        return _decode_setflag(word, _SF_IMM_CONDS, immediate=True)
    if major == 0x39:
        return _decode_setflag(word, _SF_REG_CONDS, immediate=False)
    if major == 0x2E:
        shift_type = bits(word, 7, 6)
        mnemonic = _SHIFT_IMM_OPS.get(shift_type)
        if mnemonic is None:
            raise EncodingError(
                f"unknown shift type {shift_type} in {word:#010x}"
            )
        return Instruction(
            mnemonic,
            rd=bits(word, 25, 21),
            ra=bits(word, 20, 16),
            imm=bits(word, 5, 0),
        )

    mnemonic = _SIMPLE_MAJORS.get(major)
    if mnemonic is None:
        raise EncodingError(f"unknown major opcode {major:#x} in {word:#010x}")
    spec = SPECS[mnemonic]
    fmt = spec.fmt

    if fmt in (Format.J, Format.BRANCH):
        return Instruction(mnemonic, imm=sign_extend(bits(word, 25, 0), 26))
    if fmt == Format.JR:
        return Instruction(mnemonic, rb=bits(word, 15, 11))
    if fmt == Format.NOP:
        return Instruction(mnemonic, imm=bits(word, 15, 0))
    if fmt == Format.MOVHI:
        return Instruction(
            mnemonic, rd=bits(word, 25, 21), imm=bits(word, 15, 0)
        )
    if fmt in (Format.LOAD, Format.ALU_IMM):
        imm = bits(word, 15, 0)
        if spec.signed_imm:
            imm = sign_extend(imm, 16)
        return Instruction(
            mnemonic, rd=bits(word, 25, 21), ra=bits(word, 20, 16), imm=imm
        )
    if fmt == Format.STORE:
        imm16 = (bits(word, 25, 21) << 11) | bits(word, 10, 0)
        return Instruction(
            mnemonic,
            ra=bits(word, 20, 16),
            rb=bits(word, 15, 11),
            imm=sign_extend(imm16, 16),
        )
    raise AssertionError(f"unhandled format {fmt}")


def _decode_alu_reg(word):
    op4 = bits(word, 3, 0)
    sec = bits(word, 9, 8)
    shift_type = bits(word, 7, 6)
    if op4 in (0x8, 0xC):
        mnemonic = _ALU_REG_SHIFT_OPS.get((op4, shift_type))
    else:
        mnemonic = _ALU_REG_OPS.get((op4, sec))
    if mnemonic is None:
        raise EncodingError(
            f"unknown ALU sub-opcode op4={op4:#x} sec={sec:#x} "
            f"shift_type={shift_type:#x} in {word:#010x}"
        )
    return Instruction(
        mnemonic,
        rd=bits(word, 25, 21),
        ra=bits(word, 20, 16),
        rb=bits(word, 15, 11),
    )


def _decode_setflag(word, cond_table, immediate):
    cond = bits(word, 25, 21)
    mnemonic = cond_table.get(cond)
    if mnemonic is None:
        raise EncodingError(
            f"unknown set-flag condition {cond:#x} in {word:#010x}"
        )
    spec = SPECS[mnemonic]
    if immediate:
        imm = bits(word, 15, 0)
        if spec.signed_imm:
            imm = sign_extend(imm, 16)
        return Instruction(mnemonic, ra=bits(word, 20, 16), imm=imm)
    return Instruction(
        mnemonic, ra=bits(word, 20, 16), rb=bits(word, 15, 11)
    )
