"""Span-based tracer: nested wall/CPU-timed spans with a no-op fast path.

The engine is instrumented with *guarded call sites*::

    from repro.obs import trace

    with trace.span("iss.collect", program=program.name):
        ...

When no tracer is installed (the default), :func:`span` returns a
module-level singleton whose ``__enter__``/``__exit__`` do nothing — the
cost of a disabled site is one global read, one ``is None`` test and two
empty method calls, which :mod:`benchmarks.bench_obs_overhead` gates at
under 2 % of a sweep.

When a :class:`Tracer` is installed (``Session(telemetry=...)`` or
:func:`set_tracer`), each ``span(...)`` context manager records a plain
dict per span::

    {"span": name, "category": name-prefix, "worker": tracer label,
     "pid": os.getpid(), "depth": nesting depth,
     "start_us": absolute unix microseconds,
     "duration_us": wall, "cpu_us": process CPU, "attrs": {...}}

Absolute timestamps come from a ``time.time()`` epoch captured at
tracer construction plus ``perf_counter`` offsets, so spans recorded in
*different processes* (multiprocessing sweep shards) line up on one
timeline when the parent merges them (:func:`merge_worker_spans`).

Timing data never feeds fingerprints or stored artifact bytes — the
tracer is pure observation (``tests/test_obs_telemetry.py`` pins this).
"""

import os
import time

__all__ = [
    "Tracer",
    "span",
    "set_tracer",
    "get_tracer",
    "is_enabled",
    "merge_worker_spans",
]


class _NullSpan:
    """Do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: records wall + CPU time between enter and exit."""

    __slots__ = ("_tracer", "_record", "_start_perf", "_start_cpu")

    def __init__(self, tracer, name, attrs):
        self._tracer = tracer
        self._record = {
            "span": name,
            "category": name.split(".", 1)[0],
            "worker": tracer.label,
            "pid": tracer.pid,
            "depth": 0,
            "start_us": 0.0,
            "duration_us": 0.0,
            "cpu_us": 0.0,
            "attrs": attrs,
        }

    def __enter__(self):
        tracer = self._tracer
        record = self._record
        record["depth"] = len(tracer._stack)
        tracer._stack.append(record["span"])
        self._start_perf = time.perf_counter()
        self._start_cpu = time.process_time()
        record["start_us"] = (
            tracer._epoch_unix_us
            + (self._start_perf - tracer._epoch_perf) * 1e6
        )
        return self

    def __exit__(self, exc_type, exc, tb):
        end_perf = time.perf_counter()
        end_cpu = time.process_time()
        record = self._record
        record["duration_us"] = (end_perf - self._start_perf) * 1e6
        record["cpu_us"] = (end_cpu - self._start_cpu) * 1e6
        tracer = self._tracer
        tracer._stack.pop()
        tracer.spans.append(record)
        return False


class Tracer:
    """Collects spans for one process.

    Parameters
    ----------
    label:
        Human-readable track name ("session", "worker", ...) used for
        the Chrome-trace thread label and the TELEMETRY ``worker``
        column.
    """

    def __init__(self, label="session"):
        self.label = label
        self.pid = os.getpid()
        self.spans = []
        self._stack = []
        # time.time() and perf_counter() sampled back to back: absolute
        # span timestamps are epoch + perf offsets, which keeps them
        # monotonic within the process and comparable across processes.
        self._epoch_unix_us = time.time() * 1e6
        self._epoch_perf = time.perf_counter()

    def span(self, name, **attrs):
        """Context manager recording one nested span."""
        return _Span(self, name, attrs)

    def drain(self):
        """Return all completed spans and clear the buffer (the shard →
        parent shipping primitive)."""
        spans, self.spans = self.spans, []
        return spans

    def snapshot(self):
        """Copy of the completed spans recorded so far."""
        return list(self.spans)

    def absorb(self, spans):
        """Append externally recorded span dicts (e.g. shipped back from
        a multiprocessing worker) onto this tracer's buffer."""
        self.spans.extend(spans)


#: The process-wide active tracer; ``None`` means tracing is disabled.
_tracer = None


def span(name, **attrs):
    """Module-level guarded span: no-op unless a tracer is installed."""
    tracer = _tracer
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def set_tracer(tracer):
    """Install ``tracer`` (or ``None`` to disable); returns the previous
    one so callers can restore it."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def get_tracer():
    """The currently installed :class:`Tracer`, or ``None``."""
    return _tracer


def is_enabled():
    """True when a tracer is installed in this process."""
    return _tracer is not None


def merge_worker_spans(spans):
    """Merge spans shipped back from a worker process onto the active
    tracer's timeline; silently dropped when tracing is disabled."""
    tracer = _tracer
    if tracer is not None and spans:
        tracer.absorb(spans)
