"""Host metadata for benchmark artifacts.

``BENCH_*.json`` numbers are only interpretable PR over PR when the
hardware and toolchain behind them are recorded alongside: a 0.19 s
cold sweep on a 2-core CI runner and on a 16-core workstation are
different facts.  :func:`host_metadata` captures the pieces that move
benchmark numbers — usable cores, Python/NumPy versions, platform —
with no dependencies beyond the standard library and NumPy.
"""

import os
import platform
import sys

__all__ = ["host_metadata"]


def host_metadata(engine=None):
    """Dict of host facts for embedding in ``BENCH_*.json`` documents."""
    try:
        cores_usable = len(os.sched_getaffinity(0))
    except AttributeError:                           # pragma: no cover
        cores_usable = os.cpu_count() or 1
    import numpy

    meta = {
        "cores_usable": cores_usable,
        "cores_total": os.cpu_count() or 1,
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "numpy_version": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }
    if engine is not None:
        meta["engine"] = engine
    return meta


if __name__ == "__main__":                           # pragma: no cover
    import json

    json.dump(host_metadata(), sys.stdout, indent=2, sort_keys=True)
    print()
