"""repro.obs — spans, counters, and telemetry for every workflow.

Zero-dependency observability for the engine stack:

- :mod:`repro.obs.trace` — span-based tracer (nested wall/CPU-timed
  spans; no-op singleton + guarded call sites when disabled);
- :mod:`repro.obs.metrics` — the process-wide counter registry that
  unifies store traffic, simulation counts and engine stats, with
  delta shipping/merging across multiprocessing shards;
- :mod:`repro.obs.export` — Chrome trace-event JSON, flat summaries,
  and the ``TELEMETRY`` :class:`~repro.api.frame.ResultFrame`;
- :mod:`repro.obs.progress` — the ``--progress`` per-unit stderr line;
- :mod:`repro.obs.host` — host metadata for ``BENCH_*.json``.

Entry points: ``Session(telemetry=...)``, ``repro sweep --trace`` /
``--progress``, and ``repro profile <grid>``.
"""

from repro.obs import metrics
from repro.obs.export import (
    chrome_trace,
    summary_csv,
    summary_rows,
    telemetry_frame,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.host import host_metadata
from repro.obs.progress import UnitProgress
from repro.obs.trace import (
    Tracer,
    get_tracer,
    is_enabled,
    merge_worker_spans,
    set_tracer,
    span,
)

__all__ = [
    "Tracer",
    "span",
    "set_tracer",
    "get_tracer",
    "is_enabled",
    "merge_worker_spans",
    "metrics",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "summary_rows",
    "summary_csv",
    "telemetry_frame",
    "host_metadata",
    "UnitProgress",
]
