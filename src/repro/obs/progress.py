"""Per-unit progress reporting for sweeps (``repro sweep --progress``).

A :class:`UnitProgress` renders a single self-overwriting line on
stderr::

    sweep 7/18 units (38%) eta 0.4s

The ETA extrapolates the completed-unit rate from the run's own
timeline (elapsed / units done so far), which is the same signal the
span stream carries.  Rendering auto-disables when the stream is not a
TTY (CI logs stay clean), and everything here is presentation only —
progress never touches results or artifacts.
"""

import sys
import time

__all__ = ["UnitProgress"]


class UnitProgress:
    """Renders ``done/total`` unit progress with an ETA on one line."""

    def __init__(self, total, stream=None, enabled=None,
                 clock=time.perf_counter, label="sweep"):
        self.total = max(int(total), 0)
        self.stream = sys.stderr if stream is None else stream
        if enabled is None:
            isatty = getattr(self.stream, "isatty", lambda: False)
            enabled = bool(isatty())
        self.enabled = enabled
        self.label = label
        self._clock = clock
        self._start = None
        self._start_done = 0
        self._rendered = False

    def update(self, done, total=None):
        """Render progress after ``done`` of ``total`` units finished."""
        if total is not None:
            self.total = max(int(total), 0)
        if not self.enabled:
            return
        now = self._clock()
        if self._start is None:
            # first callback: resumed units arrive pre-completed, so the
            # rate is measured from here, not from zero
            self._start = now
            self._start_done = done
        line = self._format(done, now)
        self.stream.write("\r" + line + "\x1b[K")
        self.stream.flush()
        self._rendered = True

    def _format(self, done, now):
        total = self.total
        percent = (100.0 * done / total) if total else 100.0
        line = f"{self.label} {done}/{total} units ({percent:.0f}%)"
        progressed = done - self._start_done
        if progressed > 0 and done < total:
            rate = (now - self._start) / progressed
            line += f" eta {rate * (total - done):.1f}s"
        return line

    def finish(self):
        """Terminate the progress line (newline) if anything rendered."""
        if self.enabled and self._rendered:
            self.stream.write("\n")
            self.stream.flush()
