"""Process-wide counter/metric registry.

One flat, thread-safe ``name -> number`` map per process.  It unifies
the engine's historically scattered counters — per-store
:class:`~repro.lab.store.StoreStats` objects, the compiled-trace
engine's ``simulation_count`` proof counter, the vector engine's
fallback tally, and the predecode/lockstep module stats — behind a
single namespace:

``store.<kind>.<event>``
    Mirrored from every ``StoreStats.record`` call in the process
    (all store objects feed the same registry).
``sim.simulations``, ``sim.vector.fallbacks``
    Mirrored from :mod:`repro.dta.compiled` / :mod:`repro.sim.vector`.
``sim.predecode.*``, ``sim.lockstep.*``
    *Gathered live* from those modules' own stats dicts (they stay the
    owners; the registry view sums registry entries with module
    counters), so hot loops pay no extra per-increment cost.

"Process-safe" means cross-process by *delta shipping*, not shared
memory: a worker snapshots :func:`gather` at startup, computes
:func:`delta_since` when returning results through the existing
multiprocessing result channel, and the parent :func:`merge`\\ s the
delta into its registry.  That is the fix for the historical counter
loss where worker-side store hits and simulations simply vanished in
``--jobs N`` sweeps.
"""

import threading

__all__ = [
    "inc",
    "get",
    "snapshot",
    "gather",
    "delta_since",
    "merge",
    "reset",
]

_lock = threading.Lock()
_registry = {}


def inc(name, value=1):
    """Add ``value`` to counter ``name`` (creating it at zero)."""
    with _lock:
        _registry[name] = _registry.get(name, 0) + value


def get(name, default=0):
    """Current registry value of ``name`` (excludes live module stats —
    use :func:`gather` for the unified view)."""
    return _registry.get(name, default)


def snapshot():
    """Copy of the raw registry (mirrored + merged counters only)."""
    with _lock:
        return dict(_registry)


def gather():
    """The unified counter view: registry entries plus the live engine
    module counters, summed per name."""
    out = snapshot()
    # imported lazily: the engine modules import this module's inc()
    from repro.dta import compiled
    from repro.sim import lockstep, predecode, vector

    def _add(name, value):
        if value:
            out[name] = out.get(name, 0) + value

    for key, value in predecode.stats().items():
        _add(f"sim.predecode.{key}", value)
    for key, value in lockstep.stats().items():
        _add(f"sim.lockstep.{key}", value)
    _add("sim.vector.fallbacks", vector.fallback_count())
    _add("sim.simulations", compiled.simulation_count())
    return out


def delta_since(baseline):
    """Per-name difference between :func:`gather` now and a ``baseline``
    taken earlier with :func:`gather`; zero deltas are dropped so the
    payload shipped through the result channel stays small."""
    current = gather()
    delta = {}
    for name, value in current.items():
        change = value - baseline.get(name, 0)
        if change:
            delta[name] = change
    return delta


def merge(deltas):
    """Fold a worker's counter deltas into this process's registry."""
    if not deltas:
        return
    with _lock:
        for name, value in deltas.items():
            _registry[name] = _registry.get(name, 0) + value


def reset():
    """Clear the registry (module-owned counters keep their own
    ``reset_*`` entry points and are unaffected)."""
    with _lock:
        _registry.clear()
