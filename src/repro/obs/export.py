"""Telemetry exporters: Chrome trace-event JSON, flat summaries, frames.

Three consumers, three shapes:

- :func:`chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format understood by Perfetto and ``chrome://tracing``: one complete
  (``"ph": "X"``) event per span on a per-process track, so a
  ``--jobs N`` sweep renders as the parent plus one lane per worker.
- :func:`summary_rows` — per-span-name aggregates (count, wall, CPU)
  behind ``repro profile``'s breakdown table and the JSON/CSV summary.
- :func:`telemetry_frame` — spans as a ``TELEMETRY``
  :class:`~repro.api.frame.ResultFrame`, riding the existing columnar
  frame/store machinery.

:func:`validate_chrome_trace` is the schema check the ``obs-smoke`` CI
job and the test suite run against emitted traces.
"""

import json

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "summary_rows",
    "summary_csv",
    "telemetry_frame",
]


def _track_order(spans):
    """(pid, worker) pairs in first-seen order → stable track layout."""
    seen = {}
    for record in spans:
        seen.setdefault((record["pid"], record["worker"]))
    return list(seen)


def chrome_trace(spans, counters=None, label="repro"):
    """Build a Chrome trace-event document from span records.

    Each distinct span ``pid`` becomes its own process track (workers of
    a parallel sweep land on distinct tracks); counters ride along under
    ``otherData`` so one file carries the whole telemetry picture.
    """
    events = []
    for pid, worker in _track_order(spans):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"{label}:{worker}"},
        })
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": worker},
        })
    for record in sorted(
        spans, key=lambda r: (r["pid"], r["start_us"], -r["depth"])
    ):
        events.append({
            "name": record["span"],
            "cat": record["category"],
            "ph": "X",
            "ts": record["start_us"],
            "dur": record["duration_us"],
            "pid": record["pid"],
            "tid": 0,
            "args": {**record["attrs"], "cpu_us": record["cpu_us"]},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"counters": dict(counters or {})},
    }


def write_chrome_trace(path, spans, counters=None, label="repro"):
    """Write :func:`chrome_trace` output to ``path``; returns the doc."""
    payload = chrome_trace(spans, counters=counters, label=label)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return payload


def validate_chrome_trace(payload):
    """Check ``payload`` against the trace-event schema we emit.

    Raises ``ValueError`` on the first violation; returns the set of
    span categories present (useful for coverage assertions).
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload is missing the traceEvents list")
    categories = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(
                    f"traceEvents[{index}] is missing {key!r}"
                )
        phase = event["ph"]
        if phase == "M":
            continue
        if phase != "X":
            raise ValueError(
                f"traceEvents[{index}] has unexpected phase {phase!r}"
            )
        for key in ("ts", "dur", "cat"):
            if key not in event:
                raise ValueError(
                    f"traceEvents[{index}] is missing {key!r}"
                )
        if not isinstance(event["ts"], (int, float)):
            raise ValueError(f"traceEvents[{index}].ts is not numeric")
        if not isinstance(event["dur"], (int, float)):
            raise ValueError(f"traceEvents[{index}].dur is not numeric")
        if event["dur"] < 0:
            raise ValueError(f"traceEvents[{index}].dur is negative")
        categories.add(event["cat"])
    return categories


def summary_rows(spans):
    """Aggregate spans per name: count, total/mean wall ms, CPU ms.

    Rows come back sorted by total wall time, descending — the
    ``repro profile`` breakdown order.
    """
    totals = {}
    for record in spans:
        entry = totals.setdefault(
            record["span"],
            {"span": record["span"], "category": record["category"],
             "count": 0, "wall_ms": 0.0, "cpu_ms": 0.0},
        )
        entry["count"] += 1
        entry["wall_ms"] += record["duration_us"] / 1e3
        entry["cpu_ms"] += record["cpu_us"] / 1e3
    rows = sorted(
        totals.values(), key=lambda r: (-r["wall_ms"], r["span"])
    )
    for row in rows:
        row["mean_ms"] = row["wall_ms"] / row["count"]
    return rows


def summary_csv(spans):
    """The :func:`summary_rows` aggregate as CSV text."""
    lines = ["span,category,count,wall_ms,cpu_ms,mean_ms"]
    for row in summary_rows(spans):
        lines.append(
            f"{row['span']},{row['category']},{row['count']},"
            f"{row['wall_ms']:.3f},{row['cpu_ms']:.3f},"
            f"{row['mean_ms']:.3f}"
        )
    return "\n".join(lines) + "\n"


def telemetry_frame(spans):
    """Spans as a ``TELEMETRY`` :class:`~repro.api.frame.ResultFrame`."""
    from repro.api.frame import TELEMETRY_SCHEMA, ResultFrame

    return ResultFrame.from_rows(
        [
            {
                "span": r["span"], "category": r["category"],
                "worker": r["worker"], "pid": r["pid"],
                "depth": r["depth"], "start_us": r["start_us"],
                "duration_us": r["duration_us"], "cpu_us": r["cpu_us"],
                "attrs": r["attrs"],
            }
            for r in spans
        ],
        TELEMETRY_SCHEMA,
    )
