"""The delay-prediction lookup table (paper Fig. 1 / Table II).

One row per instruction timing class (plus the bubble pseudo-class), one
entry per pipeline stage group: the worst dynamic delay the class was
observed to excite in that group during characterisation.  Classes with too
few observations fall back to the static clock period (paper Sec. IV-A),
which is always safe.
"""

import json
from dataclasses import dataclass, field

from repro.sim.trace import Stage
from repro.timing.profiles import BUBBLE_CLASS
from repro.utils.tables import format_table


@dataclass
class DelayLUT:
    """Per-class, per-stage delay prediction table."""

    static_period_ps: float
    #: class -> {Stage -> delay_ps}; missing entries fall back to static.
    entries: dict = field(default_factory=dict)
    #: class -> number of EX-stage observations during characterisation.
    occurrences: dict = field(default_factory=dict)
    #: classes with enough observations to trust their entries.
    characterized: set = field(default_factory=set)
    min_occurrences: int = 0
    source: str = ""

    def classes(self):
        return sorted(self.entries)

    def is_characterized(self, cls):
        return cls in self.characterized

    def entry(self, cls, stage):
        """Predicted worst delay of ``cls`` in ``stage`` (ps).

        Falls back to the static period for unknown or under-characterised
        classes — the always-safe choice.
        """
        if cls not in self.characterized:
            return self.static_period_ps
        row = self.entries.get(cls)
        if row is None or stage not in row:
            return self.static_period_ps
        return row[stage]

    def row(self, cls):
        return {stage: self.entry(cls, stage) for stage in Stage}

    def class_max(self, cls):
        """Worst entry of a class across stages (Table II 'Max. delay')."""
        return max(self.row(cls).values())

    def limiting_stage(self, cls):
        """Stage of the class's worst entry (Table II 'Stage')."""
        row = self.row(cls)
        return max(row, key=lambda stage: row[stage])

    @property
    def bubble_period_ps(self):
        """Period bound applied for bubbles (flushed/stalled slots)."""
        return self.class_max(BUBBLE_CLASS)

    # -- serialisation -------------------------------------------------------

    def to_json(self):
        payload = {
            "static_period_ps": self.static_period_ps,
            "min_occurrences": self.min_occurrences,
            "source": self.source,
            "characterized": sorted(self.characterized),
            "occurrences": dict(self.occurrences),
            "entries": {
                cls: {stage.name: delay for stage, delay in row.items()}
                for cls, row in self.entries.items()
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        payload = json.loads(text)
        lut = cls(
            static_period_ps=payload["static_period_ps"],
            min_occurrences=payload.get("min_occurrences", 0),
            source=payload.get("source", ""),
        )
        lut.characterized = set(payload.get("characterized", []))
        lut.occurrences = {
            key: int(value)
            for key, value in payload.get("occurrences", {}).items()
        }
        lut.entries = {
            cls_name: {
                Stage[stage_name]: float(delay)
                for stage_name, delay in row.items()
            }
            for cls_name, row in payload.get("entries", {}).items()
        }
        return lut

    # -- reporting -------------------------------------------------------------

    def render(self, classes=None, title="Delay-prediction LUT [ps]"):
        """Table II-style rendering (one row per class, max + stage)."""
        if classes is None:
            classes = self.classes()
        rows = []
        for cls in classes:
            if cls not in self.entries:
                continue
            row = self.row(cls)
            rows.append((
                cls,
                f"{self.class_max(cls):.0f}",
                self.limiting_stage(cls).name,
                "yes" if cls in self.characterized else "static-fallback",
                self.occurrences.get(cls, 0),
                " ".join(f"{row[stage]:.0f}" for stage in Stage),
            ))
        return format_table(
            ["Instruction", "Max delay", "Stage", "Characterized", "Occur.",
             "ADR FE DC EX CTRL WB"],
            rows,
            title=title,
        )
