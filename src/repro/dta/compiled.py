"""Compiled pipeline traces: simulate once, sweep many configurations.

Every policy/margin/generator sweep re-runs the same programs, yet the
pipeline occupancy — and therefore the per-cycle attribution and the
ground-truth excited delays — depends only on (program, design).  A
:class:`CompiledTrace` freezes that invariant part of an evaluation into
compact NumPy arrays:

- ``class_ids``: an ``(num_cycles, num_stages)`` integer matrix of interned
  timing-class ids (the :func:`~repro.dta.extraction.attribute_cycle`
  driver attribution of every stage group in every cycle), so LUT-style
  policies reduce to integer fancy-indexing into a class×stage table;
- ``delays``: an ``(num_cycles, num_stages)`` float matrix of ground-truth
  excited delays from the design's excitation model (computed lazily — a
  sweep that neither checks safety nor runs the genie never pays for it),
  so safety checking is one array comparison and the genie oracle is a
  row-wise max.

Compiled traces are cached per (program content, design operating point),
which is what makes the batch evaluation engine in
:mod:`repro.flow.evaluate` fast: one pipeline simulation and one
compilation serve every configuration of a sweep.
"""

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.obs.trace import span as obs_span
from repro.sim import predecode
from repro.sim.spec import DEFAULT_SPEC, get_pipeline_spec
from repro.sim.trace import Stage
from repro.timing.profiles import BUBBLE_CLASS

#: Number of canonical pipeline stage groups.  Matrices of the default
#: spec are exactly this wide; other specs carry ``spec.num_stages``
#: columns, one per stage, each mapped onto a canonical group.
NUM_STAGES = len(Stage)

#: Column indices [0..NUM_STAGES), used for fancy-indexing stage tables.
STAGE_COLUMNS = np.arange(NUM_STAGES)


def worst_per_cycle(stage_matrix):
    """Per-cycle worst delay and limiting stage of a ``(cycles, stages)``
    delay matrix.

    This is the genie-oracle reduction (paper Eq. 2 with perfect
    knowledge); it is shared by the DTA analyzer (which builds its matrix
    from recovered event-log delays) and by :class:`CompiledTrace` (whose
    matrix comes from the excitation model) so that both compute the bound
    in exactly one place.
    """
    return stage_matrix.max(axis=1), stage_matrix.argmax(axis=1)


@dataclass
class CompiledTrace:
    """One program's pipeline trace, compiled for array evaluation."""

    program_name: str
    num_cycles: int
    num_retired: int
    #: Interned timing-class names; row index of every class×stage table.
    class_names: tuple
    #: (num_cycles, NUM_STAGES) int32 matrix of class ids per stage group.
    class_ids: np.ndarray
    #: (num_cycles, NUM_STAGES) bool matrices of slot state.
    bubble: np.ndarray
    held: np.ndarray
    #: (num_cycles,) bool vectors of front-end state.
    stall: np.ndarray
    redirect: np.ndarray
    #: The underlying trace (compatibility path for per-record policies).
    #: ``None`` for traces rehydrated from the artifact store — those carry
    #: materialised :attr:`delays` instead and serve only vectorized
    #: policies.
    trace: object
    #: Excitation model used to materialise :attr:`delays` on demand
    #: (``None`` for store-rehydrated traces, whose delays are pre-baked).
    excitation: object
    #: ``(variant_value, voltage)`` the delays were computed at — extended
    #: with the pipeline-spec digest for non-default microarchitectures;
    #: lets the genie policy validate a trace without a live excitation
    #: model.
    operating_point: tuple = None
    #: Optional vectorized EX-cell builder ``f(active_cycles) -> delays``
    #: installed by :func:`compile_vector_run`; replaces the per-record
    #: replay loop with array math (bit-identical results).
    ex_replay: object = field(default=None, repr=False)
    #: The :class:`~repro.sim.spec.PipelineSpec` the trace was simulated
    #: under (``None`` means the default spec; column count and group
    #: mapping of every matrix follow it).
    spec: object = None
    _delays: np.ndarray = field(default=None, repr=False)

    @property
    def num_classes(self):
        return len(self.class_names)

    @property
    def pipeline_spec(self):
        """Resolved spec (``None`` normalises to the default machine)."""
        return self.spec if self.spec is not None else DEFAULT_SPEC

    @property
    def ex_column(self):
        """Matrix column of the EX stage (``Stage.EX`` for the default)."""
        return self.pipeline_spec.ex_index

    @property
    def delays(self):
        """Ground-truth excited-delay matrix, materialised on first use.

        Fixed-delay groups (FE/DC/CTRL/WB and the two ADR paths) gather
        from the excitation model's scaled class tables; only the
        operand-dependent EX cells replay the per-record model.  The
        result is bit-identical to calling
        ``excitation.group_delay(record, stage)`` cell by cell.
        """
        if self._delays is None:
            if self.excitation is None:
                raise ValueError(
                    "compiled trace was rehydrated without a delay matrix "
                    "and carries no excitation model to compute one"
                )
            self._delays = self._compute_delays()
        return self._delays

    def _compute_delays(self):
        spec = self.pipeline_spec
        ex = spec.ex_index
        tables = self.excitation.group_tables(self.class_names)
        delays = np.empty((self.num_cycles, spec.num_stages), dtype=float)

        for index, group in enumerate(spec.group_of):
            stage = Stage(group)
            if stage in (Stage.ADR, Stage.EX):
                continue
            column = tables["stage"][stage][self.class_ids[:, index]]
            column = np.where(self.held[:, index], tables["hold"], column)
            # a bubble wins over a hold, as in ExcitationModel.group_delay
            column = np.where(
                self.bubble[:, index], tables["bubble"][stage], column
            )
            delays[:, index] = column

        # ADR: redirect path for taken transfers, sequential otherwise;
        # the EX occupant drives it, a stalled front end re-presents.
        adr = np.where(
            self.redirect,
            tables["adr_redirect"][self.class_ids[:, 0]],
            tables["adr_seq"],
        )
        adr = np.where(self.bubble[:, ex], tables["adr_seq"], adr)
        adr = np.where(self.stall, tables["hold"], adr)
        delays[:, 0] = adr

        # EX: operand-dependent — replay the excitation model only where
        # an instruction actually computes this cycle.
        ex_column = np.where(
            self.bubble[:, ex],
            tables["bubble"][Stage.EX],
            np.where(self.held[:, ex], tables["hold"], 0.0),
        )
        delays[:, ex] = ex_column
        active = np.nonzero(
            ~(self.bubble[:, ex] | self.held[:, ex])
        )[0]
        if self.ex_replay is not None:
            delays[active, ex] = self.ex_replay(active)
        else:
            column_delay = self.excitation.column_delay
            records = self.trace.records
            for index in active:
                delays[index, ex] = column_delay(
                    records[index], ex, spec
                ).delay_ps
        return delays

    def cycle_max_delays(self):
        """Per-cycle minimum safe period (the genie-oracle bound)."""
        return worst_per_cycle(self.delays)[0]

    def class_table(self, entry):
        """``(num_classes, num_stages)`` table of ``entry(cls, stage)``.

        One column per spec stage; each is filled from its canonical
        :class:`Stage` group, so ``entry`` never needs to know the spec.
        """
        groups = [Stage(group) for group in self.pipeline_spec.group_of]
        return np.array([
            [entry(cls, stage) for stage in groups]
            for cls in self.class_names
        ], dtype=float)

    def class_column(self, entry):
        """``(num_classes,)`` vector of ``entry(cls)``."""
        return np.array([entry(cls) for cls in self.class_names], dtype=float)

    def stage_periods(self, table):
        """Gather a class×stage ``table`` along the trace: element
        ``[t, s]`` is the table entry of the class driving stage ``s`` in
        cycle ``t``."""
        return table[self.class_ids, np.arange(self.class_ids.shape[1])]

    def class_name_at(self, cycle, stage):
        """Driver class of one (cycle, stage) cell — for violation reports."""
        return self.class_names[self.class_ids[cycle, stage]]

    def vocab_ids(self, vocabulary):
        """The class-id matrix remapped onto a global class vocabulary.

        Trace-local ids depend on first-encounter interning order, so two
        traces of different programs number the same class differently;
        consumers that compare features *across* traces (the learned-policy
        extraction in :mod:`repro.ml.features`) remap onto one shared
        vocabulary instead.
        """
        index = {cls: i for i, cls in enumerate(vocabulary)}
        try:
            remap = np.array(
                [index[cls] for cls in self.class_names], dtype=np.int64
            )
        except KeyError as error:
            raise ValueError(
                f"timing class {error.args[0]!r} not in vocabulary"
            ) from None
        return remap[self.class_ids]


def _operating_point(excitation, spec):
    """Operating-point tuple of a compiled trace — two elements for the
    default machine (historical key shape), spec digest appended for any
    other microarchitecture."""
    base = (excitation.profile.variant.value, excitation.library.voltage)
    if spec.is_default:
        return base
    return base + (spec.digest,)


def compile_trace(trace, excitation, spec=None):
    """Compile one pipeline trace against one excitation model.

    The class attribution is the inlined equivalent of
    :func:`~repro.dta.extraction.attribute_cycle` (ADR keys on the EX
    occupant, ``None`` timing classes are bubbles); the per-slot state
    flags feed the vectorized delay-matrix construction.  ``spec`` is the
    pipeline spec the trace was simulated under and sets the column count.
    """
    spec = get_pipeline_spec(spec)
    num_columns = spec.num_stages
    num_cycles = trace.num_cycles
    class_ids = np.empty((num_cycles, num_columns), dtype=np.int32)
    bubble = np.empty((num_cycles, num_columns), dtype=bool)
    held = np.empty((num_cycles, num_columns), dtype=bool)
    stall = np.empty(num_cycles, dtype=bool)
    redirect = np.empty(num_cycles, dtype=bool)
    intern = {}
    names = []
    ex_index = spec.ex_index
    for index, record in enumerate(trace.records):
        slots = record.slots
        ex_view = slots[ex_index]
        for stage in range(num_columns):
            view = ex_view if stage == 0 else slots[stage]
            cls = view.timing_class
            if cls is None:
                cls = BUBBLE_CLASS
            cls_id = intern.get(cls)
            if cls_id is None:
                cls_id = intern[cls] = len(names)
                names.append(cls)
            class_ids[index, stage] = cls_id
            bubble[index, stage] = view.mnemonic is None
            held[index, stage] = view.held
        stall[index] = record.stall
        redirect[index] = record.redirect
    return CompiledTrace(
        program_name=trace.program_name,
        num_cycles=num_cycles,
        num_retired=trace.num_retired,
        class_names=tuple(names),
        class_ids=class_ids,
        bubble=bubble,
        held=held,
        stall=stall,
        redirect=redirect,
        trace=trace,
        excitation=excitation,
        operating_point=_operating_point(excitation, spec),
        spec=None if spec.is_default else spec,
    )


class _LazyTraceProxy:
    """Record-compatible stand-in for a vector-compiled trace.

    Vector runs keep per-cycle data as arrays; the full
    :class:`~repro.sim.trace.PipelineTrace` is only materialised when a
    record-oriented consumer (e.g. a policy without ``periods_for``)
    actually touches it.  Must not be ``None``: the store-switch eviction
    in :func:`set_trace_store` uses ``trace is None`` to mark rehydrated,
    context-bound entries, and vector-compiled traces are fully simulated.
    """

    def __init__(self, run):
        self._run = run

    def __getattr__(self, name):
        return getattr(self._run.trace, name)


def compile_vector_run(run, excitation):
    """Compile a :class:`~repro.sim.vector.VectorPipelineRun` directly.

    Builds the same matrices as :func:`compile_trace` — including the
    first-encounter interning order of the class names and the ADR
    driver-view substitution — without materialising a single cycle
    record, and installs a vectorized EX-cell replay so the lazy delay
    matrix never walks records either.
    """
    from repro.timing.excitation import ex_criticality_array
    from repro.utils.rounding import round3_array

    pspec = run.spec
    num_columns = pspec.num_stages
    ex_index = pspec.ex_index
    occupancy = run.stage_occupancy()
    num_cycles = run.num_cycles
    local_names = run.class_names
    bubble_code = len(local_names)
    slot_class = run.slot_class

    codes = np.empty((num_cycles, num_columns), dtype=np.int64)
    bubble = np.empty((num_cycles, num_columns), dtype=bool)
    held = np.empty((num_cycles, num_columns), dtype=bool)
    for stage in range(num_columns):
        occupant, stage_bubble, stage_held = occupancy[stage]
        codes[:, stage] = np.where(
            stage_bubble, bubble_code,
            slot_class[np.maximum(occupant, 0)],
        )
        bubble[:, stage] = stage_bubble
        held[:, stage] = stage_held
    # the ADR group is driven by the EX occupant (attribute_cycle)
    codes[:, 0] = codes[:, ex_index]
    bubble[:, 0] = bubble[:, ex_index]
    held[:, 0] = held[:, ex_index]

    # intern in first-encounter order over the row-major class matrix —
    # exactly the order compile_trace's per-record walk produces
    unique, first_seen = np.unique(codes.ravel(), return_index=True)
    order = np.argsort(first_seen)
    remap = np.empty(bubble_code + 1, dtype=np.int32)
    remap[unique[order]] = np.arange(len(order), dtype=np.int32)
    class_ids = remap[codes]
    class_names = tuple(
        BUBBLE_CLASS if code == bubble_code else local_names[code]
        for code in unique[order].tolist()
    )

    profile = excitation.profile
    scale = excitation.library.delay_scale
    redirect = run.redirect

    def ex_replay(active):
        """Excited EX delays of the active cells, vectorized.

        Each non-bubble slot has exactly one non-held EX cycle, so active
        cells map 1:1 onto fetch-stream slots; draining slots carry zero
        operands, matching the scalar ``ex_operands=(None, None)`` path.
        """
        # criticality is architectural (operands + worst patterns), so it
        # is invariant across operating points and sweeps of the same
        # program — memoised on the shared decode image
        image = predecode.image_for(run.program)
        crit_key = (
            None if pspec.is_default else pspec.digest,
            run.div_latency, run.num_cycles, len(active),
            int(active[0]) if len(active) else -1,
            int(active[-1]) if len(active) else -1,
        )
        crit = image.crit_cache.get(crit_key)
        if crit is None:
            slots = run.ex_occ[active]
            instructions = run.slot_instr
            mnemonics = [
                instructions[slot].mnemonic for slot in slots.tolist()
            ]
            crit = ex_criticality_array(
                mnemonics,
                run.slot_kind[slots],
                run.slot_a[slots],
                run.slot_b[slots],
                run.slot_pc[slots],
                redirect[active],
            )
            image.crit_cache[crit_key] = crit
        cls_rows = class_ids[active, ex_index]
        max_ps = np.empty(len(class_names))
        spread_ps = np.empty(len(class_names))
        for index, cls in enumerate(class_names):
            if cls == BUBBLE_CLASS:
                max_ps[index] = spread_ps[index] = 0.0
                continue
            spec = profile.ex_spec(cls)
            max_ps[index] = spec.max_ps
            spread_ps[index] = spec.spread_ps
        delay = max_ps[cls_rows] - spread_ps[cls_rows] * (1.0 - crit)
        return round3_array(delay * scale)

    return CompiledTrace(
        program_name=run.program.name,
        num_cycles=num_cycles,
        num_retired=run.num_retired,
        class_names=class_names,
        class_ids=class_ids,
        bubble=bubble,
        held=held,
        stall=run.stall.copy(),
        redirect=redirect.copy(),
        trace=_LazyTraceProxy(run),
        excitation=excitation,
        operating_point=_operating_point(excitation, pspec),
        spec=None if pspec.is_default else pspec,
        ex_replay=ex_replay,
    )


# -- per-(program, design) cache ---------------------------------------------

#: Maximum number of compiled traces kept alive (LRU).
CACHE_CAPACITY = 64

#: Total-cycle budget across cached traces: a handful of multi-million-cycle
#: traces must not pin gigabytes of records for the process lifetime.
CACHE_CYCLE_BUDGET = 2_000_000

_cache = OrderedDict()

#: Optional persistent artifact store (see :mod:`repro.lab.store`); when
#: attached, in-memory cache misses consult it before simulating and write
#: freshly compiled traces through to it.
_store = None

#: Number of pipeline simulations actually run by :func:`get_compiled_trace`
#: since process start (or the last :func:`reset_simulation_count`) — the
#: counter that proves a warm-store sweep re-simulated nothing.
_simulations = 0


def set_trace_store(store):
    """Attach a persistent trace store (``None`` detaches).

    The store only needs ``load_compiled_trace(program, design, max_cycles)``
    returning a :class:`CompiledTrace` or ``None``, and
    ``save_compiled_trace(compiled, program, design, max_cycles)``.
    Returns the previously attached store so callers can restore it.

    Switching stores evicts store-rehydrated entries (``trace is None``)
    from the in-memory cache: they belong to the detached store's
    context, and callers outside it must see fully simulated traces.
    """
    global _store
    previous = _store
    if store is not previous:
        for key in [k for k, v in _cache.items() if v.trace is None]:
            del _cache[key]
    _store = store
    return previous


def simulation_count():
    """Pipeline simulations run through :func:`get_compiled_trace`."""
    return _simulations


def reset_simulation_count():
    global _simulations
    _simulations = 0


def _program_key(program):
    """Content key: programs are often re-assembled per sweep, so
    identity-based caching would always miss.  The full words tuple (not
    its hash) is the key, so distinct programs can never alias."""
    return (
        program.name,
        program.entry,
        tuple(sorted(program.words.items())),
    )


def _design_key(design):
    """Operating point: the excitation model (and therefore the compiled
    delays) is fully determined by variant + supply voltage — plus the
    pipeline spec for non-default microarchitectures (the default keeps
    the historical two-tuple, so warm caches and stores stay valid)."""
    return design.operating_point


def get_compiled_trace(program, design, max_cycles=4_000_000):
    """Compiled trace of ``program`` on ``design``, cached by content.

    Simulation runs at most once per (program, design operating point,
    cycle limit); every configuration of a sweep shares the result.

    Simulation uses the two-phase vector engine
    (:mod:`repro.sim.vector`); programs it cannot reconstruct exactly
    (self-modifying fetch streams) fall back to the scalar
    :class:`~repro.sim.pipeline.PipelineSimulator` — both produce
    bit-identical compiled traces.
    """
    from repro.sim import vector
    from repro.sim.pipeline import PipelineSimulator

    global _simulations

    key = (_program_key(program), _design_key(design), max_cycles)
    compiled = _cache.get(key)
    if compiled is not None:
        _cache.move_to_end(key)
        return compiled
    compiled = None
    if _store is not None:
        compiled = _store.load_compiled_trace(program, design, max_cycles)
    if compiled is None:
        spec = design.pipeline_spec
        with obs_span("dta.compile", program=program.name):
            run = vector.simulate(program, max_cycles=max_cycles, spec=spec)
            _simulations += 1
            if run is None:
                trace = PipelineSimulator(program, spec=spec).run(
                    max_cycles=max_cycles
                )
                compiled = compile_trace(trace, design.excitation, spec=spec)
            else:
                compiled = compile_vector_run(run, design.excitation)
        if _store is not None:
            _store.save_compiled_trace(compiled, program, design, max_cycles)
    _insert_cached(key, compiled)
    return compiled


def get_compiled_traces(programs, design, max_cycles=4_000_000):
    """Batched :func:`get_compiled_trace`: one compiled trace per program.

    Cache and store resolution is identical to the scalar entry point; the
    misses run their architectural ISS pass together through
    :mod:`repro.sim.lockstep`, so a large batch of uncached programs pays
    one vectorized step loop instead of one Python dispatch loop each.
    Results are bit-identical to per-program compilation (lanes the
    lockstep engine cannot represent re-run through the per-program
    engines), and every trace lands in the same LRU/store as always.
    """
    from repro.sim import lockstep, vector
    from repro.sim.pipeline import PipelineSimulator

    global _simulations

    programs = list(programs)
    design_key = _design_key(design)
    compiled_by_key = {}
    keys = []
    misses = []                   # (first position, program) per unique miss
    for position, program in enumerate(programs):
        key = (_program_key(program), design_key, max_cycles)
        keys.append(key)
        if key in compiled_by_key:
            continue
        compiled = _cache.get(key)
        if compiled is None and _store is not None:
            compiled = _store.load_compiled_trace(program, design, max_cycles)
            if compiled is not None:
                _insert_cached(key, compiled)
        if compiled is not None:
            if key in _cache:
                _cache.move_to_end(key)
            compiled_by_key[key] = compiled
        else:
            misses.append((position, program))

    if misses:
        spec = design.pipeline_spec
        with obs_span("dta.compile_batch", misses=len(misses)):
            batch = lockstep.collect_batch(
                [program for _, program in misses], max_cycles=max_cycles
            )
            for (position, program), data in zip(misses, batch):
                key = keys[position]
                if key in compiled_by_key:  # duplicate program in the batch
                    continue
                with obs_span("dta.compile", program=program.name):
                    if data is None:
                        run = vector.simulate(program, max_cycles=max_cycles,
                                              spec=spec)
                    else:
                        run = vector.reconstruct(program, data,
                                                 max_cycles=max_cycles,
                                                 spec=spec)
                    _simulations += 1
                    if run is None:
                        trace = PipelineSimulator(program, spec=spec).run(
                            max_cycles=max_cycles
                        )
                        compiled = compile_trace(trace, design.excitation,
                                                 spec=spec)
                    else:
                        compiled = compile_vector_run(run, design.excitation)
                if _store is not None:
                    _store.save_compiled_trace(compiled, program, design,
                                               max_cycles)
                _insert_cached(key, compiled)
                compiled_by_key[key] = compiled

    return [compiled_by_key[key] for key in keys]


def _insert_cached(key, compiled):
    _cache[key] = compiled
    while len(_cache) > CACHE_CAPACITY or (
        len(_cache) > 1
        and sum(entry.num_cycles for entry in _cache.values())
        > CACHE_CYCLE_BUDGET
    ):
        _cache.popitem(last=False)


def clear_compiled_cache():
    """Drop every cached compiled trace (tests, memory pressure)."""
    _cache.clear()


def is_trace_cached(program, design, max_cycles=4_000_000):
    """Whether the in-memory LRU currently holds this compiled trace."""
    key = (_program_key(program), _design_key(design), max_cycles)
    return key in _cache


def discard_compiled_trace(program, design, max_cycles=4_000_000):
    """Evict one compiled trace from the in-memory LRU (no-op when
    absent); returns whether an entry was dropped.

    The streaming engine uses this to keep unbounded program streams at
    O(1) memory: a stream of unique programs would otherwise pin up to
    the whole :data:`CACHE_CYCLE_BUDGET` of already-evaluated traces."""
    key = (_program_key(program), _design_key(design), max_cycles)
    return _cache.pop(key, None) is not None
