"""Histogram builders for the paper's Fig. 5 and Fig. 7."""

import numpy as np

from repro.dta.extraction import attribute_cycle
from repro.sim.trace import Stage
from repro.utils.stats import Histogram


def fig5_histogram(dta_result, num_bins=40, high=None):
    """Histogram of per-cycle dynamic maximum delay over all stages.

    This is the paper's Fig. 5; its mean is the genie-aided bound on the
    average clock period.
    """
    return dta_result.delay_histogram(num_bins=num_bins, high=high)


def class_stage_delays(dta_result, trace, timing_class):
    """Per-stage delay samples attributed to one timing class.

    For every cycle in which ``timing_class`` drives a stage group, collect
    that group's measured delay.  This reproduces the per-stage
    distributions of Fig. 7 (shown there for ``l.mul``).
    """
    samples = {stage: [] for stage in Stage}
    for record in trace.records:
        classes = attribute_cycle(record)
        for stage in Stage:
            if classes[stage] == timing_class:
                samples[stage].append(
                    float(dta_result.stage_delays[stage][record.cycle])
                )
    return samples


def fig7_histograms(dta_result, trace, timing_class="l.mul(i)",
                    num_bins=25, high=None):
    """Per-stage delay histograms for one instruction class (Fig. 7)."""
    samples = class_stage_delays(dta_result, trace, timing_class)
    if high is None:
        peak = max(
            (max(values) for values in samples.values() if values),
            default=dta_result.sim_period_ps,
        )
        high = float(np.ceil(peak / 100.0) * 100.0)
    histograms = {}
    for stage, values in samples.items():
        histogram = Histogram(low=0.0, high=high, num_bins=num_bins)
        histogram.extend(values)
        histograms[stage] = histogram
    return histograms
