"""Endpoint event log — the interface between simulation and analysis.

The paper's gate-level simulation monitors the data and clock inputs of
every flip-flop and memory macro and writes an event log; the DTA tool then
relates, per cycle and per endpoint, the *last data event* to the *next
active clock edge at that same endpoint* (clock skew therefore cancels per
endpoint, which is why the paper stresses the individual comparison).

We reproduce that interface faithfully: the event log stores absolute
timestamps, and the analyzer recovers delays without access to the timing
model that produced them.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EndpointEvent:
    """Last data-input event and next clock edge of one endpoint, one cycle.

    Times are absolute picoseconds from simulation start.
    """

    cycle: int
    endpoint: str
    t_data_ps: float
    t_clock_ps: float


@dataclass
class EventLog:
    """Event stream plus the metadata the DTA needs to interpret it."""

    sim_period_ps: float                     # "low" gate-sim clock period
    num_cycles: int = 0
    events: list = field(default_factory=list)
    #: endpoint name -> (stage name, setup_ps); from the netlist/SDF.
    endpoint_meta: dict = field(default_factory=dict)

    def add(self, event):
        self.events.append(event)

    def register_endpoint(self, name, stage_name, setup_ps):
        self.endpoint_meta[name] = (stage_name, setup_ps)

    @property
    def num_events(self):
        return len(self.events)

    def endpoint_stage(self, name):
        return self.endpoint_meta[name][0]

    def endpoint_setup(self, name):
        return self.endpoint_meta[name][1]

    def validate(self):
        """Sanity checks: every event's endpoint registered, times ordered."""
        for event in self.events:
            if event.endpoint not in self.endpoint_meta:
                raise ValueError(
                    f"event references unregistered endpoint "
                    f"{event.endpoint!r}"
                )
            if event.t_clock_ps < event.t_data_ps:
                raise ValueError(
                    f"endpoint {event.endpoint!r} cycle {event.cycle}: "
                    f"clock edge before data event (timing violation in "
                    f"the characterisation run — sim period too fast)"
                )
        return True
