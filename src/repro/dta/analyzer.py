"""The dynamic timing analysis tool (paper's Perl DTA, Sec. II-B.2).

Consumes an endpoint event log and recovers, without access to the timing
model that produced it:

- the dynamic delay of each endpoint in each cycle, from the difference
  between its next clock edge and its last data event (the per-endpoint
  comparison makes clock skew cancel, as the paper emphasises);
- per-cycle, per-stage-group worst delays ``d_s[t]`` after grouping
  endpoints using the pipeline specification;
- the per-cycle overall worst delay (the genie-aided minimum safe period),
  its distribution (Fig. 5) and the time-average lower bound on T_avg;
- which stage limits each cycle (Fig. 6).
"""

from dataclasses import dataclass, field

import numpy as np

from repro.dta.compiled import worst_per_cycle
from repro.sim.trace import Stage
from repro.utils.stats import Histogram


@dataclass
class DtaResult:
    """Per-cycle dynamic timing data recovered from an event log."""

    sim_period_ps: float
    num_cycles: int
    #: stage -> numpy array of per-cycle worst delays (ps).
    stage_delays: dict = field(default_factory=dict)
    #: per-cycle overall worst delay (ps).
    cycle_max: np.ndarray = None
    #: per-cycle limiting stage (Stage value indices).
    limiting_stage: np.ndarray = None

    # -- Fig. 5 statistics ----------------------------------------------------

    @property
    def mean_cycle_delay_ps(self):
        """Optimistic lower bound on the average clock period (genie)."""
        return float(self.cycle_max.mean())

    @property
    def max_cycle_delay_ps(self):
        return float(self.cycle_max.max())

    def genie_speedup_percent(self, static_period_ps):
        """Theoretical speedup of perfect per-cycle adjustment (Sec. IV-A)."""
        return (static_period_ps / self.mean_cycle_delay_ps - 1.0) * 100.0

    def delay_histogram(self, num_bins=40, low=0.0, high=None):
        """Histogram of per-cycle worst delays (paper Fig. 5)."""
        if high is None:
            high = float(np.ceil(self.max_cycle_delay_ps / 100.0) * 100.0)
        histogram = Histogram(low=low, high=high, num_bins=num_bins)
        histogram.extend(self.cycle_max.tolist())
        return histogram

    # -- Fig. 6 statistics ----------------------------------------------------

    def limiting_stage_shares(self):
        """Fraction of cycles in which each stage holds the worst endpoint."""
        shares = {}
        for stage in Stage:
            shares[stage] = float(
                (self.limiting_stage == stage.value).sum() / self.num_cycles
            )
        return shares

    def dominant_stage(self):
        shares = self.limiting_stage_shares()
        return max(shares, key=lambda stage: shares[stage])


def analyze_event_log(event_log):
    """Run the DTA over an event log; returns a :class:`DtaResult`.

    The grouping of endpoints into pipeline stages comes from the event
    log's endpoint metadata (the paper's "pipeline specification" input).
    """
    event_log.validate()
    num_cycles = event_log.num_cycles
    if num_cycles <= 0:
        raise ValueError("event log contains no cycles")

    period = event_log.sim_period_ps
    stage_delays = {
        stage: np.zeros(num_cycles, dtype=float) for stage in Stage
    }

    for event in event_log.events:
        setup = event_log.endpoint_setup(event.endpoint)
        stage_name = event_log.endpoint_stage(event.endpoint)
        stage = Stage[stage_name]
        # slack observed at the endpoint; skew cancels because both
        # timestamps are taken at the same element
        slack = event.t_clock_ps - event.t_data_ps - setup
        delay = period - slack
        row = stage_delays[stage]
        if delay > row[event.cycle]:
            row[event.cycle] = delay

    # (cycles, stages) matrix; the genie-oracle reduction is shared with
    # the compiled-trace engine (one definition of "worst per cycle")
    matrix = np.stack([stage_delays[stage] for stage in Stage], axis=1)
    cycle_max, limiting = worst_per_cycle(matrix)

    return DtaResult(
        sim_period_ps=period,
        num_cycles=num_cycles,
        stage_delays=stage_delays,
        cycle_max=cycle_max,
        limiting_stage=limiting,
    )
