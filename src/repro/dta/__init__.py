"""Dynamic timing analysis (paper Sec. II-B.2).

The flow mirrors the paper's tooling chain:

1. :mod:`repro.dta.gatesim` — "gate-level simulation": runs a program on
   the cycle-accurate pipeline while sampling the excitation model, and
   emits an endpoint event log (last data-input event vs. next clock edge
   per sequential element per cycle, like the paper's Modelsim/TSSI flow);
2. :mod:`repro.dta.analyzer` — the DTA tool: recovers per-endpoint dynamic
   delays from the event log (accounting for per-endpoint clock skew and
   setup), groups endpoints into pipeline-stage path groups, and computes
   per-cycle per-stage maxima, the genie-aided bound and limiting-stage
   statistics (Figs. 5 and 6);
3. :mod:`repro.dta.extraction` — per-instruction worst-case extraction:
   attributes stage delays to the driving instruction's timing class and
   produces the delay-prediction LUT (Table II), with the static-timing
   fallback for under-characterised instructions;
4. :mod:`repro.dta.histograms` — Fig. 5 / Fig. 7 histogram builders;
5. :mod:`repro.dta.compiled` — compiled pipeline traces (class-id and
   excited-delay matrices, cached per program × design) powering the batch
   evaluation engine in :mod:`repro.flow.evaluate`.
"""

from repro.dta.analyzer import DtaResult, analyze_event_log
from repro.dta.compiled import (
    CompiledTrace,
    compile_trace,
    get_compiled_trace,
    worst_per_cycle,
)
from repro.dta.events import EndpointEvent, EventLog
from repro.dta.extraction import extract_lut
from repro.dta.gatesim import GateLevelSimulator, GateSimResult
from repro.dta.lut import DelayLUT

__all__ = [
    "EndpointEvent",
    "EventLog",
    "GateLevelSimulator",
    "GateSimResult",
    "DtaResult",
    "analyze_event_log",
    "extract_lut",
    "DelayLUT",
    "CompiledTrace",
    "compile_trace",
    "get_compiled_trace",
    "worst_per_cycle",
]
