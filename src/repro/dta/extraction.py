"""Per-instruction worst-case delay extraction (paper's Matlab step).

Combines the DTA per-cycle stage delays with the pipeline trace: every
stage-group delay in every cycle is attributed to the timing class of the
instruction *driving* that group in that cycle (the same driver mapping the
excitation model and the clock controller use — see
:func:`repro.timing.excitation.driver_view`), and per-class maxima across
all occurrences become the delay-prediction LUT entries:

    d_I^s = max over t where class(driver_s(t)) == I of d_s[t]

Classes observed fewer than ``min_occurrences`` times in EX keep the static
worst-case period (Sec. IV-A: "Instructions where no accurate maximum delay
characterization could be performed ... are represented ... with the
worst-case clock period timings from static timing analysis").
"""

from repro.dta.lut import DelayLUT
from repro.sim.trace import Stage
from repro.timing.excitation import driver_view
from repro.timing.profiles import BUBBLE_CLASS

#: Default threshold for trusting a class's characterisation.
DEFAULT_MIN_OCCURRENCES = 30


def attribute_cycle(record):
    """Driver timing class of every stage group in one cycle."""
    classes = {}
    for stage in Stage:
        view = driver_view(record, stage)
        classes[stage] = (
            view.timing_class if view.timing_class is not None
            else BUBBLE_CLASS
        )
    return classes


def extract_lut(dta_result, trace, static_period_ps,
                min_occurrences=DEFAULT_MIN_OCCURRENCES, source=""):
    """Build the :class:`DelayLUT` from one characterisation run.

    Parameters
    ----------
    dta_result:
        Output of :func:`repro.dta.analyzer.analyze_event_log`.
    trace:
        The pipeline trace of the same run (provides the attribution).
    static_period_ps:
        Fallback period for under-characterised classes.
    min_occurrences:
        Minimum EX-stage observations to trust a class's entries.
    """
    if dta_result.num_cycles != trace.num_cycles:
        raise ValueError(
            f"DTA covers {dta_result.num_cycles} cycles but the trace has "
            f"{trace.num_cycles}"
        )

    entries = {}
    ex_counts = {}
    for record in trace.records:
        classes = attribute_cycle(record)
        for stage in Stage:
            cls = classes[stage]
            delay = float(dta_result.stage_delays[stage][record.cycle])
            row = entries.setdefault(cls, {})
            if delay > row.get(stage, 0.0):
                row[stage] = delay
        ex_cls = classes[Stage.EX]
        ex_counts[ex_cls] = ex_counts.get(ex_cls, 0) + 1

    characterized = {
        cls for cls, count in ex_counts.items() if count >= min_occurrences
    }
    # Bubbles are ubiquitous; they are characterised whenever seen at all.
    if BUBBLE_CLASS in ex_counts:
        characterized.add(BUBBLE_CLASS)

    # complete rows: a class must have an entry for every stage group
    for cls, row in entries.items():
        for stage in Stage:
            row.setdefault(stage, static_period_ps)

    return DelayLUT(
        static_period_ps=static_period_ps,
        entries=entries,
        occurrences=ex_counts,
        characterized=characterized,
        min_occurrences=min_occurrences,
        source=source,
    )


def extract_lut_arrays(dta_result, compiled, static_period_ps,
                       min_occurrences=DEFAULT_MIN_OCCURRENCES, source=""):
    """Array-path :func:`extract_lut`: attribution from a compiled trace.

    The compiled class-id matrix *is* :func:`attribute_cycle` in bulk (the
    ADR column already keys on the EX occupant), so the per-class,
    per-stage maxima reduce to one ``np.maximum.at`` per stage and the EX
    occurrence counts to a ``bincount``.  Produces a LUT equal to the
    record-path one — same entries, occurrences, characterized set — for
    the same DTA data.

    Non-default pipeline specs fold their columns onto the six canonical
    :class:`Stage` groups (several decode stages all accumulate into the
    ``DC`` maxima); groups a spec does not implement stay unobserved and
    fall back to the static period, so the LUT schema is spec-invariant.
    """
    import numpy as np

    if dta_result.num_cycles != compiled.num_cycles:
        raise ValueError(
            f"DTA covers {dta_result.num_cycles} cycles but the trace has "
            f"{compiled.num_cycles}"
        )

    spec = compiled.pipeline_spec
    class_names = compiled.class_names
    num_classes = len(class_names)
    maxima = np.zeros((num_classes, len(Stage)), dtype=float)
    for column, group in enumerate(spec.group_of):
        np.maximum.at(
            maxima[:, group],
            compiled.class_ids[:, column],
            np.asarray(dta_result.stage_delays[column], dtype=float),
        )

    ex_counts_array = np.bincount(
        compiled.class_ids[:, spec.ex_index], minlength=num_classes
    )
    # every class in the compiled intern table was observed in some stage
    entries = {}
    for index, cls in enumerate(class_names):
        entries[cls] = {
            stage: (
                float(maxima[index, stage])
                if maxima[index, stage] > 0.0 else static_period_ps
            )
            for stage in Stage
        }
    ex_counts = {
        class_names[index]: int(count)
        for index, count in enumerate(ex_counts_array)
        if count > 0
    }

    characterized = {
        cls for cls, count in ex_counts.items() if count >= min_occurrences
    }
    if BUBBLE_CLASS in ex_counts:
        characterized.add(BUBBLE_CLASS)

    return DelayLUT(
        static_period_ps=static_period_ps,
        entries=entries,
        occurrences=ex_counts,
        characterized=characterized,
        min_occurrences=min_occurrences,
        source=source,
    )


def merge_luts(luts):
    """Merge LUTs from several characterisation runs (max per entry).

    The paper characterises with a mix of hand-written kernels and
    semi-random programs; merging their per-run LUTs is equivalent to
    extracting from the concatenated trace.
    """
    if not luts:
        raise ValueError("need at least one LUT to merge")
    static = max(lut.static_period_ps for lut in luts)
    min_occ = max(lut.min_occurrences for lut in luts)
    merged_entries = {}
    merged_counts = {}
    for lut in luts:
        for cls, row in lut.entries.items():
            target = merged_entries.setdefault(cls, {})
            for stage, delay in row.items():
                # static-period fillers must not mask measured entries
                if delay >= lut.static_period_ps and stage not in target:
                    target[stage] = delay
                elif delay < lut.static_period_ps:
                    measured = target.get(stage)
                    if (
                        measured is None
                        or measured >= lut.static_period_ps
                        or delay > measured
                    ):
                        target[stage] = delay
        for cls, count in lut.occurrences.items():
            merged_counts[cls] = merged_counts.get(cls, 0) + count

    characterized = {
        cls for cls, count in merged_counts.items() if count >= min_occ
    }
    if BUBBLE_CLASS in merged_counts:
        characterized.add(BUBBLE_CLASS)
    sources = "+".join(sorted({lut.source for lut in luts if lut.source}))
    return DelayLUT(
        static_period_ps=static,
        entries=merged_entries,
        occurrences=merged_counts,
        characterized=characterized,
        min_occurrences=min_occ,
        source=sources,
    )
