"""VCD-lite dump of a pipeline run.

The paper's gate-level simulation emits value change dumps (VCDs) that
feed the power analysis (Fig. 2).  This module writes a compact,
standard-syntax VCD of the pipeline trace — one signal per stage
occupancy, the redirect/stall strobes and the per-cycle EX operand bus —
sufficient for the switching-activity power estimate in
:mod:`repro.power.activity` and viewable in any waveform viewer.
"""

from repro.sim.trace import Stage

#: VCD identifier characters for our signals.
_IDS = {
    "clk": "!",
    Stage.ADR: "a",
    Stage.FE: "f",
    Stage.DC: "d",
    Stage.EX: "e",
    Stage.CTRL: "c",
    Stage.WB: "w",
    "redirect": "r",
    "stall": "s",
    "ex_a": "A",
    "ex_b": "B",
}


def write_vcd(trace, timescale_ps=1000):
    """Render a PipelineTrace as VCD text.

    Stage signals carry 1 when the stage holds a real instruction and 0
    for bubbles; ``ex_a``/``ex_b`` carry the 32-bit execute-stage operand
    buses whose toggling drives datapath power.
    """
    lines = [
        "$date repro $end",
        "$version repro pipeline trace $end",
        f"$timescale {timescale_ps}ps $end",
        "$scope module or1k_core $end",
        f"$var wire 1 {_IDS['clk']} clk $end",
    ]
    for stage in Stage:
        lines.append(
            f"$var wire 1 {_IDS[stage]} {stage.name.lower()}_valid $end"
        )
    lines.append(f"$var wire 1 {_IDS['redirect']} redirect $end")
    lines.append(f"$var wire 1 {_IDS['stall']} stall $end")
    lines.append(f"$var wire 32 {_IDS['ex_a']} ex_operand_a $end")
    lines.append(f"$var wire 32 {_IDS['ex_b']} ex_operand_b $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    previous = {}

    def emit(identifier, value, width=1):
        if previous.get(identifier) == value:
            return
        previous[identifier] = value
        if width == 1:
            lines.append(f"{value}{identifier}")
        else:
            lines.append(f"b{value:032b} {identifier}")

    for record in trace.records:
        lines.append(f"#{record.cycle * 2}")
        emit(_IDS["clk"], 1)
        for stage in Stage:
            emit(_IDS[stage], 0 if record.slots[stage].is_bubble else 1)
        emit(_IDS["redirect"], 1 if record.redirect else 0)
        emit(_IDS["stall"], 1 if record.stall else 0)
        a, b = record.ex_operands if record.ex_operands else (0, 0)
        if a is None or b is None:   # drained slot past the halt
            a, b = 0, 0
        emit(_IDS["ex_a"], a, width=32)
        emit(_IDS["ex_b"], b, width=32)
        lines.append(f"#{record.cycle * 2 + 1}")
        emit(_IDS["clk"], 0)
    return "\n".join(lines) + "\n"


def count_value_changes(vcd_text):
    """Number of value-change lines (a cheap activity proxy for tests)."""
    count = 0
    for line in vcd_text.splitlines():
        if line and (line[0] in "01b") and not line.startswith("b$"):
            count += 1
    return count
