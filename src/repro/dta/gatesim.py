"""Gate-level simulation substitute: pipeline run + excitation sampling.

The paper runs the placed-and-routed netlist in Modelsim at a "low" clock
frequency and records an event log of all endpoint data/clock activity.
Here the cycle-accurate pipeline provides the per-cycle stage occupancy,
and the excitation model provides the worst data-arrival delay of each
endpoint group; the result is serialised into exactly the event-log shape
the analyzer consumes.

Each stage group materialises events on its (few) representative endpoints:
the worst endpoint of the group carries the excited delay; the others trail
at fixed fractions, exercising the analyzer's per-endpoint max reduction.
"""

from dataclasses import dataclass

import numpy as np

from repro.dta.events import EndpointEvent, EventLog
from repro.sim.pipeline import PipelineSimulator
from repro.sim.trace import Stage
from repro.utils.rounding import round3_array

#: Data-arrival fractions of the non-worst endpoints in each group.
_TRAILING_FRACTIONS = (1.0, 0.86, 0.67)

#: Default gate-sim clock period margin above the STA period.
_SIM_PERIOD_MARGIN = 1.10


@dataclass
class GateSimResult:
    """Output bundle of one characterisation run."""

    program_name: str
    event_log: EventLog
    trace: object                    # PipelineTrace
    design: object                   # ProcessorDesign
    num_cycles: int

    @property
    def pc_trace(self):
        """Program-counter trace of retired instructions (paper's .das input)."""
        return [pc for pc, _ in self.trace.retired]


class GateLevelSimulator:
    """Runs a program against a design and produces the event log.

    Parameters
    ----------
    program:
        Assembled program.
    design:
        :class:`~repro.timing.design.ProcessorDesign`.
    sim_period_ps:
        Gate-sim clock period; defaults to 10 % above the STA period (the
        characterisation must itself be timing-safe).
    max_cycles:
        Safety bound for the pipeline run.
    """

    def __init__(self, program, design, sim_period_ps=None,
                 max_cycles=2_000_000):
        self.program = program
        self.design = design
        if sim_period_ps is None:
            sim_period_ps = design.static_period_ps * _SIM_PERIOD_MARGIN
        if sim_period_ps < design.static_period_ps:
            raise ValueError(
                "gate-level simulation must run at or below the STA "
                f"frequency: period {sim_period_ps} ps < "
                f"{design.static_period_ps} ps"
            )
        self.sim_period_ps = sim_period_ps
        self.max_cycles = max_cycles

    def run(self):
        """Simulate and emit the event log.

        The event-log path registers one endpoint set per canonical stage
        group, so it models the default six-stage machine only; other
        pipeline specs characterise through the array path
        (:meth:`run_dta`), which keys delays per spec column.
        """
        spec = self.design.pipeline_spec
        if not spec.is_default:
            raise ValueError(
                "event-log characterisation supports the default pipeline "
                f"spec only; spec {spec.name!r} must use run_dta()"
            )
        simulator = PipelineSimulator(self.program)
        trace = simulator.run(max_cycles=self.max_cycles)

        log = EventLog(sim_period_ps=self.sim_period_ps)
        endpoints_by_stage = {}
        for stage in Stage:
            stage_endpoints = self.design.netlist.endpoints_for(stage)
            endpoints_by_stage[stage] = stage_endpoints
            for endpoint in stage_endpoints:
                log.register_endpoint(
                    endpoint.name, stage.name, endpoint.setup_ps
                )

        excitation = self.design.excitation
        period = self.sim_period_ps
        for record in trace.records:
            t0 = record.cycle * period
            for stage in Stage:
                excited = excitation.group_delay(record, stage)
                for endpoint, fraction in zip(
                    endpoints_by_stage[stage], _TRAILING_FRACTIONS
                ):
                    delay = excited.delay_ps * fraction
                    # data must arrive `setup` before the (skewed) edge for
                    # a path of this delay: D = arrival - t0 + setup - skew
                    t_data = t0 + delay - endpoint.setup_ps + endpoint.skew_ps
                    t_clock = t0 + period + endpoint.skew_ps
                    log.add(
                        EndpointEvent(
                            cycle=record.cycle,
                            endpoint=endpoint.name,
                            t_data_ps=round(t_data, 3),
                            t_clock_ps=round(t_clock, 3),
                        )
                    )
        log.num_cycles = trace.num_cycles
        return GateSimResult(
            program_name=self.program.name,
            event_log=log,
            trace=trace,
            design=self.design,
            num_cycles=trace.num_cycles,
        )


    def run_dta(self):
        """Array fast path: simulate, 'log', and analyze in one sweep.

        Produces the :class:`~repro.dta.analyzer.DtaResult` (and the
        compiled trace that supplies the per-cycle attribution) that
        :meth:`run` + :func:`~repro.dta.analyzer.analyze_event_log` would
        produce — bit-identically — without materialising half a million
        :class:`EndpointEvent` objects.  The event-log timestamp
        arithmetic (per-endpoint rounding, setup/skew offsets, the
        slack-recovery subtraction) is replayed exactly on the compiled
        ground-truth delay matrix; ``tests/test_characterize_flow.py``
        holds the two paths together.

        Returns ``(dta_result, compiled_trace)``.
        """
        from repro.dta.analyzer import DtaResult
        from repro.dta.compiled import (
            compile_trace,
            compile_vector_run,
            worst_per_cycle,
        )
        from repro.sim import vector

        spec = self.design.pipeline_spec
        run = vector.simulate(self.program, max_cycles=self.max_cycles,
                              spec=spec)
        if run is None:   # spec or program needs the scalar reference
            trace = PipelineSimulator(self.program, spec=spec).run(
                max_cycles=self.max_cycles
            )
            compiled = compile_trace(trace, self.design.excitation,
                                     spec=spec)
        else:
            compiled = compile_vector_run(run, self.design.excitation)

        recovered = recovered_stage_delays(
            compiled.delays, self.design, self.sim_period_ps
        )
        cycle_max, limiting = worst_per_cycle(recovered)
        dta = DtaResult(
            sim_period_ps=self.sim_period_ps,
            num_cycles=compiled.num_cycles,
            stage_delays={
                column: recovered[:, column]
                for column in range(spec.num_stages)
            },
            cycle_max=cycle_max,
            limiting_stage=limiting,
        )
        return dta, compiled


def recovered_stage_delays(delays, design, sim_period_ps):
    """Per-cycle stage delays as the DTA recovers them from an event log.

    For every stage group the (few) representative endpoints trail the
    worst excited delay at fixed fractions; each endpoint's data/clock
    timestamps are rounded to the event log's 3-decimal resolution, and
    the analyzer recovers ``period - slack``.  This function replays that
    exact arithmetic on the ``(cycles, stages)`` excited-delay matrix —
    the recovered value differs from the excited delay by the rounding
    noise of the timestamps, which is why extraction must run on *this*
    matrix to stay bit-identical to the event-log reference path.
    """
    spec = design.pipeline_spec
    num_cycles = len(delays)
    num_columns = delays.shape[1] if num_cycles else spec.num_stages
    period = sim_period_ps
    t0 = np.arange(num_cycles, dtype=float) * period
    recovered = np.zeros((num_cycles, num_columns), dtype=float)
    for index in range(num_columns):
        stage = Stage(spec.group_of[index])
        column = np.zeros(num_cycles, dtype=float)
        for endpoint, fraction in zip(
            design.netlist.endpoints_for(stage), _TRAILING_FRACTIONS
        ):
            delay = delays[:, index] * fraction
            t_data = round3_array(
                t0 + delay - endpoint.setup_ps + endpoint.skew_ps
            )
            t_clock = round3_array(t0 + period + endpoint.skew_ps)
            if np.any(t_clock < t_data):
                cycle = int(np.argmax(t_clock < t_data))
                raise ValueError(
                    f"endpoint {endpoint.name!r} cycle {cycle}: "
                    f"clock edge before data event (timing violation in "
                    f"the characterisation run — sim period too fast)"
                )
            column = np.maximum(
                column, period - (t_clock - t_data - endpoint.setup_ps)
            )
        recovered[:, index] = column
    return recovered


def run_gatesim(program, design, sim_period_ps=None):
    """Convenience wrapper for one characterisation run."""
    return GateLevelSimulator(program, design, sim_period_ps).run()
