"""Gate-level simulation substitute: pipeline run + excitation sampling.

The paper runs the placed-and-routed netlist in Modelsim at a "low" clock
frequency and records an event log of all endpoint data/clock activity.
Here the cycle-accurate pipeline provides the per-cycle stage occupancy,
and the excitation model provides the worst data-arrival delay of each
endpoint group; the result is serialised into exactly the event-log shape
the analyzer consumes.

Each stage group materialises events on its (few) representative endpoints:
the worst endpoint of the group carries the excited delay; the others trail
at fixed fractions, exercising the analyzer's per-endpoint max reduction.
"""

from dataclasses import dataclass

from repro.dta.events import EndpointEvent, EventLog
from repro.sim.pipeline import PipelineSimulator
from repro.sim.trace import Stage

#: Data-arrival fractions of the non-worst endpoints in each group.
_TRAILING_FRACTIONS = (1.0, 0.86, 0.67)

#: Default gate-sim clock period margin above the STA period.
_SIM_PERIOD_MARGIN = 1.10


@dataclass
class GateSimResult:
    """Output bundle of one characterisation run."""

    program_name: str
    event_log: EventLog
    trace: object                    # PipelineTrace
    design: object                   # ProcessorDesign
    num_cycles: int

    @property
    def pc_trace(self):
        """Program-counter trace of retired instructions (paper's .das input)."""
        return [pc for pc, _ in self.trace.retired]


class GateLevelSimulator:
    """Runs a program against a design and produces the event log.

    Parameters
    ----------
    program:
        Assembled program.
    design:
        :class:`~repro.timing.design.ProcessorDesign`.
    sim_period_ps:
        Gate-sim clock period; defaults to 10 % above the STA period (the
        characterisation must itself be timing-safe).
    max_cycles:
        Safety bound for the pipeline run.
    """

    def __init__(self, program, design, sim_period_ps=None,
                 max_cycles=2_000_000):
        self.program = program
        self.design = design
        if sim_period_ps is None:
            sim_period_ps = design.static_period_ps * _SIM_PERIOD_MARGIN
        if sim_period_ps < design.static_period_ps:
            raise ValueError(
                "gate-level simulation must run at or below the STA "
                f"frequency: period {sim_period_ps} ps < "
                f"{design.static_period_ps} ps"
            )
        self.sim_period_ps = sim_period_ps
        self.max_cycles = max_cycles

    def run(self):
        """Simulate and emit the event log."""
        simulator = PipelineSimulator(self.program)
        trace = simulator.run(max_cycles=self.max_cycles)

        log = EventLog(sim_period_ps=self.sim_period_ps)
        endpoints_by_stage = {}
        for stage in Stage:
            stage_endpoints = self.design.netlist.endpoints_for(stage)
            endpoints_by_stage[stage] = stage_endpoints
            for endpoint in stage_endpoints:
                log.register_endpoint(
                    endpoint.name, stage.name, endpoint.setup_ps
                )

        excitation = self.design.excitation
        period = self.sim_period_ps
        for record in trace.records:
            t0 = record.cycle * period
            for stage in Stage:
                excited = excitation.group_delay(record, stage)
                for endpoint, fraction in zip(
                    endpoints_by_stage[stage], _TRAILING_FRACTIONS
                ):
                    delay = excited.delay_ps * fraction
                    # data must arrive `setup` before the (skewed) edge for
                    # a path of this delay: D = arrival - t0 + setup - skew
                    t_data = t0 + delay - endpoint.setup_ps + endpoint.skew_ps
                    t_clock = t0 + period + endpoint.skew_ps
                    log.add(
                        EndpointEvent(
                            cycle=record.cycle,
                            endpoint=endpoint.name,
                            t_data_ps=round(t_data, 3),
                            t_clock_ps=round(t_clock, 3),
                        )
                    )
        log.num_cycles = trace.num_cycles
        return GateSimResult(
            program_name=self.program.name,
            event_log=log,
            trace=trace,
            design=self.design,
            num_cycles=trace.num_cycles,
        )


def run_gatesim(program, design, sim_period_ps=None):
    """Convenience wrapper for one characterisation run."""
    return GateLevelSimulator(program, design, sim_period_ps).run()
