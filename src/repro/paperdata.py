"""Published numbers from the paper, used by benches and EXPERIMENTS.md.

Single source of truth so every bench harness compares its measurement
against the same reference values.  All delays in picoseconds, frequencies
in MHz, voltages in volts, power in microwatts.
"""

#: Operating point of the paper's evaluation (28 nm FDSOI).
SUPPLY_VOLTAGE = 0.70

#: Static-timing-analysis clock period of the optimised design (Fig. 5).
STATIC_PERIOD_PS = 2026.0

#: Effective clock frequency at the static limit (Fig. 8, "conventional").
STATIC_FREQUENCY_MHZ = 494.0

#: Mean per-cycle dynamic maximum delay with genie-aided adjustment (Fig. 5).
GENIE_MEAN_PERIOD_PS = 1334.0

#: Theoretical average speedup with perfect per-cycle adjustment (Sec. IV-A).
GENIE_SPEEDUP_PERCENT = 50.0

#: Average effective frequency with instruction-based adjustment (Fig. 8).
DYNAMIC_FREQUENCY_MHZ = 680.0

#: Average speedup of instruction-based adjustment (abstract, Sec. IV-B).
DYNAMIC_SPEEDUP_PERCENT = 38.0

#: Speed given up relative to the genie bound (Sec. IV-B).
GIVE_UP_PERCENT = 12.0

#: Fraction of cycles whose limiting endpoint lies in each stage (Fig. 6).
STAGE_LIMITING_SHARES = {
    "ADR": 0.07,
    "FE": 0.00,
    "DC": 0.00,
    "EX": 0.93,
    "CTRL": 0.00,
    "WB": 0.00,
}

#: Table II — dynamic instruction delay worst cases (ps) and limiting stage.
TABLE2_INSTRUCTION_DELAYS = {
    "l.add(i)": (1467.0, "EX"),
    "l.and(i)": (1482.0, "EX"),
    "l.bf": (1470.0, "EX"),
    "l.j": (1172.0, "ADR"),
    "l.lwz": (1391.0, "EX"),
    "l.mul(i)": (1899.0, "EX"),
    "l.sll(i)": (1270.0, "EX"),
    "l.xor(i)": (1514.0, "EX"),
}

#: Table I — effect of critical-range optimisation on dynamic worst-case
#: delays (factor = optimised / conventional).
TABLE1_CRITICAL_RANGE_FACTORS = {
    "l.add(i)": 0.92,
    "l.bf": 0.78,
    "l.j": 0.74,
    "l.lwz": 0.85,
    "l.mul(i)": 1.10,
    "l.nop": 0.78,
    "l.sw": 0.85,
}

#: Static period increase caused by the critical-range constraints (Sec. III-A).
CRITICAL_RANGE_STATIC_PENALTY_PERCENT = 9.0

#: Area/power overhead range of the critical-range optimisation (Sec. III-A).
CRITICAL_RANGE_OVERHEAD_PERCENT = (5.0, 13.0)

#: Data-dependent delay spread of l.mul in EX (Sec. IV-A, Fig. 7).
LMUL_EX_SPREAD_PS = 300.0

#: Gate-level characterisation run length (Sec. IV-A, Table II caption).
CHARACTERIZATION_CYCLES = 14_000

#: Voltage-frequency scaling results (Sec. IV-B).
VOLTAGE_REDUCTION_V = 0.070
ENERGY_EFFICIENCY_GAIN_PERCENT = 24.0
CONVENTIONAL_UW_PER_MHZ = 13.7
DYNAMIC_SCALED_UW_PER_MHZ = 11.0


def within(value, reference, tolerance_percent):
    """True if ``value`` is within ``tolerance_percent`` of ``reference``."""
    if reference == 0:
        return abs(value) <= tolerance_percent / 100.0
    return abs(value - reference) <= abs(reference) * tolerance_percent / 100.0
