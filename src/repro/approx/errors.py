"""Timing-violation error model.

When a path is clocked below its excited delay, the endpoint captures a
stale or partially-propagated value.  The longest paths of an arithmetic
unit end at the *most significant* result bits (carry/partial-product
accumulation), so the deeper the violation, the more high-order bits are
corrupted — which is why the paper frames this as *approximate* rather
than catastrophic for error-tolerant workloads.

Model: a violation of ``overshoot`` picoseconds on a path with ``spread``
picoseconds of data-dependent depth corrupts the top
``ceil(32 * overshoot / spread)`` bits of the captured value (bounded to
32); the corrupted bits take deterministic pseudo-random values derived
from the operands, so runs are reproducible.
"""

import math

from repro.utils.bitops import mask, to_unsigned32
from repro.utils.rng import hash_to_unit_float


def error_magnitude_bits(overshoot_ps, spread_ps):
    """Number of corrupted high-order result bits for a given overshoot."""
    if overshoot_ps <= 0:
        return 0
    if spread_ps <= 0:
        return 32
    return min(32, int(math.ceil(32.0 * overshoot_ps / spread_ps)))


def approximate_value(exact_value, corrupted_bits, salt=0):
    """Corrupt the top ``corrupted_bits`` bits of a 32-bit value.

    The corruption is deterministic in ``(exact_value, salt)`` so that the
    same violation reproduces the same wrong answer (as real silicon with
    fixed operands and a fixed clock does).
    """
    exact_value = to_unsigned32(exact_value)
    if corrupted_bits <= 0:
        return exact_value
    corrupted_bits = min(32, corrupted_bits)
    keep = 32 - corrupted_bits
    noise = int(
        hash_to_unit_float("approx", exact_value, salt) * (1 << corrupted_bits)
    )
    return to_unsigned32((noise << keep) | (exact_value & mask(keep)))


def relative_error(exact_value, approx_val):
    """Relative magnitude error of an approximate result."""
    exact_value = to_unsigned32(exact_value)
    approx_val = to_unsigned32(approx_val)
    if exact_value == 0:
        return float(approx_val != 0)
    return abs(approx_val - exact_value) / exact_value
