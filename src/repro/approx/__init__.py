"""Extension E1: approximate computing by over-scaling (paper Sec. IV-A).

The paper observes that the data-dependent delay spread of ``l.mul`` could
be exploited by *approximate computing*: clocking faster than the safe
per-instruction bound occasionally violates the multiplier's longest
excited paths and produces approximate results.  This package models that
regime: given an over-scaling factor below 1.0 on the LUT periods, it
counts which cycles violate timing and models the resulting bit errors on
the affected results.
"""

from repro.approx.violations import OverscalingReport, evaluate_overscaling
from repro.approx.errors import approximate_value, error_magnitude_bits

__all__ = [
    "evaluate_overscaling",
    "OverscalingReport",
    "approximate_value",
    "error_magnitude_bits",
]
