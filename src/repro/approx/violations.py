"""Over-scaling evaluation: run faster than safe, count what breaks.

``evaluate_overscaling`` applies ``overscale_factor < 1.0`` to the periods
of an instruction-LUT policy, replays the ground-truth excitation model,
and reports which cycles violated timing, in which stage groups, and the
error statistics of the affected EX-stage results (the multiplier being
the prime candidate, per the paper's discussion).

The evaluation runs on the compiled-trace artifact: periods come from the
vectorized policy protocol and the violation scan is one array comparison
of the compiled delay matrix — only the (sparse) violating EX cells
replay per-record state to synthesise the corrupted results.
``evaluate_overscaling_scalar`` keeps the original per-record loop as the
reference semantics, which ``tests/test_batch_equivalence.py`` enforces
bit-identically.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.approx.errors import (
    approximate_value,
    error_magnitude_bits,
    relative_error,
)
from repro.clocking.policies import InstructionLutPolicy
from repro.dta.compiled import get_compiled_trace
from repro.sim.pipeline import PipelineSimulator
from repro.sim.trace import Stage


@dataclass
class ApproximateResult:
    """One corrupted EX result."""

    cycle: int
    mnemonic: str
    exact_value: int
    approx_value: int
    corrupted_bits: int

    @property
    def relative_error(self):
        return relative_error(self.exact_value, self.approx_value)


@dataclass
class OverscalingReport:
    """Outcome of one over-scaled run."""

    program_name: str
    overscale_factor: float
    num_cycles: int
    total_time_ps: float
    violation_cycles: int = 0
    violations_by_stage: dict = field(default_factory=dict)
    violations_by_class: dict = field(default_factory=dict)
    approx_results: list = field(default_factory=list)

    @property
    def violation_rate(self):
        return self.violation_cycles / self.num_cycles if self.num_cycles else 0.0

    @property
    def mean_relative_error(self):
        if not self.approx_results:
            return 0.0
        return sum(r.relative_error for r in self.approx_results) / len(
            self.approx_results
        )

    @property
    def mean_corrupted_bits(self):
        if not self.approx_results:
            return 0.0
        return sum(r.corrupted_bits for r in self.approx_results) / len(
            self.approx_results
        )

    def summary(self):
        return (
            f"{self.program_name} @ x{self.overscale_factor:.2f}: "
            f"{self.violation_cycles}/{self.num_cycles} violating cycles "
            f"({100 * self.violation_rate:.2f} %), "
            f"{len(self.approx_results)} approximate results, "
            f"mean corrupted bits {self.mean_corrupted_bits:.1f}"
        )


#: Overshoot below this is float noise, not a timing violation.
_OVERSHOOT_TOLERANCE_PS = 1e-9


def _evaluate_overscaling_impl(program, design, lut, overscale_factor,
                               max_cycles=2_000_000):
    """The over-scaling scan engine (see :func:`evaluate_overscaling`).

    A factor of 1.0 reproduces the paper's error-free operation; smaller
    factors trade accuracy for speed.  Functional execution is unchanged
    (the architectural model stays exact); errors are accounted on the
    side, which is sufficient for error-rate/error-magnitude statistics.

    Runs through the compiled trace (cached per program × design): the
    scaled periods are one vectorized policy call, the violation scan one
    array comparison.  Bit-identical to
    :func:`evaluate_overscaling_scalar`.
    :class:`repro.api.Session.overscaling` runs on this directly; the
    public function below is the legacy shim over the Session.
    """
    if not 0.0 < overscale_factor <= 1.0:
        raise ValueError("overscale_factor must be in (0, 1]")

    compiled = get_compiled_trace(program, design, max_cycles=max_cycles)
    policy = InstructionLutPolicy(lut)
    periods = policy.periods_for(compiled) * overscale_factor

    report = OverscalingReport(
        program_name=program.name,
        overscale_factor=overscale_factor,
        num_cycles=compiled.num_cycles,
        # in-order Python sum, matching the scalar loop's accumulation
        total_time_ps=sum(periods.tolist()),
    )
    overshoot = compiled.delays - periods[:, None]
    mask = overshoot > _OVERSHOOT_TOLERANCE_PS
    report.violation_cycles = int(mask.any(axis=1).sum())
    # per-record EX state is only needed at violating EX cells; a trace
    # rehydrated from the artifact store carries none, so re-simulate in
    # that (rare) case
    records = compiled.trace.records if compiled.trace is not None else None
    if records is None and mask[:, Stage.EX].any():
        records = PipelineSimulator(program).run(
            max_cycles=max_cycles
        ).records
    # argwhere walks row-major — the same (cycle, stage) order as the
    # scalar loop, so the per-stage/per-class dicts build identically
    for cycle, stage in np.argwhere(mask):
        cycle = int(cycle)
        stage = Stage(int(stage))
        report.violations_by_stage[stage.name] = (
            report.violations_by_stage.get(stage.name, 0) + 1
        )
        driver_class = compiled.class_name_at(cycle, stage)
        report.violations_by_class[driver_class] = (
            report.violations_by_class.get(driver_class, 0) + 1
        )
        if stage != Stage.EX:
            continue
        record = records[cycle]
        if record.ex_operands is None:
            continue
        view = record.view(Stage.EX)
        spec = design.profile.ex_spec(view.timing_class)
        bits = error_magnitude_bits(
            float(overshoot[cycle, stage]), spec.spread_ps
        )
        a, b = record.ex_operands
        exact = (a * b) & 0xFFFFFFFF   # representative result
        report.approx_results.append(
            ApproximateResult(
                cycle=record.cycle,
                mnemonic=view.mnemonic,
                exact_value=exact,
                approx_value=approximate_value(
                    exact, bits, salt=record.cycle
                ),
                corrupted_bits=bits,
            )
        )
    return report


def evaluate_overscaling_scalar(program, design, lut, overscale_factor,
                                max_cycles=2_000_000):
    """Reference implementation: the original per-record scalar loop.

    Kept as the semantics :func:`evaluate_overscaling` must reproduce
    bit-identically (see ``tests/test_batch_equivalence.py``).
    """
    if not 0.0 < overscale_factor <= 1.0:
        raise ValueError("overscale_factor must be in (0, 1]")

    simulator = PipelineSimulator(program)
    trace = simulator.run(max_cycles=max_cycles)
    policy = InstructionLutPolicy(lut)
    excitation = design.excitation

    report = OverscalingReport(
        program_name=program.name,
        overscale_factor=overscale_factor,
        num_cycles=trace.num_cycles,
        total_time_ps=0.0,
    )
    for record in trace.records:
        period = policy.period_for(record) * overscale_factor
        report.total_time_ps += period
        cycle_violated = False
        for stage in Stage:
            excited = excitation.group_delay(record, stage)
            overshoot = excited.delay_ps - period
            if overshoot <= 1e-9:
                continue
            cycle_violated = True
            report.violations_by_stage[stage.name] = (
                report.violations_by_stage.get(stage.name, 0) + 1
            )
            report.violations_by_class[excited.driver_class] = (
                report.violations_by_class.get(excited.driver_class, 0) + 1
            )
            if stage == Stage.EX and record.ex_operands is not None:
                view = record.view(Stage.EX)
                spec = design.profile.ex_spec(view.timing_class)
                bits = error_magnitude_bits(overshoot, spec.spread_ps)
                a, b = record.ex_operands
                exact = (a * b) & 0xFFFFFFFF   # representative result
                report.approx_results.append(
                    ApproximateResult(
                        cycle=record.cycle,
                        mnemonic=view.mnemonic,
                        exact_value=exact,
                        approx_value=approximate_value(
                            exact, bits, salt=record.cycle
                        ),
                        corrupted_bits=bits,
                    )
                )
        if cycle_violated:
            report.violation_cycles += 1
    return report


def evaluate_overscaling(program, design, lut, overscale_factor,
                         max_cycles=2_000_000):
    """Run a program with LUT periods scaled by ``overscale_factor``.

    .. deprecated::
        Legacy shim over :class:`repro.api.Session` (bit-identical); new
        code should use ``Session.overscaling``, which returns a
        columnar ``ResultFrame`` over (program, factor).
    """
    if not 0.0 < overscale_factor <= 1.0:
        raise ValueError("overscale_factor must be in (0, 1]")
    from repro.api import Session

    session = Session.for_design(design, lut=lut)
    return session.overscaling_reports(
        program, [overscale_factor], max_cycles=max_cycles
    )[0]


def overscaling_sweep(program, design, lut, factors=None):
    """Sweep over-scaling factors; returns a list of reports.

    .. deprecated::
        Legacy shim over :class:`repro.api.Session` (bit-identical); new
        code should use ``Session.overscaling``.
    """
    from repro.api import Session

    session = Session.for_design(design, lut=lut)
    if factors is None:
        factors = [1.0, 0.97, 0.94, 0.91, 0.88, 0.85]
    return session.overscaling_reports(
        program, list(factors), max_cycles=2_000_000
    )
