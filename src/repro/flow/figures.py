"""CSV export of figure data series.

Each helper returns the plottable series behind one of the paper's figures
as ``(header, rows)`` and can write it as CSV — so the reproduction's
figures can be regenerated in any plotting tool without re-running the
flows.
"""

import csv
import io

from repro.sim.trace import Stage
from repro.utils.stats import Histogram


def _to_csv(header, rows):
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    writer.writerows(rows)
    return buffer.getvalue()


def fig5_series(dta_result, num_bins=40, high=2100.0):
    """Fig. 5 histogram series: (bin_center_ps, cycle_count)."""
    histogram = Histogram(low=0.0, high=high, num_bins=num_bins)
    histogram.extend(dta_result.cycle_max.tolist())
    rows = list(zip(
        (round(c, 1) for c in histogram.bin_centers()), histogram.counts
    ))
    return ("delay_ps", "cycles"), rows


def fig6_series(dta_result):
    """Fig. 6 series: (stage, limiting_share)."""
    shares = dta_result.limiting_stage_shares()
    rows = [(stage.name, round(shares[stage], 5)) for stage in Stage]
    return ("stage", "share"), rows


def fig7_series(stage_samples, num_bins=25, high=2000.0):
    """Fig. 7 series: one histogram column per stage."""
    histograms = {}
    for stage, values in stage_samples.items():
        histogram = Histogram(low=0.0, high=high, num_bins=num_bins)
        histogram.extend(values)
        histograms[stage] = histogram
    centers = next(iter(histograms.values())).bin_centers()
    header = ["delay_ps"] + [stage.name for stage in Stage]
    rows = []
    for index, center in enumerate(centers):
        rows.append(
            [round(center, 1)]
            + [histograms[stage].counts[index] for stage in Stage]
        )
    return tuple(header), rows


def fig8_series(results, static_period_ps):
    """Fig. 8 series: per-benchmark conventional vs. dynamic frequency."""
    rows = []
    for result in sorted(results, key=lambda r: r.program_name):
        rows.append((
            result.program_name,
            round(1e6 / static_period_ps, 1),
            round(result.effective_frequency_mhz, 1),
            round(result.speedup_percent, 2),
        ))
    return (
        ("benchmark", "conventional_mhz", "dynamic_mhz", "speedup_percent"),
        rows,
    )


def sweep_series(labels, batch_results):
    """Batch-sweep series: one row per (configuration, benchmark).

    ``batch_results`` is the legacy ``[config][program]`` grid
    (``evaluate_batch`` shape); ``labels`` names each configuration row.
    New code should pass an evaluation frame to
    :func:`sweep_frame_series` instead.
    """
    rows = []
    for label, results in zip(labels, batch_results):
        for result in results:
            rows.append((
                label,
                result.program_name,
                round(result.average_period_ps, 2),
                round(result.effective_frequency_mhz, 1),
                round(result.speedup_percent, 2),
                len(result.violations),
            ))
    return (
        ("config", "benchmark", "avg_period_ps", "dynamic_mhz",
         "speedup_percent", "violations"),
        rows,
    )


def sweep_frame_series(frame):
    """Batch-sweep series from an evaluation
    :class:`~repro.api.frame.ResultFrame`: one row per
    (configuration, benchmark), in frame (config-major) order — the same
    rows :func:`sweep_series` produced from the legacy grid."""
    rows = [
        (
            row["config"],
            row["program"],
            round(row["average_period_ps"], 2),
            round(row["effective_frequency_mhz"], 1),
            round(row["speedup_percent"], 2),
            row["num_violations"],
        )
        for row in frame.iter_rows()
    ]
    return (
        ("config", "benchmark", "avg_period_ps", "dynamic_mhz",
         "speedup_percent", "violations"),
        rows,
    )


def write_csv(path, header, rows):
    """Write one series to a CSV file; returns the written text."""
    text = _to_csv(header, rows)
    with open(path, "w", newline="") as handle:
        handle.write(text)
    return text


def export_all(directory, dta_result, mul_samples, results,
               static_period_ps):
    """Write every figure series into ``directory``; returns the paths."""
    import pathlib

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = {}
    for name, (header, rows) in {
        "fig5": fig5_series(dta_result),
        "fig6": fig6_series(dta_result),
        "fig7": fig7_series(mul_samples),
        "fig8": fig8_series(results, static_period_ps),
    }.items():
        path = directory / f"{name}.csv"
        write_csv(path, header, rows)
        written[name] = path
    return written
