"""End-to-end flows (paper Fig. 2).

- :mod:`repro.flow.characterize` — implementation → gate-level simulation →
  dynamic timing analysis → instruction timing extraction → delay LUT;
- :mod:`repro.flow.evaluate` — benchmark execution with dynamic timings on
  the LUT-aware cycle-accurate simulator, including the ground-truth safety
  check (no excited path may exceed the applied period);
- :mod:`repro.flow.experiment` — experiment configuration/result records
  used by the bench harnesses.
"""

from repro.flow.characterize import CharacterizationResult, characterize
from repro.flow.evaluate import (
    EvaluationResult,
    SweepConfig,
    evaluate_batch,
    evaluate_program,
    evaluate_program_scalar,
    evaluate_suite,
)

__all__ = [
    "characterize",
    "CharacterizationResult",
    "evaluate_batch",
    "evaluate_program",
    "evaluate_program_scalar",
    "evaluate_suite",
    "EvaluationResult",
    "SweepConfig",
]
