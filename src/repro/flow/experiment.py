"""Experiment records shared by the bench harnesses.

Each bench regenerates one table or figure of the paper; the records here
standardise how a measured value is compared to the published one so
EXPERIMENTS.md and the bench output stay consistent.
"""

import math
from dataclasses import dataclass, field

from repro.utils.tables import format_table


@dataclass
class Comparison:
    """One (paper value, measured value) pair."""

    name: str
    paper: float
    measured: float
    unit: str = ""

    @property
    def deviation_percent(self):
        """Relative deviation; 0-safe when the paper value is 0.

        A zero paper value has no relative scale: an exact match reports
        0 % and any mismatch reports ``inf`` (flagged as ``n/a`` in the
        rendered row) instead of silently propagating NaN into aggregate
        statistics.
        """
        if self.paper == 0:
            return 0.0 if self.measured == 0 else float("inf")
        return (self.measured - self.paper) / abs(self.paper) * 100.0

    def row(self):
        deviation = self.deviation_percent
        rendered = (
            f"{deviation:+.1f}%" if math.isfinite(deviation)
            else "n/a (paper=0)"
        )
        return (
            self.name,
            f"{self.paper:.2f}{self.unit}",
            f"{self.measured:.2f}{self.unit}",
            rendered,
        )


@dataclass
class ExperimentReport:
    """A bench's full paper-vs-measured comparison."""

    experiment_id: str
    title: str
    comparisons: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    def add(self, name, paper, measured, unit=""):
        self.comparisons.append(
            Comparison(name=name, paper=paper, measured=measured, unit=unit)
        )

    def note(self, text):
        self.notes.append(text)

    def render(self):
        table = format_table(
            ["Metric", "Paper", "Measured", "Deviation"],
            [c.row() for c in self.comparisons],
            title=f"{self.experiment_id}: {self.title}",
        )
        if self.notes:
            table += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return table

    def max_abs_deviation_percent(self):
        """Worst absolute deviation across comparisons; 0.0 for an empty
        report (nothing measured deviates from nothing)."""
        if not self.comparisons:
            return 0.0
        return max(
            abs(c.deviation_percent) for c in self.comparisons
        )
