"""Report rendering helpers for evaluation sweeps."""

from repro.utils.tables import format_table
from repro.utils.units import ps_to_mhz


def render_suite_results(results, static_period_ps, title="Evaluation"):
    """Fig. 8-style table: per benchmark, conventional vs. dynamic."""
    static_mhz = ps_to_mhz(static_period_ps)
    rows = []
    for result in sorted(results, key=lambda r: r.program_name):
        rows.append((
            result.program_name,
            f"{static_mhz:.0f}",
            f"{result.effective_frequency_mhz:.0f}",
            f"{result.speedup_percent:+.1f}%",
            f"{result.average_period_ps:.0f}",
            len(result.violations),
        ))
    return format_table(
        ["Benchmark", "Conv. [MHz]", "Dynamic [MHz]", "Speedup",
         "T_avg [ps]", "Violations"],
        rows,
        title=title,
        aligns=["<", ">", ">", ">", ">", ">"],
    )


def render_policy_comparison(results_by_policy, title="Policy comparison"):
    """Rows = benchmarks, columns = policies (effective MHz)."""
    policies = sorted(results_by_policy)
    benchmarks = sorted(
        {r.program_name for results in results_by_policy.values()
         for r in results}
    )
    lookup = {
        (policy, r.program_name): r
        for policy, results in results_by_policy.items()
        for r in results
    }
    rows = []
    for benchmark in benchmarks:
        row = [benchmark]
        for policy in policies:
            result = lookup.get((policy, benchmark))
            row.append(
                f"{result.effective_frequency_mhz:.0f}" if result else "-"
            )
        rows.append(tuple(row))
    return format_table(
        ["Benchmark"] + [str(p) for p in policies], rows, title=title
    )
