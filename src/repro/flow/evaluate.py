"""Evaluation flow: benchmark execution with dynamic timings.

The LUT-aware cycle-accurate simulation of the paper (Sec. III-B): run a
program on the pipeline, apply a clock policy per cycle, and accumulate
real time.  The evaluation optionally replays the ground-truth excitation
model to verify the central invariant — the applied period covers every
excited path in every cycle (frequency-over-scaling *without* timing
errors).
"""

from dataclasses import dataclass, field

from repro.clocking.controller import ClockAdjustmentController
from repro.sim.pipeline import PipelineSimulator
from repro.sim.trace import Stage
from repro.utils.units import ps_to_mhz


@dataclass
class TimingViolation:
    """One cycle in which an excited path exceeded the applied period."""

    cycle: int
    stage: Stage
    applied_period_ps: float
    excited_delay_ps: float
    driver_class: str

    @property
    def overshoot_ps(self):
        return self.excited_delay_ps - self.applied_period_ps


@dataclass
class EvaluationResult:
    """Outcome of one (program, policy) evaluation."""

    program_name: str
    policy_name: str
    num_cycles: int
    num_retired: int
    total_time_ps: float
    static_period_ps: float
    min_period_ps: float
    max_period_ps: float
    switch_rate: float
    violations: list = field(default_factory=list)
    genie_total_time_ps: float = None

    @property
    def average_period_ps(self):
        return self.total_time_ps / self.num_cycles

    @property
    def effective_frequency_mhz(self):
        """Average effective clock frequency (paper Fig. 8 y-axis)."""
        return ps_to_mhz(self.average_period_ps)

    @property
    def static_time_ps(self):
        return self.static_period_ps * self.num_cycles

    @property
    def speedup_percent(self):
        """Speedup over conventional clocking at the STA period."""
        return (self.static_time_ps / self.total_time_ps - 1.0) * 100.0

    @property
    def is_safe(self):
        return not self.violations

    def summary(self):
        return (
            f"{self.program_name:>14} [{self.policy_name}]: "
            f"{self.num_cycles} cycles, "
            f"T_avg {self.average_period_ps:7.1f} ps, "
            f"f_eff {self.effective_frequency_mhz:6.1f} MHz, "
            f"speedup {self.speedup_percent:+5.1f} %, "
            f"violations {len(self.violations)}"
        )


def evaluate_program(program, design, policy, generator=None,
                     margin_percent=0.0, check_safety=True,
                     max_cycles=4_000_000):
    """Run one program under one clock policy.

    Parameters
    ----------
    program:
        Assembled program.
    design:
        The :class:`~repro.timing.design.ProcessorDesign` providing the
        static period and the ground-truth excitation for safety checking.
    policy:
        A clock policy (see :mod:`repro.clocking.policies`).
    generator:
        Optional clock-generator model (quantises requested periods).
    margin_percent:
        Extra guard band (ablation A4).
    check_safety:
        Replay the excitation model and record any cycle whose applied
        period is shorter than an excited path delay.
    """
    simulator = PipelineSimulator(program)
    trace = simulator.run(max_cycles=max_cycles)

    controller = ClockAdjustmentController(
        policy, generator=generator, margin_percent=margin_percent
    )
    excitation = design.excitation
    violations = []
    for record in trace.records:
        period = controller.period_for(record)
        if check_safety:
            for stage in Stage:
                excited = excitation.group_delay(record, stage)
                if excited.delay_ps > period + 1e-6:
                    violations.append(
                        TimingViolation(
                            cycle=record.cycle,
                            stage=stage,
                            applied_period_ps=period,
                            excited_delay_ps=excited.delay_ps,
                            driver_class=excited.driver_class,
                        )
                    )

    stats = controller.stats
    return EvaluationResult(
        program_name=program.name,
        policy_name=getattr(policy, "name", type(policy).__name__),
        num_cycles=trace.num_cycles,
        num_retired=trace.num_retired,
        total_time_ps=stats.total_time_ps,
        static_period_ps=design.static_period_ps,
        min_period_ps=stats.min_period_ps,
        max_period_ps=stats.max_period_ps,
        switch_rate=stats.switch_rate,
        violations=violations,
    )


def evaluate_suite(programs, design, policy_factory, generator=None,
                   margin_percent=0.0, check_safety=True):
    """Evaluate a list of programs; ``policy_factory()`` builds a fresh
    policy per program (policies may be stateful via their controller)."""
    results = []
    for program in programs:
        policy = policy_factory()
        results.append(
            evaluate_program(
                program, design, policy, generator=generator,
                margin_percent=margin_percent, check_safety=check_safety,
            )
        )
    return results


def average_speedup_percent(results):
    """Suite-average speedup (arithmetic mean of per-benchmark speedups,
    which is how the paper reports its 38 % average)."""
    if not results:
        raise ValueError("no results")
    return sum(r.speedup_percent for r in results) / len(results)


def average_frequency_mhz(results):
    if not results:
        raise ValueError("no results")
    return sum(r.effective_frequency_mhz for r in results) / len(results)
