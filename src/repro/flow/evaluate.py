"""Evaluation flow: benchmark execution with dynamic timings.

The LUT-aware cycle-accurate simulation of the paper (Sec. III-B): run a
program on the pipeline, apply a clock policy per cycle, and accumulate
real time.  The evaluation optionally replays the ground-truth excitation
model to verify the central invariant — the applied period covers every
excited path in every cycle (frequency-over-scaling *without* timing
errors).

The engine is built around the compiled-trace artifact
(:mod:`repro.dta.compiled`): the pipeline is simulated once per
(program, design) and frozen into NumPy matrices, then every
(policy, margin, generator) configuration is evaluated as a handful of
array operations — policy gather, margin multiply, generator quantisation,
and a single array comparison for the safety check.
``evaluate_program_scalar`` keeps the original per-record loop as the
reference semantics (the batch path is bit-identical to it, which
``tests/test_batch_equivalence.py`` enforces).

.. deprecated::
    The free functions ``evaluate_program``, ``evaluate_suite`` and
    ``evaluate_batch`` are legacy shims over :class:`repro.api.Session`
    (bit-identical; ``evaluate_batch`` additionally emits a
    ``DeprecationWarning`` for its ``[config][program]`` return-shape
    footgun).  New code should use ``Session.evaluate`` and the columnar
    ``ResultFrame`` it returns.
"""

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.clocking.controller import ClockAdjustmentController
from repro.dta.compiled import get_compiled_trace, get_compiled_traces
from repro.obs.trace import span as obs_span
from repro.sim.pipeline import PipelineSimulator
from repro.sim.trace import Stage
from repro.utils.units import ps_to_mhz

#: Safety-check tolerance: a path must exceed the applied period by more
#: than this to count as a violation (guards float rounding, not physics).
VIOLATION_TOLERANCE_PS = 1e-6

#: Default pipeline-simulation cycle budget.
DEFAULT_MAX_CYCLES = 4_000_000


@dataclass
class TimingViolation:
    """One cycle in which an excited path exceeded the applied period."""

    cycle: int
    stage: Stage
    applied_period_ps: float
    excited_delay_ps: float
    driver_class: str

    @property
    def overshoot_ps(self):
        return self.excited_delay_ps - self.applied_period_ps


@dataclass
class EvaluationResult:
    """Outcome of one (program, policy) evaluation."""

    program_name: str
    policy_name: str
    num_cycles: int
    num_retired: int
    total_time_ps: float
    static_period_ps: float
    min_period_ps: float
    max_period_ps: float
    switch_rate: float
    violations: list = field(default_factory=list)
    genie_total_time_ps: float = None

    @property
    def average_period_ps(self):
        """Average applied period; NaN for an empty (zero-cycle) trace."""
        if self.num_cycles == 0:
            return float("nan")
        return self.total_time_ps / self.num_cycles

    @property
    def effective_frequency_mhz(self):
        """Average effective clock frequency (paper Fig. 8 y-axis)."""
        if self.num_cycles == 0:
            return float("nan")
        return ps_to_mhz(self.average_period_ps)

    @property
    def static_time_ps(self):
        return self.static_period_ps * self.num_cycles

    @property
    def speedup_percent(self):
        """Speedup over conventional clocking at the STA period."""
        if self.total_time_ps == 0:
            return float("nan")
        return (self.static_time_ps / self.total_time_ps - 1.0) * 100.0

    @property
    def is_safe(self):
        return not self.violations

    def summary(self):
        return (
            f"{self.program_name:>14} [{self.policy_name}]: "
            f"{self.num_cycles} cycles, "
            f"T_avg {self.average_period_ps:7.1f} ps, "
            f"f_eff {self.effective_frequency_mhz:6.1f} MHz, "
            f"speedup {self.speedup_percent:+5.1f} %, "
            f"violations {len(self.violations)}"
        )


@dataclass
class SweepConfig:
    """One configuration of a batch evaluation sweep.

    ``policy`` and ``generator`` may be instances or zero-argument
    factories; factories are called once per program so that stateful
    policies keep the fresh-per-program semantics of ``evaluate_suite``.
    """

    policy: object
    generator: object = None
    margin_percent: float = 0.0
    check_safety: bool = True
    label: str = ""

    def make_policy(self):
        return self.policy() if callable(self.policy) else self.policy

    def make_generator(self):
        return self.generator() if callable(self.generator) else self.generator


def evaluate_compiled(compiled, design, policy, generator=None,
                      margin_percent=0.0, check_safety=True):
    """Evaluate one compiled trace under one configuration (array path)."""
    controller = ClockAdjustmentController(
        policy, generator=generator, margin_percent=margin_percent
    )
    periods = controller.periods_for(compiled)

    violations = []
    if check_safety:
        delays = compiled.delays
        spec = compiled.pipeline_spec
        mask = delays > periods[:, None] + VIOLATION_TOLERANCE_PS
        if mask.any():
            for cycle, stage in np.argwhere(mask):
                cycle = int(cycle)
                stage = int(stage)
                violations.append(
                    TimingViolation(
                        cycle=cycle,
                        stage=spec.stage_label(stage),
                        applied_period_ps=float(periods[cycle]),
                        excited_delay_ps=float(delays[cycle, stage]),
                        driver_class=compiled.class_name_at(cycle, stage),
                    )
                )

    stats = controller.stats
    return EvaluationResult(
        program_name=compiled.program_name,
        policy_name=getattr(policy, "name", type(policy).__name__),
        num_cycles=compiled.num_cycles,
        num_retired=compiled.num_retired,
        total_time_ps=stats.total_time_ps,
        static_period_ps=design.static_period_ps,
        min_period_ps=stats.min_period_ps,
        max_period_ps=stats.max_period_ps,
        switch_rate=stats.switch_rate,
        violations=violations,
    )


def _evaluate_batch(programs, design, configs,
                    max_cycles=DEFAULT_MAX_CYCLES, engine="vector"):
    """The batch engine: trace once, vectorize everywhere.

    Each program is simulated and compiled at most once (and reused from
    the module-level cache across calls); each
    :class:`SweepConfig` then costs only a few array operations per
    program.  Returns the ``[config][program]`` result grid.

    ``engine="lockstep"`` runs the architectural ISS pass of every
    uncached program in one batched step loop
    (:func:`repro.dta.compiled.get_compiled_traces`) — bit-identical
    traces, amortised per-program cost.  ``"vector"`` compiles the
    programs one at a time.

    This is the engine :class:`repro.api.Session` runs on; first-party
    code calls it through the Session, never through the deprecated
    public shims below.
    """
    programs = list(programs)
    configs = list(configs)
    with obs_span("evaluate.batch", programs=len(programs),
                  configs=len(configs), engine=engine):
        if engine == "lockstep":
            compiled = get_compiled_traces(programs, design,
                                           max_cycles=max_cycles)
        else:
            compiled = [
                get_compiled_trace(program, design, max_cycles=max_cycles)
                for program in programs
            ]
        results = []
        for index, config in enumerate(configs):
            row = []
            with obs_span("evaluate.config",
                          label=config.label or f"config-{index}"):
                for trace in compiled:
                    row.append(
                        evaluate_compiled(
                            trace, design, config.make_policy(),
                            generator=config.make_generator(),
                            margin_percent=config.margin_percent,
                            check_safety=config.check_safety,
                        )
                    )
            results.append(row)
    return results


def _session_for(design, max_cycles):
    from repro.api import Session

    return Session.for_design(design, max_cycles=max_cycles)


def evaluate_batch(programs, design, configs,
                   max_cycles=DEFAULT_MAX_CYCLES):
    """Evaluate many programs under many configurations.

    .. deprecated::
        Legacy shim over :class:`repro.api.Session`; the
        ``[config][program]`` list-of-lists return shape is the footgun
        the columnar ``Session.evaluate`` replaces.  Bit-identical to the
        Session path (enforced by ``tests/test_api_parity.py``).

    Returns
    -------
    list of lists of :class:`EvaluationResult`, indexed
    ``[config][program]`` in input order.
    """
    warnings.warn(
        "evaluate_batch is deprecated and its [config][program] nesting "
        "is easy to index wrong; use repro.api.Session.evaluate, which "
        "returns a columnar ResultFrame",
        DeprecationWarning, stacklevel=2,
    )
    return _session_for(design, max_cycles).evaluate_results(
        list(programs), list(configs)
    )


def evaluate_program(program, design, policy, generator=None,
                     margin_percent=0.0, check_safety=True,
                     max_cycles=DEFAULT_MAX_CYCLES):
    """Run one program under one clock policy.

    .. deprecated::
        Legacy shim over :class:`repro.api.Session` (bit-identical); new
        code should use ``Session.evaluate``.

    Parameters
    ----------
    program:
        Assembled program.
    design:
        The :class:`~repro.timing.design.ProcessorDesign` providing the
        static period and the ground-truth excitation for safety checking.
    policy:
        A clock policy (see :mod:`repro.clocking.policies`).
    generator:
        Optional clock-generator model (quantises requested periods).
    margin_percent:
        Extra guard band (ablation A4).
    check_safety:
        Replay the excitation model and record any cycle whose applied
        period is shorter than an excited path delay.
    """
    config = SweepConfig(
        policy=policy, generator=generator,
        margin_percent=margin_percent, check_safety=check_safety,
    )
    return _session_for(design, max_cycles).evaluate_results(
        [program], [config]
    )[0][0]


def evaluate_program_scalar(program, design, policy, generator=None,
                            margin_percent=0.0, check_safety=True,
                            max_cycles=DEFAULT_MAX_CYCLES):
    """Reference implementation: the original per-record scalar loop.

    Kept as the compatibility path and as the semantics the batch engine
    must reproduce bit-identically (see ``tests/test_batch_equivalence``).

    The safety replay is spec-aware (one excitation sample per spec
    column); record-path *policies* assume the default six-slot layout,
    so non-default specs pair this loop with layout-independent policies
    (e.g. static) or use the batch engine.
    """
    spec = design.pipeline_spec
    simulator = PipelineSimulator(program, spec=spec)
    trace = simulator.run(max_cycles=max_cycles)

    controller = ClockAdjustmentController(
        policy, generator=generator, margin_percent=margin_percent
    )
    excitation = design.excitation
    violations = []
    for record in trace.records:
        period = controller.period_for(record)
        if check_safety:
            for column in range(spec.num_stages):
                excited = excitation.column_delay(record, column, spec)
                if excited.delay_ps > period + VIOLATION_TOLERANCE_PS:
                    violations.append(
                        TimingViolation(
                            cycle=record.cycle,
                            stage=spec.stage_label(column),
                            applied_period_ps=period,
                            excited_delay_ps=excited.delay_ps,
                            driver_class=excited.driver_class,
                        )
                    )

    stats = controller.stats
    return EvaluationResult(
        program_name=program.name,
        policy_name=getattr(policy, "name", type(policy).__name__),
        num_cycles=trace.num_cycles,
        num_retired=trace.num_retired,
        total_time_ps=stats.total_time_ps,
        static_period_ps=design.static_period_ps,
        min_period_ps=stats.min_period_ps,
        max_period_ps=stats.max_period_ps,
        switch_rate=stats.switch_rate,
        violations=violations,
    )


def evaluate_suite(programs, design, policy_factory, generator=None,
                   margin_percent=0.0, check_safety=True):
    """Evaluate a list of programs; ``policy_factory()`` builds a fresh
    policy per program (policies may be stateful via their controller).

    .. deprecated::
        Legacy shim over :class:`repro.api.Session` (bit-identical); new
        code should use ``Session.evaluate``.
    """
    config = SweepConfig(
        policy=policy_factory, generator=generator,
        margin_percent=margin_percent, check_safety=check_safety,
    )
    return _session_for(design, DEFAULT_MAX_CYCLES).evaluate_results(
        list(programs), [config]
    )[0]


def average_speedup_percent(results):
    """Suite-average speedup (arithmetic mean of per-benchmark speedups,
    which is how the paper reports its 38 % average)."""
    if not results:
        raise ValueError("no results")
    return sum(r.speedup_percent for r in results) / len(results)


def average_frequency_mhz(results):
    if not results:
        raise ValueError("no results")
    return sum(r.effective_frequency_mhz for r in results) / len(results)
