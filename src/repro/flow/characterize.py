"""Characterisation flow: programs → event logs → DTA → delay LUT.

Mirrors the paper's Fig. 2 right half: gate-level simulation of
characterisation programs, dynamic timing analysis of the resulting event
logs, per-instruction extraction and LUT merge.

Two engines produce bit-identical results:

- ``engine="array"`` (default) — the vectorized path:
  :meth:`~repro.dta.gatesim.GateLevelSimulator.run_dta` replays the
  event-log arithmetic on the compiled delay matrices and
  :func:`~repro.dta.extraction.extract_lut_arrays` reduces the
  attribution with array maxima;
- ``engine="record"`` — the retained reference: materialised event log,
  per-event analysis, per-record extraction.

Characterisation shards: each program's gate-sim batch is independent, so
``jobs > 1`` fans the suite out over worker processes, and per-program
LUTs can be cached in an :class:`~repro.lab.store.ArtifactStore`
(``store=``) so an interrupted characterisation resumes by recomputing
only the missing batches.  The merge happens in canonical suite order
regardless of completion order — the merged LUT is bit-identical to the
serial in-process result.
"""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import span as obs_span
from repro.dta.analyzer import analyze_event_log
from repro.dta.extraction import (
    DEFAULT_MIN_OCCURRENCES,
    extract_lut,
    extract_lut_arrays,
    merge_luts,
)
from repro.dta.gatesim import GateLevelSimulator
from repro.workloads.suite import characterization_suite

#: Valid characterisation engines.
ENGINES = ("array", "record")


@dataclass
class CharacterizationRun:
    """One program's gate-sim + DTA artefacts (kept for the figure benches)."""

    program_name: str
    num_cycles: int
    dta: object           # DtaResult
    trace: object         # PipelineTrace
    lut: object           # per-run DelayLUT


@dataclass
class CharacterizationResult:
    """Merged characterisation of one design."""

    design: object
    lut: object                       # merged DelayLUT
    runs: list = field(default_factory=list)
    total_cycles: int = 0

    @property
    def num_runs(self):
        return len(self.runs)

    def run_named(self, program_name):
        for run in self.runs:
            if run.program_name == program_name:
                return run
        raise KeyError(f"no characterisation run named {program_name!r}")


def characterize_program(program, design,
                         min_occurrences=DEFAULT_MIN_OCCURRENCES,
                         sim_period_ps=None, engine="array",
                         keep_run=False):
    """One characterisation batch: gate-sim + DTA + extraction.

    Returns ``(lut, num_cycles, run)`` — ``run`` is a
    :class:`CharacterizationRun` when ``keep_run`` is set, else ``None``.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown characterisation engine {engine!r}")
    with obs_span("characterize.program", program=program.name,
                  engine=engine):
        return _characterize_program_impl(
            program, design, min_occurrences, sim_period_ps, engine,
            keep_run,
        )


def _characterize_program_impl(program, design, min_occurrences,
                               sim_period_ps, engine, keep_run):
    gatesim = GateLevelSimulator(program, design, sim_period_ps=sim_period_ps)
    if engine == "array":
        dta, compiled = gatesim.run_dta()
        lut = extract_lut_arrays(
            dta, compiled, design.static_period_ps,
            min_occurrences=min_occurrences, source=program.name,
        )
        num_cycles = compiled.num_cycles
        trace = compiled.trace
    else:
        result = gatesim.run()
        dta = analyze_event_log(result.event_log)
        lut = extract_lut(
            dta, result.trace, design.static_period_ps,
            min_occurrences=min_occurrences, source=program.name,
        )
        num_cycles = result.num_cycles
        trace = result.trace
    run = None
    if keep_run:
        run = CharacterizationRun(
            program_name=program.name,
            num_cycles=num_cycles,
            dta=dta,
            trace=trace,
            lut=lut,
        )
    return lut, num_cycles, run


def _cached_program_lut(program, design, min_occurrences, sim_period_ps,
                        engine, store):
    """Per-program LUT through the store's charlut cache (if any)."""
    if store is not None:
        cached = store.load_char_lut(
            design, program, min_occurrences=min_occurrences,
            sim_period_ps=sim_period_ps,
        )
        if cached is not None:
            return cached
    lut, num_cycles, _ = characterize_program(
        program, design, min_occurrences=min_occurrences,
        sim_period_ps=sim_period_ps, engine=engine,
    )
    if store is not None:
        store.save_char_lut(
            lut, num_cycles, design, program,
            min_occurrences=min_occurrences, sim_period_ps=sim_period_ps,
        )
    return lut, num_cycles


def _shard_worker(payload):
    """Pool entry point: characterise one program in a worker process.

    Returns the worker-side store counters and an observability payload
    (counter deltas + spans when the parent traces), so the parent's
    stats and telemetry reflect sharded activity exactly like a serial
    run's."""
    (index, program, variant_value, voltage, spec_dict, min_occurrences,
     sim_period_ps, engine, store_root, telemetry) = payload
    from repro.sim.spec import PipelineSpec
    from repro.timing.design import build_design
    from repro.timing.profiles import DesignVariant

    if telemetry:
        # always a fresh per-worker tracer: under fork the child inherits
        # the parent's, and recording onto it would mislabel worker spans
        import os

        obs_trace.set_tracer(obs_trace.Tracer(label=f"worker-{os.getpid()}"))
    baseline = obs_metrics.gather()

    design = build_design(
        DesignVariant(variant_value), voltage=voltage,
        pipeline_spec=(
            PipelineSpec.from_dict(spec_dict)
            if spec_dict is not None else None
        ),
    )
    store = None
    if store_root is not None:
        from repro.lab.store import ArtifactStore

        store = ArtifactStore(store_root)
    lut, num_cycles = _cached_program_lut(
        program, design, min_occurrences, sim_period_ps, engine, store
    )
    stats = store.stats.as_dict() if store is not None else None
    tracer = obs_trace.get_tracer()
    obs = {
        "counters": obs_metrics.delta_since(baseline),
        "spans": tracer.drain() if tracer is not None else [],
    }
    return index, lut.to_json(), num_cycles, stats, obs


def _characterize_impl(design, programs=None,
                       min_occurrences=DEFAULT_MIN_OCCURRENCES,
                       sim_period_ps=None, keep_runs=True, engine="array",
                       jobs=1, store=None):
    """The characterisation flow engine (see :func:`characterize`).

    :class:`repro.api.Session` runs on this directly; the public
    :func:`characterize` below is the legacy shim over the Session.

    Parameters
    ----------
    design:
        :class:`~repro.timing.design.ProcessorDesign`.
    programs:
        Characterisation programs; defaults to the standard suite (directed
        semi-random generators + hand kernels, paper Sec. II-B.2).
    min_occurrences:
        Extraction threshold below which a class falls back to the static
        period.
    sim_period_ps:
        Gate-sim clock period (defaults to 10 % above STA).
    keep_runs:
        Keep per-run DTA artefacts (needed by the histogram benches).
        Incompatible with ``jobs > 1`` — per-run artefacts stay in their
        worker process.
    engine:
        ``"array"`` (vectorized, default) or ``"record"`` (the retained
        scalar reference); both produce bit-identical LUTs.
    jobs:
        Worker processes to shard the per-program gate-sim batches over.
    store:
        Optional :class:`~repro.lab.store.ArtifactStore`; per-program LUTs
        are read from / written through its ``charlut`` cache, so a killed
        characterisation recomputes only the missing batches.
    """
    if programs is None:
        programs = characterization_suite()
    programs = list(programs)
    jobs = max(1, int(jobs))
    if jobs > 1 and keep_runs:
        raise ValueError(
            "sharded characterisation (jobs > 1) cannot keep per-run "
            "artefacts; pass keep_runs=False"
        )

    runs = []
    luts = [None] * len(programs)
    cycle_counts = [0] * len(programs)

    if jobs > 1 and len(programs) > 1:
        from repro.dta.lut import DelayLUT

        store_root = str(store.root) if store is not None else None
        telemetry = obs_trace.is_enabled()
        spec = design.pipeline_spec
        spec_dict = None if spec.is_default else spec.to_dict()
        payloads = [
            (index, program, design.variant.value, design.library.voltage,
             spec_dict, min_occurrences, sim_period_ps, engine, store_root,
             telemetry)
            for index, program in enumerate(programs)
        ]
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(programs))
        ) as pool:
            for index, lut_json, num_cycles, stats, obs in pool.map(
                _shard_worker, payloads
            ):
                luts[index] = DelayLUT.from_json(lut_json)
                cycle_counts[index] = num_cycles
                if store is not None and stats is not None:
                    store.stats.merge(stats)
                obs_metrics.merge(obs["counters"])
                obs_trace.merge_worker_spans(obs["spans"])
    else:
        for index, program in enumerate(programs):
            if keep_runs:
                lut, num_cycles, run = characterize_program(
                    program, design, min_occurrences=min_occurrences,
                    sim_period_ps=sim_period_ps, engine=engine,
                    keep_run=True,
                )
                runs.append(run)
            else:
                lut, num_cycles = _cached_program_lut(
                    program, design, min_occurrences, sim_period_ps,
                    engine, store,
                )
            luts[index] = lut
            cycle_counts[index] = num_cycles

    total_cycles = sum(cycle_counts)
    # canonical suite-order merge: bit-identical however the batches ran
    with obs_span("characterize.merge", programs=len(programs)):
        merged = merge_luts(luts)
    merged.source = f"{len(programs)} programs / {total_cycles} cycles"
    return CharacterizationResult(
        design=design, lut=merged, runs=runs, total_cycles=total_cycles
    )


def characterize(design, programs=None,
                 min_occurrences=DEFAULT_MIN_OCCURRENCES,
                 sim_period_ps=None, keep_runs=True, engine="array",
                 jobs=1, store=None):
    """Characterise a design and return its merged delay LUT.

    .. deprecated::
        Legacy shim over :class:`repro.api.Session` (bit-identical,
        including per-program ``charlut`` store traffic); new code
        should use ``Session.characterize``.

    See :func:`_characterize_impl` for the parameters.
    """
    from repro.api import Session

    session = Session.for_design(design, jobs=jobs, store=store)
    return session.characterize(
        programs, min_occurrences=min_occurrences,
        sim_period_ps=sim_period_ps, keep_runs=keep_runs, engine=engine,
        via_store=False,
    )
