"""Characterisation flow: programs → event logs → DTA → delay LUT.

Mirrors the paper's Fig. 2 right half: gate-level simulation of
characterisation programs, dynamic timing analysis of the resulting event
logs, per-instruction extraction and LUT merge.
"""

from dataclasses import dataclass, field

from repro.dta.analyzer import analyze_event_log
from repro.dta.extraction import DEFAULT_MIN_OCCURRENCES, extract_lut, merge_luts
from repro.dta.gatesim import GateLevelSimulator
from repro.workloads.suite import characterization_suite


@dataclass
class CharacterizationRun:
    """One program's gate-sim + DTA artefacts (kept for the figure benches)."""

    program_name: str
    num_cycles: int
    dta: object           # DtaResult
    trace: object         # PipelineTrace
    lut: object           # per-run DelayLUT


@dataclass
class CharacterizationResult:
    """Merged characterisation of one design."""

    design: object
    lut: object                       # merged DelayLUT
    runs: list = field(default_factory=list)
    total_cycles: int = 0

    @property
    def num_runs(self):
        return len(self.runs)

    def run_named(self, program_name):
        for run in self.runs:
            if run.program_name == program_name:
                return run
        raise KeyError(f"no characterisation run named {program_name!r}")


def characterize(design, programs=None, min_occurrences=DEFAULT_MIN_OCCURRENCES,
                 sim_period_ps=None, keep_runs=True):
    """Characterise a design and return its merged delay LUT.

    Parameters
    ----------
    design:
        :class:`~repro.timing.design.ProcessorDesign`.
    programs:
        Characterisation programs; defaults to the standard suite (directed
        semi-random generators + hand kernels, paper Sec. II-B.2).
    min_occurrences:
        Extraction threshold below which a class falls back to the static
        period.
    sim_period_ps:
        Gate-sim clock period (defaults to 10 % above STA).
    keep_runs:
        Keep per-run DTA artefacts (needed by the histogram benches).
    """
    if programs is None:
        programs = characterization_suite()

    runs = []
    luts = []
    total_cycles = 0
    for program in programs:
        gatesim = GateLevelSimulator(program, design,
                                     sim_period_ps=sim_period_ps)
        result = gatesim.run()
        dta = analyze_event_log(result.event_log)
        lut = extract_lut(
            dta, result.trace, design.static_period_ps,
            min_occurrences=min_occurrences, source=program.name,
        )
        luts.append(lut)
        total_cycles += result.num_cycles
        if keep_runs:
            runs.append(
                CharacterizationRun(
                    program_name=program.name,
                    num_cycles=result.num_cycles,
                    dta=dta,
                    trace=result.trace,
                    lut=lut,
                )
            )

    merged = merge_luts(luts)
    merged.source = f"{len(programs)} programs / {total_cycles} cycles"
    return CharacterizationResult(
        design=design, lut=merged, runs=runs, total_cycles=total_cycles
    )
