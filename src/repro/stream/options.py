"""Stream-job options shared by the CLI and the sweep service.

A stream job is a :class:`~repro.lab.scenario.ScenarioGrid` (the config
axes) plus a stream-options dict (window length and program source).
``ScenarioGrid.from_dict`` deliberately rejects unknown fields, so the
options ride next to the grid — in the service's POST body and in the
worker payload — and are folded into the job fingerprint here.
"""

import hashlib
import json

from repro.stream.session import DEFAULT_MAX_WINDOWS, DEFAULT_WINDOW_CYCLES

#: Valid stream sources: the grid's workloads (finite replay) or the
#: seeded random program stream.
STREAM_SOURCES = ("workloads", "randomgen")


def validate_stream_options(options, *, require_finite=False):
    """Normalise a stream-options dict to its canonical, fully-defaulted
    form (raises ``ValueError`` on unknown keys or bad values).

    ``require_finite`` rejects unbounded sources — the sweep service
    caches one result frame per job, so service streams must end.
    """
    options = dict(options or {})
    known = {
        "window_cycles", "max_windows", "source", "seed", "count",
        "length", "repeats", "unique",
    }
    unknown = sorted(set(options) - known)
    if unknown:
        raise ValueError(
            f"unknown stream option(s) {unknown}; known: {sorted(known)}"
        )
    window_cycles = int(options.get("window_cycles", DEFAULT_WINDOW_CYCLES))
    if window_cycles < 1:
        raise ValueError(f"window_cycles must be >= 1, got {window_cycles}")
    max_windows = int(options.get("max_windows", DEFAULT_MAX_WINDOWS))
    if max_windows < 1:
        raise ValueError(f"max_windows must be >= 1, got {max_windows}")
    source = options.get("source", "workloads")
    if source not in STREAM_SOURCES:
        raise ValueError(
            f"unknown stream source {source!r}; choose from {STREAM_SOURCES}"
        )
    count = options.get("count")
    count = None if count is None else int(count)
    if count is not None and count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    unique = options.get("unique")
    unique = None if unique is None else int(unique)
    if unique is not None and unique < 1:
        raise ValueError(f"unique must be >= 1, got {unique}")
    if require_finite and source == "randomgen" and count is None:
        raise ValueError(
            "stream jobs need a finite source: pass count with "
            "source='randomgen'"
        )
    return {
        "window_cycles": window_cycles,
        "max_windows": max_windows,
        "source": source,
        "seed": int(options.get("seed", 1)),
        "count": count,
        "length": int(options.get("length", 1200)),
        "repeats": int(options.get("repeats", 3)),
        "unique": unique,
    }


def stream_fingerprint(grid, options):
    """Job identity of (grid, stream options): SHA-256 over the grid
    fingerprint and the canonical options JSON."""
    digest = hashlib.sha256()
    digest.update(grid.fingerprint().encode("ascii"))
    digest.update(b"\x00stream\x00")
    digest.update(json.dumps(
        validate_stream_options(options), sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8"))
    return digest.hexdigest()


def stream_source_for(grid, options):
    """The program source a (grid, options) stream job evaluates."""
    options = validate_stream_options(options)
    if options["source"] == "randomgen":
        from repro.stream.sources import random_source

        return random_source(
            seed=options["seed"], length=options["length"],
            repeats=options["repeats"], unique=options["unique"],
            count=options["count"],
        )
    from repro.stream.sources import kernel_source

    specs = grid.workload_specs()
    if options["count"] is not None:
        specs = specs[:options["count"]]
    return kernel_source(specs)
