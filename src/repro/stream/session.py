"""StreamingSession: online evaluation over an unbounded program stream.

The offline engine evaluates whole programs (one compiled trace → one
frame).  The streaming engine consumes programs from any iterable source
(bundled kernels, the seeded :func:`repro.workloads.program_stream`
generator, an ndjson feed), chops each compiled trace into
:class:`~repro.stream.windows.TraceWindow` slices, and drives the
policies / adapt controller window by window — holding at most
``max_windows`` windows and one compiled trace in memory, and emitting a
rolling :class:`~repro.api.frame.ResultFrame` per window through an
``on_window`` callback.

**Bit-identity contract.**  For any window size, the final frames equal
the offline :class:`repro.api.Session` frames byte-for-byte (JSON
export):

- registry policies are cycle-local, so one
  :class:`~repro.clocking.controller.ClockAdjustmentController` per
  (config, program) fed consecutive windows accumulates exactly the
  period sequence of one whole-trace call — totals, extrema, switch
  counts and rows come out identical;
- ``learned:`` policies stream through
  :class:`~repro.ml.features.WindowedFeatureExtractor`, which carries the
  trailing recent-window flags (integer counts — exact);
- drift adaptation recomputes each window's drift slice via
  ``EnvironmentModel.drift_array(n, start=...)``, carries the online
  monitor scale across window boundaries, and defers the period-sum
  reduction to one whole-program array (the same
  :func:`repro.adapt.online._finish` both offline engines share).

``tests/test_stream.py`` enforces the contract for every policy ×
window size, including a Hypothesis window-partition property test.
"""

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.api.frame import ADAPT_SCHEMA, EVALUATION_SCHEMA, ResultFrame
from repro.api.session import Session, evaluation_row
from repro.clocking.controller import ClockAdjustmentController
from repro.dta.compiled import (
    discard_compiled_trace,
    get_compiled_trace,
    is_trace_cached,
)
from repro.flow.evaluate import (
    VIOLATION_TOLERANCE_PS,
    EvaluationResult,
    TimingViolation,
)
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span as obs_span
from repro.sim import predecode
from repro.stream.windows import iter_windows

#: Default window length, in cycles.
DEFAULT_WINDOW_CYCLES = 1024

#: Default bound on windows held in memory.
DEFAULT_MAX_WINDOWS = 8

#: Compiled traces a streaming session keeps in the process-wide LRU
#: before evicting the ones it inserted itself — enough for short
#: looping streams (``unique <= 4``) to replay for free, small enough
#: that an unbounded stream of unique programs stays at O(1) memory.
DEFAULT_RETAIN_TRACES = 4


@dataclass
class WindowUpdate:
    """One window's rolling snapshot, handed to ``on_window``.

    ``frame`` carries cumulative rows for the current program —
    :data:`EVALUATION_SCHEMA` rows (one per config) from
    :meth:`StreamingSession.evaluate`, :data:`ADAPT_SCHEMA` rows from
    :meth:`StreamingSession.adapt`.  Rolling rows are monitoring-grade
    (running float accumulators); the *final* frame a run returns is the
    bit-identical artifact.
    """

    program: str
    index: int
    global_index: int
    start_cycle: int
    num_cycles: int
    stream_cycles: int
    frame: ResultFrame
    scheme: str = None


class _WindowedLearnedPolicy:
    """LearnedPolicy adapter with carried feature-extractor state.

    Same predictions as the offline policy on the whole trace; built
    fresh per (config, program), like every policy factory.
    """

    name = "learned"

    def __init__(self, inner):
        from repro.ml.features import WindowedFeatureExtractor

        self.model = inner.model
        self.static_period_ps = inner.static_period_ps
        self._extractor = WindowedFeatureExtractor(
            vocabulary=self.model.vocabulary, window=self.model.window
        )

    def periods_for(self, window):
        features = self._extractor.extract(window)
        normalized = self.model.predict_normalized(features.matrix)
        return normalized * self.static_period_ps


def _as_streaming_policy(policy):
    from repro.clocking.policies import LearnedPolicy

    if isinstance(policy, LearnedPolicy):
        return _WindowedLearnedPolicy(policy)
    return policy


def _iter_programs(source):
    """Programs from a stream source: Program objects pass through,
    strings resolve as kernel names / assembly paths."""
    from repro.workloads import resolve_program

    if isinstance(source, str):
        source = [source]
    for item in source:
        yield resolve_program(item) if isinstance(item, str) else item


class _RollingEvaluation:
    """Running per-config aggregates for the rolling frames (cheap float
    accumulators — the final frame recomputes from the full sequence)."""

    def __init__(self):
        self.cycles = 0
        self.total_time_ps = 0.0
        self.switches = 0
        self.min_period_ps = float("nan")
        self.max_period_ps = float("nan")
        self._last_period = None

    def update(self, periods):
        if len(periods) == 0:
            return
        self.total_time_ps += float(periods.sum())
        self.switches += int(np.count_nonzero(periods[1:] != periods[:-1]))
        if self._last_period is not None and periods[0] != self._last_period:
            self.switches += 1
        first = float(periods.min())
        last = float(periods.max())
        if self.cycles == 0:
            self.min_period_ps = first
            self.max_period_ps = last
        else:
            self.min_period_ps = min(self.min_period_ps, first)
            self.max_period_ps = max(self.max_period_ps, last)
        self.cycles += len(periods)
        self._last_period = periods[-1]

    @property
    def switch_rate(self):
        if self.cycles <= 1:
            return 0.0
        return self.switches / (self.cycles - 1)


class StreamingSession:
    """Online, bounded-memory evaluation over a stream of programs.

    Parameters
    ----------
    session:
        The :class:`~repro.api.Session` providing the operating point,
        LUT, store, engine and telemetry context.  ``None`` builds one
        from ``session_kwargs`` (same signature as ``Session``).
    window_cycles:
        Cycles per :class:`TraceWindow` (``None`` = whole program).
    max_windows:
        Bound on windows kept referenced (:attr:`recent_windows`).
    retain_traces:
        Compiled traces of already-evaluated stream programs left in
        the process-wide LRU before this session evicts the ones it
        inserted — the O(1)-memory guarantee for unbounded streams.
    on_window:
        Default per-window callback (``WindowUpdate`` argument); the
        per-call ``on_window=`` overrides it.
    """

    def __init__(self, session=None, *, window_cycles=DEFAULT_WINDOW_CYCLES,
                 max_windows=DEFAULT_MAX_WINDOWS,
                 retain_traces=DEFAULT_RETAIN_TRACES, on_window=None,
                 **session_kwargs):
        if session is None:
            session = Session(**session_kwargs)
        elif session_kwargs:
            raise ValueError(
                "pass either a session or Session keyword arguments, "
                "not both"
            )
        if window_cycles is not None and int(window_cycles) < 1:
            raise ValueError(
                f"window must be >= 1 cycle, got {window_cycles}"
            )
        self.session = session
        self.window_cycles = (
            None if window_cycles is None else int(window_cycles)
        )
        self.max_windows = max(1, int(max_windows))
        self.retain_traces = max(1, int(retain_traces))
        self.on_window = on_window
        #: The last ``max_windows`` TraceWindows (views, not copies).
        self.recent_windows = deque(maxlen=self.max_windows)
        self._owned_programs = deque()
        self._global_index = 0
        self._stream_cycles = 0

    # -- shared plumbing -----------------------------------------------------

    @property
    def design_point(self):
        return self.session.design_point

    def telemetry_frame(self):
        """The underlying session's span timeline (requires a session
        constructed with ``telemetry=``)."""
        return self.session.telemetry_frame()

    def _compile(self, program):
        """Compiled trace with streaming cache discipline: traces (and
        decoded ISS images) this session inserts into the process-wide
        caches are evicted again once ``retain_traces`` newer stream
        programs have passed, so memory stays flat however long the
        stream runs.  Entries that were cached before (warm kernels,
        other sessions) are left alone."""
        session = self.session
        max_cycles = session.max_cycles
        already = is_trace_cached(program, session.design, max_cycles)
        owned_image = not predecode.is_image_cached(program)
        compiled = get_compiled_trace(
            program, session.design, max_cycles=max_cycles
        )
        if not already:
            self._owned_programs.append((program, owned_image))
            while len(self._owned_programs) > self.retain_traces:
                stale, stale_image = self._owned_programs.popleft()
                discard_compiled_trace(stale, session.design, max_cycles)
                if stale_image:
                    predecode.discard_image(stale)
        return compiled

    def _observe_window(self, window):
        self.recent_windows.append(window)
        self._global_index += 1
        self._stream_cycles += window.num_cycles
        obs_metrics.inc("stream.windows")
        obs_metrics.inc("stream.cycles", window.num_cycles)

    def _emit(self, callback, window, frame, scheme=None):
        if callback is None:
            return
        callback(WindowUpdate(
            program=window.program_name,
            index=window.index,
            global_index=self._global_index - 1,
            start_cycle=window.start_cycle,
            num_cycles=window.num_cycles,
            stream_cycles=self._stream_cycles,
            frame=frame,
            scheme=scheme,
        ))

    # -- policy evaluation ---------------------------------------------------

    def evaluate(self, source, configs=None, *, policies=None,
                 generators=None, margins=None, check_safety=True,
                 on_window=None):
        """Evaluate a program stream under clock configurations.

        Same configuration surface as :meth:`repro.api.Session.evaluate`;
        ``source`` is any iterable of Program objects or kernel-name /
        assembly-path strings (finite sources only — the returned frame
        covers the whole stream).  The frame is byte-identical to the
        offline ``Session.evaluate`` over the same programs, for any
        window size.
        """
        session = self.session
        if configs is not None:
            if policies or generators or margins:
                raise ValueError(
                    "pass either configs or policies/generators/margins, "
                    "not both"
                )
            specs = list(configs)
        else:
            specs = session._config_specs(
                list(policies) if policies is not None
                else ["instruction"],
                list(generators) if generators is not None else ["ideal"],
                [float(m) for m in (margins if margins is not None
                                    else [0.0])],
                check_safety,
            )
        concrete = session._materialize(specs)
        callback = on_window if on_window is not None else self.on_window
        rows_per_config = [[] for _ in concrete]
        with session._scope("stream.evaluate", configs=len(concrete),
                            window=self.window_cycles or 0), \
                session._attached_store():
            for program in _iter_programs(source):
                self._evaluate_program(
                    program, specs, concrete, rows_per_config, callback
                )
        rows = [row for config_rows in rows_per_config
                for row in config_rows]
        return ResultFrame.from_rows(rows, EVALUATION_SCHEMA)

    def _evaluate_program(self, program, specs, concrete, rows_per_config,
                          callback):
        session = self.session
        compiled = self._compile(program)
        controllers = []
        for config in concrete:
            policy = _as_streaming_policy(config.make_policy())
            controllers.append(ClockAdjustmentController(
                policy, generator=config.make_generator(),
                margin_percent=config.margin_percent,
            ))
        violations = [[] for _ in concrete]
        rolling = [_RollingEvaluation() for _ in concrete]
        for window in self._windows(compiled, "stream.window"):
            for ci, (config, controller) in enumerate(
                    zip(concrete, controllers)):
                periods = controller.periods_for(window)
                if config.check_safety:
                    self._collect_violations(
                        window, periods, violations[ci]
                    )
                rolling[ci].update(periods)
            if callback is not None:
                frame = self._rolling_frame(
                    compiled, specs, concrete, controllers, rolling,
                    violations,
                )
                self._emit(callback, window, frame)
        obs_metrics.inc("stream.programs")
        for ci, (spec, config, controller) in enumerate(
                zip(specs, concrete, controllers)):
            stats = controller.stats
            result = EvaluationResult(
                program_name=compiled.program_name,
                policy_name=getattr(
                    controller.policy, "name",
                    type(controller.policy).__name__,
                ),
                num_cycles=compiled.num_cycles,
                num_retired=compiled.num_retired,
                total_time_ps=stats.total_time_ps,
                static_period_ps=session.design.static_period_ps,
                min_period_ps=stats.min_period_ps,
                max_period_ps=stats.max_period_ps,
                switch_rate=stats.switch_rate,
                violations=violations[ci],
            )
            rows_per_config[ci].append(self._evaluation_row(
                result, spec, config
            ))

    def _windows(self, compiled, span_name):
        for window in iter_windows(compiled, self.window_cycles):
            with obs_span(span_name, program=compiled.program_name,
                          index=window.index, cycles=window.num_cycles):
                self._observe_window(window)
                yield window

    @staticmethod
    def _collect_violations(window, periods, into):
        delays = window.delays
        mask = delays > periods[:, None] + VIOLATION_TOLERANCE_PS
        if mask.any():
            for cycle, stage in np.argwhere(mask):
                cycle = int(cycle)
                stage = int(stage)
                into.append(TimingViolation(
                    cycle=window.start_cycle + cycle,
                    stage=window.pipeline_spec.stage_label(stage),
                    applied_period_ps=float(periods[cycle]),
                    excited_delay_ps=float(delays[cycle, stage]),
                    driver_class=window.class_name_at(cycle, stage),
                ))

    def _evaluation_row(self, result, spec, config):
        session = self.session
        policy = getattr(spec, "policy", None)
        generator = session._generator_name(spec, config)
        return evaluation_row(
            result,
            variant=session.variant,
            voltage=session.voltage,
            config_label=config.label or session._fallback_label(
                result.policy_name, generator, config.margin_percent
            ),
            policy=(policy if isinstance(policy, str)
                    else result.policy_name),
            generator=generator,
            margin_percent=config.margin_percent,
            pipeline_spec=session.pipeline_spec.name,
        )

    def _rolling_frame(self, compiled, specs, concrete, controllers,
                       rolling, violations):
        rows = []
        for spec, config, controller, stats, viol in zip(
                specs, concrete, controllers, rolling, violations):
            result = EvaluationResult(
                program_name=compiled.program_name,
                policy_name=getattr(
                    controller.policy, "name",
                    type(controller.policy).__name__,
                ),
                num_cycles=stats.cycles,
                num_retired=compiled.num_retired,
                total_time_ps=stats.total_time_ps,
                static_period_ps=self.session.design.static_period_ps,
                min_period_ps=stats.min_period_ps,
                max_period_ps=stats.max_period_ps,
                switch_rate=stats.switch_rate,
                violations=viol,
            )
            rows.append(self._evaluation_row(result, spec, config))
        return ResultFrame.from_rows(rows, EVALUATION_SCHEMA)

    # -- drift adaptation ----------------------------------------------------

    def adapt(self, source, environment, *, schemes=None,
              update_interval=150, tracking_margin=0.025, on_window=None):
        """Evaluate a program stream under environmental drift.

        Byte-identical to :meth:`repro.api.Session.adapt` over the same
        programs, for any window size: drift windows come from
        ``drift_array(n, start=...)``, the online monitor scale is
        carried across window boundaries, and the period-sum reduction
        runs once over the whole program's sequence.
        """
        from repro.adapt import online as _online

        session = self.session
        schemes = list(schemes or _online.SCHEMES)
        for scheme in schemes:
            _online._check_arguments(scheme, "array")
        callback = on_window if on_window is not None else self.on_window
        rows = []
        with session._scope("stream.adapt", schemes=len(schemes),
                            window=self.window_cycles or 0), \
                session._attached_store():
            lut = session.lut
            for program in _iter_programs(source):
                compiled = self._compile(program)
                for scheme in schemes:
                    result = self._adapt_program(
                        compiled, program.name, lut, environment, scheme,
                        update_interval, tracking_margin, callback,
                    )
                    rows.append(_adapt_row(result))
                obs_metrics.inc("stream.programs")
        return ResultFrame.from_rows(rows, ADAPT_SCHEMA)

    def _adapt_program(self, compiled, program_name, lut, environment,
                       scheme, update_interval, tracking_margin, callback):
        from repro.adapt import online as _online
        from repro.clocking.policies import InstructionLutPolicy

        num_cycles = compiled.num_cycles
        policy = InstructionLutPolicy(lut)
        result = _online.AdaptiveEvaluationResult(
            program_name=program_name,
            scheme=scheme,
            num_cycles=num_cycles,
            total_time_ps=0.0,
        )
        if scheme == "fixed-guard":
            static_scale = environment.max_drift(num_cycles)
        else:
            static_scale = 1.0
        # replaced at the cycle-0 update before it can apply to any cycle
        carry_scale = 1.0 + tracking_margin
        max_drift = 1.0
        chunks = []
        rolling_time = 0.0
        for window in self._windows(compiled, "stream.adapt_window"):
            start = window.start_cycle
            stop = window.stop_cycle
            drift = environment.drift_array(window.num_cycles, start=start)
            predicted = np.asarray(
                policy.periods_for(window), dtype=float
            )
            if scheme == "online":
                first = -(-start // update_interval) * update_interval
                update_cycles = np.arange(first, stop, update_interval)
                scales = np.array([
                    _online._monitor_measurement(float(drift[cycle - start]))
                    + tracking_margin
                    for cycle in update_cycles
                ], dtype=float)
                lengths = np.diff(np.concatenate(
                    [[start], update_cycles, [stop]]
                ))
                periods = predicted * np.repeat(
                    np.concatenate([[carry_scale], scales]), lengths
                )
                if len(scales):
                    carry_scale = float(scales[-1])
                result.lut_updates += len(update_cycles)
            else:
                periods = predicted * static_scale
            violating = (
                window.delays * drift[:, None]
                > periods[:, None] + VIOLATION_TOLERANCE_PS
            )
            result.violations += int(np.count_nonzero(violating))
            max_drift = max(max_drift, float(drift.max()))
            chunks.append(periods)
            if callback is not None:
                rolling_time += float(periods.sum())
                result.max_drift_seen = max_drift
                result.total_time_ps = rolling_time
                frame = ResultFrame.from_rows(
                    [_adapt_row(result, num_cycles=stop)], ADAPT_SCHEMA
                )
                self._emit(callback, window, frame, scheme=scheme)
        result.max_drift_seen = max_drift
        periods = (
            np.concatenate(chunks) if chunks else np.zeros(0, dtype=float)
        )
        return _online._finish(result, periods)


def _adapt_row(result, num_cycles=None):
    """One ADAPT_SCHEMA row (same layout as ``Session.adapt``)."""
    from repro.utils.units import ps_to_mhz

    cycles = result.num_cycles if num_cycles is None else num_cycles
    total = result.total_time_ps
    average = total / cycles if cycles else float("nan")
    return {
        "program": result.program_name,
        "scheme": result.scheme,
        "num_cycles": cycles,
        "total_time_ps": total,
        "violations": result.violations,
        "lut_updates": result.lut_updates,
        "max_drift_seen": result.max_drift_seen,
        "average_period_ps": average,
        "effective_frequency_mhz": (
            ps_to_mhz(average) if cycles else float("nan")
        ),
    }
