"""Program sources for streaming evaluation.

A stream source is any iterable of Program objects or kernel-name /
assembly-path strings — :class:`~repro.stream.session.StreamingSession`
resolves strings lazily, one program at a time, so sources can be
unbounded generators.  This module provides the three bundled kinds:

- :func:`kernel_source` — replay of named kernels / assembly files;
- :func:`random_source` — the seeded (infinite or looping)
  :func:`repro.workloads.program_stream` generator;
- :func:`ndjson_source` — an ndjson feed: any iterable of lines (a file
  object, a socket's ``makefile()``, a subprocess pipe), one JSON record
  per line describing the next program.
"""

import json

from repro.workloads import WorkloadError, resolve_program
from repro.workloads.randomgen import (
    generate_characterization_program,
    program_stream,
)


def kernel_source(names):
    """Programs from kernel names or assembly-file paths, in order."""
    for name in names:
        yield resolve_program(name) if isinstance(name, str) else name


def random_source(seed=1, *, length=1200, repeats=3, unique=None,
                  count=None):
    """The seeded random program stream (see
    :func:`repro.workloads.program_stream`)."""
    return program_stream(
        seed=seed, length=length, repeats=repeats, unique=unique,
        count=count,
    )


def program_from_record(record):
    """One program from one ndjson record.

    Record shapes::

        {"kernel": "crc32"}                  # bundled kernel / .s path
        {"asm": "...", "name": "mine"}       # inline assembly
        {"randomgen": {"seed": 3, "length": 600, "repeats": 2}}
    """
    if not isinstance(record, dict):
        raise WorkloadError(
            f"ndjson record must be an object, got {type(record).__name__}"
        )
    if "kernel" in record:
        return resolve_program(record["kernel"])
    if "asm" in record:
        from repro.asm import assemble

        return assemble(record["asm"], name=record.get("name", "ndjson"))
    if "randomgen" in record:
        options = dict(record["randomgen"] or {})
        return generate_characterization_program(
            seed=int(options.get("seed", 1)),
            length=int(options.get("length", 1200)),
            repeats=int(options.get("repeats", 3)),
        )
    raise WorkloadError(
        "ndjson record needs one of 'kernel', 'asm' or 'randomgen', "
        f"got keys {sorted(record)}"
    )


def ndjson_source(lines):
    """Programs from an ndjson feed (iterable of lines; blank lines are
    skipped).  Works directly on sockets via ``socket.makefile('r')``."""
    for line in lines:
        if isinstance(line, bytes):
            line = line.decode("utf-8")
        line = line.strip()
        if not line:
            continue
        yield program_from_record(json.loads(line))
