"""repro.stream — windowed compiled traces and online evaluation.

The streaming counterpart of :mod:`repro.api`: evaluate unbounded
program streams window by window, with bounded memory and rolling
:class:`~repro.api.frame.ResultFrame` telemetry, bit-identical to the
offline engine on any finite prefix.  See
:class:`~repro.stream.session.StreamingSession` for the contract and
ARCHITECTURE.md ("Streaming mode") for the design.
"""

from repro.stream.session import (
    DEFAULT_MAX_WINDOWS,
    DEFAULT_WINDOW_CYCLES,
    StreamingSession,
    WindowUpdate,
)
from repro.stream.sources import (
    kernel_source,
    ndjson_source,
    program_from_record,
    random_source,
)
from repro.stream.options import (
    STREAM_SOURCES,
    stream_fingerprint,
    stream_source_for,
    validate_stream_options,
)
from repro.stream.windows import TraceWindow, iter_windows, windows_from_sizes

__all__ = [
    "StreamingSession",
    "WindowUpdate",
    "TraceWindow",
    "iter_windows",
    "windows_from_sizes",
    "kernel_source",
    "random_source",
    "ndjson_source",
    "program_from_record",
    "validate_stream_options",
    "stream_fingerprint",
    "stream_source_for",
    "STREAM_SOURCES",
    "DEFAULT_WINDOW_CYCLES",
    "DEFAULT_MAX_WINDOWS",
]
