"""Windowed views of compiled traces.

A :class:`TraceWindow` is a contiguous ``[start, stop)`` cycle slice of a
:class:`~repro.dta.compiled.CompiledTrace`, duck-typing the read surface
the clock policies and the evaluation engine touch (cycle matrices,
class tables, the ground-truth delay matrix).  Every matrix is a NumPy
*view* into the parent trace — producing windows is O(1) and holding K
windows costs no trace copies.

Window slicing is exact by construction: every registry policy's
``periods_for`` is cycle-local (a gather over per-cycle class ids, or the
per-cycle genie bound), so evaluating consecutive windows through one
:class:`~repro.clocking.controller.ClockAdjustmentController` accumulates
the same applied-period sequence as one whole-trace call — the invariant
the streaming engine's bit-identity rests on.  The one policy with
cross-cycle state (``learned:`` recent-window counts) streams through
:class:`repro.ml.features.WindowedFeatureExtractor` instead.
"""

import numpy as np

from repro.dta.compiled import worst_per_cycle


class TraceWindow:
    """One contiguous cycle slice of a compiled trace (array views).

    Attributes mirror :class:`~repro.dta.compiled.CompiledTrace`;
    ``start_cycle`` and ``index`` locate the window inside the parent
    trace (violation reports need absolute cycle numbers).
    """

    __slots__ = (
        "parent", "index", "start_cycle", "num_cycles",
        "program_name", "num_retired", "class_names",
        "class_ids", "bubble", "held", "stall", "redirect",
        "excitation", "operating_point",
    )

    #: Windows never expose the raw record trace: per-record walks over a
    #: window would silently cover the whole program.  Policies that need
    #: it (cross-operating-point genie replay) must run offline.
    trace = None

    def __init__(self, parent, start, stop, index=0):
        if not 0 <= start <= stop <= parent.num_cycles:
            raise ValueError(
                f"window [{start}, {stop}) outside trace of "
                f"{parent.num_cycles} cycles"
            )
        self.parent = parent
        self.index = index
        self.start_cycle = start
        self.num_cycles = stop - start
        self.program_name = parent.program_name
        self.num_retired = parent.num_retired
        self.class_names = parent.class_names
        self.class_ids = parent.class_ids[start:stop]
        self.bubble = parent.bubble[start:stop]
        self.held = parent.held[start:stop]
        self.stall = parent.stall[start:stop]
        self.redirect = parent.redirect[start:stop]
        self.excitation = parent.excitation
        self.operating_point = parent.operating_point

    @property
    def stop_cycle(self):
        return self.start_cycle + self.num_cycles

    @property
    def num_classes(self):
        return len(self.class_names)

    @property
    def pipeline_spec(self):
        return self.parent.pipeline_spec

    @property
    def ex_column(self):
        return self.parent.ex_column

    @property
    def delays(self):
        """This window's rows of the parent's ground-truth delay matrix
        (materialised lazily on the parent, shared across windows)."""
        return self.parent.delays[self.start_cycle:self.stop_cycle]

    def cycle_max_delays(self):
        """Per-cycle minimum safe period (the genie-oracle bound)."""
        return worst_per_cycle(self.delays)[0]

    def class_table(self, entry):
        """``(num_classes, num_stages)`` table of ``entry(cls, stage)``
        with one column per pipeline-spec stage."""
        return self.parent.class_table(entry)

    def class_column(self, entry):
        """``(num_classes,)`` vector of ``entry(cls)``."""
        return self.parent.class_column(entry)

    def stage_periods(self, table):
        """Gather a class×stage ``table`` along the window's cycles."""
        return table[self.class_ids, np.arange(self.class_ids.shape[1])]

    def class_name_at(self, cycle, stage):
        """Driver class of one window-local (cycle, stage) cell."""
        return self.class_names[self.class_ids[cycle, stage]]

    def vocab_ids(self, vocabulary):
        """Window class ids remapped onto a global class vocabulary."""
        index = {cls: i for i, cls in enumerate(vocabulary)}
        try:
            remap = np.array(
                [index[cls] for cls in self.class_names], dtype=np.int64
            )
        except KeyError as error:
            raise ValueError(
                f"timing class {error.args[0]!r} not in vocabulary"
            ) from None
        return remap[self.class_ids]

    def __repr__(self):
        return (
            f"TraceWindow({self.program_name!r}, "
            f"[{self.start_cycle}, {self.stop_cycle}))"
        )


def iter_windows(compiled, window_cycles):
    """Consecutive :class:`TraceWindow` slices covering a compiled trace.

    ``window_cycles=None`` yields the whole program as one window.  A
    zero-cycle trace yields no windows.
    """
    num_cycles = compiled.num_cycles
    if window_cycles is None:
        window_cycles = max(1, num_cycles)
    window_cycles = int(window_cycles)
    if window_cycles < 1:
        raise ValueError(f"window must be >= 1 cycle, got {window_cycles}")
    for index, start in enumerate(range(0, num_cycles, window_cycles)):
        yield TraceWindow(
            compiled, start, min(start + window_cycles, num_cycles), index
        )


def windows_from_sizes(compiled, sizes):
    """Windows with explicit sizes (must partition the trace exactly) —
    the window-partition property tests drive the engine through this."""
    start = 0
    for index, size in enumerate(sizes):
        size = int(size)
        if size < 1:
            raise ValueError(f"window must be >= 1 cycle, got {size}")
        yield TraceWindow(compiled, start, start + size, index)
        start += size
    if start != compiled.num_cycles:
        raise ValueError(
            f"window sizes cover {start} of {compiled.num_cycles} cycles"
        )
