"""Pure-NumPy trainers for learned clock policies.

The pipeline closes the loop the ROADMAP left open after
``Session.training_table``:

1. **sweep** — the scenario grid runs through
   :meth:`~repro.api.Session.training_table` (store-backed, shardable
   over ``jobs``; its deterministic merge is what makes ``jobs=1`` and
   ``jobs=2`` training byte-identical).  The flat table provides the
   per-policy baselines recorded in the model metadata and the training
   report;
2. **extract** — every (design point, workload) of the grid contributes
   per-cycle feature rows (:mod:`repro.ml.features`) and genie targets:
   the cycle's minimum safe period as a fraction of the design's static
   period;
3. **fit** — a deterministic CART *envelope* regressor (leaves predict
   the maximum target of their partition — the LUT construction,
   generalised to learned features) or a two-level logistic baseline
   (the learned analogue of :class:`~repro.clocking.policies.TwoClassPolicy`);
4. **calibrate** — the fitted predictor is replayed against genie
   ground truth over the *calibration suite* (default: the full
   benchmark suite, mirroring how LUT characterisation covers its
   evaluation suite) at every grid design point; each leaf/level is
   raised to the maximum observed target it serves, times the safety
   margin.  By construction the deployed policy is violation-free on
   every calibration trace;
5. **package** — the model serialises byte-deterministically
   (:mod:`repro.ml.model`) and can be content-addressed into the
   artifact store (corruption → retrain, like traces and LUTs).

Everything is NumPy + stdlib: CI's ``pip install numpy pytest
hypothesis`` stays sufficient.
"""

from dataclasses import dataclass, field, replace

import numpy as np

from repro.ml.features import (
    DEFAULT_WINDOW,
    class_vocabulary,
    extract_features,
    feature_names,
)
from repro.ml.model import LearnedModel

#: Tie tolerance of the split search: a later feature must beat the
#: incumbent by more than this to take over (keeps ties deterministic).
_SPLIT_TOLERANCE = 1e-12


@dataclass(frozen=True)
class TrainerConfig:
    """Hyper-parameters of one training run (all deterministic).

    ``seed`` is threaded through for forward compatibility and recorded
    in the artifact metadata; both bundled trainers are fully
    deterministic, so today it only namespaces artifacts.
    """

    model: str = "tree"
    seed: int = 0
    max_depth: int = 12
    min_samples_leaf: int = 32
    window: int = DEFAULT_WINDOW
    calibration_margin_percent: float = 0.0
    #: Calibration workloads; empty means the full benchmark suite.
    calibration_workloads: tuple = ()

    def __post_init__(self):
        if self.model not in ("tree", "logistic"):
            raise ValueError(
                f"unknown trainer model {self.model!r}; "
                "choose from ('tree', 'logistic')"
            )
        if self.window < 1:
            raise ValueError(
                "recent-excitation window must be >= 1 cycle, "
                f"got {self.window}"
            )
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.min_samples_leaf < 1:
            raise ValueError(
                f"min_samples_leaf must be >= 1, got {self.min_samples_leaf}"
            )
        if self.calibration_margin_percent < 0:
            raise ValueError("calibration margin cannot be negative")

    def as_dict(self):
        return {
            "model": self.model,
            "seed": self.seed,
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "window": self.window,
            "calibration_margin_percent": self.calibration_margin_percent,
            "calibration_workloads": list(self.calibration_workloads),
        }


@dataclass
class TrainingOutcome:
    """A trained model plus its training report (JSON-serialisable)."""

    model: LearnedModel
    report: dict = field(default_factory=dict)


# -- dataset -----------------------------------------------------------------


def _per_cycle_parts(grid, workloads, vocabulary, window):
    """Per-(design point, workload) ``(features, normalized targets)``
    parts, in canonical grid order."""
    from repro.dta.compiled import get_compiled_trace
    from repro.workloads import resolve_program

    parts = []
    for point in grid.design_points():
        design = point.build()
        static = design.static_period_ps
        for workload in workloads:
            program = resolve_program(workload)
            compiled = get_compiled_trace(
                program, design, max_cycles=grid.max_cycles
            )
            features = extract_features(
                compiled, vocabulary=vocabulary, window=window
            )
            parts.append(
                (workload, features.matrix,
                 compiled.cycle_max_delays() / static)
            )
    return parts


def _stack(parts):
    return (
        np.concatenate([matrix for _, matrix, _ in parts]),
        np.concatenate([target for _, _, target in parts]),
    )


# -- decision tree -----------------------------------------------------------


def _best_split(matrix, target, min_leaf):
    """Deterministic best (feature, threshold) by SSE reduction, or
    ``None`` when no valid split exists."""
    count = len(target)
    best = None
    best_sse = np.inf
    for feature in range(matrix.shape[1]):
        order = np.argsort(matrix[:, feature], kind="stable")
        xs = matrix[order, feature]
        ys = target[order]
        prefix_sum = np.cumsum(ys)
        prefix_sq = np.cumsum(ys * ys)
        left = np.arange(1, count)           # left partition sizes
        valid = (
            (xs[1:] != xs[:-1])
            & (left >= min_leaf)
            & (count - left >= min_leaf)
        )
        if not valid.any():
            continue
        left_sum = prefix_sum[left - 1]
        left_sq = prefix_sq[left - 1]
        sse = (
            (left_sq - left_sum ** 2 / left)
            + ((prefix_sq[-1] - left_sq)
               - (prefix_sum[-1] - left_sum) ** 2 / (count - left))
        )
        sse = np.where(valid, sse, np.inf)
        index = int(np.argmin(sse))          # first minimum: deterministic
        if sse[index] < best_sse - _SPLIT_TOLERANCE:
            threshold = 0.5 * (xs[index] + xs[index + 1])
            # the midpoint must actually separate the partitions (it
            # always does for our integer/flag/count features)
            if xs[index] <= threshold < xs[index + 1]:
                best_sse = float(sse[index])
                best = (feature, float(threshold))
    return best


def _fit_tree(matrix, target, max_depth, min_samples_leaf):
    """CART envelope regressor: variance-reduction splits, leaf value =
    max target of the partition.  Nodes are laid out in preorder."""
    features = []
    thresholds = []
    lefts = []
    rights = []
    values = []

    def build(indices, depth):
        node = len(features)
        node_target = target[indices]
        features.append(-1)
        thresholds.append(0.0)
        lefts.append(-1)
        rights.append(-1)
        values.append(float(node_target.max()))
        if (depth >= max_depth
                or len(indices) < 2 * min_samples_leaf
                or node_target.min() == node_target.max()):
            return node
        split = _best_split(matrix[indices], node_target, min_samples_leaf)
        if split is None:
            return node
        feature, threshold = split
        go_left = matrix[indices, feature] <= threshold
        features[node] = feature
        thresholds[node] = threshold
        lefts[node] = build(indices[go_left], depth + 1)
        rights[node] = build(indices[~go_left], depth + 1)
        return node

    build(np.arange(len(target)), 0)
    return {
        "tree_feature": np.asarray(features, dtype=np.int32),
        "tree_threshold": np.asarray(thresholds, dtype=np.float64),
        "tree_left": np.asarray(lefts, dtype=np.int32),
        "tree_right": np.asarray(rights, dtype=np.int32),
        "tree_value": np.asarray(values, dtype=np.float64),
    }


# -- logistic baseline -------------------------------------------------------

_LOGISTIC_ITERATIONS = 200
_LOGISTIC_RATE = 0.5


def _fit_logistic(matrix, target):
    """Two-level baseline: classify slow vs fast cycles (threshold at
    the target midpoint), full-batch gradient descent, zero init —
    deterministic by construction."""
    slow = target > 0.5 * (target.min() + target.max())
    mean = matrix.mean(axis=0)
    scale = matrix.std(axis=0)
    scale[scale == 0.0] = 1.0
    standardized = (matrix - mean) / scale
    weights = np.zeros(matrix.shape[1] + 1)
    labels = slow.astype(np.float64)
    count = len(labels)
    for _ in range(_LOGISTIC_ITERATIONS):
        logits = standardized @ weights[:-1] + weights[-1]
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        error = probabilities - labels
        weights[:-1] -= _LOGISTIC_RATE * (standardized.T @ error) / count
        weights[-1] -= _LOGISTIC_RATE * error.mean()
    return {
        "weights": weights,
        "x_mean": mean,
        "x_scale": scale,
        "levels": np.zeros(2),   # calibration fills these in
    }


# -- calibration -------------------------------------------------------------


def _calibrate(model, matrix, target, margin_percent):
    """Raise every leaf/level to the maximum genie target it serves
    (times the margin) — the safety pass that makes the deployed policy
    violation-free on every calibration trace by construction."""
    factor = 1.0 + margin_percent / 100.0
    if model.kind == "tree":
        leaves = model.apply_tree(matrix)
        values = model.tree_value.copy()
        ceiling = np.zeros_like(values)
        np.maximum.at(ceiling, leaves, target)
        seen = np.zeros(len(values), dtype=bool)
        seen[leaves] = True
        values[seen] = ceiling[seen]
        return replace(model, tree_value=values * factor)
    slow = model.decision(matrix) > 0.0
    fallback = float(target.max())
    levels = np.array([
        float(target[~slow].max()) if (~slow).any() else fallback,
        float(target[slow].max()) if slow.any() else fallback,
    ])
    return replace(model, levels=levels * factor)


# -- the pipeline ------------------------------------------------------------


def train_policy(grid, config=None, *, store=None, jobs=1, progress=None):
    """Train a learned clock policy from a scenario grid.

    Parameters
    ----------
    grid:
        :class:`~repro.lab.scenario.ScenarioGrid` (or a grid-file path):
        its design points × workloads are the training corpus, and its
        policy axis provides the recorded baselines.
    config:
        :class:`TrainerConfig`; defaults train the decision tree.
    store / jobs:
        Artifact store and worker count for the underlying sweep (and
        trace compilation); both only affect speed, never the bytes of
        the resulting model.
    progress:
        Optional callable for progress lines.

    Returns a :class:`TrainingOutcome` — ``.model`` is deployable
    immediately, ``.report`` is the JSON-serialisable training summary.
    """
    from repro.api import Session
    from repro.dta.compiled import set_trace_store
    from repro.lab.scenario import ScenarioGrid
    from repro.workloads.suite import suite_names

    if config is None:
        config = TrainerConfig()
    if not isinstance(grid, ScenarioGrid):
        grid = ScenarioGrid.from_file(grid)

    def note(line):
        if progress:
            progress(line)

    session = Session(store=store, jobs=jobs)

    note(f"sweeping grid '{grid.name}' "
         f"({grid.num_evaluations} evaluations, jobs={session.jobs}) ...")
    table = session.training_table(grid)
    baseline_frame = table.group_by("policy", {
        "mhz": ("effective_frequency_mhz", "mean"),
        "speedup_p50": ("speedup_percent", "p50"),
        "speedup_p95": ("speedup_percent", "p95"),
        "violations": ("num_violations", "sum"),
        "mean_normalized_period": ("normalized_period", "mean"),
    })
    baselines = {
        row["policy"]: {key: row[key] for key in
                        ("mhz", "speedup_p50", "speedup_p95",
                         "violations", "mean_normalized_period")}
        for row in baseline_frame.iter_rows()
    }

    vocabulary = class_vocabulary()
    train_workloads = list(grid.workload_specs())
    calibration = list(config.calibration_workloads) or list(suite_names())
    # calibration covers the training workloads too: leaf maxima must
    # see every sample the fitted partition was built from
    calibration_workloads = train_workloads + [
        workload for workload in calibration
        if workload not in train_workloads
    ]

    previous = set_trace_store(session.store) if session.store else None
    try:
        # one extraction pass over the calibration set (which leads with
        # the training workloads): the training rows are the same parts,
        # never re-extracted
        note(f"extracting features: {len(train_workloads)} training + "
             f"{len(calibration_workloads) - len(train_workloads)} "
             f"calibration workloads x {len(grid.design_points())} "
             f"design points ...")
        parts = _per_cycle_parts(
            grid, calibration_workloads, vocabulary, config.window
        )
    finally:
        if session.store:
            set_trace_store(previous)

    train_set = set(train_workloads)
    matrix, target = _stack(
        [part for part in parts if part[0] in train_set]
    )
    calib_matrix, calib_target = _stack(parts)
    if config.model == "tree":
        arrays = _fit_tree(
            matrix, target, config.max_depth, config.min_samples_leaf
        )
    else:
        arrays = _fit_logistic(matrix, target)
    model = LearnedModel(
        kind=config.model,
        vocabulary=vocabulary,
        window=config.window,
        feature_names=feature_names(config.window),
        **arrays,
    )

    note(f"calibrating against genie ground truth over "
         f"{len(calib_target)} cycles ...")
    model = _calibrate(
        model, calib_matrix, calib_target,
        config.calibration_margin_percent,
    )

    predicted = model.predict_normalized(calib_matrix)
    from repro.sim.spec import get_pipeline_spec

    spec_names = sorted({
        point.pipeline_spec for point in grid.design_points()
    })
    metadata = {
        "grid": grid.name,
        "fingerprint": grid.fingerprint(),
        "config": config.as_dict(),
        "design_points": [point.label for point in grid.design_points()],
        # microarchitectures the model was fitted/calibrated on; deploy
        # validation (repro.ml.model.validate_model_spec) refuses any
        # other spec
        "pipeline_specs": spec_names,
        "pipeline_spec_digests": sorted({
            get_pipeline_spec(name).digest for name in spec_names
        }),
        "train_workloads": train_workloads,
        "calibration_workloads": calibration_workloads,
        "train_rows": int(len(target)),
        "calibration_rows": int(len(calib_target)),
        "num_leaves": model.num_leaves,
        "mean_normalized_period": float(predicted.mean()),
        "max_normalized_period": float(predicted.max()),
        "baselines": baselines,
    }
    model.metadata = metadata
    report = dict(metadata)
    report["safe_on_calibration"] = bool(
        (predicted >= calib_target - 1e-12).all()
    )
    note(f"trained {config.model}: {metadata['num_leaves']} leaves, "
         f"{metadata['train_rows']} train rows, "
         f"mean normalized period "
         f"{metadata['mean_normalized_period']:.4f}")
    return TrainingOutcome(model=model, report=report)


def get_or_train_model(store, name, grid, config=None, *, jobs=1,
                       progress=None):
    """Content-addressed model lookup with recompute-on-miss.

    Mirrors :meth:`ArtifactStore.get_lut`: a missing or corrupt stored
    model (corruption is counted and discarded by ``load_model``) is
    simply retrained and written back — the store never blocks progress.
    """
    model = store.load_model(name)
    if model is None:
        outcome = train_policy(
            grid, config, store=store, jobs=jobs, progress=progress
        )
        model = outcome.model
        store.save_model(name, model)
    return model
