"""Serialized learned-policy models.

A :class:`LearnedModel` is the deployable artifact of the ML-DFS
pipeline: the fitted predictor (decision tree or two-level logistic),
the feature specification it was extracted against (vocabulary, window,
feature-spec version) and its training metadata, frozen into one
``.npz`` file.

Serialisation is **byte-deterministic**: arrays are written through a
fixed-order, timestamp-free zip container (readable by ``np.load``), so
the same grid + seed always produces the same bytes — which is how the
trainer-determinism tests and content-addressed store keys can work at
all.  Loading is schema-versioned and validating; a missing or
undecodable file raises :class:`ModelError`, the friendly-CLI error
(exit 2, names the offending path, raised before any simulation runs).

Policy specs
============

Everywhere a policy name is accepted, ``learned:<path>`` deploys a
model file::

    session.evaluate(policies=["learned:model.npz", "static"])
    {"policies": ["learned:model.npz"], ...}          # scenario grid
    python -m repro evaluate crc32 --policy learned:model.npz

Models also live content-addressed in the artifact store
(:meth:`repro.lab.store.ArtifactStore.save_model` /
:meth:`~repro.lab.store.ArtifactStore.load_model`), with the same
corruption semantics as traces and LUTs: a torn artifact is counted,
discarded and recomputed (:func:`repro.ml.train.get_or_train_model`).
"""

import io
import json
import pathlib
import zipfile
from dataclasses import dataclass, field

import numpy as np

from repro.ml.features import FEATURE_SPEC_VERSION

#: Bump when the artifact layout or the predictor semantics change.
MODEL_SCHEMA_VERSION = 1

#: Policy-spec prefix deploying a model file.
LEARNED_PREFIX = "learned:"

#: Supported predictor kinds.
MODEL_KINDS = ("tree", "logistic")

#: Array fields of the ``.npz`` payload (fixed write order).
_ARRAY_FIELDS = (
    "tree_feature", "tree_threshold", "tree_left", "tree_right",
    "tree_value", "weights", "x_mean", "x_scale", "levels",
)


class ModelError(Exception):
    """A learned-policy model file is missing, corrupt or incompatible."""


def is_learned_spec(name):
    """True for ``learned:<path>`` policy specs."""
    return isinstance(name, str) and name.startswith(LEARNED_PREFIX)


def parse_learned_spec(name):
    """The model path of a ``learned:`` policy spec."""
    if not is_learned_spec(name):
        raise ModelError(f"not a learned-policy spec: {name!r}")
    path = name[len(LEARNED_PREFIX):]
    if not path:
        raise ModelError(
            "empty model path in learned-policy spec 'learned:' "
            "(expected learned:<model.npz>)"
        )
    return path


@dataclass
class LearnedModel:
    """One deployable period predictor.

    ``tree_*`` arrays encode the decision tree (``tree_feature`` is -1
    at leaves; ``tree_value`` is the calibrated normalized period of
    each leaf).  ``weights``/``x_mean``/``x_scale``/``levels`` encode
    the logistic baseline (two calibrated period levels).  Predictions
    are *normalized*: fractions of the design's static period, so one
    model deploys across operating points whose delays scale uniformly.
    """

    kind: str
    vocabulary: tuple
    window: int
    feature_names: tuple
    tree_feature: np.ndarray = None
    tree_threshold: np.ndarray = None
    tree_left: np.ndarray = None
    tree_right: np.ndarray = None
    tree_value: np.ndarray = None
    weights: np.ndarray = None
    x_mean: np.ndarray = None
    x_scale: np.ndarray = None
    levels: np.ndarray = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in MODEL_KINDS:
            raise ModelError(
                f"unknown model kind {self.kind!r}; "
                f"choose from {MODEL_KINDS}"
            )
        if self.window < 1:
            raise ModelError(
                f"invalid recent-excitation window {self.window} "
                "(must be >= 1 cycle)"
            )
        for name in _ARRAY_FIELDS:
            if getattr(self, name) is None:
                setattr(self, name, np.empty(0))

    @property
    def num_leaves(self):
        if self.kind != "tree":
            return int(self.levels.size)
        return int(np.count_nonzero(self.tree_feature < 0))

    # -- prediction ----------------------------------------------------------

    def apply_tree(self, matrix):
        """Leaf node index of every feature row (tree models)."""
        node = np.zeros(matrix.shape[0], dtype=np.int64)
        while True:
            feature = self.tree_feature[node]
            active = np.nonzero(feature >= 0)[0]
            if active.size == 0:
                return node
            current = node[active]
            go_left = (
                matrix[active, feature[active]]
                <= self.tree_threshold[current]
            )
            node[active] = np.where(
                go_left, self.tree_left[current], self.tree_right[current]
            )

    def decision(self, matrix):
        """Logistic decision values (positive → slow level)."""
        standardized = (matrix - self.x_mean) / self.x_scale
        return standardized @ self.weights[:-1] + self.weights[-1]

    def predict_normalized(self, matrix):
        """Predicted safe period of every row, as a fraction of the
        static period."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        if self.kind == "tree":
            return self.tree_value[self.apply_tree(matrix)]
        slow = self.decision(matrix) > 0.0
        return self.levels[slow.astype(np.int64)]

    # -- serialisation -------------------------------------------------------

    def _header(self):
        return {
            "schema": MODEL_SCHEMA_VERSION,
            "feature_spec": FEATURE_SPEC_VERSION,
            "kind": self.kind,
            "vocabulary": list(self.vocabulary),
            "window": self.window,
            "feature_names": list(self.feature_names),
            "metadata": self.metadata,
        }

    def to_bytes(self):
        """The artifact as deterministic ``.npz`` bytes.

        Plain ``np.savez`` embeds nothing nondeterministic either, but
        writing the zip members ourselves (fixed order, fixed DOS epoch
        timestamps, no compression) makes byte-stability an explicit
        contract rather than a numpy implementation detail.
        """
        header = json.dumps(
            self._header(), sort_keys=True, separators=(",", ":")
        )
        arrays = {"header": np.frombuffer(
            header.encode(), dtype=np.uint8
        )}
        for name in _ARRAY_FIELDS:
            arrays[name] = np.asarray(getattr(self, name))
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w", zipfile.ZIP_STORED) as archive:
            for name in ("header",) + _ARRAY_FIELDS:
                payload = io.BytesIO()
                np.lib.format.write_array(
                    payload, arrays[name], version=(1, 0)
                )
                info = zipfile.ZipInfo(
                    f"{name}.npy", date_time=(1980, 1, 1, 0, 0, 0)
                )
                archive.writestr(info, payload.getvalue())
        return buffer.getvalue()

    def save(self, path):
        """Write the artifact; returns the path."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self.to_bytes())
        return path

    @classmethod
    def from_bytes(cls, data, source="<bytes>"):
        """Decode an artifact; raises :class:`ModelError` on anything
        short of a valid, schema-compatible model."""
        try:
            with np.load(io.BytesIO(data), allow_pickle=False) as archive:
                header = json.loads(bytes(archive["header"]).decode())
                arrays = {
                    name: archive[name] for name in _ARRAY_FIELDS
                }
        except ModelError:
            raise
        except Exception as error:   # zip damage, missing keys, bad JSON
            raise ModelError(
                f"corrupt learned-policy model {source}: {error}"
            ) from error
        if header.get("schema") != MODEL_SCHEMA_VERSION:
            raise ModelError(
                f"learned-policy model {source} has schema "
                f"{header.get('schema')!r}, expected {MODEL_SCHEMA_VERSION}"
                " — retrain it"
            )
        if header.get("feature_spec") != FEATURE_SPEC_VERSION:
            raise ModelError(
                f"learned-policy model {source} was extracted against "
                f"feature spec {header.get('feature_spec')!r}, expected "
                f"{FEATURE_SPEC_VERSION} — retrain it"
            )
        try:
            return cls(
                kind=header["kind"],
                vocabulary=tuple(header["vocabulary"]),
                window=int(header["window"]),
                feature_names=tuple(header["feature_names"]),
                metadata=header.get("metadata", {}),
                **{name: arrays[name] for name in _ARRAY_FIELDS},
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ModelError(
                f"corrupt learned-policy model {source}: {error}"
            ) from error

    @classmethod
    def from_file(cls, path):
        path = pathlib.Path(path)
        if not path.is_file():
            raise ModelError(
                f"learned-policy model file not found: {path} "
                f"(train one with 'repro train --out {path.name}')"
            )
        return cls.from_bytes(path.read_bytes(), source=str(path))

    def __eq__(self, other):
        if not isinstance(other, LearnedModel):
            return NotImplemented
        return self.to_bytes() == other.to_bytes()


# -- cached loading -----------------------------------------------------------
#
# Policy factories build a fresh policy per program, which would re-read
# the model file per (program, config) in a sweep; a small cache keyed by
# path + stat signature makes repeated deployment free while still
# picking up a retrained file.

_model_cache = {}
_MODEL_CACHE_CAPACITY = 8


def load_model(path):
    """Load (with caching) a model artifact from ``path``."""
    path = pathlib.Path(path)
    try:
        stat = path.stat()
        signature = (str(path), stat.st_mtime_ns, stat.st_size)
    except OSError:
        signature = None
    if signature is not None and signature in _model_cache:
        return _model_cache[signature]
    model = LearnedModel.from_file(path)
    if signature is not None:
        _model_cache[signature] = model
        while len(_model_cache) > _MODEL_CACHE_CAPACITY:
            _model_cache.pop(next(iter(_model_cache)))
    return model


def clear_model_cache():
    _model_cache.clear()


def load_policy_model(spec):
    """Resolve a ``learned:<path>`` policy spec to its model."""
    return load_model(parse_learned_spec(spec))


def validate_model_spec(model, design):
    """Refuse deploying a model on a microarchitecture it was not
    trained for.

    Models record the pipeline-spec digests of their training grid
    (``metadata["pipeline_spec_digests"]``); the deploying design's
    spec digest must be among them.  Artifacts from before spec-aware
    training carry no digest list and deploy on the default spec only.
    """
    spec = design.pipeline_spec
    trained = model.metadata.get("pipeline_spec_digests")
    if trained is None:
        if spec.is_default:
            return
        raise ModelError(
            "learned-policy model carries no pipeline-spec metadata "
            f"(pre-spec artifact); it cannot deploy on spec "
            f"{spec.name!r} — retrain it on that spec"
        )
    if spec.digest not in trained:
        names = model.metadata.get("pipeline_specs", trained)
        raise ModelError(
            f"learned-policy model was trained on pipeline spec(s) "
            f"{', '.join(names)} and cannot deploy on spec "
            f"{spec.name!r} — retrain it on that spec"
        )


def validate_policy_specs(names):
    """Eagerly load every ``learned:`` spec in ``names``.

    Call before building designs or simulating anything: a missing or
    corrupt model file must fail fast (CLI exit 2) instead of after
    minutes of characterisation.  Paths resolve exactly as deployment
    does (:func:`load_policy_model`, relative to the working
    directory), so a spec that validates can never fail to deploy.
    Non-learned names pass through untouched — the policy registry
    validates those.
    """
    for name in names:
        if is_learned_spec(name):
            load_model(parse_learned_spec(name))
