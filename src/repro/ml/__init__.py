"""repro.ml — learned clock policies (ML-DFS).

The paper's instruction-based clock adjustment predicts the safe period
from fixed characterised LUTs; this package *learns* the per-instruction
period predictor from data instead, following the ML-DFS line of work
(Ajirlou & Partin-Vaisband, arXiv:2006.07450; arXiv:2007.01820).  It
closes the loop from :meth:`repro.api.Session.training_table` to a
deployable policy:

- :mod:`repro.ml.features` — vectorized per-cycle feature extraction
  from a :class:`~repro.dta.compiled.CompiledTrace` (global class ids,
  opcode groups, occupancy flags, recent-window excitation);
- :mod:`repro.ml.train` — pure-NumPy trainers (seeded, deterministic;
  a decision-tree envelope regressor and a two-level logistic baseline)
  with a safety-margin calibration pass against genie ground truth;
- :mod:`repro.ml.model` — schema-versioned ``.npz`` model artifacts
  (byte-deterministic serialisation, content-addressed storage in
  :class:`~repro.lab.store.ArtifactStore`, corruption → recompute);
- the deployable :class:`~repro.clocking.policies.LearnedPolicy`, which
  lives in the policy registry next to the paper's five fixed policies
  and is addressed as ``learned:<model.npz>`` everywhere a policy name
  is accepted (``Session.evaluate``, scenario grids, the CLI).

Train one from the command line::

    python -m repro train --grid examples/grids/quick.json \\
        --store .repro-store --out model.npz --report BENCH_train.json
"""

from repro.ml.features import (
    DEFAULT_WINDOW,
    FEATURE_SPEC_VERSION,
    FeatureMatrix,
    OnlineFeatureExtractor,
    class_vocabulary,
    extract_features,
    feature_names,
)
from repro.ml.model import (
    LEARNED_PREFIX,
    MODEL_SCHEMA_VERSION,
    LearnedModel,
    ModelError,
    is_learned_spec,
    load_model,
    load_policy_model,
    validate_policy_specs,
)
from repro.ml.train import (
    TrainerConfig,
    TrainingOutcome,
    get_or_train_model,
    train_policy,
)

__all__ = [
    "DEFAULT_WINDOW",
    "FEATURE_SPEC_VERSION",
    "FeatureMatrix",
    "OnlineFeatureExtractor",
    "class_vocabulary",
    "extract_features",
    "feature_names",
    "LEARNED_PREFIX",
    "MODEL_SCHEMA_VERSION",
    "LearnedModel",
    "ModelError",
    "is_learned_spec",
    "load_model",
    "load_policy_model",
    "validate_policy_specs",
    "TrainerConfig",
    "TrainingOutcome",
    "get_or_train_model",
    "train_policy",
]
