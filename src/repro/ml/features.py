"""Per-instruction feature extraction for learned clock policies.

A learned period predictor sees, per cycle, exactly what the hardware
monitor of paper Fig. 1 sees — which instruction occupies which pipeline
stage group — encoded as a flat numeric feature vector:

- **global class ids** per stage group: the compiled trace's interned
  class ids remapped onto the fixed ISA-wide vocabulary
  (:func:`class_vocabulary`), so ids mean the same thing across
  programs, traces and training runs;
- **opcode-group ids** per stage group: a coarse functional bucket
  (alu / shift / mul-div / memory / control / nop / bubble) derived from
  the ISA specs, giving the model a semantic axis that generalises
  across classes;
- **occupancy flags**: per-stage bubble and hold bits plus the
  front-end ``stall``/``redirect`` state;
- **recent-window excitation**: causal counts over the previous
  ``window`` cycles of long-latency EX occupants (mul/div group) and of
  taken redirects — cheap history the real monitor could track with a
  shift register.

The vectorized path (:func:`extract_features`) builds the whole
``(num_cycles, NUM_FEATURES)`` matrix from a
:class:`~repro.dta.compiled.CompiledTrace` with array ops only; the
scalar :class:`OnlineFeatureExtractor` produces bit-identical per-record
rows for the reference evaluation engine (the per-cycle hardware view,
including its own shift-register window state).
"""

import numpy as np

from repro.isa.opcodes import SPECS, InstructionKind
from repro.sim.trace import Stage
from repro.timing.profiles import BUBBLE_CLASS

#: Bump when the feature layout changes — serialized models carry it and
#: refuse to deploy against a different extraction.
FEATURE_SPEC_VERSION = 1

#: Default recent-window length (cycles of history).
DEFAULT_WINDOW = 8

#: Opcode groups, in fixed id order (index = group id).
OPCODE_GROUPS = ("bubble", "alu", "shift", "muldiv", "mem", "control", "nop")

_KIND_GROUP = {
    InstructionKind.ALU: "alu",
    InstructionKind.SETFLAG: "alu",
    InstructionKind.MOVE: "alu",
    InstructionKind.SHIFT: "shift",
    InstructionKind.MUL: "muldiv",
    InstructionKind.DIV: "muldiv",
    InstructionKind.LOAD: "mem",
    InstructionKind.STORE: "mem",
    InstructionKind.BRANCH: "control",
    InstructionKind.JUMP: "control",
    InstructionKind.JUMP_REG: "control",
    InstructionKind.NOP: "nop",
}

_MULDIV_GROUP_ID = OPCODE_GROUPS.index("muldiv")


def class_vocabulary():
    """The fixed, ISA-wide timing-class vocabulary (sorted, bubble
    included).  Every class a compiled trace can ever intern is here, so
    a model trained against this vocabulary never meets an unknown id."""
    classes = {spec.timing_class for spec in SPECS.values()}
    classes.add(BUBBLE_CLASS)
    return tuple(sorted(classes))


def class_group(cls):
    """Opcode-group name of one timing class."""
    if cls == BUBBLE_CLASS:
        return "bubble"
    for spec in SPECS.values():
        if spec.timing_class == cls:
            return _KIND_GROUP[spec.kind]
    raise ValueError(f"unknown timing class {cls!r}")


def group_ids(vocabulary):
    """Group id of every vocabulary entry, as an int64 lookup array."""
    return np.array(
        [OPCODE_GROUPS.index(class_group(cls)) for cls in vocabulary],
        dtype=np.int64,
    )


def feature_names(window=DEFAULT_WINDOW):
    """Ordered feature names — the column layout of the matrix."""
    names = [f"class_id[{stage.name}]" for stage in Stage]
    names += [f"group_id[{stage.name}]" for stage in Stage]
    for stage in Stage:
        names += [f"bubble[{stage.name}]", f"held[{stage.name}]"]
    names += ["stall", "redirect"]
    names += [f"window{window}_muldiv", f"window{window}_redirect"]
    return tuple(names)


#: Number of feature columns (independent of the window length).
NUM_FEATURES = len(feature_names())


def _validate_window(window):
    window = int(window)
    if window < 1:
        raise ValueError(
            f"recent-excitation window must be >= 1 cycle, got {window}"
        )
    return window


def _canonical_cycle_arrays(compiled, ids, vocabulary):
    """Project a trace's per-column arrays onto the six canonical stage
    groups, keeping :data:`NUM_FEATURES` fixed across pipeline specs.

    Default-spec traces pass through untouched (bit-identical features).
    For other specs each canonical group reads its representative
    column (:meth:`~repro.sim.spec.PipelineSpec.canonical_column`);
    groups the spec has no stage for (e.g. FE in a five-stage machine)
    read as permanent bubbles.
    """
    spec = compiled.pipeline_spec
    if spec.is_default:
        return ids, compiled.bubble, compiled.held
    num_cycles = compiled.num_cycles
    bubble_id = vocabulary.index(BUBBLE_CLASS)
    out_ids = np.full((num_cycles, len(Stage)), bubble_id, dtype=ids.dtype)
    bubble = np.ones((num_cycles, len(Stage)), dtype=bool)
    held = np.zeros((num_cycles, len(Stage)), dtype=bool)
    for stage in Stage:
        column = spec.canonical_column(stage)
        if column is None:
            continue
        out_ids[:, stage] = ids[:, column]
        bubble[:, stage] = compiled.bubble[:, column]
        held[:, stage] = compiled.held[:, column]
    return out_ids, bubble, held


def rolling_prev_count(flags, window):
    """Causal rolling count: element ``t`` is the number of set flags in
    cycles ``[t - window, t - 1]`` — the current cycle never counts
    itself, so the feature is available before the cycle executes."""
    window = _validate_window(window)
    flags = np.asarray(flags)
    prefix = np.concatenate(
        [[0], np.cumsum(flags.astype(np.int64))]
    )
    index = np.arange(len(flags))
    lower = np.maximum(index - window, 0)
    return (prefix[index] - prefix[lower]).astype(np.float64)


class FeatureMatrix:
    """One compiled trace's features: ``matrix`` is float64
    ``(num_cycles, NUM_FEATURES)``, ``names`` the column labels."""

    def __init__(self, matrix, names):
        self.matrix = matrix
        self.names = tuple(names)

    @property
    def num_cycles(self):
        return self.matrix.shape[0]

    @property
    def num_features(self):
        return self.matrix.shape[1]


def extract_features(compiled, vocabulary=None, window=DEFAULT_WINDOW):
    """Vectorized per-cycle features of one compiled trace.

    The class-id columns use the trace's
    :meth:`~repro.dta.compiled.CompiledTrace.vocab_ids` remap, so two
    traces interning classes in different orders produce identical
    features for identical pipeline states.  Non-default pipeline specs
    project onto the canonical six-group layout
    (:func:`_canonical_cycle_arrays`), so the feature width is
    spec-invariant.
    """
    window = _validate_window(window)
    if vocabulary is None:
        vocabulary = class_vocabulary()
    ids = compiled.vocab_ids(vocabulary)
    ids, bubble, held = _canonical_cycle_arrays(compiled, ids, vocabulary)
    groups = group_ids(vocabulary)[ids]
    num_cycles = compiled.num_cycles

    ex_muldiv = (
        (groups[:, Stage.EX] == _MULDIV_GROUP_ID)
        & ~bubble[:, Stage.EX]
    )

    columns = [ids.astype(np.float64), groups.astype(np.float64)]
    flags = np.empty((num_cycles, 2 * len(Stage)), dtype=np.float64)
    for stage in Stage:
        flags[:, 2 * int(stage)] = bubble[:, stage]
        flags[:, 2 * int(stage) + 1] = held[:, stage]
    columns.append(flags)
    columns.append(
        np.column_stack([
            compiled.stall.astype(np.float64),
            compiled.redirect.astype(np.float64),
        ])
    )
    columns.append(
        np.column_stack([
            rolling_prev_count(ex_muldiv, window),
            rolling_prev_count(compiled.redirect, window),
        ])
    )
    matrix = np.concatenate(columns, axis=1)
    return FeatureMatrix(matrix, feature_names(window))


class WindowedFeatureExtractor:
    """Vectorized feature extraction over trace windows with carried state.

    Feeding the consecutive windows of one trace (any window sizes)
    produces rows bit-identical to one :func:`extract_features` call over
    the whole trace: all columns except the recent-window counts are
    cycle-local, and the counts are integer sums over at most ``window``
    previous cycles, so carrying the trailing ``window`` EX-mul/div and
    redirect flags across window boundaries reproduces them exactly.
    Stateful — build one extractor per program and :meth:`reset` between
    programs.
    """

    def __init__(self, vocabulary=None, window=DEFAULT_WINDOW):
        if vocabulary is None:
            vocabulary = class_vocabulary()
        self.vocabulary = tuple(vocabulary)
        self.window = _validate_window(window)
        self._group_lookup = group_ids(self.vocabulary)
        self.reset()

    def reset(self):
        self._muldiv_tail = np.zeros(0, dtype=np.int64)
        self._redirect_tail = np.zeros(0, dtype=np.int64)

    def _count_and_carry(self, tail, flags):
        # With a tail of min(window, cycles_so_far) flags, the local
        # lower-bound clamp in rolling_prev_count coincides with the
        # whole-trace one, so the counts over the new rows are exact.
        combined = np.concatenate(
            [tail, np.asarray(flags).astype(np.int64)]
        )
        counts = rolling_prev_count(combined, self.window)[len(tail):]
        carry = combined[max(0, len(combined) - self.window):]
        return counts, carry

    def extract(self, compiled):
        """Feature matrix of one window (a ``CompiledTrace`` or any
        object with the same cycle-matrix surface, e.g. a
        ``repro.stream.TraceWindow``)."""
        ids = compiled.vocab_ids(self.vocabulary)
        ids, bubble, held = _canonical_cycle_arrays(
            compiled, ids, self.vocabulary
        )
        groups = self._group_lookup[ids]
        num_cycles = compiled.num_cycles

        ex_muldiv = (
            (groups[:, Stage.EX] == _MULDIV_GROUP_ID)
            & ~bubble[:, Stage.EX]
        )

        columns = [ids.astype(np.float64), groups.astype(np.float64)]
        flags = np.empty((num_cycles, 2 * len(Stage)), dtype=np.float64)
        for stage in Stage:
            flags[:, 2 * int(stage)] = bubble[:, stage]
            flags[:, 2 * int(stage) + 1] = held[:, stage]
        columns.append(flags)
        columns.append(
            np.column_stack([
                compiled.stall.astype(np.float64),
                compiled.redirect.astype(np.float64),
            ])
        )
        muldiv_counts, self._muldiv_tail = self._count_and_carry(
            self._muldiv_tail, ex_muldiv
        )
        redirect_counts, self._redirect_tail = self._count_and_carry(
            self._redirect_tail, compiled.redirect
        )
        columns.append(np.column_stack([muldiv_counts, redirect_counts]))
        matrix = np.concatenate(columns, axis=1)
        return FeatureMatrix(matrix, feature_names(self.window))


class OnlineFeatureExtractor:
    """Scalar (per-record) feature extraction with shift-register state.

    Produces rows bit-identical to :func:`extract_features` when fed the
    same trace record by record — the reference semantics of a learned
    policy's hardware monitor.  Stateful: the recent-window counters see
    only cycles already presented, so build one extractor per program.

    Record-path extraction assumes the default six-slot record layout
    (non-default pipeline specs evaluate through the array engines,
    which :class:`repro.api.Session` enforces).
    """

    def __init__(self, vocabulary=None, window=DEFAULT_WINDOW):
        if vocabulary is None:
            vocabulary = class_vocabulary()
        self.vocabulary = tuple(vocabulary)
        self.window = _validate_window(window)
        self._index = {cls: i for i, cls in enumerate(self.vocabulary)}
        self._groups = group_ids(self.vocabulary)
        self._muldiv_history = []
        self._redirect_history = []

    def reset(self):
        self._muldiv_history = []
        self._redirect_history = []

    def features_for(self, record):
        """The feature row of one cycle record (float64 vector)."""
        slots = record.slots
        ex_view = slots[int(Stage.EX)]
        ids = np.empty(len(Stage), dtype=np.int64)
        bubble = np.empty(len(Stage), dtype=bool)
        held = np.empty(len(Stage), dtype=bool)
        for stage in Stage:
            # same driver substitution as compile_trace: the ADR group
            # keys on the EX occupant
            view = ex_view if stage == Stage.ADR else slots[int(stage)]
            cls = view.timing_class
            if cls is None:
                cls = BUBBLE_CLASS
            try:
                ids[stage] = self._index[cls]
            except KeyError:
                raise ValueError(
                    f"timing class {cls!r} not in the model vocabulary"
                ) from None
            bubble[stage] = view.mnemonic is None
            held[stage] = view.held

        groups = self._groups[ids]
        window = self.window
        row = np.empty(NUM_FEATURES, dtype=np.float64)
        row[0:len(Stage)] = ids
        row[len(Stage):2 * len(Stage)] = groups
        base = 2 * len(Stage)
        for stage in Stage:
            row[base + 2 * int(stage)] = bubble[stage]
            row[base + 2 * int(stage) + 1] = held[stage]
        base += 2 * len(Stage)
        row[base] = bool(record.stall)
        row[base + 1] = bool(record.redirect)
        row[base + 2] = float(sum(self._muldiv_history[-window:]))
        row[base + 3] = float(sum(self._redirect_history[-window:]))

        ex_muldiv = (
            groups[Stage.EX] == _MULDIV_GROUP_ID and not bubble[Stage.EX]
        )
        self._muldiv_history.append(1 if ex_muldiv else 0)
        self._redirect_history.append(1 if record.redirect else 0)
        if len(self._muldiv_history) > window:
            del self._muldiv_history[:-window]
            del self._redirect_history[:-window]
        return row
