"""Bit-level helpers used by the ISA encoder/decoder and the semantics.

All values are plain Python integers.  Architectural registers are 32-bit;
helpers are provided to move between the unsigned representation used for
storage (0 .. 2**32-1) and the signed interpretation used by arithmetic and
comparison instructions.
"""

WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1


def mask(width):
    """Return a bit mask of ``width`` ones: ``mask(3) == 0b111``."""
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(value, index):
    """Return bit ``index`` of ``value`` (0 or 1)."""
    return (value >> index) & 1


def bits(value, high, low):
    """Return the inclusive bit field ``value[high:low]``.

    Mirrors the Verilog slice notation used in the OR1K architecture manual:
    ``bits(word, 31, 26)`` extracts the 6-bit major opcode.
    """
    if high < low:
        raise ValueError(f"bit range high={high} < low={low}")
    return (value >> low) & mask(high - low + 1)


def sign_extend(value, width):
    """Sign-extend a ``width``-bit value to a Python int.

    >>> sign_extend(0xFFFF, 16)
    -1
    >>> sign_extend(0x7FFF, 16)
    32767
    """
    if width <= 0:
        raise ValueError(f"sign_extend width must be positive, got {width}")
    value &= mask(width)
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def to_signed32(value):
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    return sign_extend(value, WORD_BITS)


def to_unsigned32(value):
    """Truncate ``value`` to its unsigned 32-bit representation."""
    return value & WORD_MASK


def popcount(value):
    """Number of set bits in ``value`` (must be non-negative)."""
    if value < 0:
        raise ValueError("popcount requires a non-negative value")
    return bin(value).count("1")


def rotate_right32(value, amount):
    """Rotate a 32-bit value right by ``amount`` (mod 32)."""
    value = to_unsigned32(value)
    amount %= WORD_BITS
    if amount == 0:
        return value
    return to_unsigned32((value >> amount) | (value << (WORD_BITS - amount)))


def align_down(value, alignment):
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return value & ~(alignment - 1)


def is_aligned(value, alignment):
    """True if ``value`` is a multiple of power-of-two ``alignment``."""
    return align_down(value, alignment) == value
