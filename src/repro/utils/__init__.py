"""Shared utilities: bit manipulation, deterministic RNG streams, statistics,
ASCII tables and physical-unit conversions.

These helpers are deliberately dependency-light; everything above them in the
stack (ISA, pipeline, timing model, DTA) builds on this module.
"""

from repro.utils.bitops import (
    bit,
    bits,
    mask,
    popcount,
    sign_extend,
    to_signed32,
    to_unsigned32,
)
from repro.utils.rng import RngStream, derive_seed
from repro.utils.stats import Histogram, Summary, summarize
from repro.utils.tables import format_table
from repro.utils.units import mhz_to_ps, ps_to_mhz

__all__ = [
    "bit",
    "bits",
    "mask",
    "popcount",
    "sign_extend",
    "to_signed32",
    "to_unsigned32",
    "RngStream",
    "derive_seed",
    "Histogram",
    "Summary",
    "summarize",
    "format_table",
    "mhz_to_ps",
    "ps_to_mhz",
]
