"""Histogram and summary statistics used by the DTA reports and benches."""

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    def as_dict(self):
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


def summarize(samples):
    """Compute a :class:`Summary` over an iterable of numbers."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
    )


@dataclass
class Histogram:
    """A fixed-bin histogram over a numeric range.

    The DTA tool uses histograms of per-cycle maximum delays (paper Fig. 5)
    and per-stage instruction delays (paper Fig. 7).
    """

    low: float
    high: float
    num_bins: int
    counts: list = field(default_factory=list)
    underflow: int = 0
    overflow: int = 0

    def __post_init__(self):
        if self.high <= self.low:
            raise ValueError("histogram range must have high > low")
        if self.num_bins <= 0:
            raise ValueError("histogram needs at least one bin")
        if not self.counts:
            self.counts = [0] * self.num_bins

    @property
    def bin_width(self):
        return (self.high - self.low) / self.num_bins

    def bin_index(self, value):
        """Bin index for ``value``; -1 for underflow, num_bins for overflow."""
        if value < self.low:
            return -1
        if value >= self.high:
            return self.num_bins
        return int((value - self.low) / self.bin_width)

    def add(self, value, weight=1):
        index = self.bin_index(value)
        if index < 0:
            self.underflow += weight
        elif index >= self.num_bins:
            self.overflow += weight
        else:
            self.counts[index] += weight

    def extend(self, values):
        for value in values:
            self.add(value)

    @property
    def total(self):
        return sum(self.counts) + self.underflow + self.overflow

    def bin_centers(self):
        width = self.bin_width
        return [self.low + (i + 0.5) * width for i in range(self.num_bins)]

    def bin_edges(self):
        width = self.bin_width
        return [self.low + i * width for i in range(self.num_bins + 1)]

    def mean(self):
        """Approximate mean from bin centers (ignores under/overflow)."""
        inside = sum(self.counts)
        if inside == 0:
            raise ValueError("histogram is empty")
        return (
            sum(c * x for c, x in zip(self.counts, self.bin_centers())) / inside
        )

    def mode_center(self):
        """Center of the most populated bin."""
        index = max(range(self.num_bins), key=lambda i: self.counts[i])
        return self.bin_centers()[index]

    def render(self, width=50, label="delay [ps]"):
        """Render a text histogram (one row per bin) for bench output."""
        peak = max(self.counts) if any(self.counts) else 1
        lines = [f"{label:>12} | count"]
        for center, count in zip(self.bin_centers(), self.counts):
            bar = "#" * int(round(width * count / peak)) if peak else ""
            lines.append(f"{center:12.1f} | {count:6d} {bar}")
        if self.underflow:
            lines.append(f"   underflow | {self.underflow:6d}")
        if self.overflow:
            lines.append(f"    overflow | {self.overflow:6d}")
        return "\n".join(lines)
