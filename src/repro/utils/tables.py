"""Plain-text table rendering for bench harnesses and reports."""


def format_table(headers, rows, title=None, aligns=None):
    """Render a list of rows as an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row tuples; cells are converted with ``str``.
    title:
        Optional title line printed above the table.
    aligns:
        Optional per-column alignment: ``"<"`` (default) or ``">"``.
    """
    str_rows = [[_cell(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    num_cols = len(headers)
    for row in str_rows:
        if len(row) != num_cols:
            raise ValueError(
                f"row has {len(row)} cells, expected {num_cols}: {row}"
            )
    if aligns is None:
        aligns = ["<"] * num_cols
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(num_cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(
        " | ".join(f"{headers[i]:{aligns[i]}{widths[i]}}" for i in range(num_cols))
    )
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(f"{row[i]:{aligns[i]}{widths[i]}}" for i in range(num_cols))
        )
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
